"""The generic Registry and the four experiment-axis registries built on
it (machines, engines, schemes, workloads), including the drift guard
between ``runner.SCHEMES`` and the scheme registry."""

import pytest

from repro import describe_registries
from repro.errors import ReproError, WorkloadError
from repro.harness.runner import SCHEMES
from repro.harness.schemes import (
    SCHEME_REGISTRY,
    Scheme,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.prefetch.engines import ENGINES
from repro.registry import Registry


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("b", 2)
        assert reg.get("a") == 1
        assert "b" in reg and "c" not in reg
        assert len(reg) == 2

    def test_registration_order_preserved(self):
        reg = Registry("thing")
        for name in ("zeta", "alpha", "mid"):
            reg.register(name, name)
        assert reg.names() == ["zeta", "alpha", "mid"]
        assert reg.names(sort=True) == ["alpha", "mid", "zeta"]
        assert list(reg) == ["zeta", "alpha", "mid"]

    def test_duplicate_rejected(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ReproError, match="duplicate thing"):
            reg.register("a", 2)

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError, match="without a name"):
            Registry("thing").register("", 1)

    def test_unknown_name_lists_available(self):
        reg = Registry("thing", error=WorkloadError)
        reg.register("a", 1)
        with pytest.raises(WorkloadError, match=r"unknown thing 'x'.*'a'"):
            reg.get("x")

    def test_lazy_loader_runs_once(self):
        calls = []

        def load():
            calls.append(1)
            reg.register("late", 42)

        reg = Registry("thing", loader=load)
        assert reg.get("late") == 42
        assert reg.names() == ["late"]
        assert calls == [1]

    def test_unregister_is_idempotent(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.unregister("a")
        reg.unregister("a")  # no-op when absent
        assert "a" not in reg

    def test_as_dict_is_a_snapshot(self):
        reg = Registry("thing")
        reg.register("a", 1)
        snap = reg.as_dict()
        snap["b"] = 2
        assert "b" not in reg


class TestSchemeRegistry:
    def test_paper_order(self):
        assert scheme_names() == [
            "base", "software", "cooperative", "hardware", "dbp",
            "pointer-chase", "stride", "cdp", "foresight",
        ]

    def test_runner_schemes_derived_from_registry(self):
        # Drift guard: runner.SCHEMES must be the registry's paper-group
        # view, so a newly registered paper scheme automatically reaches
        # the runner — while zoo schemes stay out of the figure matrices.
        assert SCHEMES == tuple(
            name for name in scheme_names()
            if get_scheme(name).group == "paper"
        )
        assert SCHEMES == ("base", "software", "cooperative",
                           "hardware", "dbp")
        assert set(SCHEMES) < set(scheme_names())

    def test_every_scheme_engine_registered(self):
        for name in scheme_names():
            assert get_scheme(name).engine in ENGINES

    def test_register_rejects_unknown_engine(self):
        with pytest.raises(WorkloadError, match="unknown engine"):
            register_scheme(Scheme("warp", engine="ftl", variant="baseline"))
        assert "warp" not in SCHEME_REGISTRY

    def test_scheme_needs_variant_or_prefix(self):
        with pytest.raises(WorkloadError, match="fixed variant"):
            Scheme("broken", engine="none")

    def test_register_and_unregister(self):
        scheme = Scheme("test-hw2", engine="hardware", variant="baseline")
        register_scheme(scheme)
        try:
            assert get_scheme("test-hw2") is scheme
        finally:
            SCHEME_REGISTRY.unregister("test-hw2")
        assert "test-hw2" not in SCHEME_REGISTRY


class TestDescribeRegistries:
    def test_covers_every_axis(self):
        desc = describe_registries()
        assert set(desc) == {"machines", "schemes", "engines",
                             "sim_engines", "mshr_models", "workloads"}
        assert desc["machines"] == ["table2", "bench", "small"]
        assert desc["schemes"] == scheme_names()  # full registry, zoo too
        assert "software" in desc["engines"]
        assert desc["sim_engines"] == ["table", "reference", "compiled"]
        assert desc["mshr_models"] == ["blocking", "coalescing", "full"]
        assert desc["workloads"] == sorted(desc["workloads"])
        assert "health" in desc["workloads"]
