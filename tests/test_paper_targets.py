"""Machine-readable paper targets and the golden-cell fidelity gate."""

import json
import math

import pytest

from repro.audit import (
    FIGURE5_TARGETS,
    TABLE1_TARGETS,
    PaperTarget,
    all_targets,
    differential_check,
    evaluate_targets,
    fidelity_gate,
    figure5_observations,
    load_golden,
    table1_observations,
)
from repro.audit.gate import DEFAULT_GOLDEN
from repro.harness.experiments import MEMORY_BOUND


class TestPaperTarget:
    def test_band_validation(self):
        with pytest.raises(ValueError):
            PaperTarget("k", "d", 50.0, lo=60.0, hi=40.0)

    def test_contains(self):
        t = PaperTarget("k", "d", 72.0, lo=40.0, hi=100.0)
        assert t.contains(72.0) and t.contains(40.0) and t.contains(100.0)
        assert not t.contains(39.9)
        assert not t.contains(math.nan)

    def test_drift_row(self):
        t = PaperTarget("k", "d", 72.0, lo=40.0, hi=100.0, source="Fig 5")
        row = t.drift_row(60.0)
        assert row["ok"] and row["drift"] == -12.0 and row["paper"] == 72.0
        missing = t.drift_row(None)
        assert not missing["ok"] and missing["observed"] is None

    def test_registry_shape(self):
        keys = [t.key for t in all_targets()]
        assert len(keys) == len(set(keys))  # no duplicate target keys
        assert len(FIGURE5_TARGETS) == 6
        assert len(TABLE1_TARGETS) == 2 * len(MEMORY_BOUND)
        # every target quotes its section of the paper
        assert all(t.source for t in all_targets())


class TestObservationMapping:
    def test_figure5_rows_map_to_keys(self):
        rows = [
            {"scheme": "software", "avg speedup%": 14.0,
             "avg mem stall cut%": 68.0},
            {"scheme": "base", "avg speedup%": 0.0},  # not a target scheme
        ]
        obs = figure5_observations(rows)
        assert obs == {
            "figure5.speedup.software": 14.0,
            "figure5.mem_stall_cut.software": 68.0,
        }

    def test_table1_rows_map_to_keys(self):
        rows = [
            {"benchmark": "health", "mem frac%": 55.0, "%misses lds": 92.0},
            {"benchmark": "power", "mem frac%": 5.0},  # not memory-bound
        ]
        obs = table1_observations(rows)
        assert obs == {
            "table1.memory_fraction.health": 55.0,
            "table1.lds_miss_fraction.health": 92.0,
        }

    def test_evaluate_skips_or_flags_missing(self):
        obs = {"figure5.speedup.software": 14.0}
        rows = evaluate_targets(obs, targets=FIGURE5_TARGETS)
        assert len(rows) == 1 and rows[0]["ok"]
        rows = evaluate_targets(obs, targets=FIGURE5_TARGETS,
                                skip_missing=False)
        assert len(rows) == len(FIGURE5_TARGETS)
        assert sum(1 for r in rows if r["ok"]) == 1

    def test_out_of_band_observation_fails(self):
        obs = {"figure5.speedup.software": -3.0}  # a slowdown
        (row,) = evaluate_targets(obs, targets=FIGURE5_TARGETS)
        assert not row["ok"]


class TestGoldenGate:
    def test_golden_file_loads(self):
        golden = load_golden()
        assert DEFAULT_GOLDEN.exists() and golden

    def test_fidelity_gate_zero_drift(self):
        # The pinned cells must reproduce bit-exactly on this tree.
        assert fidelity_gate() == []

    def test_fidelity_gate_reports_named_drift(self, tmp_path):
        golden = load_golden()
        label = sorted(golden)[0]
        scheme = sorted(golden[label]["schemes"])[0]
        golden[label]["schemes"][scheme]["cycles"] += 100
        doctored = tmp_path / "golden.json"
        doctored.write_text(json.dumps(golden))
        drift = fidelity_gate(doctored)
        assert len(drift) == 1
        (row,) = drift
        assert row["cell"] == label and row["scheme"] == scheme
        assert row["metric"] == "cycles" and not row["ok"]
        assert row["drift"].startswith("-100")

    def test_differential_check_sampled(self, tmp_path):
        # One golden entry, full-stats sample on: both paths must agree.
        golden = load_golden()
        label = "treeadd"
        subset = {label: golden[label]}
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(subset))
        rows = differential_check(path, full_stats_sample=1)
        assert rows and all(r["ok"] for r in rows)
        assert any(r["mode"] == "stream+stats" for r in rows)
