"""JPP framework: idioms, implementations, interval rule, characterization."""

import pytest

from repro import Idiom, recommended_interval
from repro.core import COOPERATIVE, HARDWARE, IMPLEMENTATIONS, SOFTWARE
from repro.core.characterization import CharacterizationRow


class TestIdioms:
    def test_all_four_idioms(self):
        assert {i.value for i in Idiom} == {"queue", "full", "chain", "root"}

    def test_chained_prefetch_usage(self):
        assert Idiom.CHAIN.uses_chained_prefetches
        assert Idiom.ROOT.uses_chained_prefetches
        assert not Idiom.QUEUE.uses_chained_prefetches
        assert not Idiom.FULL.uses_chained_prefetches

    def test_storage_cost(self):
        assert Idiom.FULL.jump_pointers_per_node == 2
        assert Idiom.CHAIN.jump_pointers_per_node == 1
        assert Idiom.QUEUE.jump_pointers_per_node == 1
        assert Idiom.ROOT.jump_pointers_per_node == 0

    def test_per_structure_storage_cost(self):
        # ROOT's single jump-pointer is per structure, not per node —
        # the two accessors partition the storage cost between them.
        assert Idiom.ROOT.jump_pointers_per_structure == 1
        for idiom in (Idiom.QUEUE, Idiom.FULL, Idiom.CHAIN):
            assert idiom.jump_pointers_per_structure == 0
            assert idiom.jump_pointers_per_node >= 1

    def test_every_idiom_has_some_storage(self):
        for idiom in Idiom:
            total = (idiom.jump_pointers_per_node
                     + idiom.jump_pointers_per_structure)
            assert total >= 1


class TestImplementations:
    def test_division_of_labour(self):
        assert not SOFTWARE.jump_prefetch_in_hardware
        assert not SOFTWARE.chained_prefetch_in_hardware
        assert not COOPERATIVE.jump_prefetch_in_hardware
        assert COOPERATIVE.chained_prefetch_in_hardware
        assert HARDWARE.jump_prefetch_in_hardware
        assert HARDWARE.chained_prefetch_in_hardware

    def test_registry(self):
        assert set(IMPLEMENTATIONS) == {"software", "cooperative", "hardware"}


class TestIntervalRule:
    def test_paper_example(self):
        # Section 2.1: 10 cycles of work, 40-cycle access -> 4 nodes ahead
        assert recommended_interval(10, 40) == 4

    def test_chain_jumping_doubles(self):
        # Section 2.2: full jumping at 2, chain jumping (serial hops) at 4
        assert recommended_interval(10, 20, serial_hops=1) == 2
        assert recommended_interval(10, 20, serial_hops=2) == 4

    def test_minimum_one(self):
        assert recommended_interval(100, 1) == 1

    def test_rejects_zero_work(self):
        with pytest.raises(ValueError):
            recommended_interval(0, 40)


class TestCharacterization:
    def test_row_as_dict_keys(self):
        row = CharacterizationRow(
            name="x", instructions=10, loads=5, lds_load_fraction=0.5,
            l1d_miss_ratio=0.1, lds_miss_fraction=0.9, miss_parallelism=1.5,
            memory_fraction=0.6, structure="list", idioms=("queue",),
        )
        d = row.as_dict()
        assert d["benchmark"] == "x"
        assert d["%lds loads"] == 50.0
        assert d["idioms"] == "queue"

    def test_characterize_small_workload(self):
        from repro import get_workload, small_config
        from repro.core import characterize
        from repro.workloads import workload_class

        w = get_workload("treeadd", **workload_class("treeadd").test_params())
        built = w.build("baseline")
        row, result = characterize(
            "treeadd", built.program, small_config(),
            structure=w.structure, idioms=w.idioms,
        )
        assert 0.0 <= row.lds_load_fraction <= 1.0
        assert 0.0 <= row.l1d_miss_ratio <= 1.0
        assert 0.0 <= row.memory_fraction < 1.0
        assert row.miss_parallelism >= 0.0
        assert result.instructions == row.instructions
