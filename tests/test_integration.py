"""Cross-module integration: paper-shape invariants at reduced scale.

These run medium-size workloads (bigger than unit-test params, smaller
than the bench defaults) and assert the *relationships* the paper's
evaluation is built on.
"""

import pytest

from repro import get_workload, simulate, simulate_decomposed, small_config
from repro.config import CacheConfig, MachineConfig


@pytest.fixture(scope="module")
def cfg():
    # small caches so medium workloads still miss
    return MachineConfig(
        il1=CacheConfig(size=4 * 1024, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=2 * 1024, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=8 * 1024, line=64, assoc=4, latency=12),
    )


@pytest.fixture(scope="module")
def treeadd_runs(cfg):
    w = get_workload("treeadd", levels=9, passes=4, interval=8)
    out = {}
    base_prog = w.build("baseline").program
    out["base"] = simulate_decomposed(base_prog, cfg, engine="none")
    out["sw"] = simulate_decomposed(w.build("sw:queue").program, cfg, engine="software")
    out["coop"] = simulate_decomposed(
        w.build("coop:queue").program, cfg, engine="cooperative"
    )
    out["hw"] = simulate_decomposed(base_prog, cfg, engine="hardware")
    out["dbp"] = simulate_decomposed(base_prog, cfg, engine="dbp")
    return out


class TestTreeaddShapes:
    def test_baseline_memory_bound(self, treeadd_runs):
        __, dec = treeadd_runs["base"]
        assert dec.memory_fraction > 0.5

    def test_every_jpp_scheme_beats_baseline(self, treeadd_runs):
        base_total = treeadd_runs["base"][1].total
        for scheme in ("sw", "coop", "hw"):
            assert treeadd_runs[scheme][1].total < base_total, scheme

    def test_jpp_beats_dbp(self, treeadd_runs):
        dbp_total = treeadd_runs["dbp"][1].total
        assert treeadd_runs["sw"][1].total < dbp_total
        assert treeadd_runs["coop"][1].total < dbp_total

    def test_software_overhead_visible_in_compute(self, treeadd_runs):
        # jump-pointer creation + prefetch instructions cost compute time
        assert treeadd_runs["sw"][1].compute > treeadd_runs["base"][1].compute

    def test_hardware_has_no_compute_overhead(self, treeadd_runs):
        assert treeadd_runs["hw"][1].compute == treeadd_runs["base"][1].compute

    def test_memory_stall_reductions(self, treeadd_runs):
        base_mem = treeadd_runs["base"][1].memory
        for scheme in ("sw", "coop", "hw"):
            assert treeadd_runs[scheme][1].memory < base_mem, scheme


class TestComputeBoundIsLeftAlone:
    def test_power_hardware_harmless(self, cfg):
        w = get_workload("power", laterals=6, branches=4, leaves=3,
                         iterations=3, interval=8)
        base_prog = w.build("baseline").program
        base = simulate(base_prog, cfg)
        hw = simulate(base_prog, cfg, engine="hardware")
        assert hw.cycles <= base.cycles * 1.02

    def test_power_software_overhead_shows(self, cfg):
        w = get_workload("power", laterals=6, branches=4, leaves=3,
                         iterations=3, interval=8)
        base = simulate(w.build("baseline").program, cfg)
        sw = simulate(w.build("sw:queue").program, cfg, engine="software")
        assert sw.instructions > base.instructions


class TestLatencyScaling:
    def test_dbp_effectiveness_shrinks_with_latency(self, cfg):
        w = get_workload("health", levels=3, branching=4, npat=6,
                         iterations=8, interval=8)
        base_prog = w.build("baseline").program
        cuts = {}
        for latency in (70, 280):
            c = cfg.with_memory_latency(latency)
            base = simulate(base_prog, c)
            base_perfect = simulate(base_prog, c.perfect())
            dbp = simulate(base_prog, c, engine="dbp")
            base_mem = base.cycles - base_perfect.cycles
            cuts[latency] = (base.cycles - dbp.cycles) / max(1, base_mem)
        assert cuts[280] <= cuts[70] + 0.05

    def test_baseline_slows_superlinearly(self, cfg):
        w = get_workload("health", levels=3, branching=4, npat=6,
                         iterations=8, interval=8)
        prog = w.build("baseline").program
        t70 = simulate(prog, cfg.with_memory_latency(70)).cycles
        t280 = simulate(prog, cfg.with_memory_latency(280)).cycles
        # the 4x-latency run is much slower (the scaled-down kernel keeps
        # part of its footprint cache-resident, so the paper's full 2.5x
        # appears only at bench scale — see benchmarks/test_figure7)
        assert t280 > 1.4 * t70


class TestBandwidthAccounting:
    def test_prefetching_moves_more_bytes(self, cfg):
        w = get_workload("treeadd", levels=9, passes=2, interval=8)
        prog = w.build("baseline").program
        base = simulate(prog, cfg)
        hw = simulate(prog, cfg, engine="hardware")
        assert hw.hierarchy.bytes_l1_l2 >= base.hierarchy.bytes_l1_l2

    def test_bytes_conservation(self, cfg):
        w = get_workload("treeadd", levels=8, passes=1, interval=8)
        res = simulate(w.build("baseline").program, cfg)
        # every byte from memory crosses the L2 bus at some point:
        # L1<->L2 traffic is nonzero whenever memory traffic is
        assert res.hierarchy.bytes_l1_l2 > 0
        assert res.hierarchy.bytes_l2_mem > 0
