"""Text-table reporting."""

from repro.harness import format_table, normalized_bar


def test_format_table_alignment():
    rows = [
        {"name": "alpha", "value": 1.0},
        {"name": "b", "value": 123.456},
    ]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "123.456" in lines[4]
    # column alignment: 'value' column starts at the same offset everywhere
    col = lines[1].index("value")
    assert lines[3][col - 1] == " "


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="X").startswith("X")


def test_float_formatting():
    text = format_table([{"x": 0.123456}])
    assert "0.123" in text


def test_ragged_rows_keep_all_columns():
    rows = [
        {"a": 1, "b": 2},
        {"a": 3, "c": 4},   # extra key 'c', missing 'b'
        {"c": 5, "d": 6},
    ]
    text = format_table(rows)
    header = text.splitlines()[0]
    # union of keys in first-seen order
    assert header.split() == ["a", "b", "c", "d"]
    assert "4" in text and "6" in text  # no data silently dropped


def test_normalized_bar():
    assert normalized_bar(1.0, scale=10) == "#" * 10
    assert normalized_bar(0.5, scale=10) == "#" * 5
    assert normalized_bar(0.0) == ""
    assert len(normalized_bar(100.0, scale=10)) == 20  # clamped
