"""Size-class allocator: classes, alignment, padding, jump slots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionError
from repro.isa.program import HEAP_BASE
from repro.mem.allocator import (
    MAX_CLASS,
    MIN_CLASS,
    SizeClassAllocator,
    jump_slot,
    padding_bytes,
    size_class,
)


class TestSizeClass:
    @pytest.mark.parametrize(
        "size,expected",
        [(1, 8), (8, 8), (9, 16), (12, 16), (16, 16), (17, 32), (20, 32),
         (32, 32), (33, 64), (64, 64), (100, 128)],
    )
    def test_rounding(self, size, expected):
        assert size_class(size) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ExecutionError):
            size_class(0)

    @pytest.mark.parametrize("size,pad", [(12, 4), (16, 0), (20, 12), (8, 0)])
    def test_padding(self, size, pad):
        assert padding_bytes(size) == pad


class TestJumpSlot:
    def test_last_word_of_block(self):
        # 16-byte block at 0x100: slot is 0x10C regardless of interior addr
        assert jump_slot(0x100, 16) == 0x10C
        assert jump_slot(0x104, 16) == 0x10C
        assert jump_slot(0x108, 16) == 0x10C

    def test_32_byte_class(self):
        assert jump_slot(0x2000_0044, 32) == 0x2000_005C


class TestAllocator:
    def test_blocks_are_class_aligned(self):
        alloc = SizeClassAllocator(HEAP_BASE)
        for size in (1, 5, 12, 20, 40, 100):
            addr = alloc.alloc(size)
            assert addr % size_class(size) == 0

    def test_same_class_blocks_are_adjacent(self):
        alloc = SizeClassAllocator(HEAP_BASE)
        a1 = alloc.alloc(12)
        a2 = alloc.alloc(12)
        assert a2 - a1 == 16

    def test_class_of_and_block_base(self):
        alloc = SizeClassAllocator(HEAP_BASE)
        addr = alloc.alloc(20)  # class 32
        assert alloc.class_of(addr) == 32
        assert alloc.class_of(addr + 8) == 32
        assert alloc.block_base(addr + 8) == addr
        assert alloc.class_of(HEAP_BASE - 4) is None

    def test_stats(self):
        alloc = SizeClassAllocator(HEAP_BASE)
        alloc.alloc(12)
        alloc.alloc(12)
        alloc.alloc(30)
        st_ = alloc.stats
        assert st_.allocations == 3
        assert st_.requested_bytes == 54
        assert st_.allocated_bytes == 16 + 16 + 32
        assert st_.per_class == {16: 2, 32: 1}
        assert 0 < st_.padding_fraction < 1

    def test_rejects_unaligned_heap_base(self):
        with pytest.raises(ExecutionError):
            SizeClassAllocator(HEAP_BASE + 4)

    def test_rejects_oversize(self):
        alloc = SizeClassAllocator(HEAP_BASE)
        with pytest.raises(ExecutionError):
            alloc.alloc(MAX_CLASS + 1)

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_blocks_never_overlap(self, sizes):
        alloc = SizeClassAllocator(HEAP_BASE)
        blocks = []
        for size in sizes:
            addr = alloc.alloc(size)
            blocks.append((addr, addr + size_class(size)))
        blocks.sort()
        for (s1, e1), (s2, __) in zip(blocks, blocks[1:]):
            assert e1 <= s2

    @given(st.integers(min_value=1, max_value=60000))
    @settings(max_examples=100, deadline=None)
    def test_jump_slot_inside_block(self, size):
        alloc = SizeClassAllocator(HEAP_BASE)
        addr = alloc.alloc(size)
        klass = size_class(size)
        slot = jump_slot(addr + 4 * ((size - 1) // 4), klass)
        assert addr <= slot < addr + klass
        assert slot == addr + klass - 4

    def test_min_class_floor(self):
        assert size_class(1) == MIN_CLASS
