"""Jump Queue Table and jump-pointer storage."""

from repro.config import PrefetchConfig
from repro.mem.memory_image import MemoryImage
from repro.prefetch.jqt import JumpPointerStorage, JumpQueueTable


def make_jqt(entries=4, interval=4):
    return JumpQueueTable(PrefetchConfig(jqt_entries=entries, jump_interval=interval))


class TestJumpQueueTable:
    def test_home_is_interval_back(self):
        jqt = make_jqt(interval=4)
        addrs = [0x1000 + 16 * i for i in range(10)]
        homes = [jqt.advance(7, a) for a in addrs]
        # first `interval` advances only fill the queue
        assert homes[:4] == [None] * 4
        # afterwards, home(i) == addr(i - interval)
        for i in range(4, 10):
            assert homes[i] == addrs[i - 4]

    def test_independent_queues_per_pc(self):
        jqt = make_jqt(interval=2)
        jqt.advance(1, 0x100)
        jqt.advance(2, 0x900)
        jqt.advance(1, 0x110)
        assert jqt.advance(1, 0x120) == 0x100
        jqt.advance(2, 0x910)
        assert jqt.advance(2, 0x920) == 0x900

    def test_entry_eviction_lru(self):
        jqt = make_jqt(entries=2, interval=2)
        jqt.advance(1, 0x100)
        jqt.advance(2, 0x200)
        jqt.advance(1, 0x110)   # refresh pc 1
        jqt.advance(3, 0x300)   # evicts pc 2
        assert jqt.stats.entry_evictions == 1
        # pc 2's queue restarted from scratch
        jqt.advance(2, 0x210)
        assert jqt.advance(2, 0x220) is None

    def test_install_stats(self):
        jqt = make_jqt(interval=2)
        for i in range(5):
            jqt.advance(1, 0x100 + 16 * i)
        assert jqt.stats.installs == 3


class TestPaddingStorage:
    def test_store_then_load_roundtrip(self):
        storage = JumpPointerStorage(PrefetchConfig())
        mem = MemoryImage()
        home = 0x2000_0010  # inside a 16-byte block at 0x2000_0010
        slot = storage.store(mem, home, 16, 0x2000_0400)
        assert slot == 0x2000_001C
        assert storage.load(mem, home + 4, 16) == 0x2000_0400

    def test_no_padding_no_store(self):
        storage = JumpPointerStorage(PrefetchConfig())
        assert storage.store(MemoryImage(), 0x2000_0000, 0, 0x99) is None
        assert storage.load(MemoryImage(), 0x2000_0000, 0) is None

    def test_empty_slot_loads_none(self):
        storage = JumpPointerStorage(PrefetchConfig())
        assert storage.load(MemoryImage(), 0x2000_0010, 16) is None


class TestOnChipStorage:
    def test_roundtrip(self):
        storage = JumpPointerStorage(PrefetchConfig(onchip_table_entries=8))
        assert storage.onchip
        mem = MemoryImage()
        assert storage.store(mem, 0x100, 16, 0x500) is None  # no memory write
        assert storage.load(mem, 0x100, 16) == 0x500
        assert len(mem) == 0

    def test_capacity_eviction(self):
        storage = JumpPointerStorage(PrefetchConfig(onchip_table_entries=2))
        mem = MemoryImage()
        storage.store(mem, 0x100, 16, 1)
        storage.store(mem, 0x200, 16, 2)
        storage.load(mem, 0x100, 16)      # refresh
        storage.store(mem, 0x300, 16, 3)  # evicts 0x200
        assert storage.load(mem, 0x100, 16) == 1
        assert storage.load(mem, 0x200, 16) is None
        assert storage.load(mem, 0x300, 16) == 3
