"""Metric registry: counters and histogram bucketing edge cases."""

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricRegistry,
    exponential_buckets,
    linear_buckets,
)


class TestBucketHelpers:
    def test_exponential(self):
        assert exponential_buckets(1, 2, 5) == [1, 2, 4, 8, 16]

    def test_linear(self):
        assert linear_buckets(0, 1, 4) == [0, 1, 2, 3]


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.to_dict() == {"type": "counter", "value": 6}


class TestHistogram:
    def test_value_on_bound_lands_in_that_bucket(self):
        h = Histogram("h", [10, 20, 30])
        h.observe(10)   # == first bound: first bucket ("le" semantics)
        h.observe(20)
        assert h.counts == [1, 1, 0, 0]

    def test_value_below_first_bound(self):
        h = Histogram("h", [10, 20])
        h.observe(0)
        h.observe(-5)
        assert h.counts[0] == 2

    def test_overflow_bucket(self):
        h = Histogram("h", [10, 20])
        h.observe(21)
        h.observe(10**9)
        assert h.counts == [0, 0, 2]
        d = h.to_dict()
        assert d["buckets"][-1] == {"le": None, "count": 2}

    def test_just_past_bound_goes_to_next_bucket(self):
        h = Histogram("h", [10, 20])
        h.observe(11)
        assert h.counts == [0, 1, 0]

    def test_count_sum_min_max_mean(self):
        h = Histogram("h", [100])
        for v in (5, 15, 40):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 60
        assert h.min == 5 and h.max == 40
        assert h.mean == 20.0

    def test_empty_mean_and_serialization(self):
        h = Histogram("h", [1])
        assert h.mean == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None

    def test_bucket_of(self):
        h = Histogram("h", [10, 20])
        assert h.bucket_of(10) == 0
        assert h.bucket_of(10.5) == 1
        assert h.bucket_of(9999) == 2

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", [20, 10])
        with pytest.raises(ValueError):
            Histogram("h", [])


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("c")
        b = reg.counter("c")
        assert a is b
        h1 = reg.histogram("h", [1, 2])
        h2 = reg.histogram("h", [9, 99])  # bounds of first registration win
        assert h1 is h2 and h1.bounds == [1, 2]

    def test_type_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x", [1])
        reg.histogram("y", [1])
        with pytest.raises(ValueError):
            reg.counter("y")

    def test_lookup_and_dump(self):
        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.histogram("a", [1]).observe(0)
        assert "a" in reg and reg.get("nope") is None
        assert reg.names() == ["a", "b"]
        d = reg.to_dict()
        assert d["b"]["value"] == 2
        assert d["a"]["type"] == "histogram"


class TestFloatBounds:
    def test_float_buckets_observe_and_bucket(self):
        h = Histogram("h", [0.5, 1.0, 2.5])
        h.observe(0.5)
        h.observe(1.7)
        h.observe(3.0)
        assert h.counts == [1, 0, 1, 1]
        assert h.bucket_of(0.75) == 1

    def test_mixed_int_float_bounds(self):
        h = Histogram("h", [1, 2.5, 10])
        h.observe(2.5)
        assert h.counts == [0, 1, 0, 0]
        assert h.sum == 2.5 and h.mean == 2.5

    def test_exact_duplicate_across_types_rejected(self):
        # 1 and 1.0 compare equal: not strictly ascending.
        with pytest.raises(ValueError):
            Histogram("h", [1, 1.0, 2])

    def test_equal_adjacent_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", [0.5, 0.5])

    def test_exponential_float_buckets(self):
        assert exponential_buckets(0.5, 2.0, 3) == [0.5, 1.0, 2.0]

    def test_exponential_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            exponential_buckets(0, 2, 3)      # start must be positive
        with pytest.raises(ValueError):
            exponential_buckets(-1.0, 2, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1, 1, 3)      # factor must grow
        with pytest.raises(ValueError):
            exponential_buckets(1, 0.5, 3)

    def test_exponential_integer_inputs_stay_exact_ints(self):
        bounds = exponential_buckets(1, 2, 40)
        assert all(isinstance(b, int) for b in bounds)
        assert bounds[-1] == 2 ** 39  # no float precision loss

    def test_serde_round_trip_with_float_bounds(self):
        import json

        h = Histogram("lat", [0.5, 1.0, 2.0])
        for v in (0.25, 0.75, 5.0):
            h.observe(v)
        d = json.loads(json.dumps(h.to_dict()))
        assert d["count"] == 3 and d["sum"] == 6.0
        assert d["min"] == 0.25 and d["max"] == 5.0
        assert [b["le"] for b in d["buckets"]] == [0.5, 1.0, 2.0, None]
        assert [b["count"] for b in d["buckets"]] == [1, 1, 0, 1]
