"""Metric registry: counters and histogram bucketing edge cases."""

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricRegistry,
    exponential_buckets,
    linear_buckets,
)


class TestBucketHelpers:
    def test_exponential(self):
        assert exponential_buckets(1, 2, 5) == [1, 2, 4, 8, 16]

    def test_linear(self):
        assert linear_buckets(0, 1, 4) == [0, 1, 2, 3]


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.to_dict() == {"type": "counter", "value": 6}


class TestHistogram:
    def test_value_on_bound_lands_in_that_bucket(self):
        h = Histogram("h", [10, 20, 30])
        h.observe(10)   # == first bound: first bucket ("le" semantics)
        h.observe(20)
        assert h.counts == [1, 1, 0, 0]

    def test_value_below_first_bound(self):
        h = Histogram("h", [10, 20])
        h.observe(0)
        h.observe(-5)
        assert h.counts[0] == 2

    def test_overflow_bucket(self):
        h = Histogram("h", [10, 20])
        h.observe(21)
        h.observe(10**9)
        assert h.counts == [0, 0, 2]
        d = h.to_dict()
        assert d["buckets"][-1] == {"le": None, "count": 2}

    def test_just_past_bound_goes_to_next_bucket(self):
        h = Histogram("h", [10, 20])
        h.observe(11)
        assert h.counts == [0, 1, 0]

    def test_count_sum_min_max_mean(self):
        h = Histogram("h", [100])
        for v in (5, 15, 40):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 60
        assert h.min == 5 and h.max == 40
        assert h.mean == 20.0

    def test_empty_mean_and_serialization(self):
        h = Histogram("h", [1])
        assert h.mean == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None

    def test_bucket_of(self):
        h = Histogram("h", [10, 20])
        assert h.bucket_of(10) == 0
        assert h.bucket_of(10.5) == 1
        assert h.bucket_of(9999) == 2

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", [20, 10])
        with pytest.raises(ValueError):
            Histogram("h", [])


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("c")
        b = reg.counter("c")
        assert a is b
        h1 = reg.histogram("h", [1, 2])
        h2 = reg.histogram("h", [9, 99])  # bounds of first registration win
        assert h1 is h2 and h1.bounds == [1, 2]

    def test_type_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x", [1])
        reg.histogram("y", [1])
        with pytest.raises(ValueError):
            reg.counter("y")

    def test_lookup_and_dump(self):
        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.histogram("a", [1]).observe(0)
        assert "a" in reg and reg.get("nope") is None
        assert reg.names() == ["a", "b"]
        d = reg.to_dict()
        assert d["b"]["value"] == 2
        assert d["a"]["type"] == "histogram"


class TestFloatBounds:
    def test_float_buckets_observe_and_bucket(self):
        h = Histogram("h", [0.5, 1.0, 2.5])
        h.observe(0.5)
        h.observe(1.7)
        h.observe(3.0)
        assert h.counts == [1, 0, 1, 1]
        assert h.bucket_of(0.75) == 1

    def test_mixed_int_float_bounds(self):
        h = Histogram("h", [1, 2.5, 10])
        h.observe(2.5)
        assert h.counts == [0, 1, 0, 0]
        assert h.sum == 2.5 and h.mean == 2.5

    def test_exact_duplicate_across_types_rejected(self):
        # 1 and 1.0 compare equal: not strictly ascending.
        with pytest.raises(ValueError):
            Histogram("h", [1, 1.0, 2])

    def test_equal_adjacent_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", [0.5, 0.5])

    def test_exponential_float_buckets(self):
        assert exponential_buckets(0.5, 2.0, 3) == [0.5, 1.0, 2.0]

    def test_exponential_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            exponential_buckets(0, 2, 3)      # start must be positive
        with pytest.raises(ValueError):
            exponential_buckets(-1.0, 2, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1, 1, 3)      # factor must grow
        with pytest.raises(ValueError):
            exponential_buckets(1, 0.5, 3)

    def test_exponential_integer_inputs_stay_exact_ints(self):
        bounds = exponential_buckets(1, 2, 40)
        assert all(isinstance(b, int) for b in bounds)
        assert bounds[-1] == 2 ** 39  # no float precision loss

    def test_serde_round_trip_with_float_bounds(self):
        import json

        h = Histogram("lat", [0.5, 1.0, 2.0])
        for v in (0.25, 0.75, 5.0):
            h.observe(v)
        d = json.loads(json.dumps(h.to_dict()))
        assert d["count"] == 3 and d["sum"] == 6.0
        assert d["min"] == 0.25 and d["max"] == 5.0
        assert [b["le"] for b in d["buckets"]] == [0.5, 1.0, 2.0, None]
        assert [b["count"] for b in d["buckets"]] == [1, 1, 0, 1]


class TestPercentile:
    def test_empty_histogram_answers_none(self):
        h = Histogram("h", [10, 20])
        assert h.percentile(0.5) is None
        s = h.summary()
        assert s["count"] == 0
        assert s["p50"] is None and s["p90"] is None and s["p99"] is None

    def test_rejects_out_of_range_q(self):
        h = Histogram("h", [10])
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_single_value_answers_exactly(self):
        # Every quantile of a one-observation histogram is that value,
        # even though the bucket bound (10) is coarser.
        h = Histogram("h", [10, 20])
        h.observe(7)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert h.percentile(q) == 7

    def test_single_bucket_clamps_to_observed_range(self):
        h = Histogram("h", [100])
        for v in (30, 40, 50):
            h.observe(v)
        # All mass in bucket <=100; the answer clamps to max=50, not 100.
        assert h.percentile(0.5) == 50
        assert h.percentile(0.99) == 50

    def test_overflow_bucket_answers_max_not_infinity(self):
        h = Histogram("h", [10])
        h.observe(5)
        h.observe(9999)
        assert h.percentile(0.99) == 9999
        assert h.percentile(0.5) == 10  # first bucket's upper bound

    def test_extreme_q_are_exact_min_max(self):
        h = Histogram("h", [10, 20, 30])
        for v in (3, 14, 27):
            h.observe(v)
        assert h.percentile(0.0) == 3
        assert h.percentile(1.0) == 27

    def test_bucket_walk_picks_correct_bound(self):
        h = Histogram("h", [10, 20, 30])
        for v in (1, 1, 1, 15, 25):
            h.observe(v)
        assert h.percentile(0.5) == 10   # rank 3 of 5 in first bucket
        assert h.percentile(0.8) == 20   # rank 4 in second bucket
        assert h.percentile(1.0) == 25   # exact max

    def test_summary_fields(self):
        h = Histogram("h", [10, 100])
        for v in (2, 4, 60):
            h.observe(v)
        s = h.summary()
        assert s == {
            "count": 3, "sum": 66, "mean": 22.0, "min": 2, "max": 60,
            "p50": 10, "p90": 60, "p99": 60,
        }

    def test_percentile_from_dict_matches_live(self):
        from repro.obs.metrics import percentile_from_dict

        h = Histogram("h", [10, 20, 30])
        for v in (3, 14, 27, 500):
            h.observe(v)
        d = h.to_dict()
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert percentile_from_dict(d, q) == h.percentile(q)

    def test_percentile_from_dict_empty_and_range(self):
        from repro.obs.metrics import percentile_from_dict

        d = Histogram("h", [10]).to_dict()
        assert percentile_from_dict(d, 0.5) is None
        with pytest.raises(ValueError):
            percentile_from_dict(d, 2.0)
