"""Machine configuration validation and derived quantities."""

import pytest

from repro import ConfigError, MachineConfig, bench_config, small_config, table2_config
from repro.config import BusConfig, CacheConfig, TLBConfig


class TestCacheConfig:
    def test_sets_derived(self):
        c = CacheConfig(size=64 * 1024, line=32, assoc=2, latency=1)
        assert c.sets == 1024

    def test_direct_mapped(self):
        c = CacheConfig(size=1024, line=32, assoc=1, latency=1)
        assert c.sets == 32

    def test_fully_associative(self):
        c = CacheConfig(size=2048, line=32, assoc=64, latency=1)
        assert c.sets == 1

    @pytest.mark.parametrize("size", [0, -1, 100, 3000])
    def test_rejects_non_power_of_two_size(self, size):
        with pytest.raises(ConfigError):
            CacheConfig(size=size, line=32, assoc=2, latency=1)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=24, assoc=2, latency=1)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=0, latency=1)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=64, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=2, latency=-1)


class TestBusConfig:
    def test_full_line_transfer(self):
        bus = BusConfig(width=8, clock_divisor=2)
        assert bus.cycles_for(32) == 8  # 4 beats at 2 core cycles each

    def test_partial_beat_rounds_up(self):
        bus = BusConfig(width=8, clock_divisor=4)
        assert bus.cycles_for(4) == 4

    def test_memory_bus_line(self):
        bus = BusConfig(width=8, clock_divisor=4)
        assert bus.cycles_for(64) == 32


class TestTLBConfig:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=0)

    def test_rejects_bad_page(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=16, page_size=1000)


class TestMachineConfig:
    def test_table2_defaults(self):
        cfg = table2_config()
        assert cfg.dl1.size == 64 * 1024
        assert cfg.dl1.line == 32
        assert cfg.l2.size == 512 * 1024
        assert cfg.l2.latency == 12
        assert cfg.memory_latency == 70
        assert cfg.max_outstanding_misses == 8
        assert cfg.window == 64
        assert cfg.lsq_entries == 32
        assert cfg.fetch_width == cfg.issue_width == cfg.commit_width == 4
        assert cfg.dtlb.entries == 32
        assert cfg.itlb.entries == 16
        assert cfg.prefetch.jqt_entries == 32
        assert cfg.prefetch.jump_interval == 8
        assert cfg.prefetch.prq_entries == 8
        assert cfg.prefetch.prefetch_buffer.size == 2048

    def test_with_memory_latency(self):
        cfg = MachineConfig().with_memory_latency(280)
        assert cfg.memory_latency == 280
        assert MachineConfig().memory_latency == 70  # original untouched

    def test_with_jump_interval(self):
        cfg = MachineConfig().with_jump_interval(16)
        assert cfg.prefetch.jump_interval == 16

    def test_perfect_flag(self):
        cfg = MachineConfig().perfect()
        assert cfg.perfect_data_memory
        assert not MachineConfig().perfect_data_memory

    def test_scaled_configs_keep_shape(self):
        for cfg in (small_config(), bench_config()):
            assert cfg.dl1.line == 32
            assert cfg.l2.line == 64
            assert cfg.l2.latency == 12
            assert cfg.memory_latency == 70
            assert cfg.dl1.size < cfg.l2.size or cfg is small_config()

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(Exception):
            cfg.memory_latency = 100  # type: ignore[misc]
