"""Machine configuration validation, serialization, and derived
quantities, plus the named machine registry."""

import json

import pytest

from repro import ConfigError, MachineConfig, bench_config, small_config, table2_config
from repro.config import (
    MACHINES,
    BusConfig,
    CacheConfig,
    FuncUnitConfig,
    TLBConfig,
    get_machine,
    machine_names,
    register_machine,
)


class TestCacheConfig:
    def test_sets_derived(self):
        c = CacheConfig(size=64 * 1024, line=32, assoc=2, latency=1)
        assert c.sets == 1024

    def test_direct_mapped(self):
        c = CacheConfig(size=1024, line=32, assoc=1, latency=1)
        assert c.sets == 32

    def test_fully_associative(self):
        c = CacheConfig(size=2048, line=32, assoc=64, latency=1)
        assert c.sets == 1

    @pytest.mark.parametrize("size", [0, -1, 100, 3000])
    def test_rejects_non_power_of_two_size(self, size):
        with pytest.raises(ConfigError):
            CacheConfig(size=size, line=32, assoc=2, latency=1)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=24, assoc=2, latency=1)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=0, latency=1)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=64, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(size=1024, line=32, assoc=2, latency=-1)


class TestBusConfig:
    def test_full_line_transfer(self):
        bus = BusConfig(width=8, clock_divisor=2)
        assert bus.cycles_for(32) == 8  # 4 beats at 2 core cycles each

    def test_partial_beat_rounds_up(self):
        bus = BusConfig(width=8, clock_divisor=4)
        assert bus.cycles_for(4) == 4

    def test_memory_bus_line(self):
        bus = BusConfig(width=8, clock_divisor=4)
        assert bus.cycles_for(64) == 32

    @pytest.mark.parametrize("width", [0, -8, 3, 12])
    def test_rejects_bad_width(self, width):
        # Must fail at construction with ConfigError, not surface later
        # as a ZeroDivisionError inside cycles_for().
        with pytest.raises(ConfigError):
            BusConfig(width=width)

    @pytest.mark.parametrize("divisor", [0, -2, 3])
    def test_rejects_bad_clock_divisor(self, divisor):
        with pytest.raises(ConfigError):
            BusConfig(clock_divisor=divisor)

    def test_rejects_bool_width(self):
        with pytest.raises(ConfigError):
            BusConfig(width=True)


class TestFuncUnitConfig:
    @pytest.mark.parametrize("field", ["int_alu", "mem_ports", "fp_add"])
    def test_rejects_nonpositive_counts(self, field):
        with pytest.raises(ConfigError):
            FuncUnitConfig(**{field: 0})

    @pytest.mark.parametrize("field", ["int_div_latency", "fp_mul_latency"])
    def test_rejects_nonpositive_latencies(self, field):
        with pytest.raises(ConfigError):
            FuncUnitConfig(**{field: -1})


class TestTLBConfig:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=0)

    def test_rejects_bad_page(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=16, page_size=1000)

    def test_rejects_negative_miss_penalty(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=16, miss_penalty=-1)

    def test_zero_miss_penalty_allowed(self):
        assert TLBConfig(entries=16, miss_penalty=0).miss_penalty == 0


class TestMachineConfig:
    def test_table2_defaults(self):
        cfg = table2_config()
        assert cfg.dl1.size == 64 * 1024
        assert cfg.dl1.line == 32
        assert cfg.l2.size == 512 * 1024
        assert cfg.l2.latency == 12
        assert cfg.memory_latency == 70
        assert cfg.max_outstanding_misses == 8
        assert cfg.window == 64
        assert cfg.lsq_entries == 32
        assert cfg.fetch_width == cfg.issue_width == cfg.commit_width == 4
        assert cfg.dtlb.entries == 32
        assert cfg.itlb.entries == 16
        assert cfg.prefetch.jqt_entries == 32
        assert cfg.prefetch.jump_interval == 8
        assert cfg.prefetch.prq_entries == 8
        assert cfg.prefetch.prefetch_buffer.size == 2048

    def test_with_memory_latency(self):
        cfg = MachineConfig().with_memory_latency(280)
        assert cfg.memory_latency == 280
        assert MachineConfig().memory_latency == 70  # original untouched

    def test_with_jump_interval(self):
        cfg = MachineConfig().with_jump_interval(16)
        assert cfg.prefetch.jump_interval == 16

    def test_perfect_flag(self):
        cfg = MachineConfig().perfect()
        assert cfg.perfect_data_memory
        assert not MachineConfig().perfect_data_memory

    def test_scaled_configs_keep_shape(self):
        for cfg in (small_config(), bench_config()):
            assert cfg.dl1.line == 32
            assert cfg.l2.line == 64
            assert cfg.l2.latency == 12
            assert cfg.memory_latency == 70
            assert cfg.dl1.size < cfg.l2.size or cfg is small_config()

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(Exception):
            cfg.memory_latency = 100  # type: ignore[misc]


class TestSerde:
    def test_to_dict_round_trip(self):
        cfg = bench_config()
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        cfg = table2_config().with_jump_interval(16)
        back = MachineConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg

    def test_nested_configs_round_trip(self):
        d = bench_config().to_dict()
        assert d["dl1"]["size"] == bench_config().dl1.size
        assert d["prefetch"]["prefetch_buffer"]["line"] == 32

    def test_rejects_unknown_top_key(self):
        d = bench_config().to_dict()
        d["warp_drive"] = 9
        with pytest.raises(ConfigError, match="warp_drive"):
            MachineConfig.from_dict(d)

    def test_rejects_unknown_nested_key(self):
        d = bench_config().to_dict()
        d["prefetch"]["mystery"] = 1
        with pytest.raises(ConfigError, match="prefetch.mystery"):
            MachineConfig.from_dict(d)

    def test_rejects_wrong_leaf_type(self):
        d = bench_config().to_dict()
        d["memory_latency"] = "fast"
        with pytest.raises(ConfigError):
            MachineConfig.from_dict(d)

    def test_from_dict_validates(self):
        d = bench_config().to_dict()
        d["mem_bus"]["width"] = 12
        with pytest.raises(ConfigError):
            MachineConfig.from_dict(d)


class TestWithOverrides:
    def test_dotted_paths(self):
        cfg = bench_config().with_overrides({
            "memory_latency": 280,
            "prefetch.jump_interval": 4,
            "dl1.latency": 2,
        })
        assert cfg.memory_latency == 280
        assert cfg.prefetch.jump_interval == 4
        assert cfg.dl1.latency == 2
        assert bench_config().memory_latency == 70  # original untouched

    def test_matches_legacy_helpers(self):
        cfg = bench_config()
        assert cfg.with_overrides({"memory_latency": 280}) == \
            cfg.with_memory_latency(280)
        assert cfg.with_overrides({"prefetch.jump_interval": 16}) == \
            cfg.with_jump_interval(16)

    def test_rejects_unknown_path(self):
        with pytest.raises(ConfigError, match="no_such"):
            bench_config().with_overrides({"no_such.field": 1})

    def test_rejects_unknown_leaf(self):
        with pytest.raises(ConfigError):
            bench_config().with_overrides({"prefetch.bogus": 1})

    def test_rejects_type_mismatch(self):
        with pytest.raises(ConfigError):
            bench_config().with_overrides({"memory_latency": "slow"})

    def test_rejects_path_through_leaf(self):
        with pytest.raises(ConfigError):
            bench_config().with_overrides({"memory_latency.deeper": 1})

    def test_validation_applies(self):
        with pytest.raises(ConfigError):
            bench_config().with_overrides({"l2_bus.width": 0})


class TestMachineRegistry:
    def test_builtin_machines(self):
        assert machine_names() == ["table2", "bench", "small"]
        assert get_machine("bench") == bench_config()
        assert get_machine("table2") == table2_config()
        assert get_machine("small") == small_config()

    def test_fresh_instance_each_call(self):
        # Factories return new (equal) configs; no shared mutable state.
        assert get_machine("bench") is not get_machine("bench")

    def test_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            get_machine("cray")

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            register_machine("bench", bench_config)

    def test_register_and_unregister(self):
        register_machine("test-tiny", small_config)
        try:
            assert get_machine("test-tiny") == small_config()
        finally:
            MACHINES.unregister("test-tiny")
        assert "test-tiny" not in MACHINES
