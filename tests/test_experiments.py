"""Experiment harness on reduced sizes: structural invariants of every
table/figure generator."""

import pytest

from repro import small_config
from repro.harness import (
    SCHEMES,
    creation_overhead,
    figure4,
    figure5,
    figure5_summary,
    figure6,
    figure7,
    onchip_table_ablation,
    table1,
    traversal_count_sweep,
)
from repro.workloads import workload_class, workload_names

SMALL = {name: workload_class(name).test_params() for name in workload_names()}
FAST_SET = ("treeadd", "power")


@pytest.fixture(scope="module")
def cfg():
    return small_config()


class TestTable1:
    def test_rows_cover_benchmarks(self, cfg):
        rows = table1(cfg, benchmarks=FAST_SET, params=SMALL)
        assert [r["benchmark"] for r in rows] == list(FAST_SET)
        for r in rows:
            assert 0 <= r["%lds loads"] <= 100
            assert 0 <= r["L1 miss%"] <= 100
            assert r["insts"] > 0


class TestFigure4:
    def test_idiom_rows(self, cfg):
        rows = figure4(
            cfg, subjects={"health": ("queue", "root")}, params=SMALL
        )
        configs = {r["config"] for r in rows}
        assert {"base", "sw:queue", "sw:root", "coop:queue", "coop:root"} <= configs
        base = [r for r in rows if r["config"] == "base"][0]
        assert base["normalized"] == 1.0
        for r in rows:
            assert r["normalized"] > 0
            assert r["memory"] >= 0

    def test_unavailable_variants_skipped(self, cfg):
        rows = figure4(cfg, subjects={"treeadd": ("queue", "root")}, params=SMALL)
        configs = {r["config"] for r in rows}
        assert "sw:root" not in configs  # treeadd has no root variant
        assert "sw:queue" in configs


class TestFigure5:
    def test_all_schemes_per_benchmark(self, cfg):
        rows = figure5(cfg, benchmarks=FAST_SET, params=SMALL)
        assert len(rows) == len(FAST_SET) * len(SCHEMES)
        for r in rows:
            if r["scheme"] == "base":
                assert r["normalized"] == 1.0
            assert r["compute"] > 0

    def test_summary_shapes(self, cfg):
        rows = figure5(cfg, benchmarks=("treeadd",), params=SMALL)
        # patch benchmark set for summary computation
        summary = figure5_summary(
            [dict(r, benchmark="treeadd") for r in rows]
        )
        schemes = {s["scheme"] for s in summary}
        assert schemes == {"software", "cooperative", "hardware", "dbp"}


class TestFigure6:
    def test_bandwidth_rows(self, cfg):
        rows = figure6(cfg, benchmarks=("treeadd",), params=SMALL)
        assert len(rows) == len(SCHEMES)
        for r in rows:
            assert r["bytes/inst"] >= 0


class TestFigure7:
    def test_latency_interval_grid(self, cfg):
        rows = figure7(
            cfg, latencies=(70, 140), intervals=(4,),
            params=workload_class("health").test_params(),
        )
        assert len(rows) == 2 * 1 * len(SCHEMES)
        base70 = next(
            r for r in rows if r["latency"] == 70 and r["scheme"] == "base"
        )
        base140 = next(
            r for r in rows if r["latency"] == 140 and r["scheme"] == "base"
        )
        assert base140["total"] > base70["total"]  # latency hurts


class TestAblations:
    def test_onchip_table(self, cfg):
        rows = onchip_table_ablation(
            cfg, benchmarks=("treeadd",), table_entries=64, params=SMALL
        )
        assert rows[0]["benchmark"] == "treeadd"
        assert rows[0]["base"] > 0

    def test_creation_overhead_positive(self, cfg):
        rows = creation_overhead(cfg, benchmarks=("treeadd",), params=SMALL)
        assert rows[0]["creation overhead%"] > 0  # queue code costs compute

    def test_traversal_count_sweep(self, cfg):
        rows = traversal_count_sweep(
            cfg, passes=(1, 4), params=workload_class("treeadd").test_params()
        )
        assert [r["passes"] for r in rows] == [1, 4]
        # hardware JPP gains nothing on a single pass but does with four
        assert rows[0]["hardware"] >= rows[1]["hardware"] - 0.02
