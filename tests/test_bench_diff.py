"""Benchmark-report diffing and the ``repro bench-diff`` CLI gate."""

import json

import pytest

from repro.audit import (
    BenchRule,
    compare_benchmarks,
    flatten_report,
    regressions,
)

REPORT = {
    "schema": "repro.bench_pr2/1",  # non-numeric: not a metric leaf
    "single_runs": {
        "health/hardware": {
            "seconds": 2.0,
            "seed_seconds": 3.0,
            "cycles": 563314,
            "instructions": 314064,
            "sim_insts_per_sec": 157032,
            "speedup_vs_seed": 1.5,
        },
    },
    "sweep": {
        "benchmarks": ["treeadd"],  # list: not a metric leaf
        "cpu_count": 4,
        "cells": 24,
        "serial_seconds": 10.0,
        "jobs4_seconds": 4.0,
        "jobs4_scaling": 2.5,
        "warm_speedup": 100.0,
        "warm_cache_stats": {"hits": 24, "misses": 0, "writes": 0, "invalid": 0},
    },
}


def _mutated(**leaf_updates):
    doc = json.loads(json.dumps(REPORT))
    for path, value in leaf_updates.items():
        node = doc
        *parents, leaf = path.split(".")
        for p in parents:
            node = node[p]
        node[leaf] = value
    return doc


class TestFlatten:
    def test_numeric_leaves_only(self):
        flat = flatten_report(REPORT)
        assert flat["single_runs.health/hardware.cycles"] == 563314
        assert flat["sweep.warm_cache_stats.hits"] == 24
        assert "schema" not in flat
        assert "sweep.benchmarks" not in flat

    def test_bools_are_not_metrics(self):
        assert flatten_report({"ok": True, "n": 1}) == {"n": 1}


class TestRules:
    def test_identical_reports_all_ok(self):
        rows = compare_benchmarks(REPORT, REPORT)
        assert rows and all(r["ok"] for r in rows)
        assert regressions(rows) == []
        assert all(r["drift"] == 0 for r in rows)

    def test_exact_cycle_drift_flagged(self):
        cur = _mutated(**{"single_runs.health/hardware.cycles": 563315})
        bad = regressions(compare_benchmarks(REPORT, cur))
        assert [r["metric"] for r in bad] == [
            "single_runs.health/hardware.cycles"
        ]
        assert bad[0]["mode"] == "exact" and bad[0]["drift"] == 1

    def test_wall_clock_within_tolerance_passes(self):
        cur = _mutated(**{"sweep.serial_seconds": 11.0})  # +10%
        assert regressions(compare_benchmarks(REPORT, cur, tolerance=0.25)) == []

    def test_wall_clock_blowup_flagged(self):
        cur = _mutated(**{"sweep.serial_seconds": 20.0})  # 2x
        bad = regressions(compare_benchmarks(REPORT, cur, tolerance=0.25))
        assert [r["metric"] for r in bad] == ["sweep.serial_seconds"]
        assert bad[0]["mode"] == "lower"

    def test_wall_clock_improvement_always_passes(self):
        cur = _mutated(**{"sweep.serial_seconds": 0.1})
        assert regressions(compare_benchmarks(REPORT, cur)) == []

    def test_throughput_drop_flagged_rise_ok(self):
        slow = _mutated(**{"single_runs.health/hardware.sim_insts_per_sec": 1})
        bad = regressions(compare_benchmarks(REPORT, slow))
        assert [r["metric"] for r in bad] == [
            "single_runs.health/hardware.sim_insts_per_sec"
        ]
        fast = _mutated(
            **{"single_runs.health/hardware.sim_insts_per_sec": 10**9}
        )
        assert regressions(compare_benchmarks(REPORT, fast)) == []

    def test_info_leaves_never_gate(self):
        # seed_seconds matches the specific info rule before *seconds.
        cur = _mutated(**{
            "single_runs.health/hardware.seed_seconds": 9999.0,
            "sweep.cpu_count": 1,
        })
        rows = compare_benchmarks(REPORT, cur)
        assert regressions(rows) == []
        by = {r["metric"]: r for r in rows}
        assert by["single_runs.health/hardware.seed_seconds"]["mode"] == "info"
        assert by["sweep.serial_seconds"]["mode"] == "lower"

    def test_missing_metric_fails_unless_info(self):
        cur = json.loads(json.dumps(REPORT))
        del cur["single_runs"]["health/hardware"]["cycles"]
        del cur["sweep"]["cpu_count"]  # info: may vanish freely
        bad = regressions(compare_benchmarks(REPORT, cur))
        assert [r["metric"] for r in bad] == [
            "single_runs.health/hardware.cycles"
        ]
        assert bad[0]["band"] == "missing" and bad[0]["current"] is None

    def test_new_metric_is_informational(self):
        cur = _mutated(**{"sweep.cells": 24})
        cur["sweep"]["new_counter"] = 7
        rows = compare_benchmarks(REPORT, cur)
        assert regressions(rows) == []
        row = next(r for r in rows if r["metric"] == "sweep.new_counter")
        assert row["band"] == "new" and row["baseline"] is None

    def test_custom_rule_and_per_rule_tolerance(self):
        rules = (BenchRule("*seconds", "lower", tolerance=0.0),)
        cur = _mutated(**{"sweep.serial_seconds": 10.001})
        bad = regressions(compare_benchmarks(REPORT, cur, rules=rules))
        assert any(r["metric"] == "sweep.serial_seconds" for r in bad)

    def test_wildcard_rule_matching(self):
        rule = BenchRule("*seconds", "lower")
        assert rule.matches("serial_seconds")
        assert rule.matches("seconds")
        assert not rule.matches("second")
        exact = BenchRule("cycles", "exact")
        assert exact.matches("cycles") and not exact.matches("kilocycles")


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_reports_exit_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        base = self._write(tmp_path, "base.json", REPORT)
        cur = self._write(tmp_path, "cur.json", REPORT)
        rc = main(["bench-diff", base, cur])
        assert rc == 0
        assert "bench-diff OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.__main__ import main

        base = self._write(tmp_path, "base.json", REPORT)
        cur = self._write(
            tmp_path, "cur.json",
            _mutated(**{"single_runs.health/hardware.cycles": 1}),
        )
        out_path = tmp_path / "diff.json"
        rc = main(["bench-diff", base, cur, "-o", str(out_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench_diff/1"
        assert doc["regressions"] == 1

    def test_missing_current_is_usage_error(self, tmp_path):
        from repro.__main__ import main

        base = self._write(tmp_path, "base.json", REPORT)
        with pytest.raises(SystemExit):
            main(["bench-diff", base])

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bench-diff", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope2.json")])
