"""Program container and dynamic instruction stream."""

from repro import Assembler, Interpreter, Op
from repro.isa.registers import T0, T1, ZERO


def make_program():
    a = Assembler()
    w = a.word(7)
    a.label("main")
    a.li(T0, w)
    a.lw(T1, T0, 0)
    a.beq(T1, ZERO, "main")
    a.halt()
    return a.assemble("demo"), w


def test_program_metadata():
    p, __ = make_program()
    assert p.name == "demo"
    assert len(p) == p.static_size == 4
    assert p.entry == p.labels["main"] == 0
    assert p.label_of(0) == "main"
    assert p.label_of(3) is None


def test_dynamic_stream_contents():
    p, w = make_program()
    interp = Interpreter(p)
    records = list(interp.run())
    assert interp.finished
    ops = [r[0].op for r in records]
    assert ops == [Op.ADDI, Op.LW, Op.BEQ, Op.HALT]
    # the load record carries its address and value
    __, addr, value, __t = records[1]
    assert addr == w and value == 7
    # the (not-taken) branch record
    __, __a, __v, taken = records[2]
    assert taken is False


def test_taken_branch_records_target():
    a = Assembler()
    a.label("main")
    a.li(T0, 1)
    a.bne(T0, ZERO, "skip")
    a.li(T0, 2)
    a.label("skip")
    a.halt()
    records = list(Interpreter(a.assemble()).run())
    branch = records[1]
    assert branch[0].op == Op.BNE and branch[3] is True
    assert len(records) == 3  # li, bne, halt — the skipped li never runs


def test_jal_and_jr_record_targets():
    a = Assembler()
    a.label("main")
    a.jal("f")
    a.halt()
    a.label("f")
    a.ret()
    records = list(Interpreter(a.assemble()).run())
    assert records[0][0].op == Op.JAL
    assert records[1][0].op == Op.JR
    assert records[1][2] == 1  # returns to instruction index 1 (the halt)


def test_steps_counted():
    p, __ = make_program()
    interp = Interpreter(p)
    list(interp.run())
    assert interp.steps == 4
