"""Prefetch engines on controlled programs."""

import pytest

from repro import Assembler, simulate
from repro.cpu import make_engine
from repro.cpu.timing import TimingModel
from repro.isa.registers import A0, T0, T1, T2, ZERO

from tests.conftest import assemble_list_walk


def walk_twice(n: int, use_jpf: bool = False, jp_off: int = 8):
    """Build an n-node list ({value@0, next@4, [jp@8]}) with jump-pointers
    baked by software at build time, then walk it twice."""
    a = Assembler()
    res = a.word(0)
    head = a.word(0)
    tail_tab = a.space(n)  # creation-order node table for jp install
    a.label("main")
    a.li(T0, n)
    a.label("build")
    a.beqz(T0, "link_jp")
    a.alloc(T1, ZERO, 12)
    a.sw(T0, T1, 0)
    a.li(A0, head)
    a.lw(T2, A0, 0)
    a.sw(T2, T1, 4)
    a.sw(T1, A0, 0)
    # record address by index (descending creation)
    a.slli(T2, T0, 2)
    a.addi(T2, T2, tail_tab - 4)
    a.sw(T1, T2, 0)
    a.addi(T0, T0, -1)
    a.j("build")
    # install jump-pointers 4 ahead in traversal (ascending) order
    a.label("link_jp")
    a.li(T0, 0)
    a.label("jp_loop")
    a.li(T1, n - 4)
    a.bge(T0, T1, "walks")
    a.slli(T1, T0, 2)
    a.addi(T1, T1, tail_tab)
    a.lw(T2, T1, 0)       # node i
    a.lw(T1, T1, 16)      # node i+4
    a.sw(T1, T2, jp_off)
    a.addi(T0, T0, 1)
    a.j("jp_loop")
    a.label("walks")
    for w in range(2):
        a.li(T0, 0)
        a.li(A0, head)
        a.lw(T1, A0, 0, tag="lds")
        a.label(f"wloop{w}")
        a.beqz(T1, f"done{w}")
        if use_jpf:
            a.jpf(T1, jp_off)
        a.lw(T2, T1, 0, pad=16, tag="lds")
        a.add(T0, T0, T2)
        a.lw(T1, T1, 4, pad=16, tag="lds")
        a.j(f"wloop{w}")
        a.label(f"done{w}")
    a.li(A0, res)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("walk_twice"), res


class TestSoftwareEngine:
    def test_pf_fills_l1(self, tiny_cfg):
        a = Assembler()
        target = a.space(16)
        a.label("main")
        a.li(T0, target)
        a.pf(T0, 0)
        for __ in range(40):  # give the prefetch time to land
            a.nop()
        a.lw(T1, T0, 0)
        a.halt()
        res = simulate(a.assemble(), tiny_cfg, engine="software")
        assert res.engine.sw_prefetches == 1
        assert res.hierarchy.prefetches_useful >= 1

    def test_baseline_engine_ignores_pf(self, tiny_cfg):
        a = Assembler()
        target = a.space(16)
        a.label("main")
        a.li(T0, target)
        a.pf(T0, 0)
        a.halt()
        res = simulate(a.assemble(), tiny_cfg, engine="none")
        assert res.hierarchy.prefetches_requested == 0


class TestDBPEngine:
    def test_learns_list_dependences(self, tiny_cfg):
        program, __ = assemble_list_walk(48)
        engine = make_engine("dbp", tiny_cfg)
        TimingModel(program, tiny_cfg, engine).run()
        assert engine.stats.correlations_learned >= 2
        assert engine.recurrent_pcs  # next-pointer load is self-recurrent

    def test_chained_prefetches_issued(self, tiny_cfg):
        program, __ = assemble_list_walk(48)
        res = simulate(program, tiny_cfg, engine="dbp")
        assert res.engine.chained_prefetches > 0
        assert res.hierarchy.prefetches_useful > 0

    def test_budget_bounds_single_trigger(self, tiny_cfg):
        engine = make_engine("dbp", tiny_cfg)
        program, __ = assemble_list_walk(8)
        model = TimingModel(program, tiny_cfg, engine)
        model.run()
        # artificial wide fan-out: one producer with many consumers
        for c in range(40):
            engine.predictor.learn(9999, 5000 + c, 4 * c)
        before = engine.stats.chained_prefetches
        engine._trigger(9999, 0x2000_0000, 10_000_000)
        assert engine.stats.chained_prefetches - before <= engine.CHASE_BUDGET


class TestCooperativeEngine:
    def test_jpf_triggers_jump_prefetch(self, tiny_cfg):
        program, res = walk_twice(40, use_jpf=True)
        r = simulate(program, tiny_cfg, engine="cooperative")
        assert r.engine.jump_prefetches > 0

    def test_jpf_invalid_pointer_counted(self, tiny_cfg):
        a = Assembler()
        w = a.word(0)  # jump-pointer slot holds 0 -> invalid
        a.label("main")
        a.li(T0, w)
        a.jpf(T0, 0)
        a.halt()
        r = simulate(a.assemble(), tiny_cfg, engine="cooperative")
        assert r.engine.jp_invalid == 1

    def test_correlator_learns_jpf_consumers(self, tiny_cfg):
        program, __ = walk_twice(40, use_jpf=True)
        engine = make_engine("cooperative", tiny_cfg)
        TimingModel(program, tiny_cfg, engine).run()
        from repro.isa.opcodes import Op

        jpf_pcs = [i.index for i in program.instructions if i.op is Op.JPF]
        assert any(engine.predictor.lookup_quiet(pc) for pc in jpf_pcs)


class TestHardwareEngine:
    def test_installs_and_uses_jump_pointers(self, tiny_cfg):
        program, __ = walk_twice(48, use_jpf=False)
        engine = make_engine("hardware", tiny_cfg)
        res = TimingModel(program, tiny_cfg, engine).run()
        assert engine.stats.jp_stores > 0          # queue method ran
        assert engine.jqt.stats.installs > 0
        assert engine.stats.jump_prefetches > 0    # second walk used them

    def test_no_padding_no_jump_pointers(self, tiny_cfg):
        # Nodes allocated at exactly a class size: no padding anywhere.
        a = Assembler()
        head = a.word(0)
        a.label("main")
        a.li(T0, 32)
        a.label("build")
        a.beqz(T0, "walk")
        a.alloc(T1, ZERO, 8)  # {value, next}: 8 bytes = the full class
        a.sw(T0, T1, 0)
        a.li(A0, head)
        a.lw(T2, A0, 0)
        a.sw(T2, T1, 4)
        a.sw(T1, A0, 0)
        a.addi(T0, T0, -1)
        a.j("build")
        a.label("walk")
        a.li(A0, head)
        a.lw(T1, A0, 0, tag="lds")
        a.label("wloop")
        a.beqz(T1, "done")
        a.lw(T1, T1, 4, tag="lds")  # pad=0: unannotated
        a.j("wloop")
        a.label("done")
        a.halt()
        engine = make_engine("hardware", tiny_cfg)
        TimingModel(a.assemble(), tiny_cfg, engine).run()
        assert engine.stats.jp_stores == 0
        assert engine.stats.jump_prefetches == 0

    def test_hardware_speeds_up_second_walk(self, tiny_cfg):
        program, __ = walk_twice(64)
        base = simulate(program, tiny_cfg, engine="none")
        hw = simulate(program, tiny_cfg, engine="hardware")
        assert hw.cycles < base.cycles


class TestEngineFactory:
    @pytest.mark.parametrize(
        "name,pb", [("none", False), ("software", False), ("dbp", True),
                    ("cooperative", True), ("hardware", True)]
    )
    def test_engine_kinds(self, tiny_cfg, name, pb):
        eng = make_engine(name, tiny_cfg)
        assert eng.name == name
        assert eng.uses_prefetch_buffer == pb

    def test_unknown_engine_rejected(self, tiny_cfg):
        from repro import ConfigError

        with pytest.raises(ConfigError):
            make_engine("magic", tiny_cfg)


class TestRechaseTableBound:
    """The DBP duplicate-suppression table must stay bounded (it used to
    grow one entry per distinct (consumer, line) forever)."""

    def _attached_dbp(self, tiny_cfg, n=64):
        program, __ = assemble_list_walk(n)
        engine = make_engine("dbp", tiny_cfg)
        simulate(program, tiny_cfg, engine=engine)
        return engine

    def _trigger_at(self, engine, time):
        """Run one chase step at ``time`` through the public trigger
        path, with the predictor stubbed to one consumer."""
        engine.predictor.lookup = lambda pc: [(9999, 0)]
        engine._trigger(1234, engine._heap_lo, time)

    def test_slack_derived_from_machine(self, tiny_cfg):
        engine = self._attached_dbp(tiny_cfg)
        # attach() must widen the slack beyond the dedup window itself:
        # chained fills run ahead of commit-time triggers.
        assert engine._chase_slack > engine.RECHASE_WINDOW

    def test_stale_entries_are_pruned(self, tiny_cfg):
        engine = self._attached_dbp(tiny_cfg)
        recent = engine._recent_chase
        recent.clear()
        # Stuff more-than-prune-min entries far in the past...
        for i in range(engine.RECHASE_PRUNE_MIN + 10):
            recent[(1, 64 * i)] = 100
        engine._chase_tmax = 100
        engine._chase_pruned_at = 100
        # ...then one trigger far in the future runs the eviction.
        self._trigger_at(engine, 100 + engine._chase_slack
                         + engine.RECHASE_WINDOW + 1)
        stale = [t for t in engine._recent_chase.values() if t == 100]
        assert not stale
        assert len(engine._recent_chase) < engine.RECHASE_PRUNE_MIN
        assert engine._chase_pruned_at == engine._chase_tmax

    def test_recent_entries_survive_pruning(self, tiny_cfg):
        engine = self._attached_dbp(tiny_cfg)
        recent = engine._recent_chase
        recent.clear()
        fresh = 10_000
        for i in range(engine.RECHASE_PRUNE_MIN + 10):
            recent[(1, 64 * i)] = fresh  # within slack of the new trigger
        engine._chase_tmax = fresh
        engine._chase_pruned_at = 0
        self._trigger_at(engine, fresh + engine.RECHASE_WINDOW)
        survivors = [t for t in engine._recent_chase.values() if t == fresh]
        assert len(survivors) == engine.RECHASE_PRUNE_MIN + 10

    def test_hard_cap_prunes_even_inside_window(self, tiny_cfg):
        engine = self._attached_dbp(tiny_cfg)
        recent = engine._recent_chase
        recent.clear()
        now = 50_000_000
        engine._chase_tmax = now
        engine._chase_pruned_at = now  # dedup window not yet elapsed
        for i in range(engine.RECHASE_TABLE_MAX + 1):
            recent[(1, 64 * i)] = now - engine._chase_slack - 1  # all stale
        self._trigger_at(engine, now)
        assert len(engine._recent_chase) < engine.RECHASE_PRUNE_MIN

    def test_audit_check_flags_runaway_table(self, tiny_cfg):
        engine = self._attached_dbp(tiny_cfg)
        assert engine.audit_check(0) == []
        for i in range(2 * engine.RECHASE_TABLE_MAX + 1):
            engine._recent_chase[(1, 64 * i)] = 0
        violations = engine.audit_check(0)
        assert any(inv == "rechase-table-bound" for inv, __ in violations)
