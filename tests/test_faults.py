"""Robustness layer: fault injection, retry/timeout, checkpoint-resume.

Every failure mode the executor claims to survive is driven here through
a deterministic :class:`FaultPlan` — crash, hang-past-timeout, N
transient failures, corrupt cache entry — over both the serial and the
``jobs=2`` pooled paths, asserting the assembled rows stay bit-identical
to a fault-free sweep and that the obs counters tell the story.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time

import pytest

from repro import small_config
from repro.harness import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RunSpec,
    SweepExecutor,
    SweepJournal,
    SweepPlan,
    TransientFault,
    figure5,
    parse_fault_plan,
    spec_key,
)
from repro.harness.journal import SCHEMA as JOURNAL_SCHEMA
from repro.obs import MetricRegistry
from repro.workloads import workload_class

PAIR = ("treeadd", "power")
SMALL = {name: workload_class(name).test_params() for name in PAIR}
#: 2 benchmarks x (5 timing + 3 distinct compute) cells.
PAIR_CELLS = 16

#: Wall-clock budget generous enough that honest small cells never trip
#: it, small enough that hang drills stay quick.
TIMEOUT = 30.0


@pytest.fixture(scope="module")
def cfg():
    return small_config()


@pytest.fixture(scope="module")
def clean_rows(cfg):
    return figure5(cfg, benchmarks=PAIR, params=SMALL)


def faulty_figure5(cfg, executor):
    return figure5(cfg, benchmarks=PAIR, params=SMALL, executor=executor)


def make_executor(**kw):
    kw.setdefault("backoff", 0.0)
    kw.setdefault("sleep", lambda s: None)
    kw.setdefault("registry", MetricRegistry())
    return SweepExecutor(**kw)


# ----------------------------------------------------------------------
# Fault-plan mini-language
# ----------------------------------------------------------------------

class TestFaultPlanParsing:
    def test_bare_benchmark_defaults(self):
        plan = FaultPlan.parse("treeadd=crash")
        (rule,) = plan.specs
        assert (rule.benchmark, rule.variant, rule.engine) == \
            ("treeadd", "*", "*")
        assert rule.kind == "crash" and rule.times == 1 and rule.seconds is None

    def test_full_selector_times_and_seconds(self):
        plan = FaultPlan.parse(
            "health/baseline/hardware=transient:2, em3d//dbp=hang:3@2.5"
        )
        first, second = plan.specs
        assert first == FaultSpec("health", "baseline", "hardware",
                                  "transient", 2)
        assert second == FaultSpec("em3d", "*", "dbp", "hang", 3, 2.5)

    @pytest.mark.parametrize("bad", [
        "", "treeadd", "=crash", "treeadd=explode", "a/b/c/d=crash",
        "treeadd=crash:x", "treeadd=hang@y", "treeadd=crash:0",
    ])
    def test_rejects_malformed_plans(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_parse_fault_plan_passthrough(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None
        assert parse_fault_plan("treeadd=crash") is not None

    def test_plan_pickles_into_workers(self):
        plan = FaultPlan.parse("treeadd/baseline=hang:2@1.5, power=corrupt")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFaultPlanMatching:
    def test_fires_only_for_matching_attempts(self, cfg):
        plan = FaultPlan.of(FaultSpec("treeadd", kind="transient", times=2))
        spec = RunSpec.make("treeadd", "baseline", "none", cfg)
        other = RunSpec.make("power", "baseline", "none", cfg)
        assert plan.fires(spec, 0) and plan.fires(spec, 1)
        assert not plan.fires(spec, 2)
        assert not plan.fires(other, 0)

    def test_glob_selectors(self, cfg):
        plan = FaultPlan.of(FaultSpec("tree*", "sw:*", kind="transient"))
        assert plan.fires(RunSpec.make("treeadd", "sw:queue", "software", cfg), 0)
        assert not plan.fires(RunSpec.make("treeadd", "baseline", "none", cfg), 0)

    def test_first_match_wins(self, cfg):
        plan = FaultPlan.of(
            FaultSpec("treeadd", kind="transient", times=1),
            FaultSpec("*", kind="transient", times=9),
        )
        spec = RunSpec.make("treeadd", "baseline", "none", cfg)
        assert not plan.fires(spec, 1)     # first rule exhausted
        assert plan.fires(RunSpec.make("power", "baseline", "none", cfg), 5)

    def test_corrupt_matched_separately(self, cfg):
        plan = FaultPlan.of(FaultSpec("treeadd", kind="corrupt"))
        spec = RunSpec.make("treeadd", "baseline", "none", cfg)
        assert plan.corrupts(spec) and not plan.fires(spec, 0)

    def test_apply_raises_transient(self, cfg):
        plan = FaultPlan.of(FaultSpec("treeadd", kind="transient"))
        with pytest.raises(TransientFault):
            plan.apply(RunSpec.make("treeadd", "baseline", "none", cfg), 0)
        # Exhausted rule: a no-op.
        plan.apply(RunSpec.make("treeadd", "baseline", "none", cfg), 1)


# ----------------------------------------------------------------------
# Retry: transient failures heal, rows stay bit-identical
# ----------------------------------------------------------------------

class TestTransientRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_rows_identical_after_transient_blips(self, cfg, clean_rows, jobs):
        faults = FaultPlan.of(
            FaultSpec("treeadd", engine="hardware", kind="transient", times=2),
            FaultSpec("power", variant="sw:*", engine="software",
                      kind="transient", times=1),
        )
        ex = make_executor(jobs=jobs, retries=2, faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        stats = ex.stats()
        # treeadd/hardware timing cell twice + power sw timing cell once.
        assert stats["retries"] == 3
        assert stats["faults_injected"] == 3
        assert stats["failures"] == 0
        assert stats["executed"] == PAIR_CELLS + 3

    def test_exhausted_retries_preserve_error_row(self, cfg, clean_rows):
        faults = FaultPlan.of(
            FaultSpec("power", engine="dbp", kind="transient", times=5),
        )
        ex = make_executor(retries=1, faults=faults)
        rows = faulty_figure5(cfg, ex)
        bad = [r for r in rows if r.get("error")]
        assert len(bad) == 1 and bad[0]["benchmark"] == "power"
        assert bad[0]["scheme"] == "dbp"
        assert bad[0]["error_kind"] == "TransientFault"
        assert "injected transient failure" in bad[0]["error_detail"]
        good = [r for r in rows if not r.get("error")]
        assert good == [r for r in clean_rows
                        if not (r["benchmark"] == "power" and r["scheme"] == "dbp")]
        assert ex.stats()["failures"] == 1
        assert ex.stats()["retries"] == 1

    def test_backoff_is_exponential(self, cfg):
        delays = []
        faults = FaultPlan.of(
            FaultSpec("treeadd", engine="hardware", kind="transient", times=3),
        )
        ex = SweepExecutor(retries=3, backoff=0.25, faults=faults,
                           sleep=delays.append, registry=MetricRegistry())
        plan = SweepPlan(cfg)
        plan.add(RunSpec.make("treeadd", "baseline", "hardware", cfg,
                              SMALL["treeadd"]))
        plan.execute(executor=ex)
        assert delays == [0.25, 0.5, 1.0]


# ----------------------------------------------------------------------
# Crash: worker death, pool rebuild
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_serial_crash_retries_to_identical_rows(self, cfg, clean_rows):
        faults = FaultPlan.of(
            FaultSpec("treeadd", engine="cooperative", kind="crash", times=1),
        )
        ex = make_executor(retries=1, faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        assert ex.stats()["retries"] == 1
        assert ex.stats()["pool_breaks"] == 0   # in-process: no pool involved

    def test_pooled_crash_rebuilds_pool(self, cfg, clean_rows):
        faults = FaultPlan.of(
            FaultSpec("treeadd", engine="cooperative", kind="crash", times=1),
        )
        # A dying worker fails every in-flight cell of its pool: give the
        # innocent bystanders retry budget too.
        ex = make_executor(jobs=2, retries=3, faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        stats = ex.stats()
        assert stats["pool_breaks"] >= 1
        assert stats["retries"] >= 1
        assert stats["failures"] == 0

    def test_pooled_crash_without_retries_yields_error_rows(self, cfg):
        faults = FaultPlan.of(
            FaultSpec("treeadd", engine="cooperative", kind="crash", times=1),
        )
        ex = make_executor(jobs=2, retries=0, faults=faults)
        rows = faulty_figure5(cfg, ex)
        bad = [r for r in rows if r.get("error")]
        assert bad, "the crash must surface as at least one error row"
        assert any(r["error_kind"] == "BrokenProcessPool" for r in bad)
        assert ex.stats()["failures"] >= 1


# ----------------------------------------------------------------------
# Hang: wall-clock timeout, hung-worker reaping
# ----------------------------------------------------------------------

class TestHangTimeout:
    def test_serial_overrun_is_charged_and_retried(self, cfg, clean_rows):
        # Serial execution cannot preempt: the cell completes after its
        # injected 1.2s nap and is then charged a timeout attempt.
        faults = FaultPlan.of(
            FaultSpec("power", engine="dbp", kind="hang", times=1, seconds=1.2),
        )
        ex = make_executor(retries=1, timeout=0.6, faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        assert ex.stats()["timeouts"] == 1
        assert ex.stats()["retries"] == 1

    def test_pooled_hang_is_reaped_before_it_finishes(self, cfg, clean_rows):
        # Pooled execution must NOT wait out the 120s nap: the deadline
        # reaps the hung worker and a fresh pool retries the cell.
        faults = FaultPlan.of(
            FaultSpec("power", engine="dbp", kind="hang", times=1,
                      seconds=120.0),
        )
        ex = make_executor(jobs=2, retries=1, timeout=2.0, faults=faults)
        start = time.monotonic()
        rows = faulty_figure5(cfg, ex)
        elapsed = time.monotonic() - start
        assert rows == clean_rows
        assert elapsed < 60.0, f"hung worker was waited out ({elapsed:.0f}s)"
        stats = ex.stats()
        assert stats["timeouts"] == 1
        assert stats["pool_breaks"] >= 1
        assert stats["failures"] == 0

    def test_timeout_exhaustion_becomes_error_row(self, cfg):
        faults = FaultPlan.of(
            FaultSpec("power", engine="dbp", kind="hang", times=3,
                      seconds=120.0),
        )
        ex = make_executor(jobs=2, retries=1, timeout=1.0, faults=faults)
        rows = faulty_figure5(cfg, ex)
        bad = [r for r in rows if r.get("error")]
        assert len(bad) == 1
        assert bad[0]["error_kind"] == "TimeoutError"
        assert "exceeded --timeout" in bad[0]["error_detail"]
        assert ex.stats()["timeouts"] == 2    # first try + one retry


# ----------------------------------------------------------------------
# Corrupt cache entries: detected, recomputed, re-stored
# ----------------------------------------------------------------------

class TestCorruptCacheEntry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_corrupt_entry_recomputes(self, cfg, clean_rows, tmp_path, jobs):
        from repro.harness import ResultCache

        cache = ResultCache(tmp_path / "cache", registry=MetricRegistry())
        warm = make_executor(cache=cache)
        assert faulty_figure5(cfg, warm) == clean_rows
        writes_before = cache.stats()["writes"]
        assert writes_before == PAIR_CELLS

        faults = FaultPlan.of(
            FaultSpec("treeadd", "baseline", "hardware", kind="corrupt"),
        )
        ex = make_executor(jobs=jobs, cache=cache, faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        stats = cache.stats()
        assert stats["invalid"] == 1                  # clobber detected
        assert stats["writes"] == writes_before + 1   # fresh result re-stored
        assert ex.stats()["faults_injected"] == 1
        assert ex.stats()["executed"] == 1            # only the victim reran


# ----------------------------------------------------------------------
# Error metadata
# ----------------------------------------------------------------------

class TestErrorKinds:
    def test_cell_error_kind_matches_exception_class(self, cfg):
        specs = [RunSpec.make("treeadd", "baseline", "no-such-engine", cfg,
                              SMALL["treeadd"])]
        cells = make_executor().execute(specs)
        cell = cells[specs[0]]
        assert cell.error_kind == "ConfigError"
        assert "no-such-engine" in cell.error

    def test_sweep_results_error_carries_kind(self, cfg):
        plan = SweepPlan(cfg)
        bad = plan.add(RunSpec.make("treeadd", "baseline", "no-such-engine",
                                    cfg, SMALL["treeadd"]))
        results = plan.execute(executor=make_executor())
        err = results.error(bad)
        assert err is not None and err.kind == "ConfigError"
        assert "no-such-engine" in err    # still a usable string

    def test_error_rows_greppable_by_kind(self, cfg):
        faults = FaultPlan.of(FaultSpec("power", engine="dbp",
                                        kind="transient", times=9))
        rows = faulty_figure5(cfg, make_executor(faults=faults))
        kinds = {r["error_kind"] for r in rows if r.get("error")}
        assert kinds == {"TransientFault"}


# ----------------------------------------------------------------------
# Interruption: clean pool shutdown, journal survival
# ----------------------------------------------------------------------

class _InterruptAfter:
    """Progress hook that raises KeyboardInterrupt after N narrations."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def __call__(self, line: str) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


class TestKeyboardInterrupt:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_interrupt_propagates(self, cfg, jobs):
        ex = make_executor(jobs=jobs, progress=_InterruptAfter(3))
        with pytest.raises(KeyboardInterrupt):
            faulty_figure5(cfg, ex)

    def test_pooled_interrupt_leaves_no_orphan_workers(self, cfg):
        ex = make_executor(jobs=2, progress=_InterruptAfter(2))
        with pytest.raises(KeyboardInterrupt):
            faulty_figure5(cfg, ex)
        # _abandon_pool terminated and joined the workers; give a slow
        # box a moment to reap before declaring orphans.
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestJournalResume:
    def _interrupted_run(self, cfg, tmp_path, n, jobs=1):
        registry = MetricRegistry()
        journal = SweepJournal(tmp_path / "sweep.jsonl", registry=registry)
        ex = make_executor(jobs=jobs, journal=journal, registry=registry,
                           progress=_InterruptAfter(n))
        with pytest.raises(KeyboardInterrupt):
            faulty_figure5(cfg, ex)
        journal.close()
        return journal

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_resume_replays_and_completes(self, cfg, clean_rows, tmp_path, jobs):
        interrupted = self._interrupted_run(cfg, tmp_path, n=8, jobs=jobs)
        checkpointed = len(interrupted)
        assert 0 < checkpointed < PAIR_CELLS

        registry = MetricRegistry()
        journal = SweepJournal(tmp_path / "sweep.jsonl", registry=registry,
                               resume=True)
        ex = make_executor(jobs=jobs, journal=journal, registry=registry)
        rows = faulty_figure5(cfg, ex)
        assert rows == clean_rows
        # Every checkpointed cell replays; only the remainder re-simulates.
        assert journal.replayed == checkpointed
        assert ex.stats()["executed"] == PAIR_CELLS - checkpointed
        assert len(journal) == PAIR_CELLS

    def test_without_resume_flag_journal_restarts(self, cfg, tmp_path):
        interrupted = self._interrupted_run(cfg, tmp_path, n=4)
        assert len(interrupted) > 0
        registry = MetricRegistry()
        fresh = SweepJournal(tmp_path / "sweep.jsonl", registry=registry,
                             resume=False)
        assert len(fresh) == 0
        assert not (tmp_path / "sweep.jsonl").exists()

    def test_truncated_tail_line_is_skipped(self, cfg, clean_rows, tmp_path):
        self._interrupted_run(cfg, tmp_path, n=6)
        path = tmp_path / "sweep.jsonl"
        lines = path.read_text().splitlines()
        # Simulate a hard kill mid-append: chop the last line in half.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        registry = MetricRegistry()
        journal = SweepJournal(path, registry=registry, resume=True)
        assert journal.stats()["corrupt"] == 1
        assert len(journal) == len(lines) - 1
        ex = make_executor(journal=journal, registry=registry)
        assert faulty_figure5(cfg, ex) == clean_rows

    def test_foreign_schema_lines_are_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(json.dumps({"schema": "repro.other/1", "key": "k",
                                    "kind": "sim", "result": {}}) + "\n")
        journal = SweepJournal(path, resume=True)
        assert len(journal) == 0
        assert journal.stats()["corrupt"] == 1

    def test_journal_roundtrips_both_cell_kinds(self, cfg, tmp_path):
        from repro.harness import table1

        registry = MetricRegistry()
        journal = SweepJournal(tmp_path / "t1.jsonl", registry=registry)
        ex = make_executor(journal=journal, registry=registry)
        rows = table1(cfg, benchmarks=("treeadd",),
                      params={"treeadd": SMALL["treeadd"]}, executor=ex)
        journal.close()

        registry2 = MetricRegistry()
        journal2 = SweepJournal(tmp_path / "t1.jsonl", registry=registry2,
                                resume=True)
        ex2 = make_executor(journal=journal2, registry=registry2)
        rows2 = table1(cfg, benchmarks=("treeadd",),
                       params={"treeadd": SMALL["treeadd"]}, executor=ex2)
        assert rows2 == rows
        assert ex2.stats()["executed"] == 0       # fully replayed
        assert journal2.replayed == 1

    def test_journal_lines_are_schema_stamped(self, cfg, tmp_path):
        registry = MetricRegistry()
        journal = SweepJournal(tmp_path / "s.jsonl", registry=registry)
        ex = make_executor(journal=journal, registry=registry)
        plan = SweepPlan(cfg)
        spec = plan.add(RunSpec.make("treeadd", "baseline", "none", cfg,
                                     SMALL["treeadd"]))
        plan.execute(executor=ex)
        journal.close()
        (line,) = (tmp_path / "s.jsonl").read_text().splitlines()
        doc = json.loads(line)
        assert doc["schema"] == JOURNAL_SCHEMA
        assert doc["key"] == spec_key(spec)
        assert doc["kind"] == "sim"
        assert doc["result"]["cycles"] > 0


# ----------------------------------------------------------------------
# The acceptance drill: mixed faults, one sweep, bit-identical rows
# ----------------------------------------------------------------------

class TestMixedFaultAcceptance:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crash_hang_and_transients_all_heal(self, cfg, clean_rows, jobs):
        faults = FaultPlan.of(
            FaultSpec("treeadd", "baseline", "hardware", kind="crash", times=1),
            FaultSpec("power", "baseline", "dbp", kind="hang", times=1,
                      seconds=1.2 if jobs == 1 else 120.0),
            FaultSpec("treeadd", "sw:*", "software", kind="transient", times=1),
            FaultSpec("power", "coop:*", "cooperative", kind="transient",
                      times=1),
        )
        ex = make_executor(jobs=jobs, retries=3, timeout=0.6 if jobs == 1 else 5.0,
                           faults=faults)
        assert faulty_figure5(cfg, ex) == clean_rows
        stats = ex.stats()
        assert stats["failures"] == 0
        assert stats["timeouts"] >= 1
        assert stats["retries"] >= 3
        assert stats["faults_injected"] >= 3


# ----------------------------------------------------------------------
# Cache durability: the atomic rename must also be durable
# ----------------------------------------------------------------------

class TestCacheDurability:
    """``ResultCache.put`` must fsync the data file before the rename and
    the parent directory after it — otherwise a crash right after put()
    returns can roll the entry back (or leave a torn file) even though
    the caller was told the write succeeded."""

    def _spec_and_result(self, cfg):
        from repro.cpu.simulator import simulate
        from repro.harness import RunSpec
        from repro.workloads import get_workload

        w = get_workload("treeadd", **SMALL["treeadd"])
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, SMALL["treeadd"])
        result = simulate(w.build("baseline").program, cfg, engine="none")
        return spec, result

    def test_put_fsyncs_file_then_directory(self, cfg, tmp_path, monkeypatch):
        import os as os_mod

        from repro.harness import ResultCache

        synced = []
        real_fsync = os_mod.fsync

        def recording_fsync(fd):
            st = os_mod.fstat(fd)
            import stat as stat_mod
            synced.append("dir" if stat_mod.S_ISDIR(st.st_mode) else "file")
            return real_fsync(fd)

        monkeypatch.setattr("repro.harness.cache.os.fsync", recording_fsync)
        cache = ResultCache(tmp_path / "cache", registry=MetricRegistry())
        spec, result = self._spec_and_result(cfg)
        path = cache.put(spec, result)
        assert path.exists()
        assert "file" in synced and "dir" in synced
        assert synced.index("file") < synced.index("dir")
        # and the entry reads back verbatim
        assert cache.get(spec) is not None

    def test_put_survives_unfsyncable_directory(self, cfg, tmp_path,
                                                monkeypatch):
        # Filesystems that refuse directory fsync must not break put().
        import errno
        import os as os_mod
        import stat as stat_mod

        from repro.harness import ResultCache

        real_fsync = os_mod.fsync

        def picky_fsync(fd):
            if stat_mod.S_ISDIR(os_mod.fstat(fd).st_mode):
                raise OSError(errno.EINVAL, "directory fsync unsupported")
            return real_fsync(fd)

        monkeypatch.setattr("repro.harness.cache.os.fsync", picky_fsync)
        cache = ResultCache(tmp_path / "cache", registry=MetricRegistry())
        spec, result = self._spec_and_result(cfg)
        assert cache.put(spec, result).exists()
        assert cache.get(spec) is not None

    def test_failed_write_leaves_no_temp_file(self, cfg, tmp_path,
                                              monkeypatch):
        from repro.harness import ResultCache

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.harness.cache.os.replace", boom)
        cache = ResultCache(tmp_path / "cache", registry=MetricRegistry())
        spec, result = self._spec_and_result(cfg)
        with pytest.raises(OSError):
            cache.put(spec, result)
        leftovers = [p for p in (tmp_path / "cache").rglob("*")
                     if p.is_file()]
        assert leftovers == []  # tmp file cleaned up, nothing torn
