"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Assembler, MachineConfig, small_config
from repro.config import CacheConfig
from repro.isa.registers import A0, T0, T1, V0, ZERO


@pytest.fixture
def cfg() -> MachineConfig:
    """Small machine used by most timing tests."""
    return small_config()


@pytest.fixture
def tiny_cfg() -> MachineConfig:
    """Very small caches: forces misses with tiny footprints."""
    return MachineConfig(
        il1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=2048, line=64, assoc=4, latency=12),
    )


def assemble_loop_sum(n: int):
    """Sum 1..n in a register loop; returns (program, result_addr)."""
    a = Assembler()
    res = a.word(0)
    a.label("main")
    a.li(T0, 0)   # acc
    a.li(T1, n)
    a.label("loop")
    a.beqz(T1, "done")
    a.add(T0, T0, T1)
    a.addi(T1, T1, -1)
    a.j("loop")
    a.label("done")
    a.li(A0, res)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("loop_sum"), res


def assemble_list_walk(n: int, node_bytes: int = 12):
    """Builds an n-node linked list ({value@0, next@4}) then walks it,
    summing values; returns (program, result_addr)."""
    a = Assembler()
    res = a.word(0)
    head = a.word(0)
    a.label("main")
    a.li(T0, n)
    a.label("build")
    a.beqz(T0, "walk")
    a.alloc(T1, ZERO, node_bytes)
    a.sw(T0, T1, 0)
    a.li(A0, head)
    a.lw(V0, A0, 0)
    a.sw(V0, T1, 4)
    a.sw(T1, A0, 0)
    a.addi(T0, T0, -1)
    a.j("build")
    a.label("walk")
    a.li(T0, 0)
    a.li(A0, head)
    a.lw(T1, A0, 0, tag="lds")
    a.label("wloop")
    a.beqz(T1, "done")
    a.lw(V0, T1, 0, pad=16, tag="lds")
    a.add(T0, T0, V0)
    a.lw(T1, T1, 4, pad=16, tag="lds")
    a.j("wloop")
    a.label("done")
    a.li(A0, res)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("list_walk"), res
