"""Adaptive jump intervals (the Section-6 future-work extension)."""

import dataclasses

from repro import simulate, small_config
from repro.config import PrefetchConfig
from repro.cpu import make_engine
from repro.cpu.timing import TimingModel
from repro.prefetch.adaptive import AdaptiveJumpQueueTable

from tests.conftest import assemble_list_walk


def make_table(interval=4, max_interval=32):
    return AdaptiveJumpQueueTable(
        PrefetchConfig(jump_interval=interval), max_interval=max_interval
    )


def feed(table, pc, late, early, times):
    for __ in range(times):
        table.feedback(pc, late=late, early=early)


class TestAdaptation:
    def test_starts_at_configured_interval(self):
        t = make_table(interval=4)
        assert t.interval_of(7) == 4

    def test_late_feedback_widens(self):
        t = make_table(interval=4)
        feed(t, 7, late=True, early=False, times=t.ADAPT_EVERY)
        assert t.interval_of(7) == 8
        assert t.adapt_stats.widenings == 1

    def test_early_feedback_narrows(self):
        t = make_table(interval=8)
        feed(t, 7, late=False, early=True, times=t.ADAPT_EVERY)
        assert t.interval_of(7) == 4
        assert t.adapt_stats.narrowings == 1

    def test_timely_feedback_keeps_interval(self):
        t = make_table(interval=8)
        feed(t, 7, late=False, early=False, times=3 * t.ADAPT_EVERY)
        assert t.interval_of(7) == 8

    def test_mixed_feedback_below_vote_threshold(self):
        t = make_table(interval=8)
        for i in range(t.ADAPT_EVERY):
            t.feedback(7, late=(i % 2 == 0), early=False)
        assert t.interval_of(7) == 8  # 50% late < 62.5% vote

    def test_bounded_above_and_below(self):
        t = make_table(interval=4, max_interval=8)
        feed(t, 7, late=True, early=False, times=10 * t.ADAPT_EVERY)
        assert t.interval_of(7) == 8
        t2 = make_table(interval=4)
        feed(t2, 9, late=False, early=True, times=10 * t2.ADAPT_EVERY)
        assert t2.interval_of(9) == t2.MIN_INTERVAL

    def test_per_pc_independence(self):
        t = make_table(interval=4)
        feed(t, 1, late=True, early=False, times=t.ADAPT_EVERY)
        assert t.interval_of(1) == 8
        assert t.interval_of(2) == 4

    def test_advance_uses_adapted_interval(self):
        t = make_table(interval=2)
        addrs = [0x1000 + 16 * i for i in range(12)]
        for a in addrs[:6]:
            t.advance(5, a)
        feed(t, 5, late=True, early=False, times=t.ADAPT_EVERY)  # -> 4
        homes = [t.advance(5, a) for a in addrs[6:]]
        # after widening, homes are 4 back in the stream
        assert homes[-1] == addrs[-5]

    def test_resize_preserves_newest_entries(self):
        t = make_table(interval=8)
        for i in range(8):
            t.advance(5, 0x1000 + 16 * i)
        feed(t, 5, late=False, early=True, times=t.ADAPT_EVERY)  # -> 4
        home = t.advance(5, 0x2000)
        # queue truncated to the newest 4: home is 4 back, not 8
        assert home == 0x1000 + 16 * 4


class TestEndToEnd:
    def _engine(self, cfg):
        pcfg = dataclasses.replace(cfg.prefetch, adaptive_interval=True)
        cfg = dataclasses.replace(cfg, prefetch=pcfg)
        return cfg, make_engine("hardware", cfg)

    def test_adaptive_hardware_runs_and_prefetches(self, tiny_cfg):
        cfg, engine = self._engine(tiny_cfg)
        from tests.test_engines import walk_twice

        program, __ = walk_twice(96)
        res = TimingModel(program, cfg, engine).run()
        assert isinstance(engine.jqt, AdaptiveJumpQueueTable)
        assert engine.stats.jp_stores > 0
        total = (
            engine.jqt.adapt_stats.late
            + engine.jqt.adapt_stats.early
            + engine.jqt.adapt_stats.timely
        )
        assert total > 0  # feedback loop is live

    def test_adaptive_not_worse_than_fixed(self, tiny_cfg):
        """On a clean repeated walk the adaptive table should end up at
        least as good as the fixed-interval default."""
        a_cfg, engine = self._engine(tiny_cfg)
        from tests.test_engines import walk_twice

        program, __ = walk_twice(96)
        adaptive = TimingModel(program, a_cfg, engine).run()
        fixed = simulate(program, tiny_cfg, engine="hardware")
        assert adaptive.cycles <= fixed.cycles * 1.10
