"""Command-line interface."""

import pytest

from repro.__main__ import _parse_params, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "health" in out and "treeadd" in out and "spmv" in out
    # All four registries appear in the combined listing.
    for title in ("Machines", "Schemes", "Prefetch engines", "Workloads"):
        assert title in out


def test_run_small(capsys):
    assert main(["run", "power", "--small", "--scheme", "hardware"]) == 0
    out = capsys.readouterr().out
    assert "hardware" in out and "cycles" in out


def test_run_with_params_and_idiom(capsys):
    assert main([
        "run", "health", "--small", "--scheme", "software", "--idiom", "root",
        "--param", "iterations=2",
    ]) == 0
    out = capsys.readouterr().out
    assert "sw:root" in out


def test_machine_overrides(capsys):
    assert main([
        "--memory-latency", "140", "--interval", "4",
        "run", "treeadd", "--small",
    ]) == 0


def test_parse_params_types():
    assert _parse_params(["a=1", "b=1.5", "c=x"]) == {"a": 1, "b": 1.5, "c": "x"}
    with pytest.raises(SystemExit):
        _parse_params(["oops"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_figure_commands_parse():
    parser = build_parser()
    for fig in ("table1", "figure4", "figure5", "figure6", "figure7"):
        args = parser.parse_args([fig])
        assert args.command == fig


def test_list_single_registry(capsys):
    assert main(["list", "machines"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out and "bench" in out and "small" in out
    assert "health" not in out  # workloads not printed for one registry

    assert main(["list", "schemes"]) == 0
    out = capsys.readouterr().out
    for scheme in ("base", "software", "cooperative", "hardware", "dbp"):
        assert scheme in out

    assert main(["list", "engines"]) == 0
    assert "engine" in capsys.readouterr().out


def _write_spec(tmp_path, spec):
    import json

    path = tmp_path / f"{spec.name}.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path


def test_run_spec_end_to_end(tmp_path, capsys):
    from repro.harness import figure5_spec

    spec = figure5_spec(benchmarks=("treeadd",))
    path = _write_spec(tmp_path, spec)
    assert main(["run-spec", str(path), "--machine", "small", "--small",
                 "--no-cache", "--journal", str(tmp_path / "j.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "treeadd" in out
    for scheme in ("base", "software", "cooperative", "hardware", "dbp"):
        assert scheme in out


def test_run_spec_artifact_and_set(tmp_path, capsys):
    import json

    from repro.harness import ExperimentSpec, WorkloadSel
    from repro.workloads import workload_class

    spec = ExperimentSpec(
        name="tiny", title="Tiny",
        workloads=(WorkloadSel(
            "treeadd", params=workload_class("treeadd").test_params()),),
        schemes=("base", "hardware"),
        columns=("benchmark", "scheme", "total", "normalized"),
    )
    out_file = tmp_path / "result.json"
    assert main(["run-spec", str(_write_spec(tmp_path, spec)),
                 "--machine", "small", "--set", "memory_latency=140",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--journal", str(tmp_path / "j.jsonl"),
                 "-o", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["schema"] == "repro.experiment/1"
    assert doc["spec"]["overrides"] == {"memory_latency": 140}
    assert doc["meta"]["machine"] == "small"  # --machine lands in the spec
    assert len(doc["rows"]) == 2
    assert doc["rows"][0]["scheme"] == "base"
    assert doc["rows"][0]["normalized"] == 1.0


def test_run_spec_bad_file_is_clean_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    with pytest.raises(SystemExit, match="error:"):
        main(["run-spec", str(bad), "--no-cache",
              "--journal", str(tmp_path / "j.jsonl")])


def test_stats_text(capsys):
    assert main(["stats", "health", "--small", "--scheme", "hardware"]) == 0
    out = capsys.readouterr().out
    assert "Prefetch outcomes" in out
    assert "Demand miss latency" in out
    assert "timely" in out and "dropped" in out


def test_stats_json_artifact(capsys):
    import json

    assert main(["stats", "health", "--small", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.stats/1"
    from repro.harness import SCHEMES

    # Default stats matrix is the paper five; zoo engines opt in by name.
    assert set(doc["engines"]) == set(SCHEMES)
    hw = doc["engines"]["hardware"]
    assert set(hw["prefetch_outcomes"]) == {
        "timely", "late", "early-evicted", "useless", "dropped",
    }
    assert hw["miss_latency"]["type"] == "histogram"
    assert doc["runs"]["hardware"]["result"]["cycles"] > 0


def test_stats_json_to_file(tmp_path, capsys):
    import json

    out = tmp_path / "stats.json"
    assert main(["stats", "health", "--small", "--scheme", "base",
                 "--json", "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.stats/1"
    assert list(doc["engines"]) == ["base"]


def test_trace_writes_chrome_file(tmp_path, capsys):
    import json

    out = tmp_path / "t.trace.json"
    assert main(["trace", "health", "--small", "--scheme", "hardware",
                 "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert any(e["name"] == "load-issue" for e in events)
    assert any(e["name"] == "demand-miss" for e in events)
    assert "wrote" in capsys.readouterr().out
