"""Machine-readable artifacts: SimResult/SchemeRun serialization and the
schema-stamped JSON documents."""

import io
import json

from repro import Telemetry, simulate, small_config
from repro.harness import BenchmarkRunner
from repro.obs import artifact, dump_json, load_json, schema_kind

from tests.conftest import assemble_list_walk


def _result(telemetry=None):
    program, __ = assemble_list_walk(32)
    return simulate(program, small_config(), engine="dbp", telemetry=telemetry)


class TestSimResultToDict:
    def test_json_round_trip(self):
        res = _result(Telemetry())
        d = res.to_dict()
        restored = json.loads(json.dumps(d))
        assert restored == d  # everything JSON-representable, losslessly
        assert restored["cycles"] == res.cycles
        assert restored["engine"] == "dbp"
        assert restored["derived"]["ipc"] == res.ipc
        assert restored["engine_stats"]["chained_prefetches"] == (
            res.engine.chained_prefetches
        )

    def test_telemetry_embedded(self):
        d = _result(Telemetry()).to_dict()
        tele = d["telemetry"]
        assert set(tele["prefetch_outcomes"]["counts"]) == {
            "timely", "late", "early-evicted", "useless", "dropped",
        }
        assert "mem.miss_latency_cycles" in tele["metrics"]
        assert "prefetch.prq_occupancy" in tele["metrics"]

    def test_without_telemetry(self):
        d = _result().to_dict()
        assert d["telemetry"] is None

    def test_miss_intervals_reduced_to_count(self):
        program, __ = assemble_list_walk(32)
        res = simulate(program, small_config(), engine="none",
                       collect_miss_intervals=True)
        d = res.to_dict()
        assert d["hierarchy"]["miss_interval_count"] == len(
            res.hierarchy.miss_intervals
        )
        assert "miss_intervals" not in d["hierarchy"]


class TestSchemeRunToDict:
    def test_shape_and_normalization(self):
        from repro.workloads import workload_class

        runner = BenchmarkRunner(
            "health", small_config(), workload_class("health").test_params()
        )
        base = runner.run("base")
        run = runner.run("hardware", telemetry=Telemetry())
        d = run.to_dict(baseline_total=base.total)
        assert d["scheme"] == "hardware"
        assert d["memory"] == d["total"] - d["compute"]
        assert d["normalized"] == run.total / base.total
        assert d["result"]["telemetry"] is not None
        json.dumps(d)  # JSON-safe


class TestArtifactDocuments:
    def test_schema_stamp_and_kind(self):
        doc = artifact("stats", {"x": 1}, meta={"m": 2})
        assert doc["schema"] == "repro.stats/1"
        assert doc["meta"] == {"m": 2} and doc["x"] == 1
        assert schema_kind(doc) == "stats"
        assert schema_kind({"schema": "garbage"}) == ""
        assert schema_kind({}) == ""

    def test_dump_to_stream_and_path(self, tmp_path):
        doc = artifact("sim_result", {"cycles": 7})
        buf = io.StringIO()
        text = dump_json(doc, buf)
        assert json.loads(buf.getvalue()) == doc
        assert json.loads(text) == doc
        path = tmp_path / "a.json"
        dump_json(doc, str(path))
        assert load_json(str(path)) == doc
