"""Functional interpreter semantics."""

import pytest

from repro import Assembler, ExecutionError, Interpreter, run_to_completion
from repro.isa.registers import A0, T0, T1, T2, V0, ZERO


def _run_expr(emit):
    """Assemble `emit(a)` (leaving result in T2), run, return T2."""
    a = Assembler()
    a.label("main")
    emit(a)
    a.halt()
    return run_to_completion(a.assemble()).registers[T2]


class TestIntegerOps:
    @pytest.mark.parametrize(
        "op,x,y,expected",
        [
            ("add", 5, 7, 12),
            ("sub", 5, 7, -2),
            ("mul", -3, 4, -12),
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("sll", 3, 4, 48),
            ("srl", 48, 4, 3),
            ("slt", 3, 4, 1),
            ("slt", 4, 3, 0),
        ],
    )
    def test_rr_ops(self, op, x, y, expected):
        def emit(a):
            a.li(T0, x)
            a.li(T1, y)
            getattr(a, op)(T2, T0, T1)

        assert _run_expr(emit) == expected

    @pytest.mark.parametrize(
        "op,x,imm,expected",
        [
            ("addi", 10, -3, 7),
            ("andi", 0xFF, 0x0F, 0x0F),
            ("ori", 0xF0, 0x0F, 0xFF),
            ("xori", 0xFF, 0x0F, 0xF0),
            ("slli", 1, 10, 1024),
            ("srli", 1024, 10, 1),
            ("slti", 2, 5, 1),
            ("slti", 5, 2, 0),
        ],
    )
    def test_ri_ops(self, op, x, imm, expected):
        def emit(a):
            a.li(T0, x)
            getattr(a, op)(T2, T0, imm)

        assert _run_expr(emit) == expected

    def test_div_truncates_toward_zero(self):
        def emit(a):
            a.li(T0, -7)
            a.li(T1, 2)
            a.div(T2, T0, T1)

        assert _run_expr(emit) == -3

    def test_rem_matches_c_semantics(self):
        def emit(a):
            a.li(T0, -7)
            a.li(T1, 2)
            a.rem(T2, T0, T1)

        assert _run_expr(emit) == -1

    def test_div_by_zero_raises(self):
        a = Assembler()
        a.label("main")
        a.li(T0, 1)
        a.div(T2, T0, ZERO)
        a.halt()
        with pytest.raises(ExecutionError, match="division"):
            run_to_completion(a.assemble())


class TestFloatOps:
    @pytest.mark.parametrize(
        "op,x,y,expected",
        [
            ("fadd", 1.5, 2.25, 3.75),
            ("fsub", 1.5, 2.25, -0.75),
            ("fmul", 1.5, 2.0, 3.0),
            ("fdiv", 3.0, 2.0, 1.5),
            ("flt", 1.0, 2.0, 1),
            ("flt", 2.0, 1.0, 0),
            ("fle", 2.0, 2.0, 1),
            ("feq", 2.0, 2.0, 1),
            ("feq", 2.0, 2.5, 0),
        ],
    )
    def test_binary(self, op, x, y, expected):
        def emit(a):
            a.fli(T0, x)
            a.fli(T1, y)
            getattr(a, op)(T2, T0, T1)

        assert _run_expr(emit) == expected

    def test_fsqrt(self):
        def emit(a):
            a.fli(T0, 6.25)
            a.fsqrt(T2, T0)

        assert _run_expr(emit) == 2.5

    def test_fsqrt_negative_raises(self):
        a = Assembler()
        a.label("main")
        a.fli(T0, -1.0)
        a.fsqrt(T2, T0)
        a.halt()
        with pytest.raises(ExecutionError, match="FSQRT"):
            run_to_completion(a.assemble())

    def test_conversions(self):
        def emit(a):
            a.li(T0, 7)
            a.i2f(T1, T0)
            a.fli(T0, 0.5)
            a.fadd(T1, T1, T0)
            a.f2i(T2, T1)

        assert _run_expr(emit) == 7


class TestMemoryAndControl:
    def test_store_load_roundtrip(self):
        a = Assembler()
        buf = a.space(4)
        a.label("main")
        a.li(T0, buf)
        a.li(T1, 1234)
        a.sw(T1, T0, 8)
        a.lw(T2, T0, 8)
        a.halt()
        interp = run_to_completion(a.assemble())
        assert interp.registers[T2] == 1234
        assert interp.memory.load(buf + 8) == 1234

    def test_uninitialized_memory_reads_zero(self):
        a = Assembler()
        buf = a.space(1)
        a.label("main")
        a.li(T0, buf)
        a.lw(T2, T0, 0)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == 0

    def test_misaligned_load_raises(self):
        a = Assembler()
        a.label("main")
        a.li(T0, 0x1000_0002)
        a.lw(T2, T0, 0)
        a.halt()
        with pytest.raises(ExecutionError, match="misaligned"):
            run_to_completion(a.assemble())

    def test_zero_register_immutable(self):
        a = Assembler()
        a.label("main")
        a.li(ZERO, 99)
        a.add(T2, ZERO, ZERO)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == 0

    def test_alloc_returns_distinct_blocks(self):
        a = Assembler()
        a.label("main")
        a.alloc(T0, ZERO, 12)
        a.alloc(T1, ZERO, 12)
        a.sub(T2, T1, T0)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == 16

    def test_prefetch_is_functionally_inert(self):
        a = Assembler()
        w = a.word(5)
        a.label("main")
        a.li(T0, w)
        a.pf(T0, 0)
        a.jpf(T0, 0)
        a.lw(T2, T0, 0)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == 5

    def test_taken_and_not_taken_branches(self):
        a = Assembler()
        a.label("main")
        a.li(T0, 5)
        a.li(T2, 0)
        a.beq(T0, ZERO, "skip")  # not taken
        a.addi(T2, T2, 1)
        a.bne(T0, ZERO, "over")  # taken
        a.addi(T2, T2, 100)
        a.label("over")
        a.addi(T2, T2, 10)
        a.label("skip")
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == 11

    def test_infinite_loop_hits_budget(self):
        a = Assembler()
        a.label("main")
        a.j("main")
        a.halt()
        interp = Interpreter(a.assemble(), max_steps=1000)
        with pytest.raises(ExecutionError, match="budget"):
            for __ in interp.run():
                pass

    def test_pc_out_of_range_raises(self):
        a = Assembler()
        a.label("main")
        a.li(T0, 999)
        a.jr(T0)
        a.halt()
        with pytest.raises(ExecutionError, match="outside text"):
            run_to_completion(a.assemble())

    def test_recursion_fibonacci(self):
        a = Assembler()
        res = a.word(0)
        a.label("main")
        a.li(A0, 10)
        a.jal("fib")
        a.li(T0, res)
        a.sw(V0, T0, 0)
        a.halt()
        from repro.isa.registers import RA, S0, S1

        a.label("fib")
        a.slti(T0, A0, 2)
        a.beqz(T0, "fib_rec")
        a.mov(V0, A0)
        a.ret()
        a.label("fib_rec")
        a.push(RA, S0, S1)
        a.mov(S0, A0)
        a.addi(A0, S0, -1)
        a.jal("fib")
        a.mov(S1, V0)
        a.addi(A0, S0, -2)
        a.jal("fib")
        a.add(V0, V0, S1)
        a.pop(RA, S0, S1)
        a.ret()
        interp = run_to_completion(a.assemble())
        assert interp.memory.load(res) == 55
