"""TLB model: translation penalties and LRU replacement."""

from repro.config import TLBConfig
from repro.mem.tlb import TLB


def test_first_access_misses():
    tlb = TLB(TLBConfig(entries=4, miss_penalty=30))
    assert tlb.translate(0x1000) == 30
    assert tlb.translate(0x1004) == 0  # same page
    assert tlb.translate(0x1FFC) == 0
    assert tlb.translate(0x2000) == 30  # next page


def test_lru_replacement():
    tlb = TLB(TLBConfig(entries=2, miss_penalty=30))
    tlb.translate(0x0000)
    tlb.translate(0x1000)
    tlb.translate(0x0000)       # page 0 is MRU
    tlb.translate(0x2000)       # evicts page 1
    assert tlb.translate(0x0000) == 0
    assert tlb.translate(0x1000) == 30


def test_stats():
    tlb = TLB(TLBConfig(entries=4))
    for __ in range(3):
        tlb.translate(0x5000)
    assert tlb.stats.accesses == 3
    assert tlb.stats.misses == 1
    assert abs(tlb.stats.miss_ratio - 1 / 3) < 1e-12


def test_page_size_respected():
    tlb = TLB(TLBConfig(entries=8, page_size=8192, miss_penalty=10))
    assert tlb.translate(0x0000) == 10
    assert tlb.translate(0x1FFC) == 0       # still page 0 at 8K pages
    assert tlb.translate(0x2000) == 10
