"""On-disk result cache: keying, round-trips, corruption, counters."""

import json

import pytest

from repro import small_config
from repro.harness import (
    ResultCache,
    RunSpec,
    SweepPlan,
    code_fingerprint,
    figure5,
    spec_key,
)
from repro.obs import MetricRegistry
from repro.workloads import workload_class

TREEADD = workload_class("treeadd").test_params()


@pytest.fixture(scope="module")
def cfg():
    return small_config()


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeying:
    def test_fingerprint_is_stable_sha256(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0

    def test_key_covers_every_input(self, cfg):
        base = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        k = spec_key(base)
        assert k == spec_key(base)
        others = [
            RunSpec.make("power", "baseline", "none", cfg, TREEADD),
            RunSpec.make("treeadd", "sw:queue", "none", cfg, TREEADD),
            RunSpec.make("treeadd", "baseline", "dbp", cfg, TREEADD),
            RunSpec.make("treeadd", "baseline", "none", cfg.perfect(), TREEADD),
            RunSpec.make("treeadd", "baseline", "none", cfg,
                         {**TREEADD, "passes": 99}),
        ]
        keys = {k} | {spec_key(o) for o in others}
        assert len(keys) == len(others) + 1


class TestRoundTrip:
    def test_warm_run_reproduces_cold_scheme_runs(self, cfg, cache):
        def matrix():
            plan = SweepPlan(cfg)
            runs = [plan.add_run("treeadd", s, TREEADD)
                    for s in ("base", "software", "hardware")]
            results = plan.execute(cache=cache)
            return [results.scheme_run(sr) for sr in runs]

        cold = matrix()
        assert cache.hits == 0 and cache.writes > 0
        warm = matrix()
        assert cache.misses == cache.writes  # every miss was then stored
        assert cache.hits == cache.writes    # ...and served the re-run
        # SchemeRun and the nested SimResult are dataclasses: this is a
        # deep, field-by-field equality including all stats counters.
        assert warm == cold

    def test_figure5_rows_identical_cold_vs_warm(self, cfg, cache):
        kw = dict(benchmarks=("treeadd",), params={"treeadd": TREEADD},
                  cache=cache)
        assert figure5(cfg, **kw) == figure5(cfg, **kw)
        assert cache.hits > 0

    def test_miss_intervals_never_cached(self, cfg, cache):
        from repro.cpu.simulator import simulate
        from repro.workloads import get_workload
        program = get_workload("treeadd", **TREEADD).build("baseline").program
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        result = simulate(program, cfg, engine="none",
                          collect_miss_intervals=True)
        cache.put(spec, result)
        back = cache.get(spec)
        assert back.hierarchy.miss_intervals is None
        assert back.cycles == result.cycles


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cfg, cache):
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        path = cache.path(cache.key(spec))
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(spec) is None
        assert cache.stats()["invalid"] == 0  # unreadable, not schema-bad

    def test_unreadable_entry_counts_and_logs(self, cfg, cache, caplog):
        # Corruption/permission failures must never masquerade as a
        # plain cold miss: the read_errors counter and a warning naming
        # the path are the corruption drill's evidence.
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        path = cache.path(cache.key(spec))
        path.parent.mkdir(parents=True)
        path.write_text("{ truncated")
        with caplog.at_level("WARNING", logger="repro.harness.cache"):
            assert cache.get(spec) is None
        assert cache.read_errors == 1
        assert cache.stats()["read_errors"] == 1
        assert any(str(path) in rec.getMessage() for rec in caplog.records)

    def test_cold_miss_is_not_a_read_error(self, cfg, cache):
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        assert cache.get(spec) is None
        assert cache.read_errors == 0
        assert cache.misses == 1

    def test_read_error_counter_in_registry(self, cfg, tmp_path):
        registry = MetricRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        path = cache.path(cache.key(spec))
        path.parent.mkdir(parents=True)
        path.write_text("not even close")
        assert cache.get(spec) is None
        dump = registry.to_dict()
        assert dump["cache.read_errors"]["value"] == 1
        assert dump["cache.misses"]["value"] == 1

    def test_wrong_schema_is_invalid(self, cfg, cache):
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        path = cache.path(cache.key(spec))
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "repro.other/1", "result": {}}))
        assert cache.get(spec) is None
        assert cache.stats()["invalid"] == 1

    def test_counters_in_registry(self, cfg, tmp_path):
        registry = MetricRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        spec = RunSpec.make("treeadd", "baseline", "none", cfg, TREEADD)
        assert cache.get(spec) is None
        dump = registry.to_dict()
        assert dump["cache.misses"]["value"] == 1
        assert dump["cache.hits"]["value"] == 0
