"""Sparse memory image semantics."""

import pytest

from repro import ExecutionError
from repro.mem.memory_image import MemoryImage


def test_uninitialized_reads_zero():
    assert MemoryImage().load(0x1000) == 0


def test_store_load_roundtrip():
    m = MemoryImage()
    m.store(0x1000, 42)
    m.store(0x1004, 2.5)
    assert m.load(0x1000) == 42
    assert m.load(0x1004) == 2.5


def test_initial_contents():
    m = MemoryImage({0x100: 7})
    assert m.load(0x100) == 7
    assert 0x100 in m
    assert len(m) == 1


@pytest.mark.parametrize("addr", [0x1001, 0x1002, 0x1003, -4])
def test_misaligned_or_negative_rejected(addr):
    m = MemoryImage()
    with pytest.raises(ExecutionError):
        m.load(addr)
    with pytest.raises(ExecutionError):
        m.store(addr, 1)


def test_peek_skips_checks():
    m = MemoryImage()
    assert m.peek(0x1001) == 0  # no error


def test_copy_is_independent():
    m = MemoryImage({0x100: 1})
    c = m.copy()
    c.store(0x100, 2)
    c.store(0x104, 3)
    assert m.load(0x100) == 1
    assert m.load(0x104) == 0
