"""The declarative experiment-spec layer: parsing, validation, dict
round-trips, compilation onto the sweep machinery, bit-identical parity
with the bespoke experiment wrappers, and warm-cache reruns."""

import json

import pytest

from repro import small_config
from repro.harness import (
    Axis,
    ExperimentSpec,
    SpecError,
    SweepExecutor,
    ResultCache,
    WorkloadSel,
    compile_spec,
    figure4_spec,
    figure5_spec,
    figure6_spec,
    figure7_spec,
    load_spec,
    run_spec,
    spec_artifact,
    table1_spec,
)
from repro.harness.experiments import figure4, figure5, figure7, small_params

try:
    import tomllib  # noqa: F401
    HAVE_TOMLLIB = True
except ImportError:  # Python < 3.11
    HAVE_TOMLLIB = False

needs_toml = pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib (3.11+)")

SPEC_BUILDERS = {
    "examples/specs/table1.toml": table1_spec,
    "examples/specs/figure4.toml": figure4_spec,
    "examples/specs/figure5.toml": figure5_spec,
    "examples/specs/figure6.toml": figure6_spec,
    "examples/specs/figure7.toml": figure7_spec,
}


# ----------------------------------------------------------------------
# Parsing and round-trips
# ----------------------------------------------------------------------

class TestSpecFiles:
    @needs_toml
    @pytest.mark.parametrize("path", sorted(SPEC_BUILDERS))
    def test_shipped_file_equals_builder(self, path):
        # The shipped TOML and the wrapper's programmatic spec are the
        # same object — so `repro run-spec` and `repro figureN` can
        # never drift apart.
        assert load_spec(path) == SPEC_BUILDERS[path]()

    @needs_toml
    @pytest.mark.parametrize("path", sorted(SPEC_BUILDERS))
    def test_shipped_file_dict_round_trip(self, path):
        spec = load_spec(path)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        # ... and the dict form survives JSON.
        blob = json.dumps(spec.to_dict(), sort_keys=True)
        assert ExperimentSpec.from_dict(json.loads(blob)) == spec

    def test_json_spec_loads(self, tmp_path):
        spec = figure7_spec()
        path = tmp_path / "f7.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_spec(path) == spec

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(SpecError, match="yaml"):
            load_spec(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(tmp_path / "nope.json")


class TestSpecValidation:
    def test_unknown_spec_key(self):
        with pytest.raises(SpecError, match="workflows"):
            ExperimentSpec.from_dict({
                "name": "x", "workflows": [],
                "workloads": ["health"], "columns": ["benchmark", "scheme"],
            })

    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="kind"):
            ExperimentSpec(name="x", kind="figure99",
                           workloads=(WorkloadSel("health"),))

    def test_no_workloads(self):
        with pytest.raises(SpecError, match="no workloads"):
            ExperimentSpec(name="x", columns=("benchmark",))

    def test_matrix_needs_columns(self):
        with pytest.raises(SpecError, match="columns"):
            ExperimentSpec(name="x", workloads=(WorkloadSel("health"),))

    def test_unknown_column(self):
        with pytest.raises(SpecError, match="karma"):
            ExperimentSpec(name="x", workloads=(WorkloadSel("health"),),
                           columns=("benchmark", "karma"))

    def test_axis_name_is_a_valid_column(self):
        spec = ExperimentSpec(
            name="x", workloads=(WorkloadSel("health"),),
            axes=(Axis("lat", (1, 2), ("machine.memory_latency",)),),
            columns=("lat", "benchmark", "scheme", "total"),
        )
        assert "lat" in spec.columns

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecError, match="duplicate axis"):
            ExperimentSpec(
                name="x", workloads=(WorkloadSel("health"),),
                axes=(Axis("a", (1,), ("machine.memory_latency",)),
                      Axis("a", (2,), ("machine.memory_latency",))),
                columns=("benchmark", "scheme"),
            )

    def test_axis_needs_values_and_targets(self):
        with pytest.raises(SpecError, match="no values"):
            Axis("a", (), ("machine.memory_latency",))
        with pytest.raises(SpecError, match="no paths"):
            Axis("a", (1,), ())
        with pytest.raises(SpecError, match="must start"):
            Axis("a", (1,), ("memory_latency",))

    def test_workload_idiom_conflict(self):
        with pytest.raises(SpecError, match="one or the other"):
            WorkloadSel("health", idiom="queue", idioms=("queue",))

    def test_workload_unknown_impl(self):
        with pytest.raises(SpecError, match="unknown impl"):
            WorkloadSel("health", idioms=("queue",), impls=("jit",))

    def test_workload_entry_unknown_key(self):
        with pytest.raises(SpecError, match="idiots"):
            WorkloadSel.parse({"name": "health", "idiots": ["queue"]})

    def test_unknown_machine_at_compile(self):
        spec = ExperimentSpec(name="x", machine="cray",
                              workloads=(WorkloadSel("health"),),
                              columns=("benchmark", "scheme"))
        with pytest.raises(Exception, match="cray"):
            compile_spec(spec)

    def test_unknown_scheme_at_compile(self):
        spec = ExperimentSpec(name="x", workloads=(WorkloadSel("health"),),
                              schemes=("base", "quantum"),
                              columns=("benchmark", "scheme"))
        with pytest.raises(Exception, match="quantum"):
            compile_spec(spec)

    def test_bad_override_path_at_compile(self):
        spec = ExperimentSpec(name="x", workloads=(WorkloadSel("health"),),
                              overrides={"warp.factor": 9},
                              columns=("benchmark", "scheme"))
        with pytest.raises(Exception, match="warp"):
            compile_spec(spec)

    def test_with_machine_rejects_unknown(self):
        with pytest.raises(SpecError, match="cray"):
            figure5_spec().with_machine("cray")


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

class TestCompile:
    def test_dedup_shares_cells(self):
        # 5 schemes -> 5 timing cells but only 3 distinct program
        # variants' compute cells; base/hardware/dbp share "baseline".
        spec = figure5_spec(benchmarks=("treeadd",),
                            params={"treeadd": small_params("treeadd")})
        compiled = compile_spec(spec, small_config())
        assert compiled.cell_count == 5 + 3

    def test_axes_cross_product_order(self):
        spec = figure7_spec(latencies=(70, 280), intervals=(8, 16))
        compiled = compile_spec(spec, small_config())
        points = [(r.axis["latency"], r.axis["interval"])
                  for r in compiled.rows]
        # first axis outermost, 5 scheme rows per point
        assert points[0] == (70, 8) and points[5] == (70, 16)
        assert points[10] == (280, 8) and points[15] == (280, 16)

    def test_overrides_apply_to_machine(self):
        spec = ExperimentSpec(
            name="x", workloads=(WorkloadSel("health"),),
            overrides={"memory_latency": 123},
            columns=("benchmark", "scheme"),
        )
        compiled = compile_spec(spec, small_config())
        assert compiled.cfg.memory_latency == 123


# ----------------------------------------------------------------------
# Execution parity with the bespoke wrappers (bit-identical rows)
# ----------------------------------------------------------------------

class TestParity:
    def test_figure5_rows_bit_identical(self):
        cfg = small_config()
        params = {"treeadd": small_params("treeadd"),
                  "health": small_params("health")}
        direct = figure5(cfg, benchmarks=("treeadd", "health"), params=params)
        via_spec = run_spec(
            figure5_spec(benchmarks=("treeadd", "health"), params=params),
            cfg=cfg)
        assert direct == via_spec

    def test_figure4_rows_bit_identical(self):
        cfg = small_config()
        subjects = {"mst": ("queue", "root")}
        params = {"mst": small_params("mst")}
        direct = figure4(cfg, subjects=subjects, params=params)
        via_spec = run_spec(figure4_spec(subjects, params), cfg=cfg)
        assert direct == via_spec
        assert direct[0]["config"] == "base"
        assert direct[0]["normalized"] == 1.0

    def test_figure7_axis_rows_bit_identical(self):
        cfg = small_config()
        params = small_params("health")
        direct = figure7(cfg, latencies=(70,), intervals=(4,), params=params)
        via_spec = run_spec(
            figure7_spec(latencies=(70,), intervals=(4,), params=params),
            cfg=cfg)
        assert direct == via_spec
        assert all(r["latency"] == 70 and r["interval"] == 4 for r in direct)

    @needs_toml
    def test_spec_file_small_matches_wrapper(self):
        # The shipped figure5 file, cut down to one workload at test
        # size, produces the wrapper's exact rows.
        import dataclasses
        cfg = small_config()
        spec = load_spec("examples/specs/figure5.toml")
        spec = dataclasses.replace(
            spec, workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd")),))
        rows = run_spec(spec, cfg=cfg)
        assert rows == figure5(cfg, benchmarks=("treeadd",),
                               params={"treeadd": small_params("treeadd")})


# ----------------------------------------------------------------------
# Caching: a warm rerun performs zero simulations
# ----------------------------------------------------------------------

class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        spec = figure5_spec(benchmarks=("treeadd",),
                            params={"treeadd": small_params("treeadd")})
        cfg = small_config()

        cold = SweepExecutor(cache=ResultCache(tmp_path))
        rows_cold = run_spec(spec, cfg=cfg, executor=cold)
        assert cold.stats()["executed"] == 8

        warm = SweepExecutor(cache=ResultCache(tmp_path))
        rows_warm = run_spec(spec, cfg=cfg, executor=warm)
        assert warm.stats()["executed"] == 0  # every cell cache-served
        assert rows_warm == rows_cold

    def test_spec_overrides_address_distinct_cache_entries(self, tmp_path):
        base = ExperimentSpec(
            name="x", workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd")),),
            schemes=("base",), columns=("benchmark", "scheme", "total"),
        )
        varied = ExperimentSpec.from_dict(
            {**base.to_dict(), "overrides": {"memory_latency": 280}})
        cfg = small_config()

        first = SweepExecutor(cache=ResultCache(tmp_path))
        run_spec(base, cfg=cfg, executor=first)
        second = SweepExecutor(cache=ResultCache(tmp_path))
        run_spec(varied, cfg=cfg, executor=second)
        # The override changes the machine, so nothing may be reused.
        assert second.stats()["executed"] > 0


# ----------------------------------------------------------------------
# The mshr_model machine axis through the spec/serde layer
# ----------------------------------------------------------------------

class TestMshrModelAxis:
    def test_with_overrides_rejects_unknown_model(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="writethru"):
            small_config().with_overrides({"mshr_model": "writethru"})

    def test_from_dict_rejects_unknown_model(self):
        from repro.config import MachineConfig
        from repro.errors import ConfigError
        doc = small_config().to_dict()
        doc["mshr_model"] = "nope"
        with pytest.raises(ConfigError, match="nope"):
            MachineConfig.from_dict(doc)

    @pytest.mark.parametrize("model", ["blocking", "coalescing", "full"])
    def test_serde_round_trip(self, model):
        from repro.config import MachineConfig
        cfg = small_config().with_overrides({"mshr_model": model})
        assert cfg.mshr_model == model
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_mshr_axis_spec_round_trips(self):
        spec = ExperimentSpec(
            name="mshr-x", label_key="scheme",
            workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd")),),
            schemes=("base",),
            axes=(Axis(name="mshr",
                       values=("blocking", "coalescing", "full"),
                       set=("machine.mshr_model",)),),
            columns=("benchmark", "mshr", "scheme", "total"),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_mshr_cells_never_share_cache_entries(self, tmp_path):
        # Cached blocking results must never be served for coalescing
        # cells: the model is part of the config hash / cache key.
        base = ExperimentSpec(
            name="x", workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd")),),
            schemes=("base",), columns=("benchmark", "scheme", "total"),
        )
        varied = ExperimentSpec.from_dict(
            {**base.to_dict(), "overrides": {"mshr_model": "coalescing"}})
        cfg = small_config()

        first = SweepExecutor(cache=ResultCache(tmp_path))
        run_spec(base, cfg=cfg, executor=first)
        second = SweepExecutor(cache=ResultCache(tmp_path))
        run_spec(varied, cfg=cfg, executor=second)
        assert second.stats()["executed"] > 0


# ----------------------------------------------------------------------
# Error rows and artifacts
# ----------------------------------------------------------------------

class TestErrorsAndArtifacts:
    def test_missing_variant_becomes_error_row(self):
        # treeadd has no root idiom: scheme-mode planning fails the
        # whole compile (scheme_plan raises inside add_run) only if the
        # variant is missing — use idiom pinning to trigger it.
        spec = ExperimentSpec(
            name="x", workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd"), idiom="root"),),
            schemes=("software",), columns=("benchmark", "scheme", "total"),
        )
        with pytest.raises(Exception, match="root"):
            compile_spec(spec, small_config())

    def test_idiom_expansion_skips_missing_variants(self):
        spec = ExperimentSpec(
            name="x", label_key="config",
            workloads=(WorkloadSel(
                "treeadd", params=small_params("treeadd"),
                idioms=("queue", "root")),),
            columns=("benchmark", "config", "normalized"),
        )
        rows = run_spec(spec, cfg=small_config())
        configs = [r["config"] for r in rows]
        # base + sw:queue + coop:queue; no treeadd root variants exist.
        assert configs == ["base", "sw:queue", "coop:queue"]

    def test_artifact_embeds_spec(self):
        spec = figure7_spec(latencies=(70,), intervals=(4,))
        rows = [{"latency": 70, "interval": 4, "scheme": "base"}]
        doc = spec_artifact(spec, rows, meta={"source": "test"})
        assert doc["schema"] == "repro.experiment/1"
        assert doc["meta"]["source"] == "test"
        assert doc["rows"] == rows
        # Provenance: the embedded spec reloads to the original.
        assert ExperimentSpec.from_dict(doc["spec"]) == spec
