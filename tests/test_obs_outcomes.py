"""Prefetch-outcome classification: the shared classifier, the tracker's
state machine, and end-to-end accounting on hand-built programs."""

from repro import Assembler, Telemetry, simulate
from repro.isa.registers import T0, T1
from repro.obs import (
    DROPPED,
    EARLY,
    EARLY_EVICTED,
    LATE,
    OUTCOMES,
    TIMELY,
    USELESS,
    MetricRegistry,
    OutcomeTracker,
    classify_timeliness,
)

from tests.conftest import assemble_list_walk


class TestClassifier:
    def test_late_when_demand_precedes_fill(self):
        assert classify_timeliness(100, 150) == LATE

    def test_timely_when_fill_precedes_demand(self):
        assert classify_timeliness(150, 100) == TIMELY
        assert classify_timeliness(100, 100) == TIMELY  # same cycle: data there

    def test_early_only_with_slack(self):
        assert classify_timeliness(1000, 100) == TIMELY
        assert classify_timeliness(1000, 100, early_slack=800) == EARLY
        assert classify_timeliness(900, 100, early_slack=800) == TIMELY


class TestOutcomeTracker:
    def test_timely_and_late_demand(self):
        t = OutcomeTracker()
        t.record_issue(0x100, "jump", 7, issue=10, fill=50)
        t.record_issue(0x200, "chained", 9, issue=10, fill=50)
        assert t.on_demand(0x100, 60) == TIMELY
        assert t.on_demand(0x200, 40) == LATE
        assert t.counts[TIMELY] == 1 and t.counts[LATE] == 1
        assert t.by_kind["jump"][TIMELY] == 1
        assert t.by_pc[9][LATE] == 1

    def test_demand_on_untracked_line_is_noop(self):
        t = OutcomeTracker()
        assert t.on_demand(0x999, 5) is None
        assert t.total == 0

    def test_evicted_before_use(self):
        t = OutcomeTracker()
        t.record_issue(0x100, "sw", None, issue=0, fill=10)
        assert t.on_evict(0x100) == EARLY_EVICTED
        assert t.on_evict(0x100) is None  # already resolved
        assert t.counts[EARLY_EVICTED] == 1

    def test_finalize_marks_unused_as_useless(self):
        t = OutcomeTracker()
        t.record_issue(0x100, "jump", 3, issue=0, fill=10)
        t.record_issue(0x200, "jump", 3, issue=0, fill=10)
        t.on_demand(0x100, 20)
        t.finalize()
        assert t.counts[USELESS] == 1
        assert t.counts[TIMELY] == 1

    def test_superseded_issue_counts_useless(self):
        t = OutcomeTracker()
        t.record_issue(0x100, "jump", 1, issue=0, fill=10)
        t.record_issue(0x100, "chained", 2, issue=100, fill=110)
        assert t.counts[USELESS] == 1  # the first fetch did nothing
        assert t.on_demand(0x100, 120) == TIMELY

    def test_dropped(self):
        t = OutcomeTracker()
        t.record_drop("chained", 5)
        assert t.counts[DROPPED] == 1
        assert t.by_pc[5][DROPPED] == 1

    def test_distance_histogram_via_registry(self):
        reg = MetricRegistry()
        t = OutcomeTracker(reg)
        t.record_issue(0x100, "jump", 1, issue=0, fill=10)
        t.on_demand(0x100, 74)
        h = reg.get("prefetch.to_demand_distance_cycles")
        assert h.count == 1 and h.sum == 64

    def test_to_dict_shape(self):
        t = OutcomeTracker()
        t.record_drop("jump", 4)
        d = t.to_dict()
        assert set(d) == {"counts", "issued", "dropped", "by_kind", "by_pc"}
        assert set(d["counts"]) == set(OUTCOMES)
        assert d["dropped"] == 1 and d["issued"] == 0
        assert d["by_pc"]["4"][DROPPED] == 1  # JSON-safe string keys


class TestEndToEnd:
    def test_software_prefetch_timely_on_straightline(self, tiny_cfg):
        # PF far enough ahead of the demand load that the fill completes:
        # exactly one prefetch, classified timely.
        a = Assembler()
        target = a.space(64)
        a.label("main")
        a.li(T0, target)
        a.pf(T0, 0)
        for __ in range(150):
            a.nop()
        a.lw(T1, T0, 0)
        a.halt()
        tele = Telemetry()
        res = simulate(a.assemble(), tiny_cfg, engine="software", telemetry=tele)
        assert tele.outcomes.counts[TIMELY] == 1
        assert tele.outcomes.total == 1
        assert res.telemetry["prefetch_outcomes"]["counts"][TIMELY] == 1

    def test_software_prefetch_late_when_demand_is_adjacent(self, tiny_cfg):
        # Demand load issues immediately after the PF: fill still in flight.
        a = Assembler()
        target = a.space(64)
        a.label("main")
        a.li(T0, target)
        a.pf(T0, 0)
        a.lw(T1, T0, 0)
        a.halt()
        tele = Telemetry()
        simulate(a.assemble(), tiny_cfg, engine="software", telemetry=tele)
        assert tele.outcomes.counts[LATE] == 1

    def test_software_prefetch_useless_when_never_touched(self, tiny_cfg):
        a = Assembler()
        target = a.space(64)
        a.label("main")
        a.li(T0, target)
        a.pf(T0, 0)
        for __ in range(150):
            a.nop()
        a.halt()
        tele = Telemetry()
        simulate(a.assemble(), tiny_cfg, engine="software", telemetry=tele)
        assert tele.outcomes.counts[USELESS] == 1

    def test_outcomes_consistent_with_hierarchy_counters(self, tiny_cfg):
        # On a real traversal, every issued prefetch resolves to exactly
        # one outcome, and demand-use outcomes mirror prefetches_useful.
        program, __ = assemble_list_walk(64)
        tele = Telemetry()
        res = simulate(program, tiny_cfg, engine="dbp", telemetry=tele)
        c = tele.outcomes.counts
        issued = res.hierarchy.prefetches_issued
        assert issued > 0
        assert c[TIMELY] + c[LATE] + c[EARLY_EVICTED] + c[USELESS] == issued
        # prefetches_useful counts demand *hits* (a late prefetch can be
        # hit both in flight and at the pb install); the tracker counts
        # each *prefetch* exactly once.
        assert 0 < c[TIMELY] + c[LATE] <= res.hierarchy.prefetches_useful
        assert c[DROPPED] == res.engine.prq_drops

    def test_hardware_engine_attributes_outcomes_per_pc(self, tiny_cfg):
        from tests.test_engines import walk_twice

        program, __ = walk_twice(64)
        tele = Telemetry()
        res = simulate(program, tiny_cfg, engine="hardware", telemetry=tele)
        assert res.engine.jump_prefetches > 0
        assert "jump" in tele.outcomes.by_kind
        assert tele.outcomes.by_pc  # attributed to triggering load PCs
