"""Software jump-queue creation code (the queue method, Section 2.1)."""

import pytest

from repro import Assembler, run_to_completion
from repro.core.jump_queue import (
    SoftwareJumpQueue,
    emit_cooperative_prefetch,
    emit_software_prefetch,
)
from repro.isa.opcodes import Op
from repro.isa.registers import A0, T0, T1, T2, T3, T4, ZERO

JP_OFF = 8


def run_queue_program(n_nodes, interval, reverse=False, extra_value=None):
    """Allocate nodes in order, calling queue.update at each; returns
    (node_addresses, memory)."""
    a = Assembler()
    queue = SoftwareJumpQueue(a, interval, "q")
    table = a.space(n_nodes)
    a.label("main")
    a.li(T4, 0)
    a.label("loop")
    a.li(T0, n_nodes)
    a.bge(T4, T0, "end")
    a.alloc(A0, ZERO, 12)
    a.slli(T0, T4, 2)
    a.addi(T0, T0, table)
    a.sw(A0, T0, 0)
    if extra_value is not None:
        a.li(T3, extra_value)
        queue.update(A0, JP_OFF, T0, T1, T2, extra=[(12, T3)])
    else:
        queue.update(A0, JP_OFF, T0, T1, T2, reverse=reverse)
    a.addi(T4, T4, 1)
    a.j("loop")
    a.label("end")
    a.halt()
    interp = run_to_completion(a.assemble())
    addrs = [interp.memory.load(table + 4 * i) for i in range(n_nodes)]
    return addrs, interp.memory


@pytest.mark.parametrize("interval", [1, 2, 4, 8])
def test_jump_pointers_point_interval_ahead(interval):
    addrs, mem = run_queue_program(20, interval)
    for i, addr in enumerate(addrs):
        jp = mem.load(addr + JP_OFF)
        if i + interval < len(addrs):
            assert jp == addrs[i + interval], f"node {i}"
    # last `interval` nodes never become homes
    for addr in addrs[-interval:]:
        assert mem.load(addr + JP_OFF) == 0


def test_reverse_mode_points_backward_in_creation_order():
    addrs, mem = run_queue_program(12, 4, reverse=True)
    for i, addr in enumerate(addrs):
        jp = mem.load(addr + JP_OFF)
        if i >= 4:
            assert jp == addrs[i - 4]
        else:
            assert jp == 0


def test_extra_stores_reach_home_node():
    addrs, mem = run_queue_program(10, 2, extra_value=0xABCD)
    for i in range(len(addrs) - 2):
        assert mem.load(addrs[i] + 12) == 0xABCD


def test_interval_must_be_power_of_two():
    a = Assembler()
    with pytest.raises(ValueError):
        SoftwareJumpQueue(a, 3)
    with pytest.raises(ValueError):
        SoftwareJumpQueue(a, 0)


def test_reset_clears_state():
    a = Assembler()
    queue = SoftwareJumpQueue(a, 2, "q")
    a.label("main")
    a.alloc(A0, ZERO, 12)
    queue.update(A0, JP_OFF, T0, T1, T2)
    queue.reset(T0)
    a.alloc(T3, ZERO, 12)
    # after reset the first update installs nothing (queue refilling)
    queue.update(T3, JP_OFF, T0, T1, T2)
    a.halt()
    interp = run_to_completion(a.assemble())
    first = interp.allocator._regions[16]
    assert interp.memory.load(first + JP_OFF) == 0


def test_prefetch_emitters():
    a = Assembler()
    a.label("main")
    emit_software_prefetch(a, A0, JP_OFF, T0)
    emit_cooperative_prefetch(a, A0, JP_OFF)
    a.halt()
    ops = [i.op for i in a.assemble().instructions]
    assert ops[:3] == [Op.LW, Op.PF, Op.JPF]


def test_update_cost_is_small():
    """The queue method costs ~11 instructions per visit (the explicit
    creation overhead the paper accounts for)."""
    a = Assembler()
    queue = SoftwareJumpQueue(a, 8, "q")
    start = a.here
    queue.update(A0, JP_OFF, T0, T1, T2)
    assert a.here - start <= 11
