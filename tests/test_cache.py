"""Set-associative cache model: LRU, eviction, dirty tracking."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import Cache


def small_cache(assoc=2, sets=4, line=32):
    return Cache(CacheConfig(size=line * assoc * sets, line=line, assoc=assoc, latency=1))


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x100)
        c.fill(0x100)
        assert c.access(0x100)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_words(self):
        c = small_cache()
        c.fill(0x100)
        assert c.access(0x104)
        assert c.access(0x11C)
        assert not c.access(0x120)  # next line

    def test_probe_does_not_touch_stats_or_lru(self):
        c = small_cache()
        c.fill(0x100)
        before = (c.stats.accesses, c.stats.hits, c.stats.misses)
        assert c.probe(0x100)
        assert not c.probe(0x200)
        assert (c.stats.accesses, c.stats.hits, c.stats.misses) == before

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0x000)
        c.fill(0x020)
        c.access(0x000)          # 0x000 is now MRU
        evicted, __ = c.fill(0x040)
        assert evicted == 0x020

    def test_dirty_eviction_reported(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0x000, dirty=True)
        evicted, dirty = c.fill(0x020)
        assert evicted == 0x000 and dirty
        assert c.stats.writebacks == 1

    def test_clean_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0x000)
        __, dirty = c.fill(0x020)
        assert not dirty

    def test_write_access_sets_dirty(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0x000)
        c.access(0x000, write=True)
        __, dirty = c.fill(0x020)
        assert dirty

    def test_invalidate(self):
        c = small_cache()
        c.fill(0x100, dirty=True)
        assert c.invalidate(0x104)
        assert not c.probe(0x100)
        assert not c.invalidate(0x100)

    def test_refill_existing_line_no_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0x000)
        evicted, dirty = c.fill(0x000, dirty=True)
        assert evicted is None
        __, was_dirty = c.fill(0x020)
        assert was_dirty  # the refill marked it dirty

    def test_set_isolation(self):
        c = small_cache(assoc=1, sets=4)
        c.fill(0x000)
        c.fill(0x020)  # different set
        assert c.probe(0x000) and c.probe(0x020)


class _ReferenceLRU:
    """Oracle: per-set OrderedDict LRU."""

    def __init__(self, assoc, sets, line):
        self.assoc, self.sets, self.line = assoc, sets, line
        self.data = [OrderedDict() for __ in range(sets)]

    def _set(self, addr):
        line = addr // self.line * self.line
        return line, (addr // self.line) % self.sets

    def access(self, addr):
        line, s = self._set(addr)
        if line in self.data[s]:
            self.data[s].move_to_end(line)
            return True
        return False

    def fill(self, addr):
        line, s = self._set(addr)
        if line in self.data[s]:
            self.data[s].move_to_end(line)
            return
        if len(self.data[s]) >= self.assoc:
            self.data[s].popitem(last=False)
        self.data[s][line] = True


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=400))
@settings(max_examples=60, deadline=None)
def test_matches_reference_lru(addresses):
    c = small_cache(assoc=2, sets=4)
    ref = _ReferenceLRU(assoc=2, sets=4, line=32)
    for raw in addresses:
        addr = raw * 4
        got = c.access(addr)
        want = ref.access(addr)
        assert got == want
        if not got:
            c.fill(addr)
            ref.fill(addr)


@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=500))
@settings(max_examples=40, deadline=None)
def test_capacity_never_exceeded(addresses):
    c = small_cache(assoc=4, sets=8)
    for raw in addresses:
        c.fill(raw * 4)
        assert c.resident_lines() <= 4 * 8
