"""Out-of-order timing model behaviour on controlled programs."""

from repro import Assembler, simulate, simulate_decomposed
from repro.cpu.timing import TimingModel, heap_range
from repro.isa.program import HEAP_BASE
from repro.isa.registers import A0, T0, T1, T2, T3, T4, T5, ZERO

from tests.conftest import assemble_list_walk, assemble_loop_sum


def _program(emit, n_pad_nops=0):
    a = Assembler()
    a.label("main")
    emit(a)
    for __ in range(n_pad_nops):
        a.nop()
    a.halt()
    return a.assemble()


class TestDataflow:
    def test_dependent_chain_serializes(self, cfg):
        """A chain of dependent multiplies costs ~n * latency."""
        n = 40

        def chain(a):
            a.li(T0, 3)
            for __ in range(n):
                a.mul(T0, T0, T0)
                a.andi(T0, T0, 0xFFFF)

        res = simulate(_program(chain), cfg)
        # each pair mul(3)+andi(1) is serial: >= 4 cycles per iteration
        assert res.cycles >= n * 4

    def test_independent_ops_overlap(self, cfg):
        """Independent multiplies pipeline through the single multiplier."""
        n = 40

        def indep(a):
            for i in range(n):
                a.li(T0 + i % 4, i)
                a.mul(T0 + i % 4, T0 + i % 4, T0 + i % 4)

        def dep(a):
            a.li(T0, 3)
            for __ in range(n):
                a.mul(T0, T0, T0)
                a.andi(T0, T0, 0xFFFF)  # keep values bounded

        dep_cycles = simulate(_program(dep), cfg).cycles
        indep_cycles = simulate(_program(indep), cfg).cycles
        assert indep_cycles < dep_cycles

    def test_issue_width_bounds_ipc(self, cfg):
        res = simulate(_program(lambda a: [a.addi(T0, ZERO, 1) for __ in range(400)]), cfg)
        assert res.ipc <= cfg.issue_width + 0.5

    def test_ipc_reasonable_for_simple_loop(self, cfg):
        program, res_addr = assemble_loop_sum(200)
        res = simulate(program, cfg)
        assert 0.3 < res.ipc <= 4.0


class TestMemoryBehaviour:
    def test_cold_misses_dominate_list_walk(self, tiny_cfg):
        program, __ = assemble_list_walk(64)
        real, dec = simulate_decomposed(program, tiny_cfg)
        assert dec.memory > dec.compute  # pointer chase is memory bound
        assert real.lds_loads > 0

    def test_perfect_memory_faster(self, tiny_cfg):
        program, __ = assemble_list_walk(64)
        real = simulate(program, tiny_cfg)
        perfect = simulate(program, tiny_cfg.perfect())
        assert perfect.cycles < real.cycles

    def test_store_to_load_forwarding(self, cfg):
        """A load right after a store to the same address is fast."""

        def emit(a):
            buf = a.word(0)
            a.li(T0, buf)
            a.li(T1, 5)
            # long-latency producer for the store data
            a.li(T2, 7)
            for __ in range(3):
                a.mul(T2, T2, T2)
                a.andi(T2, T2, 0xFFFF)
            a.sw(T2, T0, 0)
            a.lw(T3, T0, 0)   # forwards from the store
            a.add(T4, T3, T3)

        res = simulate(_program(emit), cfg)
        assert res.cycles < 200

    def test_loads_wait_for_prior_store_addresses(self, cfg):
        """A load cannot issue before an earlier store's address resolves."""

        def emit(a):
            buf = a.array([1, 2])
            a.li(T0, buf)
            a.li(T5, 3)
            for __ in range(4):  # slow address computation
                a.mul(T5, T5, T5)
                a.andi(T5, T5, 4)  # word-aligned: 0 or 4
            a.add(T1, T0, T5)
            a.sw(ZERO, T1, 0)       # store with late-resolving address
            a.lw(T2, T0, 4)         # independent load must still wait

        def emit_no_store(a):
            buf = a.array([1, 2])
            a.li(T0, buf)
            a.li(T5, 3)
            for __ in range(4):
                a.mul(T5, T5, T5)
                a.andi(T5, T5, 4)  # word-aligned: 0 or 4
            a.add(T1, T0, T5)
            a.lw(T2, T0, 4)

        with_store = simulate(_program(emit, n_pad_nops=0), cfg).cycles
        without = simulate(_program(emit_no_store), cfg).cycles
        assert with_store >= without

    def test_stall_attribution_sums_to_cycles(self, cfg):
        program, __ = assemble_list_walk(32)
        model = TimingModel(program, cfg, attribute_stalls=True)
        res = model.run()
        assert sum(model.stall_attribution.values()) == res.cycles


class TestControlFlow:
    def test_predictable_loop_cheap(self, cfg):
        program, __ = assemble_loop_sum(500)
        res = simulate(program, cfg)
        assert res.branch.mispredict_ratio < 0.05

    def test_data_dependent_branches_mispredict(self, cfg):
        """Pseudo-random branch directions cause mispredictions."""

        def emit(a):
            a.li(T0, 12345)
            a.li(T1, 200)       # iterations
            a.li(T2, 0)
            a.label("loop")
            a.li(T3, 1103515245)
            a.mul(T0, T0, T3)
            a.addi(T0, T0, 12345)
            a.andi(T0, T0, 0x7FFFFFFF)
            a.srli(T3, T0, 13)
            a.andi(T3, T3, 1)
            a.beqz(T3, "skip")
            a.addi(T2, T2, 1)
            a.label("skip")
            a.addi(T1, T1, -1)
            a.bnez(T1, "loop")
            a.halt()

        a = Assembler()
        a.label("main")
        emit(a)
        res = simulate(a.assemble(), cfg)
        assert res.branch.cond_mispredicts > 20

    def test_calls_and_returns_predicted(self, cfg):
        a = Assembler()
        a.label("main")
        a.li(T0, 100)
        a.label("loop")
        a.jal("leaf")
        a.addi(T0, T0, -1)
        a.bnez(T0, "loop")
        a.halt()
        a.label("leaf")
        a.addi(T1, T1, 1)
        a.ret()
        res = simulate(a.assemble(), cfg)
        assert res.branch.return_mispredicts <= 2

    def test_mispredicts_cost_cycles(self, cfg):
        """The same instruction mix runs slower with unpredictable branches."""

        def body(a, predictable):
            a.li(T0, 98765)
            a.li(T1, 300)
            a.li(T2, 0)
            a.label("loop")
            a.li(T3, 1103515245)
            a.mul(T0, T0, T3)
            a.addi(T0, T0, 12345)
            a.andi(T0, T0, 0x7FFFFFFF)
            if predictable:
                a.li(T3, 0)
            else:
                a.srli(T3, T0, 13)
                a.andi(T3, T3, 1)
            a.beqz(T3, "skip")
            a.addi(T2, T2, 1)
            a.label("skip")
            a.addi(T1, T1, -1)
            a.bnez(T1, "loop")
            a.halt()

        progs = []
        for predictable in (True, False):
            a = Assembler()
            a.label("main")
            body(a, predictable)
            progs.append(a.assemble())
        fast = simulate(progs[0], cfg)
        slow = simulate(progs[1], cfg)
        # account for the two-instruction difference in loop body
        assert slow.cycles > fast.cycles - 600


def test_heap_range_covers_allocator():
    lo, hi = heap_range(HEAP_BASE)
    assert lo == HEAP_BASE
    assert hi > HEAP_BASE + (1 << 24)


class TestPeriodicDue:
    """Regression for the truthy-at-zero pruning predicate: periodic
    maintenance must never fire at commit zero (``0 % n == 0`` is truthy
    as a modulus test but commit 0 has nothing to prune or audit)."""

    def test_never_due_at_zero(self):
        from repro.cpu.timing import periodic_due

        assert not periodic_due(0, 64)
        assert not periodic_due(0, 1)

    def test_due_exactly_on_multiples(self):
        from repro.cpu.timing import periodic_due

        assert periodic_due(64, 64)
        assert periodic_due(128, 64)
        assert not periodic_due(63, 64)
        assert not periodic_due(65, 64)

    def test_interval_one_fires_every_commit_after_zero(self):
        from repro.cpu.timing import periodic_due

        assert [n for n in range(5) if periodic_due(n, 1)] == [1, 2, 3, 4]

    def test_issued_at_bookkeeping_stays_bounded(self, tiny_cfg):
        # End-to-end: a long run must not accumulate an issue-slot entry
        # per dynamic instruction (the map is pruned behind the window).
        from repro.cpu.timing import (
            _ISSUED_AT_PRUNE_INTERVAL,
            _ISSUED_AT_PRUNE_THRESHOLD,
        )

        assert _ISSUED_AT_PRUNE_THRESHOLD + _ISSUED_AT_PRUNE_INTERVAL > 0
        program, __ = assemble_loop_sum(200)
        from repro import simulate
        from repro.audit import Auditor

        auditor = Auditor(interval=256, strict=True)
        simulate(program, tiny_cfg, audit=auditor)
        assert auditor.ok  # includes the issued-at-bound invariant
