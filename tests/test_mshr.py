"""The MSHR model axis: coalescing, hit-under-miss, write-back contention.

Four layers of pinning for ``MachineConfig.mshr_model``:

* unit tests against a bare :class:`MemoryHierarchy` — secondary misses
  join the in-flight entry (no new MSHR, no bus re-walk), demand joins
  promote background fills, prefetches reclassify redundant → coalesced,
  critical-word fill beats the full-line time, dirty-victim write-backs
  occupy demand bus slots;
* the MSHR conservation laws — each law fires on a targeted corruption
  and stays silent under ``blocking`` (where the entry table is inert),
  plus the fault-injection drills (:func:`corrupt_mshr_tracker` directly
  and routed through ``audit_workloads`` via the ``corrupt`` selector);
* Hypothesis engine-equivalence — random list-walk programs × all three
  sim engines × all three models: identical commit streams and
  field-identical SimResults;
* Hypothesis monotonicity — on store-free pointer chases (no dirty lines,
  so write-back traffic cannot penalize the non-blocking models),
  ``cycles(full) <= cycles(coalescing) <= cycles(blocking)``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, MachineConfig
from repro.audit import Auditor, audit_workloads, corrupt_mshr_tracker
from repro.audit.diff import diff_all_engines, diff_results, reference_simulate
from repro.config import CacheConfig, small_config
from repro.cpu.simulator import simulate
from repro.harness.faults import parse_fault_plan
from repro.isa.registers import A0, T2, V0
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs import Telemetry
from tests.conftest import assemble_list_walk

ADDR = 0x2000_0000

MODELS = ("blocking", "coalescing", "full")


def tiny(model: str) -> MachineConfig:
    return MachineConfig(
        il1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=2048, line=64, assoc=4, latency=12),
        mshr_model=model,
    )


def hier(model: str) -> MemoryHierarchy:
    return MemoryHierarchy(tiny(model))


def static_walk_program(n: int, pad: int):
    """A store-free pointer chase over ``n`` nodes laid out at assembly
    time (``pad`` spacer words between nodes).  No build-phase stores →
    no dirty lines → the write-back path is inert, which is what makes
    the cross-model cycle ordering provable rather than merely typical.
    """
    a = Assembler()
    nxt = 0
    for i in range(n):  # tail-to-head so each next pointer is known
        addr = a.word(i + 1)  # payload
        a.word(nxt)           # next pointer (0 terminates)
        for _ in range(pad):
            a.word(0)
        nxt = addr
    a.label("main")
    a.li(A0, nxt)
    a.li(T2, 0)
    a.label("wloop")
    a.beqz(A0, "done")
    a.lw(V0, A0, 0, tag="lds")
    a.add(T2, T2, V0)
    a.lw(A0, A0, 4, tag="lds")
    a.j("wloop")
    a.label("done")
    a.halt()
    return a.assemble("mshr_static_walk")


# ----------------------------------------------------------------------
# Unit: coalescing semantics on a bare hierarchy
# ----------------------------------------------------------------------

class TestCoalescing:
    def test_secondary_miss_allocates_no_new_mshr(self):
        h = hier("coalescing")
        h.data_access(ADDR, 1000)
        assert h.stats.mshrs_allocated == 1
        assert h.stats.mshr_targets == 1
        h.data_access(ADDR + 4, 1001)  # same line, still in flight
        assert h.stats.l1d_partial_hits == 1
        assert h.stats.mshrs_allocated == 1  # joined, not re-allocated
        assert h.stats.mshr_coalesced == 1
        assert h.stats.mshr_targets == 2

    def test_blocking_table_stays_inert(self):
        h = hier("blocking")
        h.data_access(ADDR, 1000)
        h.data_access(ADDR + 4, 1001)
        assert h.stats.l1d_partial_hits == 1
        assert h.stats.mshrs_allocated == 0
        assert h.stats.mshr_coalesced == 0
        assert not h._mshr_entries

    def test_demand_join_promotes_background_fill(self):
        # Prefetch B while the bus is busy with A: B's background fill
        # trails its hypothetical demand-priority completion.  A demand
        # load joining B's entry completes at the promoted time.
        done = {}
        for model in ("blocking", "coalescing"):
            h = hier(model)
            h.dtlb.translate(ADDR)
            h.prefetch_request(ADDR, 0)
            bg_ready = h.prefetch_request(ADDR + 64, 1)
            assert bg_ready is not None
            done[model] = h.data_access(ADDR + 64, 5)
            assert done[model] < bg_ready  # both models promote somehow
        # ... but only coalescing promotes to true demand bus priority.
        assert done["coalescing"] <= done["blocking"]

    def test_prefetch_to_inflight_line_is_reclassified(self):
        # Fills are eager in the tag array, so "in flight but not in L1"
        # means the line was conflict-evicted while its fill is pending.
        set_stride = 256  # sets * line for the tiny L1
        blk, nb = hier("blocking"), hier("coalescing")
        for h in (blk, nb):
            h.data_access(ADDR, 1000)  # primary demand miss
            h.data_access(ADDR + set_stride, 1001)
            h.data_access(ADDR + 2 * set_stride, 1002)  # evicts ADDR line
            assert h.prefetch_request(ADDR + 8, 1005) is None
        assert blk.stats.prefetches_redundant == 1
        assert blk.stats.prefetches_coalesced == 0
        assert nb.stats.prefetches_redundant == 0
        assert nb.stats.prefetches_coalesced == 1
        assert nb.stats.mshr_coalesced == 1
        # the prefetch rides the demand entry's target list
        line = ADDR & ~(32 - 1)
        assert nb._mshr_entries[line][3] == 2

    def test_occupancy_peak_bounded_by_mshr_file(self):
        h = hier("coalescing")
        h.dtlb.translate(ADDR)
        for i in range(5 * h.cfg.max_outstanding_misses):
            h.data_access(ADDR + 64 * i, 100)
        peak = h.stats.mshr_occupancy_peak
        assert 2 <= peak <= h.cfg.max_outstanding_misses

    def test_mshr_occupancy_histogram_observed(self):
        h = hier("coalescing")
        obs = Telemetry()
        h.set_telemetry(obs)
        h.data_access(ADDR, 1000)
        h.data_access(ADDR + 64, 1001)
        hist = obs.registry.get("mem.mshr_occupancy")
        assert hist is not None
        assert sum(hist.counts) == 2


class TestFullModel:
    def test_critical_word_beats_full_line(self):
        full, co = hier("full"), hier("coalescing")
        t_full = full.data_access(ADDR, 1000)
        t_co = co.data_access(ADDR, 1000)
        assert t_full < t_co  # triggering word crosses the bus first
        assert full.stats.critical_word_returns == 1
        line = ADDR & ~(32 - 1)
        # the *line* still lands at the coalescing time (fill unchanged)
        assert full._inflight[line] == t_co

    def test_hit_during_refill_serves_before_line_lands(self):
        full, co = hier("full"), hier("coalescing")
        full.data_access(ADDR, 1000)
        line_ready = co.data_access(ADDR, 1000)
        t_full = full.data_access(ADDR + 4, line_ready - 20)
        t_co = co.data_access(ADDR + 4, line_ready - 20)
        assert t_full < t_co
        assert full.stats.refill_hits == 1

    def test_stores_never_take_critical_word_early_out(self):
        h = hier("full")
        h.data_access(ADDR, 1000, write=True)
        assert h.stats.critical_word_returns == 0


class TestWriteback:
    def _evict_dirty(self, h: MemoryHierarchy) -> None:
        set_stride = 256  # sets * line for the tiny L1
        h.data_access(ADDR, 0, write=True)  # dirty fill
        h.data_access(ADDR + set_stride, 2000)
        h.data_access(ADDR + 2 * set_stride, 4000)  # evicts dirty ADDR

    def test_writeback_counters(self):
        for model in MODELS:
            h = hier(model)
            self._evict_dirty(h)
            assert h.stats.writebacks_l1 == 1
            wb = h.cfg.l2_bus.cycles_for(h.cfg.dl1.line)
            assert h.stats.writeback_bus_cycles == wb

    def test_victim_drain_occupies_demand_bus_slots(self):
        blk, nb = hier("blocking"), hier("coalescing")
        for h in (blk, nb):
            self._evict_dirty(h)
        wb = blk.cfg.l2_bus.cycles_for(blk.cfg.dl1.line)
        # blocking: background-only traffic; non-blocking: the victim
        # holds the demand port until it has drained.
        assert nb._l2_bus_demand == blk._l2_bus_demand + wb
        # A demand L2 hit queued behind the busy port pays exactly the
        # victim-drain cycles under the non-blocking model.
        t = blk._l2_bus_demand - blk.cfg.l2.latency - 30
        assert nb.data_access(ADDR, t) == blk.data_access(ADDR, t) + wb


# ----------------------------------------------------------------------
# The MSHR conservation laws, and the drills that prove they fire
# ----------------------------------------------------------------------

def _busy_nb_hierarchy(model: str = "coalescing") -> MemoryHierarchy:
    h = hier(model)
    h.dtlb.translate(ADDR)
    for i in range(6):
        h.data_access(ADDR + 64 * i, 100)
    h.data_access(ADDR + 4, 101)  # one coalesced join
    return h


class TestMshrLaws:
    def test_clean_run_has_no_violations(self):
        assert _busy_nb_hierarchy().audit_check() == []
        assert _busy_nb_hierarchy("full").audit_check() == []

    @pytest.mark.parametrize("law,corrupt", [
        ("mshr-conservation",
         lambda st: setattr(st, "mshrs_allocated", st.mshrs_allocated + 1)),
        ("mshr-coalesce-accounting",
         lambda st: setattr(st, "mshr_coalesced", st.mshr_coalesced + 1)),
        ("mshr-target-accounting",
         lambda st: setattr(st, "mshr_targets", st.mshr_targets + 1)),
        ("mshr-occupancy",
         lambda st: setattr(st, "mshr_occupancy_peak", 99)),
    ])
    def test_each_law_fires_on_corruption(self, law, corrupt):
        h = _busy_nb_hierarchy()
        corrupt(h.stats)
        assert law in {inv for inv, __ in h.audit_check()}

    def test_laws_gated_off_under_blocking(self):
        h = hier("blocking")
        h.data_access(ADDR, 1000)
        h.stats.mshrs_allocated += 1  # would violate every nb law
        h.stats.mshr_coalesced += 1
        h.stats.mshr_targets += 1
        h.stats.mshr_occupancy_peak = 99
        assert h.audit_check() == []

    @pytest.mark.parametrize("model", ["coalescing", "full"])
    def test_corrupt_mshr_tracker_drill(self, model):
        cfg = small_config().with_overrides({"mshr_model": model})
        program = static_walk_program(24, pad=6)
        auditor = corrupt_mshr_tracker(Auditor(interval=64), after=0)
        simulate(program, cfg, audit=auditor)
        assert not auditor.ok
        assert any(v.invariant == "mshr-conservation"
                   for v in auditor.violations)

    def test_drill_inert_under_blocking(self):
        auditor = corrupt_mshr_tracker(Auditor(interval=64), after=0)
        simulate(static_walk_program(24, pad=6), small_config(),
                 audit=auditor)
        assert auditor.ok  # the nb laws are gated off

    def test_fault_plan_routes_the_mshr_drill(self):
        cells = audit_workloads(
            machine="small", workloads=["treeadd"], schemes=["base", "dbp"],
            interval=64, faults=parse_fault_plan("treeadd//dbp=corrupt"),
            mshr_model="coalescing",
        )
        by_scheme = {c.scheme: c for c in cells}
        drilled = by_scheme["dbp"]
        assert drilled.corrupted and not drilled.ok
        assert any(v.invariant == "mshr-conservation"
                   for v in drilled.violations)
        clean = by_scheme["base"]
        assert not clean.corrupted and clean.ok


# ----------------------------------------------------------------------
# Property: engine equivalence under every model
# ----------------------------------------------------------------------

class TestEngineEquivalence:
    @given(
        n=st.integers(min_value=2, max_value=24),
        node_bytes=st.sampled_from([8, 16, 24, 32]),
        engine=st.sampled_from(["none", "dbp", "hardware"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_three_engines_identical_per_model(self, n, node_bytes, engine):
        program, __ = assemble_list_walk(n, node_bytes=node_bytes)
        # Commit streams are architectural: identical for every engine.
        for ename, div in diff_all_engines(program).items():
            assert div is None, f"{ename}: {div.describe()}"
        for model in MODELS:
            cfg = small_config().with_overrides({"mshr_model": model})
            table = simulate(program, cfg, engine=engine)
            compiled = simulate(program, cfg, engine=engine,
                                sim_engine="compiled")
            ref = reference_simulate(program, cfg, engine=engine)
            assert diff_results(table, compiled, ignore=("telemetry",)) == []
            assert diff_results(table, ref, ignore=("telemetry",)) == []


# ----------------------------------------------------------------------
# Property: the models form a monotone performance ladder
# ----------------------------------------------------------------------

class TestMonotonicity:
    @given(
        n=st.integers(min_value=4, max_value=48),
        pad=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=12, deadline=None)
    def test_full_le_coalescing_le_blocking(self, n, pad):
        program = static_walk_program(n, pad)
        cycles = {}
        for model in MODELS:
            cfg = small_config().with_overrides({"mshr_model": model})
            cycles[model] = simulate(program, cfg).cycles
        assert cycles["full"] <= cycles["coalescing"] <= cycles["blocking"]

    def test_miss_heavy_walk_actually_improves(self):
        # Guard against the ladder holding vacuously: on a long
        # one-node-per-line chase, `full` must beat `blocking` outright.
        program = static_walk_program(64, pad=6)
        cfg = small_config()
        blocking = simulate(program, cfg).cycles
        full = simulate(
            program, cfg.with_overrides({"mshr_model": "full"})
        ).cycles
        assert full < blocking

    @pytest.mark.parametrize("workload", ["treeadd", "em3d", "health"])
    def test_olden_workloads_monotone_under_hardware_jpp(self, workload):
        from repro.workloads import get_workload, workload_class

        w = get_workload(workload, **workload_class(workload).test_params())
        program = w.build("baseline").program
        cycles = []
        for model in MODELS:
            cfg = small_config().with_overrides({"mshr_model": model})
            cycles.append(simulate(program, cfg, engine="hardware").cycles)
        assert cycles[2] <= cycles[1] <= cycles[0]
