"""Simulation-engine equivalence: table vs reference vs compiled.

The three entries of :data:`repro.isa.engines.SIM_ENGINES` must be
bit-identical on every program.  Property tests generate random short
programs (random ALU/memory loop bodies, a call exercising JAL/JR and
the RAS, a linked-list walk feeding the prefetch engines) and pin

* the committed-instruction streams (pc, addr, value, taken) of the
  table and block-JIT interpreters against the reference interpreter,
* the full timing :class:`~repro.cpu.stats.SimResult` of all three
  engines against each other (the fused fast path included), and
* fault behaviour: an ``ExecutionError`` raised by one engine must be
  raised by all, with the same message.

``REPRO_JIT_THRESHOLD=1`` for the whole module so every block compiles
on first touch — otherwise short property programs would never leave
the interpreter and the compiled paths would go untested.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, small_config
from repro.audit.diff import diff_all_engines
from repro.cpu.simulator import simulate
from repro.errors import ExecutionError
from repro.isa.engines import (
    DEFAULT_SIM_ENGINE,
    SIM_ENGINES,
    default_sim_engine,
    resolve_sim_engine,
)
from repro.isa.registers import A0, A1, RA, T0, T1, T2, T3, V0, ZERO


@pytest.fixture(autouse=True, scope="module")
def _compile_everything():
    old = os.environ.get("REPRO_JIT_THRESHOLD")
    os.environ["REPRO_JIT_THRESHOLD"] = "1"
    yield
    if old is None:
        os.environ.pop("REPRO_JIT_THRESHOLD", None)
    else:
        os.environ["REPRO_JIT_THRESHOLD"] = old


# ----------------------------------------------------------------------
# Random short programs
# ----------------------------------------------------------------------

#: One random loop-body instruction: (mnemonic, needs_imm).  All write
#: T1/T2 from T1/T2/T3 so any interleaving stays well-defined (no
#: div-by-zero: divisors come from T3, pinned nonzero below).
_ALU = ("add", "sub", "mul", "and_", "or_", "xor", "slt")

body_ops = st.lists(
    st.tuples(st.sampled_from(_ALU), st.sampled_from([T1, T2]),
              st.sampled_from([T1, T2, T3])),
    min_size=1, max_size=10,
)


def _random_program(ops, iters, seed, with_call):
    """Bounded loop of random ALU ops + a list walk + an optional call."""
    a = Assembler()
    arr = a.array([(seed * (i + 1)) % 977 for i in range(8)])
    head = a.word(0)
    a.label("main")
    a.li(T0, iters)
    a.li(T3, (seed % 13) + 1)          # nonzero: safe divisor/operand
    a.li(T1, seed % 251)
    a.li(T2, (seed // 3) % 251)
    # Build a short linked list so lds-tagged loads have pointers to chase.
    a.li(A0, 4)
    a.label("build")
    a.beqz(A0, "loop")
    a.alloc(A1, ZERO, 16)
    a.sw(A0, A1, 0)
    a.li(V0, head)
    a.lw(T3, V0, 0)
    a.sw(T3, A1, 4)
    a.sw(A1, V0, 0)
    a.li(T3, (seed % 13) + 1)          # restore the pinned operand
    a.addi(A0, A0, -1)
    a.j("build")
    a.label("loop")
    a.beqz(T0, "walk")
    for op, rd, rs2 in ops:
        getattr(a, op)(rd, rd, rs2)
    a.lw(V0, ZERO, arr + 4 * (seed % 8))
    a.sw(T1, ZERO, arr + 4 * ((seed + 3) % 8))
    if with_call:
        a.jal("leaf")
    a.addi(T0, T0, -1)
    a.j("loop")
    a.label("walk")
    a.li(A0, head)
    a.lw(T1, A0, 0, tag="lds")
    a.label("wloop")
    a.beqz(T1, "done")
    a.lw(V0, T1, 0, pad=8, tag="lds")
    a.lw(T1, T1, 4, pad=8, tag="lds")
    a.j("wloop")
    a.label("done")
    a.halt()
    if with_call:
        a.label("leaf")
        a.addi(T2, T2, 1)
        a.jr(RA)
    return a.assemble("blockjit_prop")


class TestEngineLockstepProps:
    @given(body_ops,
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=10_000),
           st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_commit_streams_identical(self, ops, iters, seed, with_call):
        program = _random_program(ops, iters, seed, with_call)
        for name, divergence in diff_all_engines(program).items():
            assert divergence is None, f"{name}: {divergence.describe()}"

    @given(body_ops,
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["none", "hardware", "dbp", "cooperative"]))
    @settings(max_examples=20, deadline=None)
    def test_timing_results_identical(self, ops, iters, seed, engine):
        program = _random_program(ops, iters, seed, True)
        cfg = small_config()
        results = {
            name: simulate(program, cfg, engine=engine, sim_engine=name)
            for name in SIM_ENGINES.names()
        }
        table = results["table"]
        for name, result in results.items():
            assert result.cycles == table.cycles, name
            assert result.to_dict() == table.to_dict(), name


class TestEngineFaultParity:
    def test_execution_errors_match(self):
        a = Assembler()
        a.label("main")
        a.li(T0, 7)
        a.li(T1, 0)
        a.div(T2, T0, T1)
        a.halt()
        program = a.assemble("blockjit_fault")
        cfg = small_config()
        messages = {}
        for name in SIM_ENGINES.names():
            with pytest.raises(ExecutionError) as exc:
                simulate(program, cfg, sim_engine=name)
            messages[name] = str(exc.value)
        assert len(set(messages.values())) == 1, messages


class TestSimEngineRegistry:
    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert default_sim_engine() == DEFAULT_SIM_ENGINE == "table"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        assert default_sim_engine() == "compiled"
        assert resolve_sim_engine().name == "compiled"
        assert resolve_sim_engine("reference").name == "reference"

    def test_unknown_env_engine_rejected(self, monkeypatch):
        from repro.errors import ReproError

        monkeypatch.setenv("REPRO_SIM_ENGINE", "turbo")
        with pytest.raises(ReproError):
            default_sim_engine()

    def test_fused_only_when_unobserved(self):
        from repro.cpu.timing import TimingModel
        from repro.obs.profile import Profiler

        program = _random_program([("add", T1, T2)], 2, 5, False)
        cfg = small_config()
        fused = TimingModel(program, cfg, sim_engine="compiled")
        assert fused._fused
        observed = TimingModel(
            program, cfg, sim_engine="compiled", profile=Profiler()
        )
        assert not observed._fused
        assert observed.run().cycles == fused.run().cycles