"""Stall-report analysis tool."""

from repro import small_config
from repro.harness import StallReport, stall_report

from tests.conftest import assemble_list_walk, assemble_loop_sum


def test_report_sums_to_total(cfg):
    program, __ = assemble_list_walk(48)
    rep = stall_report(program, cfg)
    assert sum(line.cycles for line in rep.lines) == rep.total_cycles
    assert abs(sum(line.share for line in rep.lines) - 1.0) < 1e-9


def test_lines_sorted_descending(cfg):
    program, __ = assemble_list_walk(48)
    rep = stall_report(program, cfg)
    cycles = [line.cycles for line in rep.lines]
    assert cycles == sorted(cycles, reverse=True)


def test_pointer_chase_blames_lds_loads(tiny_cfg):
    program, __ = assemble_list_walk(96)
    rep = stall_report(program, tiny_cfg)
    assert rep.share_of("LW", "lds") > 0.3


def test_compute_loop_blames_no_lds(cfg):
    program, __ = assemble_loop_sum(300)
    rep = stall_report(program, cfg)
    assert rep.share_of("LW", "lds") == 0.0


def test_prefetching_shrinks_lds_share(tiny_cfg):
    program, __ = assemble_list_walk(96)
    base = stall_report(program, tiny_cfg)
    # run the same (annotated) program under hardware JPP: the walk is
    # single-pass so gains are modest, but the report still works per engine
    hw = stall_report(program, tiny_cfg, engine="dbp")
    assert hw.total_cycles <= base.total_cycles * 1.05


def test_format_and_top(cfg):
    program, __ = assemble_list_walk(16)
    rep = stall_report(program, cfg)
    assert len(rep.top(3)) <= 3
    text = rep.format(5)
    assert "cycles" in text and "share" in text
    assert isinstance(rep, StallReport)
