"""Stall-report analysis tool."""

from repro import small_config
from repro.harness import StallReport, stall_report

from tests.conftest import assemble_list_walk, assemble_loop_sum


def test_report_sums_to_total(cfg):
    program, __ = assemble_list_walk(48)
    rep = stall_report(program, cfg)
    assert sum(line.cycles for line in rep.lines) == rep.total_cycles
    assert abs(sum(line.share for line in rep.lines) - 1.0) < 1e-9


def test_lines_sorted_descending(cfg):
    program, __ = assemble_list_walk(48)
    rep = stall_report(program, cfg)
    cycles = [line.cycles for line in rep.lines]
    assert cycles == sorted(cycles, reverse=True)


def test_pointer_chase_blames_lds_loads(tiny_cfg):
    program, __ = assemble_list_walk(96)
    rep = stall_report(program, tiny_cfg)
    assert rep.share_of("LW", "lds") > 0.3


def test_compute_loop_blames_no_lds(cfg):
    program, __ = assemble_loop_sum(300)
    rep = stall_report(program, cfg)
    assert rep.share_of("LW", "lds") == 0.0


def test_prefetching_shrinks_lds_share(tiny_cfg):
    program, __ = assemble_list_walk(96)
    base = stall_report(program, tiny_cfg)
    # run the same (annotated) program under hardware JPP: the walk is
    # single-pass so gains are modest, but the report still works per engine
    hw = stall_report(program, tiny_cfg, engine="dbp")
    assert hw.total_cycles <= base.total_cycles * 1.05


def test_format_and_top(cfg):
    program, __ = assemble_list_walk(16)
    rep = stall_report(program, cfg)
    assert len(rep.top(3)) <= 3
    text = rep.format(5)
    assert "cycles" in text and "share" in text
    assert isinstance(rep, StallReport)


# ----------------------------------------------------------------------
# Guarded ratio helpers: error cells must flag, not crash
# ----------------------------------------------------------------------

import math

from repro.harness import safe_ratio, speedup, speedup_rows


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(10, 4) == 2.5

    def test_zero_denominator_is_nan_not_raise(self):
        assert math.isnan(safe_ratio(10, 0))

    def test_negative_and_nonfinite_denominators(self):
        assert math.isnan(safe_ratio(10, -5))
        assert math.isnan(safe_ratio(10, math.nan))
        assert math.isnan(safe_ratio(10, math.inf))

    def test_default_override(self):
        assert safe_ratio(10, 0, default=0.0) == 0.0


class TestSpeedup:
    def test_normal(self):
        assert speedup(200, 100) == 2.0

    def test_zero_cycle_run_is_nan(self):
        assert math.isnan(speedup(200, 0))

    def test_zero_cycle_baseline_is_nan(self):
        # A 0-cycle baseline is an error cell, not an infinitely-fast run.
        assert math.isnan(speedup(0, 100))
        assert math.isnan(speedup(0, 0))
        assert math.isnan(speedup(math.nan, 100))


class TestSpeedupRows:
    def test_zero_cycle_baseline_poisons_only_its_benchmark(self):
        rows = [
            {"benchmark": "a", "scheme": "base", "cycles": 0},      # error cell
            {"benchmark": "a", "scheme": "hardware", "cycles": 80},
            {"benchmark": "b", "scheme": "base", "cycles": 100},
            {"benchmark": "b", "scheme": "hardware", "cycles": 50},
        ]
        out = speedup_rows(rows)
        by = {(r["benchmark"], r["scheme"]): r for r in out}
        assert by[("a", "hardware")]["flagged"]
        assert math.isnan(by[("a", "hardware")]["speedup"])
        assert by[("b", "hardware")]["speedup"] == 2.0
        assert not by[("b", "hardware")]["flagged"]

    def test_missing_baseline_flags(self):
        out = speedup_rows([{"benchmark": "x", "scheme": "dbp", "cycles": 10}])
        assert out[0]["flagged"]

    def test_input_rows_not_mutated(self):
        rows = [{"benchmark": "b", "scheme": "base", "cycles": 100}]
        speedup_rows(rows)
        assert "speedup" not in rows[0]
