"""Branch predictor: direction learning, BTB, RAS."""

from repro.config import BranchPredConfig
from repro.cpu.branch_pred import BranchPredictor


def make():
    return BranchPredictor(BranchPredConfig())


class TestConditional:
    def test_learns_always_taken(self):
        bp = make()
        wrong = 0
        for __ in range(50):
            correct, __t = bp.predict_cond(100, True, 50)
            wrong += not correct
        assert wrong <= 2  # warms up almost immediately

    def test_learns_alternating_via_history(self):
        bp = make()
        outcomes = [bool(i % 2) for i in range(200)]
        wrong = sum(
            not bp.predict_cond(100, t, 50)[0] for t in outcomes
        )
        # gshare captures the pattern after warmup
        assert wrong < 40

    def test_btb_learns_target(self):
        bp = make()
        __, known = bp.predict_cond(100, True, 55)
        assert not known  # cold BTB
        __, known = bp.predict_cond(100, True, 55)
        assert known

    def test_btb_target_change_detected(self):
        bp = make()
        bp.predict_cond(100, True, 55)
        bp.predict_cond(100, True, 55)
        __, known = bp.predict_cond(100, True, 77)
        assert not known

    def test_mispredict_ratio(self):
        bp = make()
        for __ in range(10):
            bp.predict_cond(7, True, 2)
        assert 0.0 <= bp.stats.mispredict_ratio <= 1.0
        assert bp.stats.cond_branches == 10


class TestJumpsAndReturns:
    def test_direct_jump_btb(self):
        bp = make()
        assert not bp.predict_jump(200, 300)
        assert bp.predict_jump(200, 300)

    def test_ras_matches_call_return(self):
        bp = make()
        bp.on_call(101)
        bp.on_call(201)
        assert bp.predict_return(201)
        assert bp.predict_return(101)

    def test_ras_mismatch(self):
        bp = make()
        bp.on_call(101)
        assert not bp.predict_return(999)
        assert bp.stats.return_mispredicts == 1

    def test_ras_empty_mispredicts(self):
        bp = make()
        assert not bp.predict_return(42)

    def test_ras_overflow_drops_oldest(self):
        bp = BranchPredictor(BranchPredConfig(ras_entries=2))
        bp.on_call(1)
        bp.on_call(2)
        bp.on_call(3)
        assert bp.predict_return(3)
        assert bp.predict_return(2)
        assert not bp.predict_return(1)  # dropped

    def test_btb_capacity_eviction(self):
        bp = BranchPredictor(BranchPredConfig(btb_entries=8, btb_assoc=2))
        sets = 4
        # fill one set beyond capacity: pcs congruent mod 4
        for pc in (0, 4, 8):
            bp.predict_jump(pc, pc + 100)
        assert not bp.predict_jump(0, 100)  # evicted (LRU was pc=0)
