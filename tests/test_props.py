"""Property-based tests on ISA semantics, workload mirrors, and the
sweep harness's content-addressed identities (RunSpec/spec_key) and
serialization round-trips (SimResult, ResultCache, MachineConfig)."""

import dataclasses
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, ConfigError, MachineConfig, run_to_completion, small_config
from repro.harness import ResultCache, RunSpec, spec_key
from repro.isa.registers import A0, T0, T1, T2, V0, ZERO
from repro.workloads.olden.common import LCG_MASK, emit_lcg, frand, lcg

ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


def _binop(op_name, x, y):
    a = Assembler()
    a.label("main")
    a.li(T0, x)
    a.li(T1, y)
    getattr(a, op_name)(T2, T0, T1)
    a.halt()
    return run_to_completion(a.assemble()).registers[T2]


class TestAluSemantics:
    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_python(self, x, y):
        assert _binop("add", x, y) == x + y

    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_sub_matches_python(self, x, y):
        assert _binop("sub", x, y) == x - y

    @given(small_ints, small_ints)
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_python(self, x, y):
        assert _binop("mul", x, y) == x * y

    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_match_python(self, x, y):
        assert _binop("and_", x, y) == x & y
        assert _binop("or_", x, y) == x | y
        assert _binop("xor", x, y) == x ^ y

    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_slt_matches_python(self, x, y):
        assert _binop("slt", x, y) == int(x < y)

    @given(ints, st.integers(min_value=-500, max_value=500).filter(lambda v: v))
    @settings(max_examples=40, deadline=None)
    def test_div_rem_identity(self, x, y):
        q = _binop("div", x, y)
        r = _binop("rem", x, y)
        assert q * y + r == x
        assert abs(r) < abs(y)


class TestFloatSemantics:
    floats = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )

    @given(floats, floats)
    @settings(max_examples=40, deadline=None)
    def test_fp_ops_bit_exact(self, x, y):
        a = Assembler()
        a.label("main")
        a.fli(T0, x)
        a.fli(T1, y)
        a.fadd(T2, T0, T1)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == x + y


class TestLcg:
    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=40, deadline=None)
    def test_emitted_lcg_matches_mirror(self, seed):
        a = Assembler()
        a.label("main")
        a.li(T0, seed)
        emit_lcg(a, T0, T1)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T0] == lcg(seed)

    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=50, deadline=None)
    def test_lcg_stays_in_range(self, seed):
        assert 0 <= lcg(seed) <= LCG_MASK

    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=50, deadline=None)
    def test_frand_in_unit_interval(self, seed):
        value, new_seed = frand(seed)
        assert 0.0 <= value < 1.0
        assert new_seed == lcg(seed)


class TestWorkloadMirrors:
    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_treeadd_any_size(self, levels, passes):
        from repro.workloads.olden.treeadd import TreeAdd

        w = TreeAdd(levels=levels, passes=passes, interval=2)
        built = w.build("baseline")
        interp = run_to_completion(built.program)
        built.verify(interp)

    @given(st.integers(min_value=5, max_value=14))
    @settings(max_examples=8, deadline=None)
    def test_mst_any_size_matches_networkx(self, n):
        import networkx as nx

        from repro.workloads.olden.mst import edge_weight, mirror

        G = nx.Graph()
        for u in range(n):
            for v in range(u + 1, n):
                G.add_edge(u, v, weight=edge_weight(u, v))
        T = nx.minimum_spanning_tree(G)
        assert mirror(n, 4) == sum(d["weight"] for *__, d in T.edges(data=True))

    @given(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_health_kernel_matches_mirror(self, levels, npat, iterations):
        from repro.workloads.olden.health import Health

        w = Health(
            levels=levels, branching=2, npat=npat,
            iterations=iterations, interval=2,
        )
        built = w.build("sw:chain")
        interp = run_to_completion(built.program)
        built.verify(interp)

    @given(st.integers(min_value=8, max_value=32))
    @settings(max_examples=8, deadline=None)
    def test_tsp_kernel_matches_mirror(self, n):
        from repro.workloads.olden.tsp import TSP

        w = TSP(n=n, interval=4)
        built = w.build("baseline")
        interp = run_to_completion(built.program)
        built.verify(interp)


# ----------------------------------------------------------------------
# Harness identities: RunSpec freezing and spec_key content-addressing
# ----------------------------------------------------------------------

#: Random-but-plausible workload parameter dicts.
param_dicts = st.dictionaries(
    st.sampled_from(["levels", "passes", "interval", "n", "iterations"]),
    st.integers(min_value=1, max_value=64),
    max_size=5,
)

engines = st.sampled_from(["none", "software", "cooperative", "hardware", "dbp"])


class TestSpecIdentityProps:
    @given(param_dicts, engines)
    @settings(max_examples=25, deadline=None)
    def test_freeze_is_insertion_order_insensitive(self, params, engine):
        cfg = small_config()
        items = list(params.items())
        a = RunSpec.make("treeadd", "baseline", engine, cfg, dict(items))
        b = RunSpec.make("treeadd", "baseline", engine, cfg,
                         dict(reversed(items)))
        assert a == b and hash(a) == hash(b)
        assert spec_key(a) == spec_key(b)

    @given(param_dicts, engines)
    @settings(max_examples=25, deadline=None)
    def test_key_is_stable_and_param_sensitive(self, params, engine):
        cfg = small_config()
        spec = RunSpec.make("health", "baseline", engine, cfg, params)
        assert spec_key(spec) == spec_key(spec)
        bumped = {**params, "interval": params.get("interval", 0) + 1}
        assert spec_key(
            RunSpec.make("health", "baseline", engine, cfg, bumped)
        ) != spec_key(spec)

    @given(param_dicts)
    @settings(max_examples=15, deadline=None)
    def test_key_separates_cell_kinds(self, params):
        cfg = small_config()
        sim = RunSpec.make("health", "baseline", "none", cfg, params)
        table1 = RunSpec.make("health", "baseline", "none", cfg, params,
                              kind="table1")
        assert spec_key(sim) != spec_key(table1)

    @given(st.integers(min_value=10, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_key_covers_machine_config(self, latency):
        cfg = small_config()
        varied = cfg.with_memory_latency(latency)
        a = RunSpec.make("health", "baseline", "none", cfg)
        b = RunSpec.make("health", "baseline", "none", varied)
        if varied == cfg:
            assert spec_key(a) == spec_key(b)
        else:
            assert spec_key(a) != spec_key(b)


# ----------------------------------------------------------------------
# Serialization round-trips under random configs
# ----------------------------------------------------------------------

def _walk_program(n=12):
    """Tiny build-then-walk linked list: misses under small caches, so
    random memory latencies actually show up in the stats."""
    a = Assembler()
    head = a.word(0)
    a.label("main")
    a.li(T0, n)
    a.label("build")
    a.beqz(T0, "walk")
    a.alloc(T1, ZERO, 16)
    a.sw(T0, T1, 0)
    a.li(A0, head)
    a.lw(V0, A0, 0)
    a.sw(V0, T1, 4)
    a.sw(T1, A0, 0)
    a.addi(T0, T0, -1)
    a.j("build")
    a.label("walk")
    a.li(A0, head)
    a.lw(T1, A0, 0, tag="lds")
    a.label("wloop")
    a.beqz(T1, "done")
    a.lw(V0, T1, 0, pad=16, tag="lds")
    a.lw(T1, T1, 4, pad=16, tag="lds")
    a.j("wloop")
    a.label("done")
    a.halt()
    return a.assemble("props_walk")


# ----------------------------------------------------------------------
# MachineConfig serde round-trips over randomized valid configs
# ----------------------------------------------------------------------

#: Dotted override paths paired with strategies that only produce values
#: the config validators accept — so every drawn config is constructible.
_VALID_OVERRIDES = {
    "memory_latency": st.integers(min_value=1, max_value=1000),
    "max_outstanding_misses": st.integers(min_value=1, max_value=64),
    "mshr_model": st.sampled_from(["blocking", "coalescing", "full"]),
    "window": st.integers(min_value=8, max_value=512),
    "alloc_latency": st.integers(min_value=0, max_value=64),
    "dl1.latency": st.integers(min_value=0, max_value=8),
    "l2.latency": st.integers(min_value=1, max_value=40),
    "dtlb.miss_penalty": st.integers(min_value=0, max_value=200),
    "l2_bus.width": st.sampled_from([2, 4, 8, 16, 32]),
    "mem_bus.clock_divisor": st.sampled_from([1, 2, 4, 8]),
    "func_units.int_alu": st.integers(min_value=1, max_value=8),
    "func_units.fp_div_latency": st.integers(min_value=1, max_value=64),
    "branch_pred.misprediction_penalty": st.integers(min_value=0, max_value=20),
    "prefetch.jump_interval": st.integers(min_value=1, max_value=64),
    "prefetch.jqt_entries": st.integers(min_value=1, max_value=256),
    "prefetch.adaptive_interval": st.booleans(),
    "perfect_data_memory": st.booleans(),
}

random_overrides = st.dictionaries(
    st.sampled_from(sorted(_VALID_OVERRIDES)),
    st.none(),  # placeholder; values drawn per-key below
    max_size=6,
).flatmap(lambda keys: st.fixed_dictionaries(
    {k: _VALID_OVERRIDES[k] for k in keys}
))


class TestConfigSerdeProps:
    @given(random_overrides)
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip(self, overrides):
        cfg = small_config().with_overrides(overrides)
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    @given(random_overrides)
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip(self, overrides):
        cfg = small_config().with_overrides(overrides)
        blob = json.dumps(cfg.to_dict(), sort_keys=True)
        assert MachineConfig.from_dict(json.loads(blob)) == cfg

    @given(random_overrides)
    @settings(max_examples=25, deadline=None)
    def test_overrides_land_on_the_right_leaf(self, overrides):
        cfg = small_config().with_overrides(overrides)
        d = cfg.to_dict()
        for path, value in overrides.items():
            node = d
            for part in path.split("."):
                node = node[part]
            assert node == value

    @given(st.text(min_size=1, max_size=12).filter(
        lambda s: s.split(".")[0] not in
        {f.name for f in dataclasses.fields(MachineConfig)}
    ))
    @settings(max_examples=25, deadline=None)
    def test_unknown_override_path_rejected(self, path):
        with pytest.raises(ConfigError):
            small_config().with_overrides({path: 1})

    @given(st.text(min_size=1, max_size=12).filter(
        lambda s: s not in
        {f.name for f in dataclasses.fields(MachineConfig)}
    ))
    @settings(max_examples=25, deadline=None)
    def test_unknown_dict_key_rejected(self, key):
        d = small_config().to_dict()
        d[key] = 1
        with pytest.raises(ConfigError):
            MachineConfig.from_dict(d)


class TestResultRoundTripProps:
    @given(st.integers(min_value=20, max_value=400),
           st.sampled_from(["none", "dbp", "hardware"]))
    @settings(max_examples=8, deadline=None)
    def test_simresult_json_roundtrip(self, latency, engine):
        from repro.cpu.simulator import simulate
        from repro.cpu.stats import SimResult

        cfg = small_config().with_memory_latency(latency)
        result = simulate(_walk_program(), cfg, engine=engine)
        back = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back == result

    @given(st.integers(min_value=20, max_value=400),
           st.sampled_from(["none", "dbp", "hardware"]))
    @settings(max_examples=6, deadline=None)
    def test_result_cache_roundtrip(self, latency, engine):
        from repro.cpu.simulator import simulate

        cfg = small_config().with_memory_latency(latency)
        spec = RunSpec.make("props-walk", "baseline", engine, cfg)
        result = simulate(_walk_program(), cfg, engine=engine)
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(Path(tmp))
            cache.put(spec, result)
            back = cache.get(spec)
        assert back == result
        assert cache.hits == 1 and cache.misses == 0
