"""Property-based tests on ISA semantics and workload mirrors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, run_to_completion
from repro.isa.registers import T0, T1, T2
from repro.workloads.olden.common import LCG_MASK, emit_lcg, frand, lcg

ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


def _binop(op_name, x, y):
    a = Assembler()
    a.label("main")
    a.li(T0, x)
    a.li(T1, y)
    getattr(a, op_name)(T2, T0, T1)
    a.halt()
    return run_to_completion(a.assemble()).registers[T2]


class TestAluSemantics:
    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_python(self, x, y):
        assert _binop("add", x, y) == x + y

    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_sub_matches_python(self, x, y):
        assert _binop("sub", x, y) == x - y

    @given(small_ints, small_ints)
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_python(self, x, y):
        assert _binop("mul", x, y) == x * y

    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_match_python(self, x, y):
        assert _binop("and_", x, y) == x & y
        assert _binop("or_", x, y) == x | y
        assert _binop("xor", x, y) == x ^ y

    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_slt_matches_python(self, x, y):
        assert _binop("slt", x, y) == int(x < y)

    @given(ints, st.integers(min_value=-500, max_value=500).filter(lambda v: v))
    @settings(max_examples=40, deadline=None)
    def test_div_rem_identity(self, x, y):
        q = _binop("div", x, y)
        r = _binop("rem", x, y)
        assert q * y + r == x
        assert abs(r) < abs(y)


class TestFloatSemantics:
    floats = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )

    @given(floats, floats)
    @settings(max_examples=40, deadline=None)
    def test_fp_ops_bit_exact(self, x, y):
        a = Assembler()
        a.label("main")
        a.fli(T0, x)
        a.fli(T1, y)
        a.fadd(T2, T0, T1)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T2] == x + y


class TestLcg:
    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=40, deadline=None)
    def test_emitted_lcg_matches_mirror(self, seed):
        a = Assembler()
        a.label("main")
        a.li(T0, seed)
        emit_lcg(a, T0, T1)
        a.halt()
        assert run_to_completion(a.assemble()).registers[T0] == lcg(seed)

    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=50, deadline=None)
    def test_lcg_stays_in_range(self, seed):
        assert 0 <= lcg(seed) <= LCG_MASK

    @given(st.integers(min_value=0, max_value=LCG_MASK))
    @settings(max_examples=50, deadline=None)
    def test_frand_in_unit_interval(self, seed):
        value, new_seed = frand(seed)
        assert 0.0 <= value < 1.0
        assert new_seed == lcg(seed)


class TestWorkloadMirrors:
    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_treeadd_any_size(self, levels, passes):
        from repro.workloads.olden.treeadd import TreeAdd

        w = TreeAdd(levels=levels, passes=passes, interval=2)
        built = w.build("baseline")
        interp = run_to_completion(built.program)
        built.verify(interp)

    @given(st.integers(min_value=5, max_value=14))
    @settings(max_examples=8, deadline=None)
    def test_mst_any_size_matches_networkx(self, n):
        import networkx as nx

        from repro.workloads.olden.mst import edge_weight, mirror

        G = nx.Graph()
        for u in range(n):
            for v in range(u + 1, n):
                G.add_edge(u, v, weight=edge_weight(u, v))
        T = nx.minimum_spanning_tree(G)
        assert mirror(n, 4) == sum(d["weight"] for *__, d in T.edges(data=True))

    @given(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_health_kernel_matches_mirror(self, levels, npat, iterations):
        from repro.workloads.olden.health import Health

        w = Health(
            levels=levels, branching=2, npat=npat,
            iterations=iterations, interval=2,
        )
        built = w.build("sw:chain")
        interp = run_to_completion(built.program)
        built.verify(interp)

    @given(st.integers(min_value=8, max_value=32))
    @settings(max_examples=8, deadline=None)
    def test_tsp_kernel_matches_mirror(self, n):
        from repro.workloads.olden.tsp import TSP

        w = TSP(n=n, interval=4)
        built = w.build("baseline")
        interp = run_to_completion(built.program)
        built.verify(interp)
