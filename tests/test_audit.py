"""Runtime invariant auditor: conservation-law sweeps, the corrupt-outcome
drill, and the workload-matrix gate."""

import types

import pytest

from repro import Telemetry, simulate, small_config
from repro.audit import (
    AuditError,
    Auditor,
    AuditViolation,
    audit_workloads,
    corrupt_outcome_tracker,
)
from repro.harness.faults import FaultPlan, FaultSpec
from repro.obs import EventTrace, TIMELY

from tests.conftest import assemble_list_walk


def _dummy_model(cfg=None):
    """Just enough TimingModel surface for unit-driving the Auditor."""
    return types.SimpleNamespace(
        cfg=cfg or small_config(),
        telemetry=None,
        hierarchy=types.SimpleNamespace(audit_check=lambda: []),
        engine=types.SimpleNamespace(audit_check=lambda now: []),
    )


class TestAuditorUnit:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Auditor(interval=0)

    def test_clean_commits_record_nothing(self):
        a = Auditor()
        a.attach(_dummy_model())
        a.on_commit(100, 500)
        a.on_commit(200, 900)
        assert a.ok and a.checks == 2 and not a.violations

    def test_cycle_regression_is_caught(self):
        a = Auditor()
        a.attach(_dummy_model())
        a.on_commit(100, 900)
        a.on_commit(200, 500)  # clock went backwards
        assert not a.ok
        assert a.violations[0].invariant == "cycle-monotone"
        assert a.violations[0].commit == 200

    def test_stalled_commit_count_is_caught(self):
        a = Auditor()
        a.attach(_dummy_model())
        a.on_commit(100, 500)
        a.on_commit(100, 600)
        assert [v.invariant for v in a.violations] == ["commit-count-increasing"]

    def test_occupancy_bounds(self):
        model = _dummy_model()
        a = Auditor()
        a.attach(model)
        a.on_commit(
            100, 500,
            rob=list(range(model.cfg.window + 1)),
            lsq=list(range(model.cfg.lsq_entries + 1)),
        )
        assert {v.invariant for v in a.violations} == {
            "rob-occupancy", "lsq-occupancy",
        }

    def test_component_violations_are_attributed(self):
        model = _dummy_model()
        model.engine.audit_check = lambda now: [("prq-occupancy", "too full")]
        a = Auditor()
        a.attach(model)
        a.on_commit(100, 500)
        (v,) = a.violations
        assert v.component == "engine" and v.invariant == "prq-occupancy"
        assert "prq-occupancy" in v.describe()

    def test_strict_mode_raises(self):
        a = Auditor(strict=True)
        a.attach(_dummy_model())
        a.on_commit(100, 900)
        with pytest.raises(AuditError, match="cycle-monotone"):
            a.on_commit(200, 100)

    def test_violation_list_is_capped_but_counting_continues(self):
        a = Auditor(max_violations=3)
        a.attach(_dummy_model())
        for i in range(10):
            a.on_commit(100, 500)  # commit count never advances
        # first call is clean, the next nine each violate once
        assert len(a.violations) == 3
        assert a.violation_count == 9

    def test_violation_record_is_frozen(self):
        v = AuditViolation("x", "m", 1, 2)
        with pytest.raises(AttributeError):
            v.invariant = "y"


class TestAuditedSimulation:
    @pytest.mark.parametrize("engine", ["none", "software", "dbp", "hardware"])
    def test_real_runs_are_clean(self, tiny_cfg, engine):
        program, __ = assemble_list_walk(96)
        auditor = Auditor(interval=64, strict=True)  # strict: crash on any
        simulate(program, tiny_cfg, engine=engine,
                 telemetry=Telemetry(), audit=auditor)
        assert auditor.ok and auditor.checks > 1

    def test_audit_without_telemetry(self, tiny_cfg):
        # The auditor must not require a telemetry object to exist.
        program, __ = assemble_list_walk(32)
        auditor = Auditor(interval=64, strict=True)
        simulate(program, tiny_cfg, engine="dbp", audit=auditor)
        assert auditor.ok

    def test_audit_counters_land_in_registry(self, tiny_cfg):
        program, __ = assemble_list_walk(96)
        tele = Telemetry()
        auditor = Auditor(interval=64)
        simulate(program, tiny_cfg, engine="dbp", telemetry=tele, audit=auditor)
        assert tele.registry.get("audit.checks").value == auditor.checks - 1
        assert tele.registry.get("audit.violations") is None  # clean run

    def test_corrupted_tracker_is_caught(self, tiny_cfg):
        program, __ = assemble_list_walk(96)
        tele = Telemetry()
        corrupt_outcome_tracker(tele.outcomes, after=0)
        auditor = Auditor(interval=64)
        simulate(program, tiny_cfg, engine="dbp", telemetry=tele, audit=auditor)
        assert not auditor.ok
        assert auditor.violations[0].invariant == "outcome-conservation"
        assert tele.registry.get(
            "audit.violation.outcome-conservation"
        ).value == auditor.violation_count

    def test_violation_reaches_the_event_trace(self, tiny_cfg):
        program, __ = assemble_list_walk(96)
        trace = EventTrace()
        tele = Telemetry(trace=trace)
        corrupt_outcome_tracker(tele.outcomes, after=0)
        simulate(program, tiny_cfg, engine="dbp", telemetry=tele,
                 audit=Auditor(interval=64))
        names = [name for __, name, *rest in trace.events]
        assert "audit-violation" in names

    def test_corruption_only_fires_after_threshold(self):
        t = corrupt_outcome_tracker(Telemetry().outcomes, after=2)
        for i in range(2):
            t.record_issue(0x100 + 64 * i, "jump", 1, issue=0, fill=10)
        assert t.counts[TIMELY] == 0  # below threshold: untouched
        t.record_issue(0x400, "jump", 1, issue=0, fill=10)
        assert t.counts[TIMELY] == 1  # the injected mis-classification
        assert t.audit_check()  # and the tracker itself now fails audit


class TestWorkloadGate:
    def test_matrix_is_clean(self):
        from repro.harness import scheme_names

        cells = audit_workloads(workloads=["treeadd"], interval=128)
        assert len(cells) == len(scheme_names())  # every scheme has a cell
        assert all(c.ok for c in cells)
        assert all(c.checks > 0 for c in cells)

    def test_corrupt_fault_plan_is_caught_and_scoped(self):
        plan = FaultPlan.of(
            FaultSpec("em3d", "*", "dbp", kind="corrupt"),
        )
        cells = audit_workloads(
            workloads=["em3d"], schemes=["dbp", "hardware"],
            interval=128, faults=plan,
        )
        by_scheme = {c.scheme: c for c in cells}
        victim = by_scheme["dbp"]
        assert victim.corrupted and not victim.ok
        assert victim.violations[0].invariant == "outcome-conservation"
        bystander = by_scheme["hardware"]
        assert not bystander.corrupted and bystander.ok

    def test_cell_row_shape(self):
        (cell,) = audit_workloads(workloads=["treeadd"], schemes=["base"])
        row = cell.row()
        assert row["benchmark"] == "treeadd" and row["scheme"] == "base"
        assert row["violations"] == 0 and row["first"] == "-"
