"""Dependence predictor and value correlator."""

from repro.config import PrefetchConfig
from repro.prefetch.dependence import (
    MAX_OFFSET,
    MIN_OFFSET,
    DependencePredictor,
    ValueCorrelator,
)


def make(entries=256, assoc=4):
    return DependencePredictor(PrefetchConfig(dep_entries=entries, dep_assoc=assoc))


class TestPredictor:
    def test_learn_and_lookup(self):
        p = make()
        assert p.learn(10, 20, 4)
        assert list(p.lookup(10)) == [(20, 4)]

    def test_multiple_consumers(self):
        p = make()
        p.learn(10, 20, 0)
        p.learn(10, 21, 4)
        assert dict(p.lookup(10)) == {20: 0, 21: 4}

    def test_offset_updated_in_place(self):
        p = make()
        p.learn(10, 20, 4)
        p.learn(10, 20, 8)
        assert list(p.lookup(10)) == [(20, 8)]

    def test_rejects_wild_offsets(self):
        p = make()
        assert not p.learn(10, 20, MAX_OFFSET + 1)
        assert not p.learn(10, 20, MIN_OFFSET - 1)
        assert list(p.lookup(10)) == []

    def test_boundary_offsets_accepted(self):
        p = make()
        assert p.learn(1, 2, MAX_OFFSET)
        assert p.learn(3, 4, MIN_OFFSET)

    def test_capacity_eviction_lru(self):
        p = make(entries=4, assoc=2)  # 2 sets x 2 ways
        # producers 0, 2, 4 map to set 0
        p.learn(0, 100, 0)
        p.learn(2, 101, 0)
        p.lookup(0)          # refresh producer 0
        p.learn(4, 102, 0)   # evicts producer 2
        assert p.lookup(0)
        assert not p.lookup(2)
        assert p.lookup(4)
        assert p.evicted == 1

    def test_self_recurrence(self):
        p = make()
        p.learn(10, 10, 4)
        assert p.is_recurrent(10)

    def test_mutual_recurrence(self):
        p = make()
        p.learn(10, 11, 4)
        p.learn(11, 10, 8)
        assert p.is_recurrent(10)
        assert p.is_recurrent(11)

    def test_non_recurrent(self):
        p = make()
        p.learn(10, 11, 4)
        p.learn(11, 12, 4)
        assert not p.is_recurrent(10)

    def test_lookup_quiet_no_lru_refresh(self):
        p = make(entries=4, assoc=2)
        p.learn(0, 100, 0)
        p.learn(2, 101, 0)
        p.lookup_quiet(0)    # must NOT refresh
        p.learn(4, 102, 0)   # evicts 0 (the LRU)
        assert not p.lookup_quiet(0)


class TestCorrelator:
    def test_record_and_match(self):
        c = ValueCorrelator()
        c.record(0x1000, 42)
        assert c.match(0x1000) == 42

    def test_entry_survives_repeated_matches(self):
        c = ValueCorrelator()
        c.record(0x1000, 42)
        assert c.match(0x1000) == 42
        assert c.match(0x1000) == 42

    def test_miss_returns_none(self):
        assert ValueCorrelator().match(0x2000) is None

    def test_capacity_lru(self):
        c = ValueCorrelator(capacity=2)
        c.record(1 * 4, 10)
        c.record(2 * 4, 11)
        c.match(1 * 4)         # refresh
        c.record(3 * 4, 12)    # evicts value 2*4
        assert c.match(1 * 4) == 10
        assert c.match(2 * 4) is None
        assert c.match(3 * 4) == 12
