"""Assembler DSL: labels, data, macros, program assembly."""

import pytest

from repro import Assembler, AssemblyError, Op, run_to_completion
from repro.isa.instruction import TEXT_BASE
from repro.isa.program import DATA_BASE
from repro.isa.registers import A0, RA, S0, S1, T0, T1, V0, ZERO


def test_label_resolution():
    a = Assembler()
    a.label("main")
    a.j("end")
    a.li(T0, 1)
    a.label("end")
    a.halt()
    p = a.assemble()
    assert p.instructions[0].target == p.labels["end"] == 2


def test_duplicate_label_rejected():
    a = Assembler()
    a.label("x")
    with pytest.raises(AssemblyError):
        a.label("x")


def test_undefined_label_rejected():
    a = Assembler()
    a.j("nowhere")
    a.halt()
    with pytest.raises(AssemblyError, match="nowhere"):
        a.assemble()


def test_missing_halt_rejected():
    a = Assembler()
    a.li(T0, 1)
    with pytest.raises(AssemblyError, match="HALT"):
        a.assemble()


def test_newlabel_unique():
    a = Assembler()
    names = {a.newlabel("x") for __ in range(100)}
    assert len(names) == 100


def test_data_section_layout():
    a = Assembler()
    w1 = a.word(42)
    arr = a.array([1, 2, 3])
    sp = a.space(2)
    assert w1 == DATA_BASE
    assert arr == DATA_BASE + 4
    assert sp == DATA_BASE + 16
    a.halt()
    p = a.assemble()
    assert p.initial_memory[w1] == 42
    assert p.initial_memory[arr + 8] == 3
    assert p.initial_memory[sp] == 0


def test_poke_overwrites_initial_memory():
    a = Assembler()
    w = a.word(0)
    a.poke(w, 99)
    a.halt()
    assert a.assemble().initial_memory[w] == 99


def test_poke_rejects_misaligned():
    a = Assembler()
    with pytest.raises(AssemblyError):
        a.poke(DATA_BASE + 2, 1)


def test_instruction_addresses():
    a = Assembler()
    a.nop()
    a.halt()
    p = a.assemble()
    assert p.instructions[0].address == TEXT_BASE
    assert p.instructions[1].address == TEXT_BASE + 4


def test_li_encodes_addi_from_zero():
    a = Assembler()
    inst = a.li(T0, 123)
    assert inst.op is Op.ADDI and inst.rs1 == ZERO and inst.imm == 123


def test_push_pop_roundtrip():
    a = Assembler()
    a.label("main")
    a.li(S0, 7)
    a.li(S1, 9)
    a.push(S0, S1)
    a.li(S0, 0)
    a.li(S1, 0)
    a.pop(S0, S1)
    a.halt()
    interp = run_to_completion(a.assemble())
    assert interp.registers[S0] == 7
    assert interp.registers[S1] == 9


def test_func_leave_call_convention():
    a = Assembler()
    res = a.word(0)
    a.label("main")
    a.li(A0, 20)
    a.jal("double")
    a.li(T0, res)
    a.sw(V0, T0, 0)
    a.halt()
    a.func("double", S0)
    a.add(V0, A0, A0)
    a.leave(S0)
    interp = run_to_completion(a.assemble())
    assert interp.memory.load(res) == 40


def test_nested_calls_preserve_ra():
    a = Assembler()
    res = a.word(0)
    a.label("main")
    a.li(A0, 3)
    a.jal("outer")
    a.li(T0, res)
    a.sw(V0, T0, 0)
    a.halt()
    a.func("outer")
    a.jal("inner")
    a.addi(V0, V0, 1)
    a.leave()
    a.func("inner")
    a.add(V0, A0, A0)
    a.leave()
    interp = run_to_completion(a.assemble())
    assert interp.memory.load(res) == 7


def test_branch_aliases():
    a = Assembler()
    assert a.beqz(T0, "x").op is Op.BEQ
    assert a.bnez(T0, "x").op is Op.BNE
    assert a.blez(T0, "x").op is Op.BGE  # 0 >= rs
    assert a.bgtz(T1, "x").op is Op.BLT  # 0 < rs
    a.label("x")
    a.halt()
    a.assemble()


def test_memory_op_annotations():
    a = Assembler()
    inst = a.lw(T0, T1, 8, pad=16, tag="lds")
    assert inst.pad == 16 and inst.tag == "lds" and inst.imm == 8
    assert inst.is_mem


def test_disassemble_smoke():
    a = Assembler()
    a.label("main")
    a.lw(T0, T1, 4, tag="lds")
    a.beq(T0, ZERO, "main")
    a.halt()
    text = a.assemble().disassemble()
    assert "main:" in text
    assert "lw" in text


def test_here_tracks_position():
    a = Assembler()
    assert a.here == 0
    a.nop()
    assert a.here == 1
