"""Cycle-attribution profiler: conservation, site tables, audit wiring.

The load-bearing property is **conservation**: every committed
instruction's commit-front advance lands in exactly one CPI-stack
bucket, so the buckets sum *exactly* to total cycles — checked here
directly, across random machine configs (hypothesis), and through the
auditor's invariant sweep.  Profiling must also be a pure observer:
cycle counts with and without a profiler attached are bit-identical.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate, small_config
from repro.audit import Auditor
from repro.cpu.stats import SimResult
from repro.obs import (
    BUCKETS,
    EventTrace,
    LEVELS,
    Profiler,
    Telemetry,
    cpi_stack_rows,
    hot_site_rows,
    latency_rows,
)
from tests.conftest import assemble_list_walk, assemble_loop_sum


def _profiled(program, cfg, engine="none", **kw):
    prof = Profiler()
    result = simulate(program, cfg, engine=engine, profile=prof, **kw)
    return prof, result


class TestConservation:
    def test_buckets_sum_to_cycles(self, cfg):
        program, __ = assemble_list_walk(32)
        prof, result = _profiled(program, cfg, engine="hardware")
        assert sum(prof.buckets.values()) == result.cycles
        assert prof.finalized and prof.cycles == result.cycles
        assert prof.instructions == result.instructions

    def test_compute_only_program_is_all_base_and_branch(self, cfg):
        program, __ = assemble_loop_sum(64)
        prof, result = _profiled(program, cfg)
        assert sum(prof.buckets.values()) == result.cycles
        # No linked-data loads: every load hits L1 or forwards.
        for lvl in ("pb", "merge", "l2", "mem"):
            assert prof.buckets[f"load.{lvl}"] == 0
        assert not prof.sites  # no load ever left the L1 class with stalls

    def test_stall_attribution_rekeyed_by_pc_and_reason(self, cfg):
        program, __ = assemble_list_walk(32)
        prof, result = _profiled(program, cfg, engine="dbp")
        assert prof.stall_attribution
        for (pc, reason), cyc in prof.stall_attribution.items():
            assert isinstance(pc, int) and reason in BUCKETS and cyc > 0
        # The fine-grained table is a refinement of the buckets ...
        assert sum(prof.stall_attribution.values()) == result.cycles
        per_reason = {}
        for (__, reason), cyc in prof.stall_attribution.items():
            per_reason[reason] = per_reason.get(reason, 0) + cyc
        assert per_reason == {b: c for b, c in prof.buckets.items() if c}

    def test_perfect_memory_loads_count_as_l1(self, cfg):
        program, __ = assemble_list_walk(16)
        prof, result = _profiled(program, cfg.perfect())
        assert sum(prof.buckets.values()) == result.cycles
        for lvl in ("pb", "merge", "l2", "mem"):
            assert prof.buckets[f"load.{lvl}"] == 0


#: Random-but-valid machine shapes: the conservation law must hold on
#: every one of them, not just the shipped presets.
machine_overrides = st.fixed_dictionaries(
    {},
    optional={
        "memory_latency": st.integers(min_value=5, max_value=400),
        "window": st.sampled_from([8, 16, 64, 256]),
        "dl1.latency": st.integers(min_value=0, max_value=4),
        "l2.latency": st.integers(min_value=2, max_value=30),
        "max_outstanding_misses": st.integers(min_value=1, max_value=16),
        "func_units.int_alu": st.integers(min_value=1, max_value=4),
        "branch_pred.misprediction_penalty": st.integers(min_value=0, max_value=12),
        "prefetch.jump_interval": st.integers(min_value=1, max_value=16),
    },
)


class TestConservationProps:
    @given(machine_overrides, st.sampled_from(["none", "dbp", "hardware"]))
    @settings(max_examples=20, deadline=None)
    def test_holds_on_random_machines(self, overrides, engine):
        cfg = small_config().with_overrides(overrides)
        program, __ = assemble_list_walk(24)
        prof, result = _profiled(program, cfg, engine=engine)
        assert sum(prof.buckets.values()) == result.cycles
        assert prof.audit_check(result.cycles) == []
        assert all(v >= 0 for v in prof.buckets.values())

    @given(machine_overrides)
    @settings(max_examples=10, deadline=None)
    def test_profiling_never_changes_cycles(self, overrides):
        cfg = small_config().with_overrides(overrides)
        program, __ = assemble_list_walk(24)
        bare = simulate(program, cfg, engine="hardware")
        prof, profiled = _profiled(program, cfg, engine="hardware")
        assert profiled.cycles == bare.cycles
        assert profiled.instructions == bare.instructions


class TestObserverPurity:
    def test_bit_identical_cycles_all_engines(self, cfg):
        program, __ = assemble_list_walk(32)
        for engine in ("none", "software", "dbp", "cooperative", "hardware"):
            bare = simulate(program, cfg, engine=engine)
            __, profiled = _profiled(program, cfg, engine=engine)
            assert profiled.cycles == bare.cycles, engine

    def test_unprofiled_result_has_no_profile(self, cfg):
        program, __ = assemble_list_walk(8)
        result = simulate(program, cfg)
        assert result.profile is None

    def test_model_without_profiler_has_empty_attribution(self, cfg):
        from repro.cpu.simulator import make_engine
        from repro.cpu.timing import TimingModel

        program, __ = assemble_list_walk(8)
        model = TimingModel(program, cfg, make_engine("none", cfg))
        model.run()
        assert model.stall_attribution == {}


class TestSiteTable:
    def test_pointer_chase_sites_ranked_by_stalls(self, cfg):
        program, __ = assemble_list_walk(48)
        prof, result = _profiled(program, cfg, engine="none")
        d = prof.to_dict()
        assert d["sites"], "a pointer chase must produce stalled load sites"
        stalls = [s["stalls"] for s in d["sites"]]
        assert stalls == sorted(stalls, reverse=True)
        # The chase loads are tagged lds and should dominate the stalls.
        top = d["sites"][0]
        assert top["lds"] and top["op"] == "LW" and top["tag"] == "lds"
        assert sum(top["levels"].values()) == top["count"]
        assert top["misses"] <= top["count"]

    def test_outcome_mix_attached_with_telemetry(self, cfg):
        # The synthetic list walk traverses once (nothing to prefetch);
        # health re-traverses its lists, so hardware JPF issues real
        # prefetches whose outcome mix lands on the loads' sites.
        from repro import get_workload
        from repro.workloads import workload_class

        params = workload_class("health").test_params()
        program = get_workload("health", **params).build("baseline").program
        prof = Profiler()
        simulate(program, cfg, engine="hardware", profile=prof,
                 telemetry=Telemetry())
        d = prof.to_dict()
        assert any("outcomes" in s for s in d["sites"]), (
            "hardware JPF issues prefetches; some site must carry a mix"
        )

    def test_hot_site_rows_shape(self, cfg):
        program, __ = assemble_list_walk(48)
        prof, __r = _profiled(program, cfg)
        rows = hot_site_rows(prof.to_dict(), top=3)
        assert 0 < len(rows) <= 3
        assert [r["rank"] for r in rows] == list(range(1, len(rows) + 1))
        assert all(0 <= r["miss%"] <= 100 for r in rows)

    def test_cpi_stack_rows_cover_all_buckets(self, cfg):
        program, __ = assemble_list_walk(16)
        prof, result = _profiled(program, cfg)
        rows = cpi_stack_rows(prof.to_dict())
        assert [r["bucket"] for r in rows] == list(BUCKETS)
        assert sum(r["cycles"] for r in rows) == result.cycles

    def test_latency_rows_cover_all_levels(self, cfg):
        program, __ = assemble_list_walk(16)
        prof, __r = _profiled(program, cfg)
        rows = latency_rows(prof.to_dict())
        assert [r["level"] for r in rows] == list(LEVELS)
        assert sum(r["count"] for r in rows) > 0


class TestRoundTrip:
    def test_profile_survives_simresult_serde(self, cfg):
        program, __ = assemble_list_walk(32)
        prof = Profiler()
        result = simulate(program, cfg, engine="hardware", profile=prof)
        assert result.profile == prof.to_dict()
        back = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back == result
        assert back.profile["cpi_stack"] == prof.buckets
        assert back.profile["sites"] == result.profile["sites"]

    def test_old_payload_without_profile_still_loads(self, cfg):
        program, __ = assemble_list_walk(8)
        d = simulate(program, cfg).to_dict()
        d.pop("profile", None)  # a pre-profiler cache entry
        assert SimResult.from_dict(d).profile is None


class TestAuditIntegration:
    def test_auditor_sweeps_profiler_cleanly(self, cfg):
        program, __ = assemble_list_walk(32)
        auditor = Auditor(interval=64)
        prof = Profiler()
        simulate(program, cfg, engine="hardware", profile=prof, audit=auditor)
        assert auditor.ok, [v.describe() for v in auditor.violations]
        assert auditor.checks > 1  # swept mid-run, not only at the end

    def test_tampered_buckets_are_caught(self):
        prof = Profiler()
        prof.charge(0, "base", 5, 5)
        prof.buckets["base"] += 1  # break conservation
        names = [name for name, __ in prof.audit_check(5)]
        assert "cpi-conservation" in names

    def test_desynced_commit_front_is_caught(self):
        prof = Profiler()
        prof.charge(0, "base", 5, 5)
        names = [name for name, __ in prof.audit_check(9)]
        assert "cpi-cycle-sync" in names

    def test_negative_bucket_is_caught(self):
        prof = Profiler()
        prof.charge(0, "base", 5, 5)
        prof.buckets["branch"] -= 3
        prof.buckets["base"] += 3  # keep the sum right: isolate the check
        names = [name for name, __ in prof.audit_check(5)]
        assert names == ["cpi-nonnegative"]


class TestCounterTracks:
    def test_profiled_trace_carries_counter_samples(self, cfg):
        program, __ = assemble_list_walk(48)
        trace = EventTrace()
        prof = Profiler(trace_interval=256)
        simulate(program, cfg, engine="none", profile=prof,
                 telemetry=Telemetry(trace=trace))
        counters = [e for e in trace.events if e[0] == "C"]
        names = {e[1] for e in counters}
        assert {"cpi_stack", "load_level"} <= names
        # The final flush samples the finished stack at the last cycle.
        last = [e for e in counters if e[1] == "cpi_stack"][-1]
        assert last[5] == prof.buckets
        assert sum(last[5].values()) == prof.cycles

    def test_no_trace_no_counters(self, cfg):
        program, __ = assemble_list_walk(16)
        prof = Profiler()
        simulate(program, cfg, profile=prof, telemetry=Telemetry())
        assert prof._trace is None  # nothing to emit into


class TestHarnessAxis:
    def test_runspec_profile_changes_cache_key(self):
        from repro.harness import RunSpec, spec_key

        cfg = small_config()
        plain = RunSpec.make("health", "baseline", "none", cfg)
        profiled = RunSpec.make("health", "baseline", "none", cfg,
                                profile=True)
        assert spec_key(plain) != spec_key(profiled)
        assert "+profile" in profiled.describe()

    def test_sweep_plan_profiles_timing_cell_only(self):
        from repro.harness.executor import SweepPlan

        plan = SweepPlan(small_config())
        run = plan.add_run("treeadd", "base",
                           params={"levels": 3, "passes": 1}, profile=True)
        assert run.timing.profile
        # Compute-time cells stay unprofiled so profiled and unprofiled
        # experiments keep sharing them in the result cache.
        assert not run.compute.profile

    def test_experiment_spec_profile_round_trip(self):
        from repro.harness import ExperimentSpec

        doc = {"name": "p", "workloads": ["treeadd"], "schemes": ["base"],
               "columns": ["scheme", "cycles"], "profile": True}
        spec = ExperimentSpec.from_dict(doc)
        assert spec.profile is True
        assert spec.to_dict()["profile"] is True
        bare = ExperimentSpec.from_dict({**doc, "profile": False})
        assert "profile" not in bare.to_dict()

    def test_compiled_spec_threads_profile_to_timing_cells(self):
        from repro.harness import ExperimentSpec, compile_spec

        spec = ExperimentSpec.from_dict({
            "name": "p", "machine": "small",
            "workloads": [{"name": "treeadd",
                           "params": {"levels": 3, "passes": 1}}],
            "schemes": ["base", "hardware"],
            "columns": ["scheme", "cycles"], "profile": True,
        })
        compiled = compile_spec(spec)
        timing = [s for s in compiled.plan._specs
                  if not s.cfg.perfect_data_memory and s.kind == "sim"]
        assert timing and all(s.profile for s in timing)

    def test_executor_cell_emits_profile(self, tmp_path):
        from repro.harness import ResultCache
        from repro.harness.executor import SweepPlan

        params = {"levels": 3, "passes": 1}

        def run_once():
            plan = SweepPlan(small_config())
            scheduled = plan.add_run("treeadd", "base", params=params,
                                     profile=True)
            results = plan.execute(cache=ResultCache(tmp_path))
            return scheduled, results.cell(scheduled.timing)

        __, cell = run_once()
        assert cell.ok and cell.result.profile is not None
        stack = cell.result.profile["cpi_stack"]
        assert sum(stack.values()) == cell.result.cycles
        # ... and the profile survives a round trip through the cache.
        __, warm = run_once()
        assert warm.cached
        assert warm.result.profile == cell.result.profile


class TestCli:
    def test_profile_subcommand(self, capsys):
        from repro.__main__ import main

        rc = main(["profile", "health", "--small", "--scheme", "hardware"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CPI stack" in out and "profile audit OK" in out
        assert "Hot load sites" in out
