"""Sweep service: repro.job/1 protocol, serve/submit integration, drills.

The worker pools run in-thread (``serve_forever`` on a daemon thread)
against real ``ProcessPoolExecutor`` workers, so these tests exercise
the full wire path — submit/lease/heartbeat/result over a Unix socket —
without subprocess orchestration.  The ``crash-pool`` drill swaps the
service's ``_die`` hook for a soft stop so killing a pool does not kill
pytest.
"""

from __future__ import annotations

import os
import shutil
import socket
import tempfile
import threading

import pytest

from repro import small_config
from repro.harness import FaultPlan, SweepExecutor
from repro.harness.cells import RunSpec
from repro.harness.faults import FaultSpec
from repro.harness.protocol import (
    ChannelClosed,
    LineChannel,
    PROTOCOL,
    ProtocolError,
    decode,
    decode_result,
    encode,
    encode_result,
    job_id,
    message,
)
from repro.harness.service import SweepService
from repro.workloads import workload_class

SMALL = {
    "treeadd": workload_class("treeadd").test_params(),
    "health": workload_class("health").test_params(),
}


@pytest.fixture(scope="module")
def cfg():
    return small_config()


def _specs(cfg) -> list[RunSpec]:
    return [
        RunSpec.make("treeadd", "baseline", "none", cfg, SMALL["treeadd"]),
        RunSpec.make("treeadd", "sw:queue", "dbp", cfg, SMALL["treeadd"]),
        RunSpec.make("health", "baseline", "none", cfg, SMALL["health"]),
    ]


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------

class TestProtocol:
    def test_message_round_trip(self):
        msg = message("submit", id="k:0", attempt=0)
        assert decode(encode(msg).rstrip(b"\n")) == msg
        assert msg["v"] == PROTOCOL

    def test_decode_rejects_wrong_version(self):
        bad = {"v": "repro.job/99", "type": "hello"}
        with pytest.raises(ProtocolError, match="protocol mismatch"):
            decode(encode(bad).rstrip(b"\n"))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json {")
        with pytest.raises(ProtocolError):
            decode(b'"a bare string"')
        with pytest.raises(ProtocolError):
            decode(b'{"no": "type field"}')

    def test_job_id_binds_attempt(self):
        assert job_id("abc", 0) == "abc:0"
        assert job_id("abc", 2) != job_id("abc", 1)

    def test_result_serde_table_row(self):
        row = {"benchmark": "treeadd", "insts": 5}
        assert decode_result("table1", encode_result("table1", row)) == row
        with pytest.raises(ProtocolError):
            decode_result("table1", "not a dict")

    def test_result_serde_sim(self, cfg):
        from repro.harness import run_cell

        out = run_cell(_specs(cfg)[0])
        assert out[0] == "ok"
        wire = encode_result("sim", out[1])
        assert decode_result("sim", wire).to_dict() == out[1].to_dict()


class TestLineChannel:
    def test_framing_across_partial_writes(self):
        a, b = socket.socketpair()
        chan = LineChannel(b)
        try:
            m1, m2 = message("hello", pool="p"), message("heartbeat", ids=[])
            data = encode(m1) + encode(m2)
            a.sendall(data[:7])
            assert chan.receive() == []          # incomplete line buffered
            a.sendall(data[7:])
            assert chan.receive() == [m1, m2]
        finally:
            a.close()
            chan.close()

    def test_eof_raises_after_drain(self):
        a, b = socket.socketpair()
        chan = LineChannel(b)
        try:
            a.sendall(encode(message("hello")))
            a.close()
            assert [m["type"] for m in chan.receive()] == ["hello"]
            with pytest.raises(ChannelClosed):
                chan.receive()
        finally:
            chan.close()


# ----------------------------------------------------------------------
# In-thread worker pools
# ----------------------------------------------------------------------

class _Pool:
    """One in-thread ``repro serve`` pool on a short-path Unix socket."""

    def __init__(self, name: str = "pool", workers: int = 2) -> None:
        # Unix socket paths are capped around 107 bytes: keep it short.
        self.dir = tempfile.mkdtemp(prefix="repro-svc-", dir="/tmp")
        self.path = os.path.join(self.dir, "p.sock")
        self.svc = SweepService(self.path, workers, name=name)
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.svc.serve_forever, args=(ready.set,), daemon=True
        )
        self.thread.start()
        assert ready.wait(10), "pool failed to start"

    def stop(self) -> None:
        self.svc.stop()
        self.thread.join(timeout=10)
        shutil.rmtree(self.dir, ignore_errors=True)


@pytest.fixture
def pool():
    p = _Pool()
    yield p
    p.stop()


def _executor(*pools, **kw) -> SweepExecutor:
    kw.setdefault("lease_ttl", 5.0)
    kw.setdefault("pool_wait", 15.0)
    return SweepExecutor(
        backend="service", pools=[p.path for p in pools], **kw
    )


class TestServiceBackend:
    def test_three_backends_bit_identical(self, cfg, pool):
        """The golden check: serial, local pool, and service execution
        of the same cells produce bit-identical results."""
        specs = _specs(cfg)
        serial = SweepExecutor(jobs=1).execute(specs)
        pooled = SweepExecutor(jobs=2, backend="process").execute(specs)
        service = _executor(pool).execute(specs)
        for spec in specs:
            want = serial[spec].result.to_dict()
            assert pooled[spec].result.to_dict() == want
            assert service[spec].result.to_dict() == want

    def test_leases_and_counters(self, cfg, pool):
        specs = _specs(cfg)
        ex = _executor(pool)
        cells = ex.execute(specs)
        assert all(c.ok for c in cells.values())
        s = ex.stats()
        assert s["executed"] == len(specs)
        assert s["leases"] == len(specs)
        assert s["failures"] == s["lease_expiries"] == s["dup_results"] == 0
        assert pool.svc.stats()["leased"] == len(specs)
        assert pool.svc.stats()["completed"] == len(specs)

    def test_worker_error_comes_back_as_error_cell(self, cfg, pool):
        spec = RunSpec.make("treeadd", "baseline", "no-such-engine", cfg,
                            SMALL["treeadd"])
        cells = _executor(pool).execute([spec])
        assert not cells[spec].ok
        assert "no-such-engine" in cells[spec].error

    def test_two_pools_share_the_sweep(self, cfg, pool):
        other = _Pool(name="pool-b")
        try:
            specs = _specs(cfg)
            serial = SweepExecutor(jobs=1).execute(specs)
            cells = _executor(pool, other).execute(specs)
            for spec in specs:
                assert cells[spec].result.to_dict() == \
                    serial[spec].result.to_dict()
            # Least-loaded dispatch spread the jobs over both pools.
            leased = (pool.svc.stats()["leased"],
                      other.svc.stats()["leased"])
            assert sum(leased) == len(specs) and all(n > 0 for n in leased)
        finally:
            other.stop()

    def test_pool_unavailable_fails_cleanly(self, cfg):
        spec = _specs(cfg)[0]
        ex = SweepExecutor(backend="service",
                           pools=["/tmp/repro-no-such-pool.sock"],
                           pool_wait=0.5)
        cells = ex.execute([spec])
        assert not cells[spec].ok
        assert cells[spec].error_kind == "PoolUnavailable"
        assert ex.stats()["failures"] == 1


class TestServiceFaultDrills:
    def test_crash_pool_fails_over(self, cfg, pool):
        """crash-pool kills the serving pool right after the lease; the
        client re-queues its jobs uncharged and a second pool finishes."""
        backup = _Pool(name="backup")
        # Soften the drill's os._exit: an in-thread pool "dies" by
        # stopping its loop (socket gone, connection dropped) instead of
        # taking pytest down with it.  Either pool may lease the doomed
        # cell, so both get the soft hook.
        pool.svc._die = pool.svc.stop
        backup.svc._die = backup.svc.stop
        try:
            specs = _specs(cfg)
            serial = SweepExecutor(jobs=1).execute(specs)
            ex = _executor(
                pool, backup,
                faults=FaultPlan.of(
                    FaultSpec(benchmark="health", kind="crash-pool",
                              times=1)
                ),
            )
            cells = ex.execute(specs)
            s = ex.stats()
            assert all(c.ok for c in cells.values())
            for spec in specs:
                assert cells[spec].result.to_dict() == \
                    serial[spec].result.to_dict()
            # The directive fired exactly once (a resubmission of the
            # same uncharged attempt must not re-crash the next pool).
            assert s["faults_injected"] == 1
            assert s["pool_breaks"] >= 1
            # Infrastructure loss is not a cell failure: no retries
            # charged, no failures recorded.
            assert s["failures"] == 0
        finally:
            backup.stop()

    def test_drop_heartbeat_expires_lease_and_charges_attempt(
        self, cfg, pool
    ):
        """drop-heartbeat blackholes the job after its lease: the TTL
        expires, the attempt is charged, and the retry succeeds."""
        spec = _specs(cfg)[0]
        ex = _executor(
            pool,
            retries=1,
            backoff=0.01,
            lease_ttl=1.0,
            faults=FaultPlan.of(
                FaultSpec(benchmark="treeadd", kind="drop-heartbeat",
                          times=1)
            ),
        )
        cells = ex.execute([spec])
        s = ex.stats()
        assert cells[spec].ok
        assert cells[spec].attempts == 2
        assert s["lease_expiries"] == 1
        assert s["retries"] == 1
        assert s["failures"] == 0

    def test_dup_result_dropped_idempotently(self, cfg, pool):
        """dup-result delivers the terminal result twice; the second
        arrival is counted and dropped, never double-assembled."""
        specs = _specs(cfg)
        serial = SweepExecutor(jobs=1).execute(specs)
        ex = _executor(
            pool,
            faults=FaultPlan.of(
                FaultSpec(benchmark="treeadd", kind="dup-result", times=1)
            ),
        )
        cells = ex.execute(specs)
        s = ex.stats()
        assert all(c.ok for c in cells.values())
        for spec in specs:
            assert cells[spec].result.to_dict() == \
                serial[spec].result.to_dict()
        # Two treeadd cells matched the rule -> two duplicate deliveries.
        assert s["dup_results"] == 2
        assert s["failures"] == 0

    def test_worker_faults_ship_over_the_wire(self, cfg, pool):
        """A transient worker fault fires inside the remote pool worker
        and the client's retry machinery recovers, exactly as local."""
        spec = _specs(cfg)[0]
        ex = _executor(
            pool,
            retries=1,
            backoff=0.01,
            faults=FaultPlan.of(
                FaultSpec(benchmark="treeadd", kind="transient", times=1)
            ),
        )
        cells = ex.execute([spec])
        assert cells[spec].ok and cells[spec].attempts == 2
        assert ex.stats()["retries"] == 1
