"""Sweep executor: serial/parallel parity, deduplication, error isolation."""

from dataclasses import replace

import pytest

from repro import small_config
from repro.harness import (
    RunSpec,
    SweepError,
    SweepExecutor,
    SweepPlan,
    figure5,
    figure7,
)
from repro.workloads import Workload, workload_class, workload_names
from repro.workloads import registry as workload_registry

SMALL = {name: workload_class(name).test_params() for name in workload_names()}
FAST_SET = ("treeadd", "power", "health")


@pytest.fixture(scope="module")
def cfg():
    return small_config()


class PoisonedWorkload(Workload):
    """Plans fine (all variants advertised) but every build raises."""

    name = "poisoned"
    structure = "test dummy"
    variants = ("baseline", "sw:queue", "coop:queue")

    def build_variant(self, variant):
        raise RuntimeError("poisoned build")


@pytest.fixture
def poisoned():
    workload_registry.register(PoisonedWorkload)
    yield "poisoned"
    workload_registry.WORKLOADS.unregister("poisoned")


class TestRunSpec:
    def test_params_frozen_and_order_insensitive(self, cfg):
        a = RunSpec.make("treeadd", "baseline", "none", cfg, {"levels": 3, "passes": 2})
        b = RunSpec.make("treeadd", "baseline", "none", cfg, {"passes": 2, "levels": 3})
        assert a == b and hash(a) == hash(b)

    def test_distinct_cells_differ(self, cfg):
        a = RunSpec.make("treeadd", "baseline", "none", cfg)
        assert a != RunSpec.make("treeadd", "baseline", "dbp", cfg)
        assert a != RunSpec.make("treeadd", "baseline", "none", cfg.perfect())
        assert a != RunSpec.make("treeadd", "baseline", "none", cfg, {"levels": 4})


class TestDeduplication:
    def test_compute_runs_shared_across_schemes(self, cfg):
        plan = SweepPlan(cfg)
        for scheme in ("base", "hardware", "dbp"):
            plan.add_run("treeadd", scheme, SMALL["treeadd"])
        results = plan.execute()
        # base/hardware/dbp all run the baseline program: 3 timing cells
        # plus ONE shared compute cell (deduplicated), not 6 cells.
        assert len(results.cells) == 4


class TestSerialParallelParity:
    def test_figure5_rows_identical(self, cfg):
        params = {n: SMALL[n] for n in FAST_SET}
        serial = figure5(cfg, benchmarks=FAST_SET, params=params)
        parallel = figure5(cfg, benchmarks=FAST_SET, params=params, jobs=4)
        assert serial == parallel

    def test_figure7_rows_identical(self, cfg):
        serial = figure7(cfg, latencies=(70,), intervals=(8,),
                         params=SMALL["health"])
        parallel = figure7(cfg, latencies=(70,), intervals=(8,),
                           params=SMALL["health"], jobs=4)
        assert serial == parallel

    @pytest.mark.slow
    def test_full_suite_parity(self, cfg):
        serial = figure5(cfg, params=SMALL)
        parallel = figure5(cfg, params=SMALL, jobs=4)
        assert serial == parallel


class TestErrorIsolation:
    def test_failed_cell_becomes_error_result(self, cfg):
        specs = [
            RunSpec.make("treeadd", "baseline", "none", cfg, SMALL["treeadd"]),
            RunSpec.make("treeadd", "baseline", "no-such-engine", cfg,
                         SMALL["treeadd"]),
        ]
        cells = SweepExecutor().execute(specs)
        good, bad = cells[specs[0]], cells[specs[1]]
        assert good.ok and good.result.cycles > 0
        assert not bad.ok and "no-such-engine" in bad.error

    def test_scheme_run_raises_on_error_cell(self, cfg):
        plan = SweepPlan(cfg)
        sr = plan.add_run("treeadd", "base", SMALL["treeadd"])
        bad = plan.add(RunSpec.make("treeadd", "baseline", "no-such-engine",
                                    cfg, SMALL["treeadd"]))
        results = plan.execute()
        assert results.scheme_run(sr).total > 0
        assert results.error(bad) is not None
        with pytest.raises(SweepError):
            results.scheme_run(replace(sr, timing=bad))

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_poisoned_worker_yields_error_row(self, cfg, poisoned, jobs):
        rows = figure5(cfg, benchmarks=("treeadd", poisoned),
                       params={"treeadd": SMALL["treeadd"]}, jobs=jobs)
        good = [r for r in rows if r["benchmark"] == "treeadd"]
        bad = [r for r in rows if r["benchmark"] == poisoned]
        # The healthy benchmark is untouched by its neighbour's failure...
        assert len(good) == 5
        assert all("error" not in r and r["normalized"] > 0 for r in good)
        # ...and every poisoned cell surfaces as an error row.
        assert len(bad) == 5
        assert all("poisoned build" in r["error_detail"] for r in bad)
        assert all(r["error"].endswith("poisoned build") for r in bad)


class TestProgress:
    def test_narration_counts_cells(self, cfg):
        lines = []
        figure5(cfg, benchmarks=("treeadd",), params=SMALL,
                progress=lines.append)
        # 5 schemes -> 5 timing + 3 distinct variants' compute cells.
        assert len(lines) == 8
        assert lines[-1].startswith("[8/8] ")
        assert all("cycles" in line for line in lines)
