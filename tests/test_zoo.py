"""The scheme zoo: engine behavior, bounded memory, 3-engine lockstep.

Three layers of coverage for the four zoo engines (pointer-chase,
stride, cdp, foresight):

* behavior on controlled programs — each engine actually prefetches on
  the access pattern it was built for, and its ``audit_check`` comes
  back clean after a real run;
* bounded memory — a Hypothesis flood of 10^5 *distinct* addresses
  through each engine's hooks must leave every per-address structure
  under its declared capacity (the PR-5 ``_recent_chase`` failure mode,
  now guarded by :class:`repro.prefetch.bounded.BoundedClockMap`);
* simulation-engine lockstep — table, reference, and compiled timing
  must stay bit-identical with each zoo engine attached (the same
  property :mod:`tests.test_blockjit` pins for the paper's engines).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Assembler, simulate, small_config
from repro.cpu import make_engine
from repro.cpu.timing import TimingModel
from repro.harness import get_scheme, scheme_names
from repro.isa.engines import SIM_ENGINES
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import A0, A1, T0, T1, T2, V0, ZERO
from repro.prefetch import BoundedClockMap
from repro.prefetch.engines import DBPEngine, ENGINE_CLASSES

from tests.conftest import assemble_list_walk
from tests.test_engines import walk_twice

ZOO = ("pointer-chase", "stride", "cdp", "foresight")


# ----------------------------------------------------------------------
# Registration: engines, schemes, descriptions
# ----------------------------------------------------------------------

class TestRegistration:
    @pytest.mark.parametrize("name", ZOO)
    def test_engine_registered(self, name):
        assert name in ENGINE_CLASSES
        assert ENGINE_CLASSES[name].name == name

    @pytest.mark.parametrize("name", ZOO)
    def test_scheme_registered_with_description(self, name):
        assert name in scheme_names()
        scheme = get_scheme(name)
        assert scheme.engine == name
        assert scheme.variant == "baseline"  # hardware-side: no code changes
        assert scheme.description

    @pytest.mark.parametrize("name", ZOO)
    def test_make_engine_resolves(self, name):
        engine = make_engine(name, small_config())
        assert engine.name == name


# ----------------------------------------------------------------------
# Behavior on controlled programs
# ----------------------------------------------------------------------

def assemble_array_sweep(words: int = 64, passes: int = 3):
    """Repeated stride-4 sweeps over a word array (stride's home turf)."""
    a = Assembler()
    arr = a.array(list(range(1, words + 1)))
    res = a.word(0)
    a.label("main")
    a.li(T0, passes)
    a.label("pass")
    a.beqz(T0, "done")
    a.li(T1, arr)
    a.li(T2, arr + 4 * words)
    a.label("sweep")
    a.bge(T1, T2, "next")
    a.lw(V0, T1, 0)
    a.addi(T1, T1, 4)
    a.j("sweep")
    a.label("next")
    a.addi(T0, T0, -1)
    a.j("pass")
    a.label("done")
    a.li(A0, res)
    a.sw(V0, A0, 0)
    a.halt()
    return a.assemble("array_sweep")


def assemble_walk_rounds(n: int, rounds: int = 2):
    """Build an n-node list, then run ``rounds`` traversals through the
    SAME static walk loop.  Round 2 re-enters a structure whose loop
    PCs went recurrent in round 1 — the foresight trigger."""
    a = Assembler()
    res = a.word(0)
    head = a.word(0)
    a.label("main")
    a.li(T0, n)
    a.label("build")
    a.beqz(T0, "rounds")
    a.alloc(T1, ZERO, 16)
    a.sw(T0, T1, 0)
    a.li(A0, head)
    a.lw(T2, A0, 0)
    a.sw(T2, T1, 4)
    a.sw(T1, A0, 0)
    a.addi(T0, T0, -1)
    a.j("build")
    a.label("rounds")
    a.li(A1, rounds)
    a.li(T0, 0)
    a.label("round")
    a.beqz(A1, "done")
    a.li(A0, head)
    a.lw(T1, A0, 0, tag="lds")
    a.label("wloop")
    a.beqz(T1, "next_round")
    a.lw(V0, T1, 0, pad=16, tag="lds")
    a.add(T0, T0, V0)
    a.lw(T1, T1, 4, pad=16, tag="lds")
    a.j("wloop")
    a.label("next_round")
    a.addi(A1, A1, -1)
    a.j("round")
    a.label("done")
    a.li(A0, res)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("walk_rounds"), res


class TestZooBehavior:
    def test_pointer_chase_walks_ahead(self, tiny_cfg):
        program, __ = assemble_list_walk(48)
        engine = make_engine("pointer-chase", tiny_cfg)
        res = TimingModel(program, tiny_cfg, engine).run()
        assert res.engine.chained_prefetches > 0
        assert res.engine.extra.get("tu_hops", 0) > 0
        assert engine.audit_check(res.cycles) == []

    def test_pointer_chase_unit_is_a_resource(self, tiny_cfg):
        # Two triggers at the same instant: the second finds the unit
        # busy and is dropped, not queued.
        engine = make_engine("pointer-chase", tiny_cfg)
        program, __ = assemble_list_walk(32)
        TimingModel(program, tiny_cfg, engine).run()
        engine._tu_free = 10_000_000
        before = engine.stats.extra.get("tu_busy_drops", 0)
        engine._walk(0, 0x2000_0000, 5_000_000)
        assert engine.stats.extra["tu_busy_drops"] == before + 1

    def test_stride_covers_array_sweeps(self, tiny_cfg):
        engine = make_engine("stride", tiny_cfg)
        res = TimingModel(assemble_array_sweep(), tiny_cfg, engine).run()
        assert res.engine.chained_prefetches > 0
        assert res.hierarchy.prefetches_useful > 0
        assert engine.audit_check(res.cycles) == []

    def test_stride_confidence_warms_up(self, tiny_cfg):
        # The first two strided accesses only train; no prefetch until
        # confidence reaches the threshold.
        engine = make_engine("stride", tiny_cfg)
        program = assemble_array_sweep(words=3, passes=1)
        res = TimingModel(program, tiny_cfg, engine).run()
        assert res.engine.chained_prefetches == 0

    def test_cdp_chases_pointer_shaped_values(self, tiny_cfg):
        program, __ = assemble_list_walk(48)
        engine = make_engine("cdp", tiny_cfg)
        res = TimingModel(program, tiny_cfg, engine).run()
        assert res.engine.chained_prefetches > 0
        assert engine.audit_check(res.cycles) == []

    def test_foresight_bursts_at_structure_entry(self, tiny_cfg):
        # Round 2 re-enters the (now learned) structure: the walk load
        # is recurrent but its base was produced outside the recurrence
        # — a structure entry.
        # 200 nodes (3.2 KiB) overflow the tiny L2, so round 2 re-enters
        # a cold structure and the burst issues real prefetches.
        program, __ = assemble_walk_rounds(200)
        engine = make_engine("foresight", tiny_cfg)
        res = TimingModel(program, tiny_cfg, engine).run()
        assert res.engine.extra.get("structure_entries", 0) >= 1
        assert res.engine.extra.get("foresight_nodes", 0) >= 1
        assert res.engine.chained_prefetches > 0
        assert engine.audit_check(res.cycles) == []

    @pytest.mark.parametrize("name", ZOO)
    def test_audit_clean_after_real_runs(self, tiny_cfg, name):
        engine = make_engine(name, tiny_cfg)
        for program, __ in (assemble_list_walk(24), walk_twice(16),
                            assemble_walk_rounds(16)):
            TimingModel(program, tiny_cfg, engine).run()
        assert engine.audit_check(10**9) == []


# ----------------------------------------------------------------------
# BoundedClockMap: the shared eviction helper
# ----------------------------------------------------------------------

class TestBoundedClockMap:
    def test_fresh_within_window_only(self):
        m = BoundedClockMap(window=10, capacity=100)
        m.note("k", 5)
        assert m.fresh("k", 14)
        assert not m.fresh("k", 15)
        assert not m.fresh("other", 5)

    def test_check_is_test_and_set(self):
        m = BoundedClockMap(window=10, capacity=100)
        assert not m.check("k", 0)   # first sight: recorded
        assert m.check("k", 5)       # fresh: suppressed
        assert not m.check("k", 50)  # expired: re-recorded

    def test_burst_inside_one_window_stays_bounded(self):
        m = BoundedClockMap(window=1000, capacity=16)
        for i in range(200):
            m.note(i, 3)
        assert len(m) <= 16
        assert m.audit_check("t") == []

    def test_out_of_order_times_never_roll_clock_back(self):
        m = BoundedClockMap(window=10, capacity=100)
        m.note("a", 100)
        m.note("b", 3)  # stale timestamp: clock must not regress
        assert m._clock == 100
        assert m.audit_check("t") == []

    def test_old_entries_age_out(self):
        m = BoundedClockMap(window=8, capacity=4)
        for i in range(64):
            m.note(i, i * 4)
        assert len(m) <= 4
        assert 63 in m and 0 not in m

    @pytest.mark.parametrize("window,capacity", [(0, 4), (4, 0), (-1, -1)])
    def test_rejects_nonpositive_bounds(self, window, capacity):
        with pytest.raises(ValueError):
            BoundedClockMap(window, capacity)

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 10_000)),
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_capacity_invariant_under_any_schedule(self, ops):
        m = BoundedClockMap(window=64, capacity=32)
        for key, t in ops:
            m.note(key, t)
            assert len(m) <= 32
            assert m.audit_check("t") == []


# ----------------------------------------------------------------------
# Bounded memory under a 10^5-distinct-address flood
# ----------------------------------------------------------------------

class _FloodHierarchy:
    """Nothing is ever cached; every fill takes one memory latency."""

    def probe_cached(self, addr, time):
        return False

    def prefetch_request(self, addr, time):
        return time + 70


class _FloodMemory:
    """All peeks read 0: chains end immediately, keeping walks cheap."""

    def peek(self, addr):
        return 0


FLOOD = 100_000


class TestBoundedMemoryFlood:
    """10^5 distinct addresses through each engine's hooks: every
    per-address structure must stay under its declared bound and the
    engine's own audit must stay clean (the ISSUE-10 regression drill
    for the ``DBPEngine._recent_chase`` failure class)."""

    def _flooded(self, name, seed):
        cfg = small_config()
        engine = ENGINE_CLASSES[name]()
        heap_lo = 0x1000
        engine.attach(_FloodHierarchy(), _FloodMemory(),
                      heap_lo, heap_lo + 64 * FLOOD + 64, cfg)
        inst = Instruction(Op.LW, rd=2, rs1=3, tag="lds")
        inst.index = 7
        if isinstance(engine, DBPEngine):
            # Seed the self-recurrence so commit hooks take the chasing
            # paths (the expensive, per-address-state ones).
            for __ in range(4):
                engine.predictor.learn(7, 7, 4)
            engine.recurrent_pcs.add(7)
        t = 0
        for i in range(FLOOD):
            # Distinct, line-disjoint, 4-aligned heap addresses.
            addr = heap_lo + 64 * ((seed + i) % FLOOD)
            t += 3
            if name == "stride":
                # Half the flood cycles through distinct PCs (RPT churn),
                # half trains one confident stride (recent-line churn).
                inst.index = i if i % 2 else 31337
                engine.on_load_issue(inst, addr, t)
                inst.index = 7
            else:
                engine.on_load_commit(inst, addr, addr, t, None, None)
        return engine, t

    @pytest.mark.parametrize("name", ZOO)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=2, deadline=None)
    def test_structures_stay_bounded(self, name, seed):
        engine, now = self._flooded(name, seed)
        assert engine.audit_check(now) == []
        if name == "pointer-chase":
            assert len(engine._visited) <= engine.VISIT_CAPACITY
        elif name == "stride":
            assert len(engine._rpt) <= engine.TABLE_ENTRIES
            assert len(engine._recent) <= engine.RECENT_CAPACITY
        elif name == "cdp":
            assert len(engine._recent) <= engine.RECENT_CAPACITY
        elif name == "foresight":
            assert len(engine._entries) <= engine.ENTRY_CAPACITY


# ----------------------------------------------------------------------
# Three-simulation-engine lockstep with each zoo engine attached
# ----------------------------------------------------------------------

@pytest.fixture(autouse=True, scope="module")
def _compile_everything():
    """Force block compilation on first touch so the compiled paths of
    short property programs are actually exercised."""
    old = os.environ.get("REPRO_JIT_THRESHOLD")
    os.environ["REPRO_JIT_THRESHOLD"] = "1"
    yield
    if old is None:
        os.environ.pop("REPRO_JIT_THRESHOLD", None)
    else:
        os.environ["REPRO_JIT_THRESHOLD"] = old


def _mixed_program(n_nodes, arr_passes, seed):
    """Array sweep (feeds stride) + double list walk (feeds the pointer
    schemes), sized/seeded by Hypothesis."""
    a = Assembler()
    arr = a.array([(seed * (i + 3)) % 509 for i in range(16)])
    res = a.word(0)
    head = a.word(0)
    a.label("main")
    a.li(T0, arr_passes)
    a.label("apass")
    a.beqz(T0, "build_start")
    a.li(T1, arr)
    a.li(T2, arr + 64)
    a.label("aloop")
    a.bge(T1, T2, "anext")
    a.lw(V0, T1, 0)
    a.addi(T1, T1, 4)
    a.j("aloop")
    a.label("anext")
    a.addi(T0, T0, -1)
    a.j("apass")
    a.label("build_start")
    a.li(T0, n_nodes)
    a.label("build")
    a.beqz(T0, "walks")
    a.alloc(T1, ZERO, 16)
    a.sw(T0, T1, 0)
    a.li(A0, head)
    a.lw(T2, A0, 0)
    a.sw(T2, T1, 4)
    a.sw(T1, A0, 0)
    a.addi(T0, T0, -1)
    a.j("build")
    a.label("walks")
    for w in range(2):
        a.li(T0, 0)
        a.li(A0, head)
        a.lw(T1, A0, 0, tag="lds")
        a.label(f"wloop{w}")
        a.beqz(T1, f"wdone{w}")
        a.lw(V0, T1, 0, pad=16, tag="lds")
        a.add(T0, T0, V0)
        a.lw(T1, T1, 4, pad=16, tag="lds")
        a.j(f"wloop{w}")
        a.label(f"wdone{w}")
    a.li(A0, res)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("zoo_lockstep")


class TestZooLockstep:
    @given(engine=st.sampled_from(ZOO),
           n=st.integers(min_value=2, max_value=10),
           passes=st.integers(min_value=0, max_value=3),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=16, deadline=None)
    def test_timing_results_identical(self, engine, n, passes, seed):
        program = _mixed_program(n, passes, seed)
        cfg = small_config()
        results = {
            name: simulate(program, cfg, engine=engine, sim_engine=name)
            for name in SIM_ENGINES.names()
        }
        table = results["table"]
        for name, result in results.items():
            assert result.cycles == table.cycles, name
            assert result.to_dict() == table.to_dict(), name
