"""Tournament reporting: spec validation, ranking, outcome conservation.

The tournament spec crosses every scheme against every workload with
telemetry attached; these tests pin

* spec-level validation — outcome columns require ``telemetry = true``,
  and the flag round-trips through to_dict/from_dict and the cache key;
* :func:`tournament_summary` ranking semantics on synthetic rows —
  geomean ordering, error-struck schemes after clean ones, name ties;
* the end-to-end conservation law on a real (small) tournament run —
  every (scheme, workload) cell's ``timely + late + early-evicted +
  useless`` equals its ``issued`` count (the PR-5 outcome partition),
  with ``dropped`` counted separately.
"""

import dataclasses
import json

import pytest

from repro import small_config
from repro.harness import (
    ExperimentSpec,
    RunSpec,
    SpecError,
    WorkloadSel,
    is_tournament_spec,
    load_spec,
    run_spec,
    scheme_names,
    small_params,
    spec_key,
    tournament_summary,
)
from repro.obs.outcomes import OUTCOMES
from repro.workloads import workload_class

try:
    import tomllib  # noqa: F401
    HAVE_TOMLLIB = True
except ImportError:  # pragma: no cover
    HAVE_TOMLLIB = False

needs_toml = pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib (3.11+)")

PARTITION = ("timely", "late", "early-evicted", "useless")


def tiny_tournament_spec():
    spec = ExperimentSpec(
        name="tournament-test",
        telemetry=True,
        workloads=(WorkloadSel("treeadd"), WorkloadSel("em3d")),
        schemes=tuple(scheme_names()),
        columns=("benchmark", "scheme", "cycles", "normalized", "issued",
                 *OUTCOMES),
    )
    return dataclasses.replace(spec, workloads=(
        WorkloadSel("treeadd", params=small_params("treeadd")),
        WorkloadSel("em3d", params=small_params("em3d")),
    ))


# ----------------------------------------------------------------------
# Spec validation and round-trips
# ----------------------------------------------------------------------

class TestTelemetrySpecValidation:
    def test_outcome_columns_require_telemetry(self):
        with pytest.raises(SpecError, match="telemetry"):
            ExperimentSpec(
                name="x",
                workloads=(WorkloadSel("health"),),
                schemes=("base", "hardware"),
                columns=("benchmark", "scheme", "timely"),
            )

    def test_telemetry_round_trips(self):
        spec = tiny_tournament_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_to_dict_omits_default_telemetry(self):
        spec = ExperimentSpec(
            name="x", workloads=(WorkloadSel("health"),),
            schemes=("base",), columns=("benchmark", "scheme", "cycles"))
        assert "telemetry" not in spec.to_dict()

    def test_telemetry_is_part_of_the_cache_key(self):
        cfg = small_config()
        params = workload_class("treeadd").test_params()
        plain = RunSpec.make("treeadd", "baseline", "none", cfg, params)
        observed = RunSpec.make("treeadd", "baseline", "none", cfg, params,
                                telemetry=True)
        assert spec_key(plain) != spec_key(observed)

    @needs_toml
    def test_shipped_tournament_spec_qualifies(self):
        spec = load_spec("examples/specs/tournament.toml")
        assert spec.telemetry
        assert is_tournament_spec(spec)
        assert set(spec.schemes) == set(scheme_names())

    @needs_toml
    def test_non_telemetry_specs_do_not_qualify(self):
        assert not is_tournament_spec(load_spec("examples/specs/figure5.toml"))

    @needs_toml
    def test_cannot_strip_telemetry_from_outcome_spec(self):
        spec = load_spec("examples/specs/tournament.toml")
        with pytest.raises(SpecError, match="telemetry"):
            dataclasses.replace(spec, telemetry=False)


# ----------------------------------------------------------------------
# Ranking semantics on synthetic rows
# ----------------------------------------------------------------------

def _row(scheme, normalized, issued=0, **outcomes):
    row = {"scheme": scheme, "normalized": normalized, "issued": issued}
    for o in OUTCOMES:
        row[o] = outcomes.get(o.replace("-", "_"), 0)
    return row


class TestTournamentSummary:
    def test_ranks_by_geomean_lowest_first(self):
        rows = [_row("slow", 1.2), _row("slow", 1.1),
                _row("fast", 0.9), _row("fast", 0.8),
                _row("base", 1.0), _row("base", 1.0)]
        summary = tournament_summary(rows)
        assert [r["scheme"] for r in summary] == ["fast", "base", "slow"]
        assert [r["rank"] for r in summary] == [1, 2, 3]
        assert summary[0]["best"] == 0.8 and summary[0]["worst"] == 0.9

    def test_error_rows_rank_after_every_clean_scheme(self):
        rows = [_row("clean", 1.3),
                _row("struck", 0.5),
                {"scheme": "struck", "error": "boom"}]  # no normalized
        summary = tournament_summary(rows)
        assert [r["scheme"] for r in summary] == ["clean", "struck"]
        assert summary[1]["errors"] == 1 and summary[1]["cells"] == 1

    def test_ties_break_by_name(self):
        rows = [_row("zeta", 1.0), _row("alpha", 1.0)]
        assert [r["scheme"] for r in tournament_summary(rows)] == [
            "alpha", "zeta"]

    def test_outcome_totals_aggregate(self):
        rows = [_row("s", 1.0, issued=10, timely=4, late=6),
                _row("s", 0.9, issued=5, timely=5)]
        (summary,) = tournament_summary(rows)
        assert summary["issued"] == 15
        assert summary["timely"] == 9 and summary["late"] == 6
        assert summary["accuracy%"] == 60.0

    def test_rows_without_scheme_are_ignored(self):
        assert tournament_summary([{"benchmark": "treeadd"}]) == []


# ----------------------------------------------------------------------
# End-to-end: the conservation law on a real small tournament
# ----------------------------------------------------------------------

class TestTournamentEndToEnd:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_spec(tiny_tournament_spec(), cfg=small_config())

    def test_every_cell_present(self, rows):
        assert len(rows) == 2 * len(scheme_names())
        cells = {(r["benchmark"], r["scheme"]) for r in rows}
        assert len(cells) == len(rows)

    def test_outcome_partition_sums_to_issued(self, rows):
        for row in rows:
            partition = sum(row[o] for o in PARTITION)
            assert partition == row["issued"], row
            assert row["dropped"] >= 0

    def test_summary_is_well_formed_and_conserves(self, rows):
        summary = tournament_summary(rows)
        assert [r["rank"] for r in summary] == list(
            range(1, len(scheme_names()) + 1))
        assert all(r["errors"] == 0 and r["cells"] == 2 for r in summary)
        geomeans = [r["geomean"] for r in summary]
        assert geomeans == sorted(geomeans)
        for r in summary:
            assert sum(r[o] for o in PARTITION) == r["issued"]

    def test_base_scheme_issues_nothing(self, rows):
        for row in rows:
            if row["scheme"] == "base":
                assert row["issued"] == 0 and row["normalized"] == 1.0
