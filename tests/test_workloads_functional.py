"""Functional correctness of every Olden kernel in every variant.

Each workload builds its program, the interpreter runs it, and the result
is checked against the workload's Python mirror — so all prefetch variants
are proven semantics-preserving.
"""

import networkx as nx
import pytest

from repro import WorkloadError, get_workload, run_to_completion, workload_names
from repro.workloads import parse_variant, workload_class
from repro.workloads.registry import register

ALL = workload_names()


def _cases():
    for name in ALL:
        for variant in workload_class(name).variants:
            yield pytest.param(name, variant, id=f"{name}-{variant}")


@pytest.mark.parametrize("name,variant", list(_cases()))
def test_variant_functionally_correct(name, variant):
    w = get_workload(name, **workload_class(name).test_params())
    built = w.build(variant)
    interp = run_to_completion(built.program)
    built.verify(interp)


def test_all_ten_olden_programs_present():
    olden = {"bh", "bisort", "em3d", "health", "mst", "perimeter", "power",
             "treeadd", "tsp", "voronoi"}
    assert olden <= set(ALL)
    assert "spmv" in ALL  # the sparse-matrix extension workload


def test_unknown_variant_rejected():
    w = get_workload("treeadd", **workload_class("treeadd").test_params())
    with pytest.raises(WorkloadError):
        w.build("sw:root")


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        get_workload("doesnotexist")


def test_duplicate_registration_rejected():
    cls = workload_class("treeadd")
    with pytest.raises(WorkloadError):
        register(cls)


def test_parse_variant():
    assert parse_variant("baseline") == ("baseline", None)
    assert parse_variant("sw:chain") == ("sw", "chain")
    assert parse_variant("coop:root") == ("coop", "root")
    with pytest.raises(WorkloadError):
        parse_variant("hw:chain")
    with pytest.raises(WorkloadError):
        parse_variant("sw:")


def test_best_variant_selection():
    w = get_workload("health", **workload_class("health").test_params())
    assert w.best_variant("software") == "sw:chain"
    assert w.best_variant("cooperative") == "coop:chain"


class TestTreeadd:
    def test_sum_formula(self):
        from repro.workloads.olden.treeadd import TreeAdd

        w = TreeAdd(levels=5, passes=1, interval=4)
        built = w.build("baseline")
        assert built.expected["sum"] == 2**5 - 1


class TestMst:
    @pytest.mark.parametrize("n,buckets", [(8, 4), (12, 4), (16, 8)])
    def test_mirror_matches_networkx(self, n, buckets):
        from repro.workloads.olden.mst import edge_weight, mirror

        G = nx.Graph()
        for u in range(n):
            for v in range(u + 1, n):
                G.add_edge(u, v, weight=edge_weight(u, v))
        T = nx.minimum_spanning_tree(G)
        expected = sum(d["weight"] for __, __v, d in T.edges(data=True))
        assert mirror(n, buckets) == expected

    def test_weights_symmetric(self):
        from repro.workloads.olden.mst import edge_weight

        for u in range(10):
            for v in range(10):
                if u != v:
                    assert edge_weight(u, v) == edge_weight(v, u)
                    assert 1 <= edge_weight(u, v) <= 256


class TestHealth:
    def test_mirror_conserves_patients(self):
        from repro.workloads.olden.health import mirror, _num_hospitals

        total_time, discharged, checksum = mirror(3, 3, 4, 6)
        npatients = _num_hospitals(3, 3) * 4
        assert 0 <= discharged <= npatients
        assert total_time > 0
        assert checksum > 0

    def test_more_iterations_more_time(self):
        from repro.workloads.olden.health import mirror

        t1, __, __c = mirror(3, 3, 3, 2)
        t2, __, __c = mirror(3, 3, 3, 6)
        assert t2 > t1


class TestEm3d:
    def test_mirror_is_deterministic(self):
        from repro.workloads.olden.em3d import mirror

        assert mirror(16, 16, 2, 3) == mirror(16, 16, 2, 3)

    def test_values_change_with_iterations(self):
        from repro.workloads.olden.em3d import mirror

        assert mirror(16, 16, 2, 1) != mirror(16, 16, 2, 5)


class TestBisort:
    def test_value_multiset_preserved(self):
        """The compare-exchange only swaps values: the total is invariant."""
        from repro.workloads.olden.bisort import mirror

        __, total_a = mirror(5, 1)
        __, total_b = mirror(5, 4)
        assert total_a == total_b


class TestTsp:
    def test_tour_length_positive_and_bounded(self):
        from repro.workloads.olden.tsp import mirror

        length = mirror(16)
        # 16 unit-square hops: bounded by n * sqrt(2)
        assert 0 < length < 16 * 1.4143


class TestVoronoi:
    def test_window_approximation_upper_bounds_true_closest_pair(self):
        from repro.workloads.olden.voronoi import _points, mirror

        n = 24
        pts = _points(n)
        true_best = min(
            (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2
            for i, a in enumerate(pts)
            for b in pts[i + 1:]
        )
        assert mirror(n) >= true_best


class TestPerimeter:
    def test_perimeter_counts_black_leaves(self):
        from repro.workloads.olden.perimeter import mirror

        perim, count = mirror(3)
        assert perim >= 0
        assert count >= 1
