"""Differential validation: the reference interpreter must track the
decode-table fast path bit-for-bit, and the diff machinery must localize
any disagreement."""

import pytest

from repro import Assembler, simulate
from repro.audit import (
    ReferenceInterpreter,
    diff_commit_streams,
    diff_results,
    reference_simulate,
)
from repro.audit import diff as diff_mod
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Op
from repro.isa.registers import T0, T1, T2
from repro.workloads import get_workload, workload_class

from tests.conftest import assemble_list_walk, assemble_loop_sum


def _drain(program, cls):
    interp = cls(program)
    records = [
        (inst.index, addr, value, taken)
        for inst, addr, value, taken in interp.run()
    ]
    return interp, records


class TestReferenceInterpreter:
    @pytest.mark.parametrize("builder, arg", [
        (assemble_list_walk, 64),
        (assemble_loop_sum, 200),
    ])
    def test_streams_match_fast_path(self, builder, arg):
        program, __ = builder(arg)
        fast, fast_records = _drain(program, Interpreter)
        ref, ref_records = _drain(program, ReferenceInterpreter)
        assert fast_records == ref_records
        assert fast.registers == ref.registers
        assert fast.steps == ref.steps
        assert fast.memory._words == ref.memory._words

    def test_quirky_integer_semantics_match(self):
        # DIV/REM truncate toward zero and SLTU compares magnitudes —
        # the reference restates these independently; both must agree.
        a = Assembler()
        out = a.space(8)
        a.label("main")
        a.li(T0, -7)
        a.li(T1, 2)
        a.div(T2, T0, T1)       # -3, not -4
        a.sw(T2, 0, out)
        a.rem(T2, T0, T1)       # -1
        a.sw(T2, 0, out + 4)
        a._rr(Op.SLTU, T2, T0, T1)  # |-7| < |2| is false (no sugar for SLTU)
        a.sw(T2, 0, out + 8)
        a.halt()
        program = a.assemble()
        assert diff_commit_streams(program) is None
        ref = ReferenceInterpreter(program)
        for __ in ref.run():
            pass
        assert ref.memory._words[out] == -3
        assert ref.memory._words[out + 4] == -1
        assert ref.memory._words[out + 8] == 0

    def test_max_steps_budget_respected(self):
        a = Assembler()
        a.label("main")
        a.label("spin")
        a.j("spin")
        a.halt()  # unreachable; assembler requires one
        program = a.assemble()
        from repro.errors import ExecutionError
        ref = ReferenceInterpreter(program, max_steps=100)
        with pytest.raises(ExecutionError, match="budget"):
            for __ in ref.run():
                pass
        assert ref.steps == 100


class TestDiffCommitStreams:
    def test_workload_programs_are_identical(self):
        # Two cheap real workloads, baseline + an annotated variant each.
        for name, variant in (
            ("treeadd", "baseline"), ("treeadd", "sw:queue"),
            ("mst", "baseline"), ("mst", "sw:root"),
        ):
            w = get_workload(name, **workload_class(name).test_params())
            program = w.build(variant).program
            assert diff_commit_streams(program) is None, f"{name}/{variant}"

    def test_reports_first_divergent_field(self, monkeypatch):
        class LyingInterpreter(ReferenceInterpreter):
            """Mis-executes the 3rd dynamic instruction's value field."""

            def run(self):
                for i, rec in enumerate(super().run()):
                    if i == 2:
                        inst, addr, value, taken = rec
                        rec = (inst, addr, value + 1, taken)
                    yield rec

        monkeypatch.setattr(diff_mod, "ReferenceInterpreter", LyingInterpreter)
        program, __ = assemble_loop_sum(10)
        d = diff_commit_streams(program)
        assert d is not None
        assert d.index == 2 and d.where == "value"
        assert d.ref == d.fast + 1
        assert "dynamic instruction 2" in d.describe()

    def test_reports_early_stream_end(self, monkeypatch):
        class TruncatingInterpreter(ReferenceInterpreter):
            def run(self):
                for i, rec in enumerate(super().run()):
                    if i == 5:
                        return
                    yield rec

        monkeypatch.setattr(diff_mod, "ReferenceInterpreter",
                            TruncatingInterpreter)
        program, __ = assemble_loop_sum(10)
        d = diff_commit_streams(program)
        assert d.index == 5 and d.where == "length"
        assert (d.fast, d.ref) == ("running", "ended")


class TestDiffResults:
    def test_identical_results_diff_empty(self, tiny_cfg):
        program, __ = assemble_list_walk(48)
        a = simulate(program, tiny_cfg, engine="dbp")
        b = simulate(program, tiny_cfg, engine="dbp")
        assert diff_results(a, b) == []

    def test_nested_and_one_sided_fields(self):
        a = {"cycles": 10, "mem": {"hits": 5, "misses": 1}, "only_a": 1}
        b = {"cycles": 12, "mem": {"hits": 5, "misses": 2}}
        diffs = {d.path: (d.a, d.b) for d in diff_results(a, b)}
        assert diffs == {
            "cycles": (10, 12),
            "mem.misses": (1, 2),
            "only_a": (1, None),
        }

    def test_ignore_prefixes(self):
        a = {"cycles": 10, "telemetry": {"x": 1}}
        b = {"cycles": 10, "telemetry": {"x": 2}}
        assert diff_results(a, b, ignore=("telemetry",)) == []

    def test_list_length_changes_are_visible(self):
        diffs = diff_results({"xs": [1, 2]}, {"xs": [1]})
        paths = {d.path for d in diffs}
        assert "xs.len" in paths and "xs[1]" in paths


class TestReferenceSimulate:
    def test_timing_stats_match_fast_path(self, tiny_cfg):
        program, __ = assemble_list_walk(64)
        fast = simulate(program, tiny_cfg, engine="dbp")
        ref = reference_simulate(program, tiny_cfg, engine="dbp")
        assert diff_results(fast, ref) == []
        assert ref.cycles == fast.cycles
