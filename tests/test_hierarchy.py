"""Memory hierarchy timing: miss paths, MSHRs, merges, prefetch buffer."""

import pytest

from repro import MachineConfig
from repro.config import CacheConfig
from repro.mem.hierarchy import MemoryHierarchy

ADDR = 0x2000_0000


@pytest.fixture
def cfg():
    return MachineConfig(
        il1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=512, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=2048, line=64, assoc=4, latency=12),
    )


def warmed(h: MemoryHierarchy, addr: int = ADDR) -> MemoryHierarchy:
    """Touch `addr` once (plus drain the TLB miss) so it is L1-resident."""
    h.data_access(addr, 0)
    return h


class TestDemandPath:
    def test_l1_hit_is_one_cycle(self, cfg):
        h = warmed(MemoryHierarchy(cfg))
        t = h.data_access(ADDR, 1000)
        assert t == 1001

    def test_l2_hit_latency(self, cfg):
        h = MemoryHierarchy(cfg)
        h.data_access(ADDR, 0)
        # Evict from tiny L1 by filling its set (same set, different tags)
        set_stride = 512 // 2  # sets*line
        h.data_access(ADDR + set_stride, 2000)
        h.data_access(ADDR + 2 * set_stride, 3000)
        t0 = 10_000
        done = h.data_access(ADDR, t0)
        lat = done - t0
        # L1 lat + L2 lat + L2 bus transfer; clearly below memory latency
        assert 10 <= lat < cfg.memory_latency

    def test_memory_miss_latency(self, cfg):
        h = MemoryHierarchy(cfg)
        t0 = 1000
        done = h.data_access(ADDR, t0)
        lat = done - t0
        tlb = cfg.dtlb.miss_penalty
        assert lat >= cfg.memory_latency + cfg.l2.latency
        assert lat <= tlb + cfg.memory_latency + cfg.l2.latency + 50

    def test_inflight_merge(self, cfg):
        h = MemoryHierarchy(cfg)
        done = h.data_access(ADDR, 1000)
        merged = h.data_access(ADDR + 4, 1001)  # same line, still in flight
        assert merged == done
        assert h.stats.l1d_partial_hits == 1

    def test_mshr_limit_delays_ninth_miss(self, cfg):
        h = MemoryHierarchy(cfg)
        h.dtlb.translate(ADDR)  # pre-warm the page
        dones = []
        for i in range(cfg.max_outstanding_misses + 1):
            # distinct lines, same page, same issue time
            dones.append(h.data_access(ADDR + 64 * i, 100))
        assert max(dones[:-1]) < dones[-1] or dones[-1] > 100 + 2 * cfg.memory_latency

    def test_perfect_mode_single_cycle(self, cfg):
        h = MemoryHierarchy(cfg.perfect())
        assert h.data_access(ADDR, 50) == 51
        assert h.data_access(ADDR + 4096, 60) == 61

    def test_bandwidth_counters(self, cfg):
        h = MemoryHierarchy(cfg)
        h.data_access(ADDR, 0)
        assert h.stats.bytes_l1_l2 == cfg.dl1.line
        assert h.stats.bytes_l2_mem == cfg.l2.line

    def test_writeback_on_dirty_eviction(self, cfg):
        h = MemoryHierarchy(cfg)
        h.data_access(ADDR, 0, write=True)
        set_stride = 512 // 2
        base = h.stats.bytes_l1_l2
        h.data_access(ADDR + set_stride, 5000)
        h.data_access(ADDR + 2 * set_stride, 6000)  # evicts dirty ADDR line
        # at least one extra line of writeback traffic beyond the two fills
        assert h.stats.bytes_l1_l2 >= base + 2 * cfg.dl1.line + cfg.dl1.line


class TestInstFetch:
    def test_icache_hit(self, cfg):
        h = MemoryHierarchy(cfg)
        h.inst_fetch(0x40_0000, 0)
        t = h.inst_fetch(0x40_0000, 500)
        assert t == 501

    def test_icache_miss_goes_to_l2(self, cfg):
        h = MemoryHierarchy(cfg)
        t = h.inst_fetch(0x40_0000, 0)
        assert t >= cfg.memory_latency


class TestPrefetch:
    def test_fill_into_pb_then_demand_hit(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        done = h.prefetch_request(ADDR, 0)
        assert done is not None
        t = h.data_access(ADDR, done + 10)
        assert t == done + 10 + 1
        assert h.stats.pb_hits == 1
        assert h.stats.prefetches_useful == 1
        # installed into L1 on use
        assert h.dl1.probe(ADDR)
        assert not h.pb.probe(ADDR)

    def test_fill_into_l1_without_pb(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=False)
        done = h.prefetch_request(ADDR, 0)
        t = h.data_access(ADDR, done + 5)
        assert t == done + 5 + 1
        assert h.stats.prefetches_useful == 1

    def test_redundant_prefetch_dropped(self, cfg):
        h = warmed(MemoryHierarchy(cfg))
        assert h.prefetch_request(ADDR, 100) is None
        assert h.stats.prefetches_redundant == 1

    def test_inflight_prefetch_redundant(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        h.prefetch_request(ADDR, 0)
        assert h.prefetch_request(ADDR + 4, 1) is None

    def test_late_prefetch_merges_and_counts_useful(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        h.prefetch_request(ADDR, 1000)
        t = h.data_access(ADDR, 1002)
        assert t > 1003  # partial hit, not a full hit
        assert h.stats.prefetches_useful == 1

    def test_demand_promotion_caps_merge_latency(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        # Backlog the background bus with many prefetches
        h.dtlb.translate(ADDR)
        for i in range(4):
            h.prefetch_request(ADDR + 64 * i, 1000)
        target = h._inflight[ADDR & ~31]
        demand = h.data_access(ADDR, 1001)
        assert demand <= 1001 + h._demand_fill_estimate

    def test_mshr_reservation_throttles_prefetch(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        h.dtlb.translate(ADDR)
        for i in range(cfg.max_outstanding_misses - 2):
            h.data_access(ADDR + 64 * i, 100)
        assert h.prefetch_request(ADDR + 0x4000, 101) is None
        assert h.stats.prefetches_throttled == 1

    def test_probe_cached(self, cfg):
        h = warmed(MemoryHierarchy(cfg, use_prefetch_buffer=True))
        assert h.probe_cached(ADDR, 50_000)
        assert not h.probe_cached(ADDR + 0x8000, 50_000)

    def test_jp_store_hit_marks_dirty(self, cfg):
        h = warmed(MemoryHierarchy(cfg))
        h.jp_store(ADDR + 12, 100)
        assert ADDR & ~31 in h.dl1._dirty

    def test_jp_store_miss_writes_around(self, cfg):
        h = MemoryHierarchy(cfg)
        before = h.stats.bytes_l1_l2
        h.jp_store(ADDR + 12, 100)
        assert h.stats.bytes_l1_l2 == before + 4
        assert not h.dl1.probe(ADDR + 12)  # no allocation


class TestDemandPriority:
    def test_demand_bypasses_prefetch_backlog(self, cfg):
        h = MemoryHierarchy(cfg, use_prefetch_buffer=True)
        h.dtlb.translate(ADDR)
        h.dtlb.translate(ADDR + 0x10000)
        for i in range(4):
            h.prefetch_request(ADDR + 64 * i, 1000)
        backlog = h._mem_bus_all
        demand = h.data_access(ADDR + 0x10000, 1000)
        # the demand miss is not queued behind the prefetch transfers
        assert demand - 1000 < (backlog - 1000) + cfg.memory_latency
