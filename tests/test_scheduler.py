"""Scheduler layer: sharding, backend resolution, plan-order assembly.

The refactor's core guarantee is that *assembly is a function of the
plan, not of the backend*: whatever order results arrive in — serial,
process pool, or a sweep service interleaving many pools — the
assembled tables are bit-identical.  The hypothesis property here
drives that directly by completing cells in arbitrary interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import small_config
from repro.harness import (
    BACKENDS,
    BackendError,
    RunSpec,
    Scheduler,
    SweepExecutor,
    WorkerBackend,
    detect_cpus,
    run_cell,
)
from repro.harness.backends import ProcessPoolBackend, SerialBackend, config_id, dispatch_tables
from repro.harness.cells import CellResult, job_payload, spec_from_payload
from repro.workloads import workload_class

SMALL = {
    "treeadd": workload_class("treeadd").test_params(),
    "health": workload_class("health").test_params(),
}


@pytest.fixture(scope="module")
def cfg():
    return small_config()


def _specs(cfg) -> list[RunSpec]:
    """Four distinct fast cells (two variants x two configs)."""
    return [
        RunSpec.make("treeadd", "baseline", "none", cfg, SMALL["treeadd"]),
        RunSpec.make("treeadd", "baseline", "none", cfg.perfect(),
                     SMALL["treeadd"]),
        RunSpec.make("treeadd", "sw:queue", "dbp", cfg, SMALL["treeadd"]),
        RunSpec.make("treeadd", "sw:queue", "none", cfg.perfect(),
                     SMALL["treeadd"]),
    ]


class TestShard:
    def test_round_robin_deterministic_and_balanced(self, cfg):
        specs = [
            RunSpec.make("treeadd", "baseline", "none", cfg, {"levels": n})
            for n in range(10)
        ]
        shards = Scheduler.shard(specs, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        # Disjoint cover, relative order preserved inside each shard.
        assert sorted(sum(shards, []), key=specs.index) == specs
        for shard in shards:
            assert shard == sorted(shard, key=specs.index)
        # Pure function of the input order.
        assert Scheduler.shard(specs, 3) == shards

    def test_more_shards_than_specs(self, cfg):
        specs = _specs(cfg)[:2]
        shards = Scheduler.shard(specs, 5)
        assert [len(s) for s in shards] == [1, 1, 0, 0, 0]

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            Scheduler.shard([], 0)


class TestBackendResolution:
    def test_implicit_serial_for_one_job(self):
        sched = Scheduler(jobs=1)
        assert isinstance(sched._resolve_backend([1, 2]), SerialBackend)

    def test_implicit_serial_for_trivial_plan(self):
        sched = Scheduler(jobs=4)
        assert isinstance(sched._resolve_backend([1]), SerialBackend)

    def test_implicit_process_pool(self):
        sched = Scheduler(jobs=4)
        assert isinstance(sched._resolve_backend([1, 2]), ProcessPoolBackend)

    def test_explicit_backend_name_wins(self):
        sched = Scheduler(jobs=4, backend="serial")
        assert isinstance(sched._resolve_backend([1, 2]), SerialBackend)

    def test_explicit_instance_wins(self):
        backend = SerialBackend()
        sched = Scheduler(jobs=4, backend=backend)
        assert sched._resolve_backend([1, 2]) is backend

    def test_process_pool_alias(self):
        assert BACKENDS.get("process-pool") is ProcessPoolBackend

    def test_unknown_backend_raises(self):
        sched = Scheduler(backend="no-such-backend")
        with pytest.raises(BackendError):
            sched._resolve_backend([1, 2])

    def test_jobs_zero_auto_detects(self):
        assert Scheduler(jobs=0).jobs == detect_cpus()

    def test_detect_cpus_positive(self):
        assert detect_cpus() >= 1


class TestDispatchTables:
    def test_configs_ship_once(self, cfg):
        specs = _specs(cfg)
        configs, payloads = dispatch_tables(specs)
        # Four cells, but only two distinct machine configs travel.
        assert len(payloads) == 4
        assert len(configs) == 2
        assert {p["config"] for p in payloads.values()} == set(configs)

    def test_payload_round_trip(self, cfg):
        from repro.config import MachineConfig

        spec = RunSpec.make("health", "baseline", "hw", cfg, SMALL["health"],
                            profile=True)
        payload = job_payload(spec, config_id(spec.cfg))
        rebuilt = spec_from_payload(
            payload, MachineConfig.from_dict(spec.cfg.to_dict())
        )
        assert rebuilt == spec

    def test_config_id_content_addressed(self, cfg):
        assert config_id(cfg) == config_id(small_config())
        assert config_id(cfg) != config_id(cfg.perfect())


class _ReplayBackend(WorkerBackend):
    """Completes precomputed cell outcomes in a chosen arrival order —
    the backend-side adversary for the assembly-determinism property."""

    name = "replay"

    def __init__(self, outs, order):
        self.outs = outs
        self.order = order

    def run(self, sched, todo, results, done, total):
        arrival = [todo[i] for i in self.order if i < len(todo)]
        arrival += [spec for spec in todo if spec not in arrival]
        for spec in arrival:
            sched._c_executed.inc()
            out = self.outs[spec]
            done += 1
            results[spec] = sched._finish(
                CellResult(spec, out[1]), done, total
            )
        return done


@pytest.fixture(scope="module")
def reference(cfg):
    """Serial ground truth: specs, their outcomes, and assembled rows."""
    specs = _specs(cfg)
    outs = {spec: run_cell(spec) for spec in specs}
    assert all(out[0] == "ok" for out in outs.values())
    return specs, outs


def _table(specs, cells) -> list:
    """Plan-order assembly, as every experiment/table consumer does it."""
    return [cells[spec].result.to_dict() for spec in specs]


class TestAssemblyDeterminism:
    def test_reversed_arrival_matches_serial(self, reference):
        specs, outs = reference
        serial = _table(specs, SweepExecutor().execute(specs))
        backend = _ReplayBackend(outs, list(range(len(specs)))[::-1])
        scrambled = SweepExecutor(backend=backend).execute(specs)
        assert _table(specs, scrambled) == serial

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(range(4)))
    def test_any_arrival_interleaving_assembles_identically(
        self, reference, order
    ):
        specs, outs = reference
        expected = [outs[spec][1].to_dict() for spec in specs]
        cells = SweepExecutor(
            backend=_ReplayBackend(outs, list(order))
        ).execute(specs)
        assert list(cells) and _table(specs, cells) == expected

    def test_backend_losing_cells_is_caught(self, reference):
        specs, outs = reference

        class Lossy(_ReplayBackend):
            def run(self, sched, todo, results, done, total):
                return super().run(sched, todo[:2], results, done, total)

        cells = SweepExecutor(
            backend=Lossy(outs, [0, 1])
        ).execute(specs)
        # Every planned cell is accounted for: the two the backend
        # dropped come back as explicit BackendError cells, not KeyErrors.
        assert len(cells) == len(specs)
        lost = [c for c in cells.values() if not c.ok]
        assert len(lost) == 2
        assert all(c.error_kind == "BackendError" for c in lost)
