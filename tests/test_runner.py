"""Experiment runner: scheme mapping and decompositions."""

import pytest

from repro import WorkloadError, get_workload
from repro.harness import SCHEMES, BenchmarkRunner, run_scheme, scheme_plan
from repro.workloads import workload_class


@pytest.fixture(scope="module")
def runner(request):
    from repro import small_config

    return BenchmarkRunner(
        "treeadd", small_config(), workload_class("treeadd").test_params()
    )


class TestSchemePlan:
    def test_matrix(self):
        w = get_workload("health", **workload_class("health").test_params())
        assert scheme_plan(w, "base") == ("baseline", "none")
        assert scheme_plan(w, "hardware") == ("baseline", "hardware")
        assert scheme_plan(w, "dbp") == ("baseline", "dbp")
        assert scheme_plan(w, "software") == ("sw:chain", "software")
        assert scheme_plan(w, "cooperative") == ("coop:chain", "cooperative")

    def test_explicit_idiom(self):
        w = get_workload("health", **workload_class("health").test_params())
        assert scheme_plan(w, "software", idiom="root") == ("sw:root", "software")

    def test_missing_idiom_rejected(self):
        w = get_workload("treeadd", **workload_class("treeadd").test_params())
        with pytest.raises(WorkloadError):
            scheme_plan(w, "software", idiom="root")

    def test_unknown_scheme_rejected(self):
        w = get_workload("treeadd", **workload_class("treeadd").test_params())
        with pytest.raises(WorkloadError):
            scheme_plan(w, "quantum")


class TestBenchmarkRunner:
    def test_base_run_decomposition(self, runner):
        run = runner.run("base")
        assert run.scheme == "base"
        assert run.total > run.compute > 0
        assert run.memory == run.total - run.compute
        assert run.normalized(run.total) == 1.0

    def test_memory_reduction_sign(self, runner):
        base = runner.run("base")
        sw = runner.run("software")
        r = sw.memory_reduction(base.memory)
        assert -2.0 < r <= 1.0

    def test_compute_cache_reused(self, runner):
        r1 = runner.run("base")
        r2 = runner.run("dbp")
        assert r1.compute == r2.compute  # same baseline program

    def test_all_schemes_run(self, runner):
        matrix = runner.run_matrix()
        assert set(matrix) == set(SCHEMES)
        for run in matrix.values():
            assert run.total > 0

    def test_run_variant_direct(self, runner):
        run = runner.run_variant("coop:queue", "cooperative")
        assert run.variant == "coop:queue"
        assert run.total > 0


def test_run_scheme_oneshot():
    from repro import small_config

    run = run_scheme(
        "power", "base", small_config(), params=workload_class("power").test_params()
    )
    assert run.benchmark == "power"
    assert run.total > 0
