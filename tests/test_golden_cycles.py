"""Golden cycle counts: the timing model's output is part of the repo's
contract.

``golden_cycles.json`` pins ``cycles``, ``compute`` (perfect-data-memory
cycles) and ``instructions`` for every workload under every scheme at the
test sizes.  Performance work on the interpreter/timing model must keep
these bit-identical; a legitimate *model* change (one that intends to
alter simulated behaviour) must regenerate the file and say so in the
commit.
"""

import json
from pathlib import Path

import pytest

from repro import small_config
from repro.harness import BenchmarkRunner

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_cycles.json").read_text()
)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_cycles(name):
    entry = GOLDEN[name]
    cfg = small_config()
    runner = BenchmarkRunner(name, cfg, entry["params"])
    for scheme, want in sorted(entry["schemes"].items()):
        run = runner.run(scheme)
        got = {
            "cycles": run.total,
            "compute": run.compute,
            "instructions": run.result.instructions,
        }
        assert got == want, f"{name}/{scheme} diverged from golden"
