"""Golden cycle counts: the timing model's output is part of the repo's
contract.

``golden_cycles.json`` pins ``cycles``, ``compute`` (perfect-data-memory
cycles) and ``instructions`` for every workload under every scheme at the
test sizes.  Performance work on the interpreter/timing model must keep
these bit-identical; a legitimate *model* change (one that intends to
alter simulated behaviour) must regenerate the file and say so in the
commit.

Entry keys are display names; an entry may name its ``workload``
explicitly (so one workload can be pinned at several sizes, e.g.
``treeadd@deep``), may pin a specific prefetch ``idiom`` for the
software/cooperative schemes (e.g. ``health@sw-root`` pins the
root-jumping variant instead of the workload's default), and may pin a
non-default MSHR model via ``mshr_model`` (e.g. ``em3d@mshr-full`` runs
the same cell under the fully non-blocking hierarchy).
"""

import json
from pathlib import Path

import pytest

from repro import small_config
from repro.harness import BenchmarkRunner

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_cycles.json").read_text()
)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_cycles(name):
    entry = GOLDEN[name]
    cfg = small_config()
    if "mshr_model" in entry:
        cfg = cfg.with_overrides({"mshr_model": entry["mshr_model"]})
    runner = BenchmarkRunner(entry.get("workload", name), cfg, entry["params"])
    idiom = entry.get("idiom")
    for scheme, want in sorted(entry["schemes"].items()):
        run = runner.run(scheme, idiom if scheme in ("software", "cooperative") else None)
        got = {
            "cycles": run.total,
            "compute": run.compute,
            "instructions": run.result.instructions,
        }
        assert got == want, f"{name}/{scheme} diverged from golden"
