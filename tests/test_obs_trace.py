"""Event trace and Chrome trace_event export."""

import json

from repro import Assembler, EventTrace, Telemetry, simulate
from repro.isa.registers import T0, T1


def test_event_buffer_and_limit():
    tr = EventTrace(limit=2)
    tr.instant("a", 1)
    tr.complete("b", 2, 10)
    tr.instant("c", 3)  # past the cap
    assert len(tr) == 2
    assert tr.dropped == 1


def test_chrome_export_shape(tmp_path):
    tr = EventTrace()
    tr.instant("load-issue", 5, cat="core", pc=3)
    tr.complete("demand-miss", 5, 80, cat="mem", line=0x100)
    doc = tr.to_chrome()
    assert "traceEvents" in doc
    events = doc["traceEvents"]
    # metadata events name the process and the three lanes
    assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
    span = next(e for e in events if e["name"] == "demand-miss")
    assert span["ph"] == "X" and span["ts"] == 5 and span["dur"] == 80
    inst = next(e for e in events if e["name"] == "load-issue")
    assert inst["ph"] == "i" and inst["args"]["pc"] == 3
    # every event carries the fields chrome://tracing requires
    for e in events:
        assert {"ph", "name", "pid", "tid"} <= set(e)

    path = tmp_path / "t.trace.json"
    tr.dump(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_traced_simulation_emits_all_event_kinds(tiny_cfg):
    a = Assembler()
    target = a.space(64)
    a.label("main")
    a.li(T0, target)
    a.pf(T0, 0)
    for __ in range(150):
        a.nop()
    a.lw(T1, T0, 0)
    a.lw(T1, T0, 32)  # a demand miss (next line, never prefetched)
    a.halt()
    tr = EventTrace()
    simulate(a.assemble(), tiny_cfg, engine="software", telemetry=Telemetry(trace=tr))
    names = {e[1] for e in tr.events}
    assert {"load-issue", "prefetch", "demand-miss", "fill"} <= names


def test_untraced_telemetry_has_no_trace_events(tiny_cfg):
    from tests.conftest import assemble_list_walk

    program, __ = assemble_list_walk(16)
    tele = Telemetry()  # metrics on, trace off
    simulate(program, tiny_cfg, engine="dbp", telemetry=tele)
    assert tele.trace is None


def test_counter_track_events():
    tr = EventTrace()
    tr.counter("cpi_stack", 4096, {"base": 10, "load.mem": 5})
    (ph, name, cat, ts, dur, args) = tr.events[0]
    assert (ph, name, cat, ts) == ("C", "cpi_stack", "profile", 4096)
    ev = next(e for e in tr.to_chrome()["traceEvents"] if e["ph"] == "C")
    # Counter samples carry the values dict and land on the profile lane;
    # "C" events must not carry a dur or instant scope.
    assert ev["args"] == {"base": 10, "load.mem": 5}
    assert ev["tid"] == 5
    assert "dur" not in ev and "s" not in ev


def test_counter_copies_values_dict():
    tr = EventTrace()
    values = {"base": 1}
    tr.counter("cpi_stack", 1, values)
    values["base"] = 99  # later mutation must not alter the recorded sample
    assert tr.events[0][5] == {"base": 1}


def test_phase_span_lands_on_phase_lane():
    tr = EventTrace()
    tr.phase("measured", 100, 500, region=1)
    ev = next(e for e in tr.to_chrome()["traceEvents"] if e["name"] == "measured")
    assert ev["ph"] == "X" and ev["dur"] == 500 and ev["tid"] == 4
    assert ev["args"] == {"region": 1}


def test_lane_metadata_names_and_sort_indices():
    events = EventTrace().to_chrome()["traceEvents"]
    names = {e["tid"]: e["args"]["name"]
             for e in events if e["name"] == "thread_name"}
    sorts = {e["tid"]: e["args"]["sort_index"]
             for e in events if e["name"] == "thread_sort_index"}
    assert names == {1: "core", 2: "mem", 3: "prefetch", 4: "phase",
                     5: "profile", 6: "service"}
    assert sorts == {tid: tid for tid in names}
