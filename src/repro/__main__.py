"""Command-line interface: reproduce tables/figures and run single configs.

Examples::

    python -m repro list                         # every registry at a glance
    python -m repro list machines                # ... or one registry
    python -m repro run health --scheme hardware # one benchmark, one scheme
    python -m repro run health --all             # full Figure-5 row
    python -m repro table1                       # characterization table
    python -m repro figure4 | figure5 | figure6 | figure7 | x1 | x2
    python -m repro figure5 --jobs 4             # sweep across 4 processes
    python -m repro figure7 --no-cache           # ignore the on-disk cache
    python -m repro figure5 --timeout 300 --retries 2   # robust long sweep
    python -m repro figure5 --resume             # continue an interrupted sweep
    python -m repro figure5 --inject-faults 'health=transient:2'  # fault drill
    python -m repro serve /tmp/pool-a.sock --workers 4   # long-lived worker pool
    python -m repro submit examples/specs/figure5.toml --pool /tmp/pool-a.sock
    python -m repro figure5 --backend service --pool /tmp/pool-a.sock
    python -m repro run treeadd --scheme software --param levels=9 --param passes=2
    python -m repro run-spec examples/specs/figure5.toml --jobs 4
    python -m repro run-spec mysweep.toml --small -o result.json
    python -m repro tournament --small --jobs 4  # scheme zoo, ranked
    python -m repro tournament --machine small -o tournament.json
    python -m repro stats --json                 # telemetry artifact (JSON)
    python -m repro trace health --small -o health.trace.json
    python -m repro audit --machine small        # full simulation audit
    python -m repro audit --inject-faults 'em3d//dbp=corrupt'  # auditor drill
    python -m repro profile health --scheme hardware   # CPI stack + hot sites
    python -m repro profile em3d --small -o em3d.profile.json --trace em3d.trace.json
    python -m repro bench-diff BENCH_PR2.json BENCH_PR6.json
    python -m repro bench-diff BENCH_PR2.json --regen --tolerance 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from . import bench_config, table2_config, workload_names
from .audit import (
    Auditor,
    audit_workloads,
    compare_benchmarks,
    differential_check,
    fidelity_gate,
    regressions,
)
from .audit.gate import DEFAULT_GOLDEN
from .config import MSHR_MODELS, get_machine, machine_names
from .errors import ConfigError
from .harness import (
    SCHEMES,
    scheme_names,
    BackendError,
    BenchmarkRunner,
    ResultCache,
    SCHEME_REGISTRY,
    SpecError,
    SweepExecutor,
    SweepJournal,
    compile_spec,
    creation_overhead,
    figure4,
    figure5,
    figure5_summary,
    figure6,
    figure7,
    format_table,
    is_tournament_spec,
    load_spec,
    onchip_table_ablation,
    parse_fault_plan,
    spec_artifact,
    table1,
    tournament_summary,
    traversal_count_sweep,
)
from .harness.scheduler import DEFAULT_LEASE_TTL, DEFAULT_POOL_WAIT
from .obs import (
    EventTrace,
    MetricRegistry,
    Profiler,
    Telemetry,
    artifact,
    cpi_stack_rows,
    dump_json,
    hot_site_rows,
    latency_rows,
)
from .isa.engines import SIM_ENGINE_ENV, SIM_ENGINES
from .prefetch.engines import ENGINES
from .workloads import workload_class


def _parse_params(items: list[str]) -> dict:
    params = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def _config(args) -> object:
    cfg = table2_config() if args.table2 else bench_config()
    if args.memory_latency:
        cfg = cfg.with_memory_latency(args.memory_latency)
    if args.interval:
        cfg = cfg.with_jump_interval(args.interval)
    return cfg


def _list_workloads() -> str:
    rows = []
    for name in workload_names():
        cls = workload_class(name)
        rows.append({
            "workload": name,
            "variants": " ".join(cls.variants),
            "structure": cls.structure,
        })
    return format_table(rows, "Workloads")


def _list_machines() -> str:
    rows = []
    for name in machine_names():
        cfg = get_machine(name)
        rows.append({
            "machine": name,
            "mem latency": cfg.memory_latency,
            "dl1": f"{cfg.dl1.size // 1024}KB",
            "l2": f"{cfg.l2.size // 1024}KB",
            "mshr": cfg.mshr_model,
            "jump interval": cfg.prefetch.jump_interval,
        })
    return format_table(rows, "Machines")


def _list_schemes() -> str:
    rows = []
    for name, scheme in SCHEME_REGISTRY.items():
        variant = scheme.variant or f"{scheme.variant_prefix}<idiom>"
        rows.append({
            "scheme": name,
            "variant": variant,
            "engine": scheme.engine,
            "description": scheme.description,
        })
    return format_table(rows, "Schemes")


def _list_engines() -> str:
    rows = []
    for name, cls in ENGINES.items():
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append({"engine": name, "description": doc[0] if doc else ""})
    return format_table(rows, "Prefetch engines")


def _list_sim_engines() -> str:
    rows = [
        {"engine": name, "description": se.description}
        for name, se in SIM_ENGINES.items()
    ]
    return format_table(rows, "Simulation engines")


def cmd_list(args) -> int:
    sections = {
        "machines": _list_machines,
        "schemes": _list_schemes,
        "engines": _list_engines,
        "sim-engines": _list_sim_engines,
        "workloads": _list_workloads,
    }
    if args.what != "all":
        print(sections[args.what]())
        return 0
    print("\n\n".join(fn() for fn in sections.values()))
    return 0


def cmd_run(args) -> int:
    cfg = _config(args)
    runner = BenchmarkRunner(args.workload, cfg, _workload_params(args))
    schemes = SCHEMES if args.all else (args.scheme,)
    base = runner.run("base")
    rows = []
    for scheme in schemes:
        run = base if scheme == "base" else runner.run(scheme, args.idiom)
        rows.append({
            "scheme": scheme,
            "variant": run.variant,
            "cycles": run.total,
            "compute": run.compute,
            "memory": run.memory,
            "normalized": round(run.normalized(base.total), 3),
            "ipc": round(run.result.ipc, 2),
        })
    print(format_table(rows, f"{args.workload} on {type(cfg).__name__}"))
    return 0


def _workload_params(args) -> dict:
    params = _parse_params(args.param)
    if args.small:
        params = {**workload_class(args.workload).test_params(), **params}
    return params


def _run_meta(args) -> dict:
    return {
        "machine": "table2" if args.table2 else "bench",
        "memory_latency_override": args.memory_latency or None,
        "jump_interval_override": args.interval or None,
        "workload": args.workload,
        "params": _workload_params(args),
    }


def cmd_stats(args) -> int:
    """Run with full telemetry; emit tables or a schema-stable artifact."""
    cfg = _config(args)
    runner = BenchmarkRunner(args.workload, cfg, _workload_params(args))
    schemes = (args.scheme,) if args.scheme else SCHEMES
    runs = {}
    base_total = None
    for scheme in schemes:
        print(f"  running {args.workload}/{scheme} ...", file=sys.stderr)
        runs[scheme] = runner.run(scheme, args.idiom, telemetry=Telemetry())
        if scheme == "base":
            base_total = runs[scheme].total
    if args.json:
        engines = {}
        for scheme, run in runs.items():
            tele = run.result.telemetry
            engines[scheme] = {
                "engine": run.result.engine_name,
                "prefetch_outcomes": tele["prefetch_outcomes"]["counts"],
                "miss_latency": tele["metrics"]["mem.miss_latency_cycles"],
            }
        doc = artifact(
            "stats",
            {
                "benchmark": args.workload,
                "engines": engines,
                "runs": {s: r.to_dict(baseline_total=base_total)
                         for s, r in runs.items()},
            },
            meta=_run_meta(args),
        )
        if args.output:
            dump_json(doc, args.output)
            print(f"wrote {args.output}")
        else:
            print(dump_json(doc))
        return 0
    # Plain-text: scheme summary, then outcome and miss-latency breakdowns.
    summary = []
    for scheme, run in runs.items():
        row = {
            "scheme": scheme,
            "variant": run.variant,
            "cycles": run.total,
            "memory": run.memory,
            "ipc": round(run.result.ipc, 2),
        }
        if base_total:
            row["normalized"] = round(run.normalized(base_total), 3)
        summary.append(row)
    print(format_table(summary, f"{args.workload} — scheme summary"))
    outcome_rows = []
    for scheme, run in runs.items():
        counts = run.result.telemetry["prefetch_outcomes"]["counts"]
        if sum(counts.values()):
            outcome_rows.append({"scheme": scheme, **counts})
    if outcome_rows:
        print()
        print(format_table(outcome_rows, "Prefetch outcomes"))
    print()
    hist_rows = []
    for scheme, run in runs.items():
        hist = run.result.telemetry["metrics"]["mem.miss_latency_cycles"]
        row = {"scheme": scheme, "misses": hist["count"],
               "mean": round(hist["mean"], 1)}
        for b in hist["buckets"]:
            label = f"<={b['le']}" if b["le"] is not None else "inf"
            row[label] = b["count"]
        hist_rows.append(row)
    print(format_table(hist_rows, "Demand miss latency (cycles)"))
    return 0


def cmd_trace(args) -> int:
    """Run one scheme with event tracing; write a Chrome trace file."""
    cfg = _config(args)
    runner = BenchmarkRunner(args.workload, cfg, _workload_params(args))
    trace = EventTrace(limit=args.limit)
    run = runner.run(args.scheme, args.idiom, telemetry=Telemetry(trace=trace))
    out = args.output or f"{args.workload}-{args.scheme}.trace.json"
    trace.dump(out)
    print(f"wrote {out}: {len(trace)} events "
          f"({trace.dropped} dropped past --limit), "
          f"{run.total} cycles simulated; open in chrome://tracing")
    return 0


def _journal_path(args, name: str | None = None) -> Path:
    """Default journal location: one file per figure command (or per
    spec name) under the cache root, so ``--resume`` needs no path
    bookkeeping."""
    if args.journal:
        return Path(args.journal)
    root = Path(
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
    )
    return root / "journals" / f"{name or args.command}.jsonl"


def _build_executor(args, journal_name: str | None = None) -> SweepExecutor:
    """--jobs/--cache/--timeout/--retries/--resume/--inject-faults
    plumbing shared by figure commands.  One obs registry spans the
    cache, the journal, and the executor so a single dump shows the
    whole sweep's behaviour."""
    registry = MetricRegistry()
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir, registry=registry)
    backend = getattr(args, "backend", None)
    pools = list(getattr(args, "pool", None) or [])
    if pools and backend is None:
        backend = "service"          # --pool alone implies the backend
    if backend == "service" and not pools:
        raise SystemExit(
            "error: the service backend needs at least one --pool PATH "
            "(start one with `python -m repro serve PATH`)"
        )
    progress = None
    if args.progress or args.jobs > 1 or backend == "service":
        progress = lambda line: print(f"  {line}", file=sys.stderr)
    journal = SweepJournal(_journal_path(args, journal_name), registry=registry,
                           resume=args.resume)
    faults = parse_fault_plan(args.inject_faults)
    if faults is not None:
        print(f"  injecting faults: {faults.describe()}", file=sys.stderr)
    return SweepExecutor(
        jobs=args.jobs,
        cache=cache,
        progress=progress,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        journal=journal,
        faults=faults,
        registry=registry,
        backend=backend,
        pools=pools,
        lease_ttl=getattr(args, "lease_ttl", DEFAULT_LEASE_TTL),
        pool_wait=getattr(args, "pool_wait", DEFAULT_POOL_WAIT),
    )


def _sweep_footer(executor: SweepExecutor) -> None:
    if executor.cache is not None:
        print(f"  {executor.cache.describe()}", file=sys.stderr)
    if executor.journal is not None:
        print(f"  {executor.journal.describe()}", file=sys.stderr)
        executor.journal.close()
    print(f"  {executor.describe()}", file=sys.stderr)


def _parse_override_value(text: str):
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


#: Default tournament spec, resolved against the repo checkout (the CLI
#: runs from anywhere; a cwd-relative path is tried first).
_TOURNAMENT_SPEC = "examples/specs/tournament.toml"


def _default_tournament_spec() -> Path:
    local = Path(_TOURNAMENT_SPEC)
    if local.exists():
        return local
    return Path(__file__).resolve().parents[2] / _TOURNAMENT_SPEC


def cmd_run_spec(args) -> int:
    if args.command == "submit":
        # ``repro submit`` is ``run-spec`` pinned to the service
        # backend: cells ship to long-lived ``repro serve`` pools.
        args.backend = "service"
    if args.command == "tournament" and args.spec is None:
        args.spec = _default_tournament_spec()
    spec = load_spec(args.spec)
    if args.command == "tournament" and not is_tournament_spec(spec):
        raise SystemExit(
            f"error: {args.spec} is not a tournament spec (needs "
            "telemetry = true, scheme-labeled matrix rows, and the "
            "normalized/issued/outcome columns)"
        )
    if args.machine:
        spec = spec.with_machine(args.machine)
    if args.small:
        spec = spec.small()
    if args.set:
        extra = {}
        for item in args.set:
            key, sep, value = item.partition("=")
            if not sep:
                raise SystemExit(f"--set expects path=value, got {item!r}")
            extra[key] = _parse_override_value(value)
        spec = replace(spec, overrides={**spec.overrides, **extra})
    executor = _build_executor(args, journal_name=f"spec-{spec.name}")
    compiled = compile_spec(spec)
    print(f"  {args.spec}: {len(compiled.rows)} rows over "
          f"{compiled.cell_count} distinct cells", file=sys.stderr)
    rows = compiled.execute(executor=executor)
    print(format_table(rows, spec.title or spec.name))
    summary = None
    if is_tournament_spec(spec):
        summary = tournament_summary(rows, label_key=spec.label_key)
        print()
        print(format_table(
            summary,
            "Tournament — schemes ranked by geomean normalized time "
            "(lower is better)",
        ))
    if args.output:
        meta = {
            "source": str(args.spec),
            "machine": spec.machine,
            "sweep": executor.stats(),
        }
        if summary is not None:
            meta["summary"] = summary
        doc = spec_artifact(spec, rows, meta=meta)
        dump_json(doc, args.output)
        print(f"wrote {args.output}")
    _sweep_footer(executor)
    return 0


def cmd_serve(args) -> int:
    """Run one long-lived sweep worker pool on a Unix socket."""
    import signal

    from .harness.service import SweepService

    name = args.name or f"pool-{os.getpid()}"
    trace = EventTrace(limit=args.limit) if args.trace else None
    progress = None
    if not args.quiet:
        progress = lambda line: print(f"  {line}", file=sys.stderr)
    svc = SweepService(
        args.socket,
        args.workers or None,
        name=name,
        trace=trace,
        progress=progress,
    )
    signal.signal(signal.SIGTERM, lambda *_: svc.stop())
    print(
        f"repro serve: pool {name!r}, {svc.workers} worker(s), "
        f"socket {args.socket} (protocol repro.job/1; Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        svc.serve_forever()
    except KeyboardInterrupt:
        pass
    if trace is not None:
        trace.dump(args.trace)
        print(f"wrote {args.trace}: {len(trace)} events", file=sys.stderr)
    s = svc.stats()
    print(
        f"repro serve: {s['leased']} job(s) leased, {s['completed']} "
        f"completed, {s['pool_rebuilds']} pool rebuild(s)",
        file=sys.stderr,
    )
    return 0


def cmd_audit(args) -> int:
    """Invariant sweep + differential validation + golden-drift gate."""
    failures = 0

    faults = parse_fault_plan(args.inject_faults)
    if faults is not None:
        print(f"  injecting faults: {faults.describe()}", file=sys.stderr)
    cells = audit_workloads(
        machine=args.machine,
        workloads=args.workloads or None,
        schemes=args.schemes or None,
        interval=args.every,
        faults=faults,
        strict=args.strict,
        mshr_model=args.mshr_model,
    )
    print(format_table(
        [c.row() for c in cells],
        f"Invariant sweep — {args.machine} machine, every {args.every} commits",
    ))
    for cell in cells:
        if cell.corrupted:
            # The drill: a deliberately-corrupted cell MUST be caught.
            if cell.ok:
                failures += 1
                print(f"  DRILL FAILED: corrupted cell {cell.benchmark}/"
                      f"{cell.scheme} reported no violation", file=sys.stderr)
        elif not cell.ok:
            failures += 1
            for v in cell.violations[:4]:
                print(f"  VIOLATION: {cell.benchmark}/{cell.scheme} "
                      f"{v.describe()}", file=sys.stderr)

    golden = Path(args.golden) if args.golden else DEFAULT_GOLDEN
    if args.no_diff:
        pass
    elif not golden.exists():
        print(f"  (no golden file at {golden}; skipping differential "
              f"check and fidelity gate)", file=sys.stderr)
    else:
        diff_rows = differential_check(
            golden, machine=args.machine, full_stats_sample=args.diff_sample,
            mshr_model=args.mshr_model,
        )
        print()
        print(format_table(
            [{k: row[k] for k in ("cell", "variant", "mode", "ok",
                                  "divergence")}
             for row in diff_rows],
            "Differential validation — fast vs reference interpreter",
        ))
        for row in diff_rows:
            if not row["ok"]:
                failures += 1
                for line in row["stat_diffs"]:
                    print(f"  STAT DIFF: {row['cell']}: {line}",
                          file=sys.stderr)

    if not args.no_gate and golden.exists():
        drift = fidelity_gate(golden, machine=args.machine)
        print()
        if drift:
            failures += len(drift)
            print(format_table(drift, "Fidelity gate — drift vs golden pins"))
        else:
            print("Fidelity gate: all golden cells reproduce bit-exactly "
                  "(zero drift).")

    if failures:
        print(f"\naudit FAILED: {failures} problem(s)", file=sys.stderr)
        return 1
    print("\naudit OK")
    return 0


def cmd_profile(args) -> int:
    """Run one scheme under the cycle-attribution profiler: CPI stack,
    ranked hot load sites, per-level latency — conservation audited."""
    cfg = _config(args)
    runner = BenchmarkRunner(args.workload, cfg, _workload_params(args))
    trace = EventTrace(limit=args.limit) if args.trace else None
    profiler = Profiler()
    auditor = Auditor(interval=args.every)
    run = runner.run(
        args.scheme,
        args.idiom,
        telemetry=Telemetry(trace=trace) if trace is not None else Telemetry(),
        profile=profiler,
        audit=auditor,
    )
    profile = run.result.profile

    print(format_table(
        cpi_stack_rows(profile),
        f"{args.workload}/{run.scheme} — CPI stack over {run.total} cycles",
    ))
    hot = hot_site_rows(profile, top=args.top)
    print()
    if hot:
        print(format_table(hot, f"Hot load sites (top {args.top} by stall cycles)"))
    else:
        print("Hot load sites: none (no linked-data loads stalled commit).")
    lat = latency_rows(profile)
    if lat:
        print()
        print(format_table(lat, "Load latency by hierarchy level (cycles)"))

    if args.trace:
        trace.dump(args.trace)
        print(f"\nwrote {args.trace}: {len(trace)} events "
              f"({trace.dropped} dropped past --limit); open in chrome://tracing")
    if args.output:
        doc = artifact(
            "profile",
            {
                "benchmark": args.workload,
                "scheme": run.scheme,
                "variant": run.variant,
                "total": run.total,
                "compute": run.compute,
                "memory": run.memory,
                "profile": profile,
            },
            meta=_run_meta(args),
        )
        dump_json(doc, args.output)
        print(f"wrote {args.output}")

    if not auditor.ok:
        for v in auditor.violations[:8]:
            print(f"  VIOLATION: {v.describe()}", file=sys.stderr)
        print(f"\nprofile audit FAILED: {auditor.violation_count} "
              f"violation(s)", file=sys.stderr)
        return 1
    print(f"\nprofile audit OK: {auditor.checks} sweeps, CPI-stack buckets "
          f"sum to {run.total} cycles")
    return 0


def _bench_regen(quick: bool) -> dict:
    """Re-run ``benchmarks/perf_baseline.py`` and load its report."""
    script = Path(__file__).resolve().parents[2] / "benchmarks" / "perf_baseline.py"
    if not script.exists():
        raise SystemExit(f"error: {script} not found (run from a source checkout)")
    with tempfile.TemporaryDirectory(prefix="repro-bench-diff-") as tmp:
        out = Path(tmp) / "bench.json"
        cmd = [sys.executable, str(script), "-o", str(out)]
        if quick:
            cmd.append("--quick")
        print(f"  regenerating: {' '.join(cmd[1:])}", file=sys.stderr)
        proc = subprocess.run(cmd, cwd=script.parent.parent)
        if proc.returncode:
            raise SystemExit(f"error: perf_baseline.py exited {proc.returncode}")
        with open(out) as f:
            return json.load(f)


def cmd_bench_diff(args) -> int:
    """Signed per-metric drift between two perf-baseline reports."""
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {args.baseline}: {exc}") from None
    if args.regen:
        current = _bench_regen(args.quick)
        current_name = "(regenerated)"
    elif args.current:
        try:
            with open(args.current) as f:
                current = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"error: cannot read {args.current}: {exc}"
            ) from None
        current_name = args.current
    else:
        raise SystemExit("error: bench-diff needs CURRENT or --regen")

    rows = compare_benchmarks(baseline, current, tolerance=args.tolerance)
    print(format_table(
        rows, f"bench-diff — {args.baseline} vs {current_name}"
    ))
    bad = regressions(rows)
    if args.output:
        doc = artifact(
            "bench_diff",
            {
                "baseline": str(args.baseline),
                "current": current_name,
                "tolerance": args.tolerance,
                "rows": rows,
                "regressions": len(bad),
            },
        )
        dump_json(doc, args.output)
        print(f"wrote {args.output}")
    if bad:
        for row in bad:
            print(f"  REGRESSION: {row['metric']} ({row['mode']} {row['band']}): "
                  f"{row['baseline']} -> {row['current']}", file=sys.stderr)
        print(f"\nbench-diff FAILED: {len(bad)} regression(s) "
              f"(tolerance {args.tolerance})", file=sys.stderr)
        return 1
    print(f"\nbench-diff OK: {len(rows)} metrics within tolerance "
          f"{args.tolerance}")
    return 0


def cmd_figure(args) -> int:
    cfg = _config(args)
    name = args.command
    executor = _build_executor(args)
    sweep = {"executor": executor}
    if name == "table1":
        print(format_table(table1(cfg, **sweep),
                           "Table 1 — benchmark characterization"))
    elif name == "figure4":
        print(format_table(figure4(cfg, **sweep), "Figure 4 — idiom comparison"))
    elif name == "figure5":
        rows = figure5(cfg, **sweep)
        print(format_table(rows, "Figure 5 — implementation comparison"))
        print()
        print(format_table(figure5_summary(rows), "Memory-bound averages"))
    elif name == "figure6":
        print(format_table(figure6(cfg, **sweep),
                           "Figure 6 — L1<->L2 bytes per instruction"))
    elif name == "figure7":
        print(format_table(figure7(cfg, **sweep),
                           "Figure 7 — latency tolerance (health)"))
    elif name == "x1":
        print(format_table(onchip_table_ablation(cfg, **sweep),
                           "X1 — on-chip jump-pointer table ablation"))
    elif name == "x2":
        print(format_table(creation_overhead(cfg, **sweep),
                           "X2 — jump-pointer creation overhead"))
        print()
        print(format_table(traversal_count_sweep(cfg, **sweep),
                           "X2 — traversal-count sensitivity (treeadd)"))
    _sweep_footer(executor)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Jump-pointer prefetching reproduction (Roth & Sohi, ISCA 1999)",
    )
    parser.add_argument("--table2", action="store_true",
                        help="use the paper's full-size Table-2 machine "
                             "instead of the scaled bench machine")
    parser.add_argument("--memory-latency", type=int, default=0,
                        help="override main-memory latency (cycles)")
    parser.add_argument("--interval", type=int, default=0,
                        help="override the hardware jump interval")
    parser.add_argument("--engine", default=None, metavar="NAME",
                        choices=SIM_ENGINES.names(),
                        help="simulation engine executing every cell "
                             "(table/reference/compiled; bit-identical "
                             "results, different speed). Equivalent to "
                             "setting $REPRO_SIM_ENGINE")
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list the experiment-axis registries")
    lst.add_argument("what", nargs="?", default="all",
                     choices=("all", "machines", "schemes", "engines",
                              "sim-engines", "workloads"),
                     help="one registry, or everything (default)")

    run = sub.add_parser("run", help="run one workload")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("--scheme", choices=scheme_names(), default="base")
    run.add_argument("--all", action="store_true", help="run every scheme")
    run.add_argument("--idiom", default=None,
                     help="idiom for software/cooperative (default: paper's choice)")
    run.add_argument("--param", action="append", default=[],
                     metavar="KEY=VALUE", help="workload parameter override")
    run.add_argument("--small", action="store_true",
                     help="use the quick test-size parameters")

    stats = sub.add_parser(
        "stats",
        help="run with full telemetry; print tables or a JSON artifact",
    )
    stats.add_argument("workload", nargs="?", default="health",
                       choices=workload_names())
    stats.add_argument("--scheme", choices=scheme_names(), default=None,
                       help="restrict to one scheme (default: all five)")
    stats.add_argument("--idiom", default=None)
    stats.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE")
    stats.add_argument("--small", action="store_true",
                       help="use the quick test-size parameters")
    stats.add_argument("--json", action="store_true",
                       help="emit the repro.stats/1 JSON artifact")
    stats.add_argument("-o", "--output", default=None,
                       help="write the artifact here instead of stdout")

    trace = sub.add_parser(
        "trace",
        help="run one scheme with event tracing; write a Chrome "
             "trace_event file for chrome://tracing",
    )
    trace.add_argument("workload", nargs="?", default="health",
                       choices=workload_names())
    trace.add_argument("--scheme", choices=scheme_names(), default="hardware")
    trace.add_argument("--idiom", default=None)
    trace.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE")
    trace.add_argument("--small", action="store_true")
    trace.add_argument("--limit", type=int, default=1_000_000,
                       help="event-buffer cap (default 1M)")
    trace.add_argument("-o", "--output", default=None,
                       help="trace file path (default <workload>-<scheme>.trace.json)")

    spec_p = sub.add_parser(
        "run-spec",
        help="run a declarative experiment spec file (.toml or .json); "
             "see examples/specs/",
    )
    spec_p.add_argument("spec", help="path to the spec file")
    spec_p.add_argument("--machine", choices=machine_names(), default=None,
                        help="run on this named machine instead of the "
                             "spec's own")
    spec_p.add_argument("--small", action="store_true",
                        help="use every workload's quick test-size "
                             "parameters (spec params still win)")
    spec_p.add_argument("--set", action="append", default=[],
                        metavar="PATH=VALUE",
                        help="extra dotted-path machine override, e.g. "
                             "--set prefetch.jump_interval=4 (repeatable)")
    spec_p.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="also write the repro.experiment/1 artifact "
                             "(rows + the spec that produced them)")

    tour = sub.add_parser(
        "tournament",
        help="race every scheme against every workload and rank them: "
             "per-cell outcome breakdowns plus the geomean-normalized "
             "summary (default spec: examples/specs/tournament.toml)",
    )
    tour.add_argument("spec", nargs="?", default=None,
                      help="tournament spec file (default: the shipped "
                           "examples/specs/tournament.toml)")
    tour.add_argument("--machine", choices=machine_names(), default=None,
                      help="run on this named machine instead of the "
                           "spec's own")
    tour.add_argument("--small", action="store_true",
                      help="use every workload's quick test-size "
                           "parameters (spec params still win)")
    tour.add_argument("--set", action="append", default=[],
                      metavar="PATH=VALUE",
                      help="extra dotted-path machine override "
                           "(repeatable)")
    tour.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="also write the repro.experiment/1 artifact "
                           "(rows + ranked summary in meta)")

    serve = sub.add_parser(
        "serve",
        help="run a long-lived sweep worker pool: an asyncio job queue "
             "on a Unix socket (repro.job/1) fronting a local process "
             "pool; sweeps connect with --backend service / `repro "
             "submit`",
    )
    serve.add_argument("socket", help="Unix socket path to listen on")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="worker processes (default: 0 = cgroup/"
                            "affinity-aware auto-detection)")
    serve.add_argument("--name", default=None,
                       help="pool name announced to clients "
                            "(default: pool-<pid>)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace of the pool's life "
                            "(leases, runs, results, rebuilds) on exit")
    serve.add_argument("--limit", type=int, default=1_000_000,
                       help="trace event-buffer cap (default 1M)")
    serve.add_argument("--quiet", action="store_true",
                       help="do not narrate leases/results on stderr")

    submit = sub.add_parser(
        "submit",
        help="run an experiment spec on repro serve worker pools "
             "(run-spec pinned to the service backend): ships compiled "
             "cells as leased jobs, streams progress, assembles "
             "through the shared result cache",
    )
    submit.add_argument("spec", help="path to the spec file")
    submit.add_argument("--machine", choices=machine_names(), default=None,
                        help="run on this named machine instead of the "
                             "spec's own")
    submit.add_argument("--small", action="store_true",
                        help="use every workload's quick test-size "
                             "parameters (spec params still win)")
    submit.add_argument("--set", action="append", default=[],
                        metavar="PATH=VALUE",
                        help="extra dotted-path machine override "
                             "(repeatable)")
    submit.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="also write the repro.experiment/1 artifact")

    audit = sub.add_parser(
        "audit",
        help="run the simulation auditor: invariant sweep over the "
             "workload/scheme matrix, differential fast-vs-reference "
             "interpreter validation, and the golden-drift fidelity gate",
    )
    audit.add_argument("--machine", choices=machine_names(), default="small",
                       help="named machine for the sweep (default: small)")
    audit.add_argument("--mshr-model", choices=list(MSHR_MODELS),
                       default=None, metavar="MODEL",
                       help="override the machine's MSHR model for the "
                            "invariant sweep and differential stats sample "
                            "(blocking | coalescing | full; default: the "
                            "machine's own setting)")
    audit.add_argument("--workloads", nargs="+", default=None,
                       choices=workload_names(), metavar="WORKLOAD",
                       help="restrict the invariant sweep (default: all)")
    audit.add_argument("--schemes", nargs="+", default=None, choices=scheme_names(),
                       metavar="SCHEME",
                       help="restrict the invariant sweep (default: all five)")
    audit.add_argument("--every", type=int, default=512, metavar="N",
                       help="invariant-sweep cadence in commits (default: 512)")
    audit.add_argument("--golden", default=None, metavar="FILE",
                       help="golden pin file for the differential check and "
                            "fidelity gate (default: tests/golden_cycles.json)")
    audit.add_argument("--diff-sample", type=int, default=2, metavar="N",
                       help="cells whose full timing stats are also diffed "
                            "on the reference path (default: 2)")
    audit.add_argument("--no-diff", action="store_true",
                       help="skip the differential interpreter validation")
    audit.add_argument("--no-gate", action="store_true",
                       help="skip the golden-drift fidelity gate")
    audit.add_argument("--strict", action="store_true",
                       help="raise on the first violation instead of "
                            "collecting a report")
    audit.add_argument("--inject-faults", default=None, metavar="PLAN",
                       help="corrupt-outcome drill plan, e.g. "
                            "'em3d//dbp=corrupt' — matched cells get a "
                            "deliberately broken outcome tracker that the "
                            "auditor must catch")

    prof = sub.add_parser(
        "profile",
        help="run one scheme under the cycle-attribution profiler: "
             "CPI stack, ranked hot load sites, and per-level latency "
             "histograms, with conservation audited",
    )
    prof.add_argument("workload", nargs="?", default="health",
                      choices=workload_names())
    prof.add_argument("--scheme", choices=scheme_names(), default="hardware")
    prof.add_argument("--idiom", default=None,
                      help="idiom for software/cooperative (default: paper's choice)")
    prof.add_argument("--param", action="append", default=[],
                      metavar="KEY=VALUE")
    prof.add_argument("--small", action="store_true",
                      help="use the quick test-size parameters")
    prof.add_argument("--top", type=int, default=10, metavar="N",
                      help="hot-site rows to print (default: 10)")
    prof.add_argument("--every", type=int, default=512, metavar="N",
                      help="auditor cadence (commits) enforcing CPI-stack "
                           "conservation mid-run (default: 512)")
    prof.add_argument("--trace", default=None, metavar="FILE",
                      help="also write a Chrome trace with cpi_stack / "
                           "load_level counter tracks")
    prof.add_argument("--limit", type=int, default=1_000_000,
                      help="trace event-buffer cap (default 1M)")
    prof.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="write the repro.profile/1 JSON artifact")

    bd = sub.add_parser(
        "bench-diff",
        help="signed per-metric drift between two BENCH_*.json "
             "perf-baseline reports; exits non-zero on regression "
             "(the CI perf gate)",
    )
    bd.add_argument("baseline", help="baseline report, e.g. BENCH_PR2.json")
    bd.add_argument("current", nargs="?", default=None,
                    help="current report (omit with --regen)")
    bd.add_argument("--regen", action="store_true",
                    help="regenerate the current report now via "
                         "benchmarks/perf_baseline.py")
    bd.add_argument("--quick", action="store_true",
                    help="with --regen: test-size smoke run (compare "
                         "against a --quick baseline only)")
    bd.add_argument("--tolerance", type=float, default=0.25, metavar="T",
                    help="relative band for wall-clock (lower) and "
                         "throughput (higher) rules; exact rules always "
                         "require bit-identical values (default: 0.25)")
    bd.add_argument("-o", "--output", default=None, metavar="FILE",
                    help="write the repro.bench_diff/1 JSON artifact")

    figure_help = {
        "x1": "extension: on-chip jump-pointer table ablation",
        "x2": "extension: creation overhead + traversal-count sweep",
    }
    for fig in ("table1", "figure4", "figure5", "figure6", "figure7", "x1",
                "x2", "run-spec", "submit", "tournament"):
        p = (sub.choices[fig] if fig in ("run-spec", "submit", "tournament")
             else sub.add_parser(
                 fig, help=figure_help.get(fig, f"reproduce {fig}")))
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep cells across N worker processes "
                            "(default: 1, serial; 0 = cgroup/affinity-"
                            "aware auto-detection)")
        p.add_argument("--no-cache", action="store_true",
                       help="do not read or write the on-disk result cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache location (default: $REPRO_CACHE_DIR "
                            "or .repro_cache)")
        p.add_argument("--progress", action="store_true",
                       help="narrate per-cell progress on stderr "
                            "(implied by --jobs > 1)")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-cell wall-clock budget; a hung worker is "
                            "terminated and the cell charged a failed attempt")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry a failed/timed-out cell up to N times "
                            "with exponential backoff (default: 0)")
        p.add_argument("--backoff", type=float, default=0.5, metavar="SEC",
                       help="base retry delay; doubles per attempt "
                            "(default: 0.5)")
        p.add_argument("--resume", action="store_true",
                       help="replay completed cells from the sweep journal "
                            "of an interrupted run instead of starting over")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint journal location (default: "
                            "<cache-root>/journals/<figure>.jsonl)")
        p.add_argument("--inject-faults", default=None, metavar="PLAN",
                       help="deterministic fault plan for robustness drills: "
                            "'bench[/variant[/engine]]=kind[:times][@sec]' "
                            "entries (kinds: crash, hang, transient, corrupt, "
                            "crash-pool, drop-heartbeat, dup-result) "
                            "separated by commas")
        p.add_argument("--backend", default=None, metavar="NAME",
                       choices=("serial", "process", "service"),
                       help="worker backend (default: serial for --jobs 1, "
                            "the local process pool otherwise; 'service' "
                            "leases cells to repro serve pools)")
        p.add_argument("--pool", action="append", default=[], metavar="PATH",
                       help="Unix socket of a repro serve worker pool "
                            "(repeatable; implies --backend service)")
        p.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                       metavar="SEC",
                       help="service job lease: seconds a pool may stay "
                            "silent before the attempt is charged "
                            f"(default: {DEFAULT_LEASE_TTL})")
        p.add_argument("--pool-wait", type=float, default=DEFAULT_POOL_WAIT,
                       metavar="SEC",
                       help="seconds the service backend waits for a worker "
                            "pool to (re)appear before failing the remaining "
                            f"cells (default: {DEFAULT_POOL_WAIT})")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.engine:
        # The environment override is the single source of the session
        # default (harness workers inherit it), so the flag just sets it.
        os.environ[SIM_ENGINE_ENV] = args.engine
    try:
        if args.command == "list":
            return cmd_list(args)
        if args.command == "run":
            return cmd_run(args)
        if args.command == "stats":
            return cmd_stats(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command in ("run-spec", "submit", "tournament"):
            return cmd_run_spec(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "audit":
            return cmd_audit(args)
        if args.command == "profile":
            return cmd_profile(args)
        if args.command == "bench-diff":
            return cmd_bench_diff(args)
        return cmd_figure(args)
    except SpecError as exc:
        raise SystemExit(f"error: {exc}") from None
    except BackendError as exc:
        # No reachable pool / unknown backend is a usage error.
        raise SystemExit(f"error: {exc}") from None
    except ConfigError as exc:
        # A bad --set path / value is a usage error, not a crash.
        raise SystemExit(f"error: {exc}") from None


if __name__ == "__main__":
    sys.exit(main())
