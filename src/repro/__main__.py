"""Command-line interface: reproduce tables/figures and run single configs.

Examples::

    python -m repro list                         # workloads and schemes
    python -m repro run health --scheme hardware # one benchmark, one scheme
    python -m repro run health --all             # full Figure-5 row
    python -m repro table1                       # characterization table
    python -m repro figure4 | figure5 | figure6 | figure7
    python -m repro run treeadd --scheme software --param levels=9 --param passes=2
"""

from __future__ import annotations

import argparse
import sys

from . import bench_config, table2_config, workload_names
from .harness import (
    SCHEMES,
    BenchmarkRunner,
    figure4,
    figure5,
    figure5_summary,
    figure6,
    figure7,
    format_table,
    table1,
)
from .workloads import workload_class


def _parse_params(items: list[str]) -> dict:
    params = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def _config(args) -> object:
    cfg = table2_config() if args.table2 else bench_config()
    if args.memory_latency:
        cfg = cfg.with_memory_latency(args.memory_latency)
    if args.interval:
        cfg = cfg.with_jump_interval(args.interval)
    return cfg


def cmd_list(args) -> int:
    rows = []
    for name in workload_names():
        cls = workload_class(name)
        rows.append({
            "workload": name,
            "variants": " ".join(cls.variants),
            "structure": cls.structure,
        })
    print(format_table(rows, "Workloads"))
    print(f"\nschemes: {' '.join(SCHEMES)}")
    return 0


def cmd_run(args) -> int:
    cfg = _config(args)
    params = _parse_params(args.param)
    if args.small:
        params = {**workload_class(args.workload).test_params(), **params}
    runner = BenchmarkRunner(args.workload, cfg, params)
    schemes = SCHEMES if args.all else (args.scheme,)
    base = runner.run("base")
    rows = []
    for scheme in schemes:
        run = base if scheme == "base" else runner.run(scheme, args.idiom)
        rows.append({
            "scheme": scheme,
            "variant": run.variant,
            "cycles": run.total,
            "compute": run.compute,
            "memory": run.memory,
            "normalized": round(run.normalized(base.total), 3),
            "ipc": round(run.result.ipc, 2),
        })
    print(format_table(rows, f"{args.workload} on {type(cfg).__name__}"))
    return 0


def cmd_figure(args) -> int:
    cfg = _config(args)
    name = args.command
    if name == "table1":
        print(format_table(table1(cfg), "Table 1 — benchmark characterization"))
    elif name == "figure4":
        print(format_table(figure4(cfg), "Figure 4 — idiom comparison"))
    elif name == "figure5":
        rows = figure5(cfg)
        print(format_table(rows, "Figure 5 — implementation comparison"))
        print()
        print(format_table(figure5_summary(rows), "Memory-bound averages"))
    elif name == "figure6":
        print(format_table(figure6(cfg), "Figure 6 — L1<->L2 bytes per instruction"))
    elif name == "figure7":
        print(format_table(figure7(cfg), "Figure 7 — latency tolerance (health)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Jump-pointer prefetching reproduction (Roth & Sohi, ISCA 1999)",
    )
    parser.add_argument("--table2", action="store_true",
                        help="use the paper's full-size Table-2 machine "
                             "instead of the scaled bench machine")
    parser.add_argument("--memory-latency", type=int, default=0,
                        help="override main-memory latency (cycles)")
    parser.add_argument("--interval", type=int, default=0,
                        help="override the hardware jump interval")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and schemes")

    run = sub.add_parser("run", help="run one workload")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("--scheme", choices=SCHEMES, default="base")
    run.add_argument("--all", action="store_true", help="run every scheme")
    run.add_argument("--idiom", default=None,
                     help="idiom for software/cooperative (default: paper's choice)")
    run.add_argument("--param", action="append", default=[],
                     metavar="KEY=VALUE", help="workload parameter override")
    run.add_argument("--small", action="store_true",
                     help="use the quick test-size parameters")

    for fig in ("table1", "figure4", "figure5", "figure6", "figure7"):
        sub.add_parser(fig, help=f"reproduce {fig}")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    return cmd_figure(args)


if __name__ == "__main__":
    sys.exit(main())
