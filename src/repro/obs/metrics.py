"""Named counters and bucketed histograms — the metric registry.

Components (the memory hierarchy, the prefetch engines, the outcome
tracker) register instruments by name into one :class:`MetricRegistry`
per simulation; the registry serializes to a schema-stable dict for the
JSON run artifacts (see :mod:`repro.obs.artifacts`).

Histograms use fixed upper-bound buckets (Prometheus-style ``le``
semantics): a value lands in the first bucket whose bound is >= the
value, with an unbounded overflow bucket at the end.  Min/max/sum are
tracked exactly, so the mean does not suffer bucketing error.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil


def exponential_buckets(
    start: int | float, factor: int | float, count: int
) -> list[int | float]:
    """``count`` geometric upper bounds: start, start*factor, ...

    Integer inputs stay exact integers; float inputs (latency ratios,
    speedup bands) produce float bounds.
    """
    if start <= 0 or factor <= 1:
        raise ValueError(
            f"exponential buckets need start > 0 and factor > 1, "
            f"got start={start}, factor={factor}"
        )
    bounds: list[int | float] = []
    b = start
    for _ in range(count):
        bounds.append(b)
        b *= factor
    return bounds


def linear_buckets(
    start: int | float, step: int | float, count: int
) -> list[int | float]:
    return [start + step * i for i in range(count)]


class Counter:
    """A monotonically-increasing named count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Bounds may be ints or floats (mixed is fine); they must be strictly
    ascending under exact comparison — no tolerance, so ``1`` and ``1.0``
    count as the same bound and are rejected as duplicates.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, bounds: list[int | float], help: str = ""
    ) -> None:
        if not bounds or any(
            a >= b for a, b in zip(bounds, list(bounds)[1:])
        ):
            raise ValueError(
                f"histogram {name!r} needs strictly ascending bounds, got {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = list(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last bucket = overflow (+inf)
        self.count = 0
        self.sum = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_of(self, value: int | float) -> int:
        """Index of the bucket ``value`` would land in (tests/debugging)."""
        return bisect_left(self.bounds, value)

    def percentile(self, q: float) -> int | float | None:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Returns the upper bound of the bucket holding the ``ceil(q *
        count)``-th observation, clamped to the exact ``[min, max]``
        range (so single-value histograms answer exactly, and the
        unbounded overflow bucket answers ``max`` instead of infinity).
        ``None`` when the histogram is empty.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"percentile wants 0 <= q <= 1, got {q}")
        if not self.count:
            return None
        return _bucket_percentile(
            self.bounds, self.counts, self.count, self.min, self.max, q
        )

    def summary(self) -> dict:
        """Compact roll-up: exact count/sum/mean/min/max plus estimated
        p50/p90/p99 (all ``None``-safe on an empty histogram)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": b, "count": c} for b, c in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],
        }


def _bucket_percentile(bounds, counts, count, lo, hi, q):
    """Shared quantile walk for live histograms and serialized dumps."""
    if q <= 0:
        return lo
    if q >= 1:
        return hi
    rank = ceil(q * count)
    cum = 0
    for bound, c in zip(bounds, counts):
        cum += c
        if cum >= rank:
            # Clamp the bucket bound to the exact observed range.
            if bound < lo:
                return lo
            return hi if bound > hi else bound
    return hi  # rank falls in the unbounded overflow bucket


def percentile_from_dict(hist: dict, q: float) -> int | float | None:
    """:meth:`Histogram.percentile` over a serialized ``to_dict`` payload
    (the overflow bucket is the trailing ``le: None`` entry)."""
    if not 0 <= q <= 1:
        raise ValueError(f"percentile wants 0 <= q <= 1, got {q}")
    if not hist["count"]:
        return None
    finite = [b for b in hist["buckets"] if b["le"] is not None]
    return _bucket_percentile(
        [b["le"] for b in finite],
        [b["count"] for b in finite],
        hist["count"],
        hist["min"],
        hist["max"],
        q,
    )


class MetricRegistry:
    """Name -> instrument map; registration is idempotent per name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Counter(name, help)
        elif not isinstance(m, Counter):
            raise ValueError(f"{name!r} already registered as {type(m).__name__}")
        return m

    def histogram(self, name: str, bounds: list[int], help: str = "") -> Histogram:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Histogram(name, bounds, help)
        elif not isinstance(m, Histogram):
            raise ValueError(f"{name!r} already registered as {type(m).__name__}")
        return m

    def get(self, name: str) -> Counter | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict() for name in self.names()}
