"""Observability: metric registry, prefetch-outcome tracking, event
tracing, and machine-readable run artifacts.

One :class:`Telemetry` object is the per-simulation context.  Pass it to
:func:`repro.cpu.simulator.simulate` (or a harness runner) and the
memory hierarchy and prefetch engine register their instruments into its
:class:`~repro.obs.metrics.MetricRegistry` and report prefetch outcomes
to its :class:`~repro.obs.outcomes.OutcomeTracker`.  With no telemetry
attached (the default) every hook site is a single ``is None`` check, so
the untraced hot loop does not regress.
"""

from __future__ import annotations

from .artifacts import artifact, dump_json, load_json, schema_kind
from .metrics import (
    Counter,
    Histogram,
    MetricRegistry,
    exponential_buckets,
    linear_buckets,
)
from .profile import (
    BUCKETS,
    LEVELS,
    Profiler,
    cpi_stack_rows,
    hot_site_rows,
    latency_rows,
)
from .outcomes import (
    DROPPED,
    EARLY,
    EARLY_EVICTED,
    LATE,
    OUTCOMES,
    TIMELY,
    USELESS,
    OutcomeTracker,
    classify_timeliness,
)
from .trace import EventTrace

#: Miss-latency buckets: 1..4096 cycles in powers of two (bench memory
#: latency is 70; Figure-7 sweeps reach several hundred).
MISS_LATENCY_BOUNDS = exponential_buckets(1, 2, 13)


class Telemetry:
    """Per-simulation observability context (registry + outcomes + trace)."""

    def __init__(self, trace: EventTrace | None = None) -> None:
        self.registry = MetricRegistry()
        self.outcomes = OutcomeTracker(self.registry)
        self.trace = trace

    def finalize(self) -> None:
        """Resolve still-outstanding prefetches and freeze outcome counters."""
        self.outcomes.finalize()
        for outcome in OUTCOMES:
            c = self.registry.counter(
                f"prefetch.outcome.{outcome}",
                help="terminal prefetch outcomes (Section 5 taxonomy)",
            )
            c.value = self.outcomes.counts[outcome]

    def to_dict(self) -> dict:
        return {
            "metrics": self.registry.to_dict(),
            "prefetch_outcomes": self.outcomes.to_dict(),
        }


__all__ = [
    "BUCKETS",
    "Counter",
    "EventTrace",
    "Histogram",
    "LEVELS",
    "MetricRegistry",
    "MISS_LATENCY_BOUNDS",
    "OutcomeTracker",
    "Profiler",
    "Telemetry",
    "artifact",
    "classify_timeliness",
    "cpi_stack_rows",
    "dump_json",
    "exponential_buckets",
    "hot_site_rows",
    "latency_rows",
    "linear_buckets",
    "load_json",
    "schema_kind",
    "DROPPED",
    "EARLY",
    "EARLY_EVICTED",
    "LATE",
    "OUTCOMES",
    "TIMELY",
    "USELESS",
]
