"""Machine-readable run artifacts.

Every JSON document the CLI/harness emits goes through :func:`artifact`,
which stamps a versioned schema tag so downstream consumers (regression
gates, plotting scripts, the EXPERIMENTS.md reproduction recipes) can
detect incompatible layout changes instead of silently misreading them.

Schema tags currently in use:

* ``repro.sim_result/1``  — one :meth:`SimResult.to_dict`
* ``repro.scheme_run/1``  — one :meth:`SchemeRun.to_dict`
* ``repro.stats/1``       — ``python -m repro stats`` (per-engine
  prefetch-outcome counts, metric registry dumps, time decomposition)
* ``repro.trace/1``       — sidecar metadata for a Chrome trace file
* ``repro.profile/1``     — ``python -m repro profile`` (CPI stack,
  hot-site table, per-level latency histograms)
* ``repro.bench_diff/1``  — ``python -m repro bench-diff`` drift rows
"""

from __future__ import annotations

import json
from typing import Any, IO

SCHEMA_PREFIX = "repro"


def artifact(kind: str, body: dict[str, Any], meta: dict[str, Any] | None = None,
             version: int = 1) -> dict[str, Any]:
    """Wrap ``body`` in a schema-stamped artifact document."""
    doc: dict[str, Any] = {"schema": f"{SCHEMA_PREFIX}.{kind}/{version}"}
    if meta:
        doc["meta"] = dict(meta)
    doc.update(body)
    return doc


def schema_kind(doc: dict[str, Any]) -> str:
    """The ``kind`` of an artifact document ('' when untagged)."""
    tag = doc.get("schema", "")
    if not isinstance(tag, str) or "." not in tag or "/" not in tag:
        return ""
    return tag.split(".", 1)[1].rsplit("/", 1)[0]


def dump_json(doc: dict[str, Any], dest: str | IO[str] | None = None,
              indent: int = 2) -> str:
    """Serialize ``doc``; write it to a path/stream when given.

    Returns the serialized text either way (handy for tests and for
    printing to stdout).
    """
    text = json.dumps(doc, indent=indent, sort_keys=False)
    if isinstance(dest, str):
        with open(dest, "w") as f:
            f.write(text + "\n")
    elif dest is not None:
        dest.write(text + "\n")
    return text


def load_json(path: str) -> dict[str, Any]:
    with open(path) as f:
        return json.load(f)
