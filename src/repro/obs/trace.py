"""Cycle-stamped structured event trace with a Chrome ``trace_event``
JSON exporter.

The trace is strictly opt-in: the simulator's hot loops carry only a
``trace is None`` check, so untraced runs pay nothing.  When enabled,
components append *instant* events (a point in time: load issue, fill)
and *complete* events (a span: demand miss, prefetch in flight).  The
exporter writes the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
loadable in ``chrome://tracing`` / Perfetto; one simulated cycle maps to
one microsecond of trace time.
"""

from __future__ import annotations

import json

#: Lane (Chrome "thread") ids per event category.
_LANES = {"core": 1, "mem": 2, "prefetch": 3, "phase": 4, "profile": 5,
          "service": 6}


class EventTrace:
    """Bounded in-memory event buffer (events past ``limit`` are counted
    but discarded, so tracing a long run cannot exhaust memory)."""

    def __init__(self, limit: int = 1_000_000) -> None:
        self.limit = limit
        self.events: list[tuple] = []  # (ph, name, cat, ts, dur, args)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def _add(self, ph: str, name: str, cat: str, ts: int, dur: int, args: dict) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append((ph, name, cat, ts, dur, args))

    def instant(self, name: str, ts: int, cat: str = "core", **args: object) -> None:
        """A point event at cycle ``ts`` (load issue, fill completion)."""
        self._add("i", name, cat, ts, 0, args)

    def complete(
        self, name: str, ts: int, dur: int, cat: str = "mem", **args: object
    ) -> None:
        """A span event from cycle ``ts`` lasting ``dur`` cycles."""
        self._add("X", name, cat, ts, dur, args)

    def counter(
        self, name: str, ts: int, values: dict, cat: str = "profile"
    ) -> None:
        """A counter-track sample at cycle ``ts``: Perfetto renders each
        key of ``values`` as one series of a stacked ``ph="C"`` track
        (used for CPI-stack and per-level miss counters)."""
        self._add("C", name, cat, ts, 0, dict(values))

    def phase(self, name: str, ts: int, dur: int, **args: object) -> None:
        """Label a simulation phase (warmup, measured region, drain) as a
        span on the dedicated ``phase`` lane."""
        self._add("X", name, "phase", ts, dur, args)

    # -- export ---------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        out = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro simulator"},
            }
        ]
        for cat, tid in _LANES.items():
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": cat},
                }
            )
            # Pin lane order in Perfetto (insertion order is not honored).
            out.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": 0,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        for ph, name, cat, ts, dur, args in self.events:
            ev = {
                "ph": ph,
                "name": name,
                "cat": cat,
                "ts": ts,
                "pid": 0,
                "tid": _LANES.get(cat, 0),
            }
            if ph == "X":
                ev["dur"] = dur
            elif ph == "i":
                ev["s"] = "t"  # instant scope: thread
            if args:
                ev["args"] = args
            out.append(ev)
        return out

    def to_chrome(self) -> dict:
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace",
                "time_unit": "1 cycle = 1 us",
                "events": len(self.events),
                "dropped": self.dropped,
            },
        }

    def dump(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f)
