"""Per-prefetch outcome classification (the paper's Section-5 taxonomy).

Every issued prefetch eventually resolves to exactly one outcome:

* ``timely``        — the demand access found the data already filled;
* ``late``          — the demand access arrived while the fill was still
                      in flight (latency partially hidden);
* ``early-evicted`` — the prefetched line was evicted before any use;
* ``useless``       — never referenced by the end of the run;
* ``dropped``       — rejected at the prefetch request queue (never issued).

:func:`classify_timeliness` is the shared demand-time classifier; the
adaptive jump-interval feedback (:mod:`repro.prefetch.adaptive`) and the
hardware engine's per-PC steering use it instead of re-deriving the
late/early comparisons locally.  ``early`` is a timeliness label only
(data arrived, then sat unused for longer than ``early_slack``); it is
not a terminal outcome — an early prefetch that is eventually used
counts as ``timely``, one that is evicted first as ``early-evicted``.
"""

from __future__ import annotations

from .metrics import Histogram, MetricRegistry, exponential_buckets

TIMELY = "timely"
LATE = "late"
EARLY_EVICTED = "early-evicted"
USELESS = "useless"
DROPPED = "dropped"
EARLY = "early"  # timeliness-only label (see module docstring)

#: The five terminal outcomes, in reporting order.
OUTCOMES = (TIMELY, LATE, EARLY_EVICTED, USELESS, DROPPED)

#: Distance (cycles between fill completion and demand use) buckets.
DISTANCE_BOUNDS = exponential_buckets(1, 2, 17)  # 1 .. 65536


def classify_timeliness(
    demand_time: int, fill_time: int, early_slack: int | None = None
) -> str:
    """Classify one demand use of prefetched data.

    Returns :data:`LATE` when the demand arrived before the fill
    completed, :data:`EARLY` when the data sat unused for more than
    ``early_slack`` cycles (only when a slack is given), else
    :data:`TIMELY`.
    """
    if demand_time < fill_time:
        return LATE
    if early_slack is not None and demand_time > fill_time + early_slack:
        return EARLY
    return TIMELY


def _empty_counts() -> dict[str, int]:
    return {o: 0 for o in OUTCOMES}


class OutcomeTracker:
    """Accumulates terminal outcomes per engine-kind and per trigger PC.

    The prefetch engine reports issues and drops; the memory hierarchy
    reports demand uses and evictions of prefetched lines; whatever is
    still outstanding when :meth:`finalize` runs was never used.
    """

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.counts = _empty_counts()
        self.by_kind: dict[str, dict[str, int]] = {}
        self.by_pc: dict[int, dict[str, int]] = {}
        # Raw event totals, kept separately from the classified counts so
        # the audit layer can assert the conservation law: every recorded
        # event is classified exactly once (see :meth:`audit_check`).
        self.issued = 0
        self.dropped = 0
        self.finalized = False
        # line -> (kind, pc, issue_time, fill_time)
        self._outstanding: dict[int, tuple[str, int | None, int, int]] = {}
        if registry is not None:
            self.distance: Histogram | None = registry.histogram(
                "prefetch.to_demand_distance_cycles",
                DISTANCE_BOUNDS,
                help="cycles between prefetch fill completion and demand use",
            )
        else:
            self.distance = None

    # -- accumulation ---------------------------------------------------

    def _count(self, outcome: str, kind: str, pc: int | None) -> None:
        self.counts[outcome] += 1
        k = self.by_kind.get(kind)
        if k is None:
            k = self.by_kind[kind] = _empty_counts()
        k[outcome] += 1
        if pc is not None:
            p = self.by_pc.get(pc)
            if p is None:
                p = self.by_pc[pc] = _empty_counts()
            p[outcome] += 1

    # -- event sources --------------------------------------------------

    def record_issue(
        self, line: int, kind: str, pc: int | None, issue: int, fill: int
    ) -> None:
        """An actual (non-redundant) prefetch of ``line`` was issued."""
        self.issued += 1
        old = self._outstanding.get(line)
        if old is not None:
            # Superseded before use: the earlier fetch of this line did
            # nothing for the program.
            self._count(USELESS, old[0], old[1])
        self._outstanding[line] = (kind, pc, issue, fill)

    def record_drop(self, kind: str, pc: int | None) -> None:
        """A prefetch request was rejected at the full PRQ."""
        self.dropped += 1
        self._count(DROPPED, kind, pc)

    def on_demand(self, line: int, time: int) -> str | None:
        """A demand access hit prefetched data in ``line`` at ``time``."""
        rec = self._outstanding.pop(line, None)
        if rec is None:
            return None
        kind, pc, __, fill = rec
        outcome = LATE if time < fill else TIMELY
        if outcome is TIMELY and self.distance is not None:
            self.distance.observe(time - fill)
        self._count(outcome, kind, pc)
        return outcome

    def on_evict(self, line: int) -> str | None:
        """``line`` was evicted (L1 or prefetch buffer) before any use."""
        rec = self._outstanding.pop(line, None)
        if rec is None:
            return None
        self._count(EARLY_EVICTED, rec[0], rec[1])
        return EARLY_EVICTED

    def finalize(self) -> None:
        """End of run: all still-outstanding prefetches were useless."""
        for kind, pc, __, ___ in self._outstanding.values():
            self._count(USELESS, kind, pc)
        self._outstanding.clear()
        self.finalized = True

    # -- auditing ---------------------------------------------------------

    def audit_check(self) -> list[tuple[str, str]]:
        """Invariant sweep for :class:`repro.audit.Auditor`.

        Returns ``(invariant, message)`` pairs for every violated law:

        * **outcome-conservation** — every issued or dropped prefetch is
          classified exactly once; mid-run the difference is exactly the
          still-outstanding set, after :meth:`finalize` it is zero.
        * **outcome-nonnegative** — no classified count ever decreases
          below zero (a double-pop would show up here).
        """
        violations: list[tuple[str, str]] = []
        classified = self.total
        outstanding = len(self._outstanding)
        if self.issued + self.dropped != classified + outstanding:
            violations.append((
                "outcome-conservation",
                f"{self.issued} issued + {self.dropped} dropped != "
                f"{classified} classified + {outstanding} outstanding",
            ))
        if self.counts[DROPPED] != self.dropped:
            violations.append((
                "outcome-conservation",
                f"dropped count {self.counts[DROPPED]} != "
                f"{self.dropped} recorded drops",
            ))
        for outcome, n in self.counts.items():
            if n < 0:
                violations.append((
                    "outcome-nonnegative", f"{outcome} count is {n}"
                ))
        if self.finalized and outstanding:
            violations.append((
                "outcome-conservation",
                f"{outstanding} prefetches still outstanding after finalize",
            ))
        return violations

    # -- reporting ------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def to_dict(self) -> dict:
        return {
            "counts": dict(self.counts),
            "issued": self.issued,
            "dropped": self.dropped,
            "by_kind": {k: dict(v) for k, v in sorted(self.by_kind.items())},
            "by_pc": {str(pc): dict(v) for pc, v in sorted(self.by_pc.items())},
        }
