"""Cycle attribution: CPI stacks, per-load-site stall tables, and
per-level memory latency histograms.

The paper's headline results are stall-cycle decompositions (Figure 5
reports the fraction of load-stall cycles each scheme removes), so the
simulator needs to say not just *how many* cycles a run took but *where
they went*.  A :class:`Profiler` attaches to one simulation the same way
:class:`repro.obs.Telemetry` and :class:`repro.audit.Auditor` do: pass
``profile=Profiler()`` to :func:`repro.cpu.simulator.simulate` and the
timing model charges every committed instruction's commit-front advance
to exactly one CPI-stack bucket.  With no profiler attached the hot loop
pays a single ``is None`` check, so unprofiled runs stay bit-identical
and effectively free.

**Conservation law.**  The timing model commits in program order; each
committed instruction advances the commit front by
``delta = commit_time - previous_commit_time`` and the profiler charges
that delta to one bucket.  Summed over the run the deltas telescope to
the final cycle count, so ``sum(cpi_stack.values()) == cycles`` holds
*exactly* — not approximately — and :meth:`Profiler.audit_check` exposes
it to the :class:`repro.audit.Auditor` invariant sweep.

**Buckets.**  Classification looks at which pipeline stage lifted the
commit front, latest stage first:

* ``load.l1`` / ``load.pb`` / ``load.merge`` / ``load.l2`` / ``load.mem``
  / ``load.wb`` — a demand load's completion bound commit; split by where
  the hierarchy serviced it (L1 hit / prefetch-buffer hit / merged with
  an in-flight miss / L2 hit / main memory / demand bus held behind a
  dirty-victim writeback drain — the last only under the non-blocking
  ``mshr_model`` settings, which charge write-back traffic against demand
  bus slots).  Store-forwarded and perfect-memory loads count as
  ``load.l1``.
* ``fu`` — issue waited on a functional unit (or issue bandwidth)
  beyond operand readiness.
* ``window`` — dispatch waited for an instruction-window or LSQ slot.
* ``branch`` — fetch was held by a mispredict/BTB redirect.
* ``base`` — everything else: commit-width limits, register
  dependences, store/ALU latency chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import Histogram, MetricRegistry, exponential_buckets

if TYPE_CHECKING:  # pragma: no cover
    from ..isa.program import Program

#: Hierarchy service levels a demand load resolves at, nearest first
#: ("wb" = the demand bus wait was a writeback drain; non-blocking
#: mshr models only).
LEVELS = ("l1", "pb", "merge", "l2", "mem", "wb")

BASE = "base"
WINDOW = "window"
BRANCH = "branch"
FU = "fu"
LOAD_BUCKETS = tuple(f"load.{lvl}" for lvl in LEVELS)
#: All CPI-stack buckets, in display order.
BUCKETS = (BASE,) + LOAD_BUCKETS + (WINDOW, BRANCH, FU)

_LOAD_REASON = {lvl: f"load.{lvl}" for lvl in LEVELS}
_LOAD_SET = frozenset(LOAD_BUCKETS)

#: Demand-load service latency buckets: 1..4096 cycles, powers of two.
LATENCY_BOUNDS = exponential_buckets(1, 2, 13)


class SiteStats:
    """Per-static-load-site accumulator (keyed by pc)."""

    __slots__ = ("pc", "count", "stall_cycles", "latency_sum", "levels")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.count = 0
        self.stall_cycles = 0
        self.latency_sum = 0
        self.levels = dict.fromkeys(LEVELS, 0)

    @property
    def misses(self) -> int:
        """Accesses serviced past L1 (merge counts: the data was not there)."""
        lv = self.levels
        return lv["pb"] + lv["merge"] + lv["l2"] + lv["mem"] + lv["wb"]


class Profiler:
    """Per-simulation cycle-attribution context.

    Mirrors the ``Telemetry``/``Auditor`` opt-in pattern: construct one,
    pass it to ``simulate(..., profile=...)``, read
    :attr:`~Profiler.buckets` / :attr:`~Profiler.sites` /
    :meth:`to_dict` afterwards.  One Profiler profiles one run.
    """

    def __init__(self, trace_interval: int = 4096) -> None:
        #: CPI-stack bucket -> cycles charged (conserved; see module doc).
        self.buckets: dict[str, int] = dict.fromkeys(BUCKETS, 0)
        #: (pc, reason) -> cycles: the re-keyed stall attribution table.
        self.stall_attribution: dict[tuple[int, str], int] = {}
        #: pc -> :class:`SiteStats` for every executed demand load site.
        self.sites: dict[int, SiteStats] = {}
        self.registry = MetricRegistry()
        #: Hierarchy-level -> demand-load service latency histogram.
        self.latency: dict[str, Histogram] = {
            lvl: self.registry.histogram(
                f"profile.latency.{lvl}",
                LATENCY_BOUNDS,
                help=f"demand-load service latency at {lvl}",
            )
            for lvl in LEVELS
        }
        self.cycles = 0
        self.instructions = 0
        self.finalized = False
        #: Emit a Chrome counter-track sample every this many charged cycles
        #: (only when the attached telemetry carries a trace).
        self.trace_interval = trace_interval
        self._last_level = "l1"
        self._l2_source = "mem"  # set by MemoryHierarchy._l2_path
        self._cycle = 0          # last commit front the profiler saw
        self._since_emit = 0
        self._trace = None
        self._program: "Program | None" = None
        self._outcomes = None

    # ------------------------------------------------------------------
    # Wiring (called once by TimingModel.run)
    # ------------------------------------------------------------------

    def attach(self, model) -> None:
        """Bind to a :class:`~repro.cpu.timing.TimingModel` before its run:
        grabs the program (for op/tag annotation) and, when telemetry is
        present, its trace (counter tracks) and outcome tracker (per-site
        prefetch outcome mix)."""
        self._program = model.program
        tele = getattr(model, "telemetry", None)
        if tele is not None:
            self._trace = tele.trace
            self._outcomes = tele.outcomes

    # ------------------------------------------------------------------
    # Hierarchy-facing hooks
    # ------------------------------------------------------------------

    def note_access(self, level: str, latency: int) -> None:
        """Called by the hierarchy on every demand-load return path."""
        self._last_level = level
        self.latency[level].observe(latency)

    # ------------------------------------------------------------------
    # Core-facing hooks (hot path; keep them small)
    # ------------------------------------------------------------------

    def on_load(self, pc: int, latency: int) -> str:
        """Record a demand load at ``pc`` serviced by the hierarchy;
        returns the CPI-stack reason should this load bind commit."""
        level = self._last_level
        site = self.sites.get(pc)
        if site is None:
            site = self.sites[pc] = SiteStats(pc)
        site.count += 1
        site.latency_sum += latency
        site.levels[level] += 1
        return _LOAD_REASON[level]

    def on_forward(self, pc: int, latency: int) -> str:
        """A load satisfied by store-to-load forwarding (never left the
        core): counts as an L1-class access for the site mix."""
        site = self.sites.get(pc)
        if site is None:
            site = self.sites[pc] = SiteStats(pc)
        site.count += 1
        site.latency_sum += latency
        site.levels["l1"] += 1
        return "load.l1"

    def charge(self, pc: int, reason: str, delta: int, cycle: int) -> None:
        """Charge a commit-front advance of ``delta`` cycles at ``pc`` to
        one CPI-stack bucket; the timing model calls this for every
        committed instruction with a nonzero delta."""
        self.buckets[reason] += delta
        key = (pc, reason)
        sa = self.stall_attribution
        sa[key] = sa.get(key, 0) + delta
        if reason in _LOAD_SET:
            self.sites[pc].stall_cycles += delta
        self._cycle = cycle
        trace = self._trace
        if trace is not None:
            self._since_emit += delta
            if self._since_emit >= self.trace_interval:
                self._since_emit = 0
                self._emit_counters(cycle)

    # ------------------------------------------------------------------

    def _emit_counters(self, cycle: int) -> None:
        self._trace.counter("cpi_stack", cycle, dict(self.buckets))
        self._trace.counter(
            "load_level",
            cycle,
            {lvl: h.count for lvl, h in self.latency.items()},
        )

    def on_finish(self, model, instructions: int, cycles: int) -> None:
        """End of run: freeze totals and flush a final counter sample."""
        self.instructions = instructions
        self.cycles = cycles
        self.finalized = True
        if self._trace is not None:
            self._emit_counters(cycles)

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def audit_check(self, cycle: int | None = None) -> list[tuple[str, str]]:
        """Invariant sweep for :class:`repro.audit.Auditor`.

        * **cpi-conservation** — the CPI-stack buckets sum exactly to the
          commit front (at end of run: to total cycles).
        * **cpi-cycle-sync** — the profiler's view of the commit front
          matches the caller's (the charge stream missed a commit if not).
        * **cpi-nonnegative** — no bucket ever goes negative.
        """
        violations: list[tuple[str, str]] = []
        total = sum(self.buckets.values())
        if total != self._cycle:
            violations.append((
                "cpi-conservation",
                f"CPI-stack buckets sum to {total} != commit front "
                f"{self._cycle}",
            ))
        if cycle is not None and self._cycle != cycle:
            violations.append((
                "cpi-cycle-sync",
                f"profiler commit front {self._cycle} != model commit "
                f"front {cycle}",
            ))
        for bucket, value in self.buckets.items():
            if value < 0:
                violations.append((
                    "cpi-nonnegative",
                    f"bucket {bucket!r} went negative: {value}",
                ))
        return violations

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def _annotate(self, pc: int) -> tuple[str, str | None, bool]:
        prog = self._program
        if prog is None or pc >= len(prog.instructions):
            return "?", None, False
        si = prog.instructions[pc]
        return si.op.name, si.tag, si.tag == "lds"

    def to_dict(self) -> dict:
        """Schema-stable profile payload (embedded in
        ``SimResult.to_dict()`` and the ``repro.profile/1`` artifact)."""
        outcomes_by_pc = (
            self._outcomes.by_pc if self._outcomes is not None else {}
        )
        sites = []
        for site in sorted(
            self.sites.values(), key=lambda s: (-s.stall_cycles, s.pc)
        ):
            op, tag, lds = self._annotate(site.pc)
            row = {
                "pc": site.pc,
                "op": op,
                "tag": tag,
                "lds": lds,
                "count": site.count,
                "stalls": site.stall_cycles,
                "misses": site.misses,
                "latency_sum": site.latency_sum,
                "levels": dict(site.levels),
            }
            mix = outcomes_by_pc.get(site.pc)
            if mix:
                row["outcomes"] = dict(mix)
            sites.append(row)
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi_stack": dict(self.buckets),
            "sites": sites,
            "stall_attribution": [
                [pc, reason, cyc]
                for (pc, reason), cyc in sorted(
                    self.stall_attribution.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ],
            "latency": {lvl: h.to_dict() for lvl, h in self.latency.items()},
        }


# ----------------------------------------------------------------------
# Report rows (consumed by the CLI's table renderer and by tests)
# ----------------------------------------------------------------------


def cpi_stack_rows(profile: dict) -> list[dict]:
    """CPI-stack table rows from a :meth:`Profiler.to_dict` payload."""
    cycles = profile["cycles"] or 1
    insts = profile["instructions"] or 1
    stack = profile["cpi_stack"]
    rows = []
    for bucket in BUCKETS:
        cyc = stack.get(bucket, 0)
        rows.append({
            "bucket": bucket,
            "cycles": cyc,
            "share": round(cyc / cycles, 4),
            "cpi": round(cyc / insts, 4),
        })
    return rows


def hot_site_rows(profile: dict, top: int = 10) -> list[dict]:
    """Ranked hot-load-site rows (highest stall cycles first)."""
    cycles = profile["cycles"] or 1
    rows = []
    for rank, site in enumerate(profile["sites"][:top], start=1):
        count = site["count"] or 1
        label = site["op"]
        if site["tag"]:
            label += f".{site['tag']}"
        out = site.get("outcomes") or {}
        rows.append({
            "rank": rank,
            "pc": site["pc"],
            "site": label,
            "count": site["count"],
            "stalls": site["stalls"],
            "share": round(site["stalls"] / cycles, 4),
            "miss%": round(100.0 * site["misses"] / count, 1),
            "levels": "/".join(str(site["levels"][lvl]) for lvl in LEVELS),
            "outcomes": "/".join(f"{k}:{v}" for k, v in sorted(out.items())),
        })
    return rows


def latency_rows(profile: dict) -> list[dict]:
    """Per-hierarchy-level demand-load latency summary rows."""
    rows = []
    for lvl in LEVELS:
        h = profile["latency"][lvl]
        rows.append({
            "level": lvl,
            "count": h["count"],
            "mean": round(h["mean"], 2),
            "min": h["min"] if h["min"] is not None else "-",
            "max": h["max"] if h["max"] is not None else "-",
        })
    return rows
