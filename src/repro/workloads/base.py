"""Workload abstractions.

A workload is one Olden program re-implemented as a mini-ISA kernel.  Each
workload can be built in several *variants*:

* ``baseline``     — the unmodified program (annotated loads only, which
  are semantic no-ops without jump-pointer hardware);
* ``sw:<idiom>``   — software JPP: jump-pointer fields, queue-method
  creation code and explicit prefetch instructions;
* ``coop:<idiom>`` — cooperative JPP: same jump-pointers, but prefetches
  are single ``JPF`` instructions and chained prefetching is left to the
  dependence hardware.

Hardware JPP and DBP run the *baseline* program (they need no code
changes), so the run matrix of the paper's Figure 5 is:

====================  ==========  ============
scheme                variant     engine
====================  ==========  ============
base                  baseline    none
software              sw:idiom    software
cooperative           coop:idiom  cooperative
hardware              baseline    hardware
dbp                   baseline    dbp
====================  ==========  ============

Every build returns a :class:`BuiltProgram` whose ``check`` verifies the
kernel's functional result against a Python mirror computation, so the
prefetch variants are provably semantics-preserving.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import WorkloadError
from ..isa.interpreter import Interpreter
from ..isa.program import Program


@dataclass
class BuiltProgram:
    """An assembled workload variant plus its functional ground truth."""

    program: Program
    expected: dict[str, Any] = field(default_factory=dict)
    check: Callable[[Interpreter], None] | None = None

    def verify(self, interp: Interpreter) -> None:
        """Assert the finished interpreter state matches the mirror."""
        if self.check is not None:
            self.check(interp)


class Workload(abc.ABC):
    """One benchmark program; subclasses provide :meth:`build_variant`."""

    #: registry key, e.g. ``"health"``
    name: str = ""
    #: Table-1 structure description
    structure: str = ""
    #: Table-1 idiom assessment (idioms worth implementing)
    idioms: tuple[str, ...] = ()
    #: variants accepted by :meth:`build` besides ``baseline``
    variants: tuple[str, ...] = ("baseline",)
    #: paper-derived note on expected behaviour (used in docs/reports)
    expectation: str = ""

    def __init__(self, **params: Any) -> None:
        self.params = {**self.default_params(), **params}

    @classmethod
    def default_params(cls) -> dict[str, Any]:
        return {}

    @classmethod
    def test_params(cls) -> dict[str, Any]:
        """Small sizes for unit tests."""
        return {}

    def build(self, variant: str = "baseline") -> BuiltProgram:
        if variant not in self.variants:
            raise WorkloadError(
                f"{self.name}: unsupported variant {variant!r}; "
                f"available: {self.variants}"
            )
        return self.build_variant(variant)

    @abc.abstractmethod
    def build_variant(self, variant: str) -> BuiltProgram:
        """Assemble the program for ``variant``."""

    # Convenience -------------------------------------------------------

    def software_variants(self) -> list[str]:
        return [v for v in self.variants if v.startswith("sw:")]

    def cooperative_variants(self) -> list[str]:
        return [v for v in self.variants if v.startswith("coop:")]

    def best_variant(self, implementation: str) -> str | None:
        """The paper's chosen idiom for this benchmark (first listed)."""
        prefix = {"software": "sw:", "cooperative": "coop:"}[implementation]
        for v in self.variants:
            if v.startswith(prefix):
                return v
        return None


def parse_variant(variant: str) -> tuple[str, str | None]:
    """Split ``"sw:chain"`` into ``("sw", "chain")``; baseline has no idiom."""
    if variant == "baseline":
        return "baseline", None
    impl, __, idiom = variant.partition(":")
    if impl not in ("sw", "coop") or not idiom:
        raise WorkloadError(f"malformed variant name {variant!r}")
    return impl, idiom
