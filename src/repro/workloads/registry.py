"""Workload registry: name -> class, with lazy imports."""

from __future__ import annotations

from typing import Any

from ..errors import WorkloadError
from .base import Workload

_REGISTRY: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise WorkloadError(f"workload class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    from . import olden, spmv  # noqa: F401  (imports register all workloads)


def workload_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_workload(name: str, **params: Any) -> Workload:
    _ensure_loaded()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**params)


def workload_class(name: str) -> type[Workload]:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
