"""Workload registry: name -> class, with lazy imports.

Built on the shared :class:`repro.registry.Registry` — the same pattern
that names machines (:data:`repro.config.MACHINES`), prefetch engines
(:data:`repro.prefetch.engines.ENGINES`), and schemes
(:data:`repro.harness.schemes.SCHEME_REGISTRY`).
"""

from __future__ import annotations

from typing import Any

from ..errors import WorkloadError
from ..registry import Registry
from .base import Workload


def _load_workloads() -> None:
    from . import olden, spmv  # noqa: F401  (imports register all workloads)


WORKLOADS: Registry[type[Workload]] = Registry(
    "workload", error=WorkloadError, loader=_load_workloads
)


def register(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise WorkloadError(f"workload class {cls.__name__} has no name")
    return WORKLOADS.register(cls.name, cls)


def workload_names() -> list[str]:
    return WORKLOADS.names(sort=True)


def get_workload(name: str, **params: Any) -> Workload:
    return WORKLOADS.get(name)(**params)


def workload_class(name: str) -> type[Workload]:
    return WORKLOADS.get(name)
