"""Olden ``bh``: Barnes-Hut N-body force computation.

A fixed-depth quadtree over the unit square (see DESIGN.md for the
substitution note: the original builds an adaptive octree; this kernel
keeps the properties the paper relies on — a data-dependent tree walk per
body with an opening test, heavy floating-point work, and a body list as
the only regular backbone).  Per step each body walks the tree: a cell far
enough away (opening test ``s^2 < theta^2 * d^2``) contributes its
aggregate mass; otherwise its four children are visited.

The walk order depends on the body's coordinates, so the tree itself is
hard to prefetch even with jump-pointers ("data dependent traversals
(tree searches) are difficult to prefetch even using jump-pointers",
Section 2.3); only the body list is queue-jumped, and the paper's
characterization expects little overall benefit (bh's memory component is
small).

Layouts (bytes): cell {mass@0, cx@4, cy@8, child0..3@12..24} (28 -> class
32); body {x@0, y@4, mass@8, next@12[, jp@16]}.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    RA,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import lcg

C_MASS = 0
C_CX = 4
C_CY = 8
C_CHILD = 12     # four words
CELL_BYTES = 28  # -> 32-byte class
B_X = 0
B_Y = 4
B_MASS = 8
B_NEXT = 12
B_JP = 16
SEED0 = 0xB0D1E5
EPS = 0.05
THETA2 = 0.25


def _bodies(n: int) -> list[tuple[float, float, float]]:
    seed = SEED0
    out = []
    for __ in range(n):
        seed = lcg(seed)
        x = (seed >> 8) / float(1 << 24)
        seed = lcg(seed)
        y = (seed >> 8) / float(1 << 24)
        seed = lcg(seed)
        m = 0.5 + (seed >> 8) / float(1 << 24)
        out.append((x, y, m))
    return out


def mirror(n: int, depth: int) -> float:
    """Builds the same fixed-depth quadtree and sums all body forces."""
    bodies = _bodies(n)

    class Cell:
        __slots__ = ("mass", "cx", "cy", "kids")

        def __init__(self):
            self.mass = 0.0
            self.cx = 0.0
            self.cy = 0.0
            self.kids = None

    def make(level: int) -> Cell:
        c = Cell()
        if level < depth:
            c.kids = [make(level + 1) for __ in range(4)]
        return c

    root = make(0)
    for x, y, m in bodies:
        cell = root
        x0 = y0 = 0.0
        size = 1.0
        while True:
            cell.mass = cell.mass + m
            cell.cx = cell.cx + x * m
            cell.cy = cell.cy + y * m
            if cell.kids is None:
                break
            size = size * 0.5
            q = 0
            if x >= x0 + size:
                q += 1
                x0 = x0 + size
            if y >= y0 + size:
                q += 2
                y0 = y0 + size
            cell = cell.kids[q]

    def normalize(c: Cell) -> None:
        if c.mass > 0.0:
            c.cx = c.cx / c.mass
            c.cy = c.cy / c.mass
        if c.kids:
            for k in c.kids:
                normalize(k)

    normalize(root)

    # sizes per level: s^2 at level L is (1/2^L)^2
    def force(x: float, y: float, c: Cell, s2: float) -> float:
        if c.mass == 0.0:
            return 0.0
        dx = x - c.cx
        dy = y - c.cy
        d2 = dx * dx + dy * dy
        if c.kids is None or s2 < THETA2 * d2:
            return c.mass / (d2 + EPS)
        total = 0.0
        for k in c.kids:
            total = total + force(x, y, k, s2 * 0.25)
        return total

    total = 0.0
    for x, y, __ in bodies:
        total = total + force(x, y, root, 1.0)
    return total


@register
class BarnesHut(Workload):
    name = "bh"
    structure = "quadtree + body list; data-dependent walks, FP heavy"
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "small memory component and data-dependent tree walks: queue "
        "jumping on the body list gives little; software overhead can hurt"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"n": 96, "depth": 4, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"n": 12, "depth": 2, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        n: int = self.params["n"]
        depth: int = self.params["depth"]
        interval: int = self.params["interval"]
        bodies = _bodies(n)

        a = Assembler()
        res = a.word(0)
        body_head = a.word(0)
        s_x = a.array([b[0] for b in bodies])
        s_y = a.array([b[1] for b in bodies])
        s_m = a.array([b[2] for b in bodies])
        queue = SoftwareJumpQueue(a, interval, "ghq") if impl != "baseline" else None
        body_bytes = 20 if impl != "baseline" else 16

        a.label("main")
        # build tree
        a.li(A0, 0)
        a.jal("mkcell")
        a.mov(S5, V0)  # root

        # build body list (prepend n-1..0 so list order = index order) and
        # insert masses into the tree path
        a.li(S0, n - 1)
        a.label("b_loop")
        a.blt(S0, ZERO, "normalize")
        a.alloc(S1, ZERO, body_bytes)
        a.slli(T0, S0, 2)
        a.addi(T1, T0, s_x)
        a.lw(S2, T1, 0)
        a.sw(S2, S1, B_X)
        a.addi(T1, T0, s_y)
        a.lw(S3, T1, 0)
        a.sw(S3, S1, B_Y)
        a.addi(T1, T0, s_m)
        a.lw(S4, T1, 0)
        a.sw(S4, S1, B_MASS)
        a.li(T2, body_head)
        a.lw(T3, T2, 0)
        a.sw(T3, S1, B_NEXT)
        a.sw(S1, T2, 0)
        if queue is not None:
            queue.update(S1, B_JP, T0, T1, T2, reverse=True)
        # insert into tree: walk from root, accumulating mass/cm
        a.mov(T0, S5)        # cell
        a.fli(T1, 0.0)       # x0
        a.fli(T2, 0.0)       # y0
        a.fli(T3, 1.0)       # size
        a.label("ins_loop")
        a.lw(T4, T0, C_MASS, pad=32, tag="lds")
        a.fadd(T4, T4, S4)
        a.sw(T4, T0, C_MASS)
        a.fmul(T4, S2, S4)
        a.lw(S6, T0, C_CX, pad=32, tag="lds")
        a.fadd(S6, S6, T4)
        a.sw(S6, T0, C_CX)
        a.fmul(T4, S3, S4)
        a.lw(S6, T0, C_CY, pad=32, tag="lds")
        a.fadd(S6, S6, T4)
        a.sw(S6, T0, C_CY)
        a.lw(S6, T0, C_CHILD, pad=32, tag="lds")  # child0 (null => leaf)
        a.beqz(S6, "ins_done")
        a.fli(S7, 0.5)
        a.fmul(T3, T3, S7)
        a.li(S6, 0)          # quadrant
        a.fadd(S7, T1, T3)   # x0 + size
        a.flt(V0, S2, S7)
        a.bnez(V0, "ins_ylow")
        a.addi(S6, S6, 1)
        a.mov(T1, S7)
        a.label("ins_ylow")
        a.fadd(S7, T2, T3)
        a.flt(V0, S3, S7)
        a.bnez(V0, "ins_pick")
        a.addi(S6, S6, 2)
        a.mov(T2, S7)
        a.label("ins_pick")
        a.slli(S6, S6, 2)
        a.add(S6, S6, T0)
        a.lw(T0, S6, C_CHILD, pad=32, tag="lds")
        a.j("ins_loop")
        a.label("ins_done")
        a.addi(S0, S0, -1)
        a.j("b_loop")

        # normalize centres of mass
        a.label("normalize")
        a.mov(A0, S5)
        a.jal("norm")

        # force sweep over the body list
        a.li(T0, body_head)
        a.lw(S1, T0, 0, tag="lds")
        a.fli(S7, 0.0)       # total force
        a.label("f_loop")
        a.beqz(S1, "end")
        if impl == "sw":
            a.lw(T4, S1, B_JP, tag="lds")
            a.pf(T4, 0)
        elif impl == "coop":
            a.jpf(S1, B_JP)
        a.lw(S2, S1, B_X, pad=32 if impl != "baseline" else 16, tag="lds")
        a.lw(S3, S1, B_Y, pad=32 if impl != "baseline" else 16, tag="lds")
        a.mov(A0, S5)
        a.fli(S4, 1.0)       # s^2 at root
        a.jal("force")
        a.fadd(S7, S7, V0)
        a.lw(S1, S1, B_NEXT, pad=32 if impl != "baseline" else 16, tag="lds")
        a.j("f_loop")
        a.label("end")
        a.li(T0, res)
        a.sw(S7, T0, 0)
        a.halt()

        # ---- mkcell(A0=level) -> cell ----------------------------------
        a.func("mkcell", S0, S1, S2)
        a.alloc(S0, ZERO, CELL_BYTES)
        a.li(T0, depth)
        a.bge(A0, T0, "mk_leaf")
        a.addi(S1, A0, 1)
        a.li(S2, 0)
        a.label("mk_kids")
        a.mov(A0, S1)
        a.jal("mkcell")
        a.slli(T1, S2, 2)
        a.add(T1, T1, S0)
        a.sw(V0, T1, C_CHILD)
        a.addi(S2, S2, 1)
        a.slti(T2, S2, 4)
        a.bnez(T2, "mk_kids")
        a.label("mk_leaf")
        a.mov(V0, S0)
        a.leave(S0, S1, S2)

        # ---- norm(A0=cell) ---------------------------------------------
        a.func("norm", S0, S1)
        a.mov(S0, A0)
        a.lw(T0, S0, C_MASS, pad=32, tag="lds")
        a.feq(T1, T0, ZERO)
        a.bnez(T1, "n_kids")
        a.lw(T2, S0, C_CX, pad=32, tag="lds")
        a.fdiv(T2, T2, T0)
        a.sw(T2, S0, C_CX)
        a.lw(T2, S0, C_CY, pad=32, tag="lds")
        a.fdiv(T2, T2, T0)
        a.sw(T2, S0, C_CY)
        a.label("n_kids")
        a.lw(T0, S0, C_CHILD, pad=32, tag="lds")
        a.beqz(T0, "n_done")
        a.li(S1, 0)
        a.label("n_loop")
        a.slli(T1, S1, 2)
        a.add(T1, T1, S0)
        a.lw(A0, T1, C_CHILD, pad=32, tag="lds")
        a.jal("norm")
        a.addi(S1, S1, 1)
        a.slti(T2, S1, 4)
        a.bnez(T2, "n_loop")
        a.label("n_done")
        a.leave(S0, S1)

        # ---- force(A0=cell, S2=x, S3=y, S4=s^2) -> V0 -------------------
        # S2/S3 are global for the current body; S4 is saved/scaled around
        # recursive calls.
        a.label("force")
        a.push(RA, S0, S1)
        a.mov(S0, A0)
        a.lw(T0, S0, C_MASS, pad=32, tag="lds")
        a.feq(T1, T0, ZERO)
        a.beqz(T1, "f_live")
        a.fli(V0, 0.0)
        a.pop(RA, S0, S1)
        a.ret()
        a.label("f_live")
        a.lw(T1, S0, C_CX, pad=32, tag="lds")
        a.fsub(T1, S2, T1)
        a.lw(T2, S0, C_CY, pad=32, tag="lds")
        a.fsub(T2, S3, T2)
        a.fmul(T1, T1, T1)
        a.fmul(T2, T2, T2)
        a.fadd(T1, T1, T2)   # d^2
        a.lw(T3, S0, C_CHILD, pad=32, tag="lds")
        a.beqz(T3, "f_far")  # leaf: use aggregate
        a.fli(T2, THETA2)
        a.fmul(T2, T2, T1)
        a.flt(T4, S4, T2)
        a.beqz(T4, "f_near")
        a.label("f_far")
        a.fli(T2, EPS)
        a.fadd(T1, T1, T2)
        a.fdiv(V0, T0, T1)   # mass / (d^2 + eps)
        a.pop(RA, S0, S1)
        a.ret()
        a.label("f_near")
        a.push(S4)
        a.fli(T2, 0.25)
        a.fmul(S4, S4, T2)   # child s^2
        a.fli(S1, 0.0)
        a.li(T0, 0)
        a.label("fk_loop")
        a.push(T0)
        a.slli(T1, T0, 2)
        a.add(T1, T1, S0)
        a.lw(A0, T1, C_CHILD, pad=32, tag="lds")
        a.jal("force")
        a.fadd(S1, S1, V0)
        a.pop(T0)
        a.addi(T0, T0, 1)
        a.slti(T1, T0, 4)
        a.bnez(T1, "fk_loop")
        a.pop(S4)
        a.mov(V0, S1)
        a.pop(RA, S0, S1)
        a.ret()

        program = a.assemble(f"bh[{variant}]")
        expected = mirror(n, depth)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res)
            assert got == expected, f"bh: force total {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"force_total": expected},
            check=check,
        )
