"""Olden ``health``: hierarchical health-care system simulation.

The paper's running example (Figure 2).  A four-level tree of hospitals
(branching factor 4); every hospital owns a *waiting list* — a linked list
of list nodes, each pointing at a patient record (a classic
"backbone-and-ribs" structure).  Every simulated iteration visits the
hospitals bottom-up and runs ``check_patients_waiting``: each waiting
patient's time is bumped and, pseudo-randomly (~1/32), the patient is
spliced out and moved up to the parent hospital (or discharged at the
root).  The lists are therefore *dynamic*, and the program makes *many*
traversals — the paper's sweet spot for chain jumping and for hardware JPP.

All four idioms are implemented (Figure 2 b-e):

* ``queue``  — jump-pointer to the list node *I* hops ahead only.
* ``full``   — jump-pointers to the future node *and* its patient record.
* ``chain``  — jump-pointer to the future node; the patient is prefetched
  through it (software pays the serialization artifact; cooperative leaves
  it to the dependence hardware).
* ``root``   — one jump-pointer per hospital to the *next* hospital's
  list root; the next list is chain-prefetched while the current one is
  processed (paper: health's lists are too long for this to win).

Layouts: list node ``patient@0, forward@4`` allocated at 12 bytes (16-byte
class; software jump-pointers live at +8/+12, the hardware slot is the
last word, +12).  Patient record ``time@0, seed@4`` (12 bytes).  Hospital
records are static: ``waiting@0, parent@4, next_in_visit_order@8``.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    T8,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import emit_lcg, lcg

NODE_CLASS = 16
PATIENT_CLASS = 32
OFF_PATIENT = 0
OFF_FORWARD = 4
OFF_JP = 8       # software jump-pointer (queue/chain/full)
OFF_JPP = 12     # full jumping: jump-pointer to the future patient
HOSP_STRIDE = 16
H_WAITING = 0
H_PARENT = 4
H_NEXT = 8

SEED0 = 0x2545F491
MASK32 = 0xFFFFFFFF
TREAT_MUL = 2654435761


def _num_hospitals(levels: int, branching: int) -> int:
    return sum(branching**k for k in range(levels))


def _treat(time: int, seed: int) -> int:
    """The per-patient "treatment" computation (Olden health updates
    several per-patient statistics; this stands in for that work).  Must
    stay in lock-step with the assembly emitted in ``_emit_treat``."""
    w = (time * TREAT_MUL) & MASK32
    w ^= w >> 13
    w = (w + seed) & MASK32
    w ^= (w << 7) & MASK32
    w = (w * TREAT_MUL) & MASK32
    w ^= w >> 11
    return w


def mirror(
    levels: int, branching: int, npat: int, iterations: int
) -> tuple[int, int, int]:
    """Python mirror of the kernel; returns (total_time, discharged, checksum)."""
    nh = _num_hospitals(levels, branching)
    hospitals: list[list[list[int]]] = [[] for __ in range(nh)]
    seed = SEED0
    for i in range(nh):
        for __ in range(npat):
            seed = lcg(seed)
            hospitals[i].insert(0, [0, seed])
    total_time = 0
    discharged = 0
    checksum = 0
    for __ in range(iterations):
        for i in range(nh - 1, -1, -1):
            lst = hospitals[i]
            k = 0
            while k < len(lst):
                p = lst[k]
                p[0] += 1
                total_time += 1
                p[1] = lcg(p[1])
                checksum = (checksum + _treat(p[0], p[1])) & MASK32
                if (p[1] >> 16) & 31 == 0:
                    lst.pop(k)
                    if i:
                        hospitals[(i - 1) // branching].insert(0, p)
                    else:
                        discharged += 1
                else:
                    k += 1
    return total_time, discharged, checksum


@register
class Health(Workload):
    name = "health"
    structure = "hospital tree; dynamic waiting lists with patient ribs, many traversals"
    idioms = ("chain", "root", "full", "queue")
    variants = (
        "baseline",
        "sw:chain",
        "sw:full",
        "sw:queue",
        "sw:root",
        "coop:chain",
        "coop:full",
        "coop:queue",
        "coop:root",
    )
    expectation = (
        "chain jumping wins (lists too long for root jumping); hardware "
        "JPP excels because the program makes many traversals"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {
            "levels": 4,
            "branching": 4,
            "npat": 8,
            "iterations": 12,
            "interval": 8,
        }

    @classmethod
    def test_params(cls) -> dict:
        return {"levels": 3, "branching": 3, "npat": 3, "iterations": 3, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        levels: int = self.params["levels"]
        branching: int = self.params["branching"]
        npat: int = self.params["npat"]
        iterations: int = self.params["iterations"]
        interval: int = self.params["interval"]
        nh = _num_hospitals(levels, branching)
        node_bytes = 16 if idiom == "full" else 12

        a = Assembler()
        res_time = a.word(0)
        res_disch = a.word(0)
        res_chk = a.word(0)
        hbase = a.space(4 * nh)
        for i in range(nh):
            base = hbase + HOSP_STRIDE * i
            if i:
                a.poke(base + H_PARENT, hbase + HOSP_STRIDE * ((i - 1) // branching))
                a.poke(base + H_NEXT, hbase + HOSP_STRIDE * (i - 1))

        use_queue = idiom in ("queue", "full", "chain")
        queue = (
            SoftwareJumpQueue(a, interval, "hjq") if impl != "baseline" and use_queue
            else None
        )

        # ---------------- build phase ----------------
        a.label("main")
        a.li(S7, SEED0)
        a.li(S0, 0)  # hospital index
        a.label("b_hosp")
        a.li(T0, nh)
        a.bge(S0, T0, "sim_start")
        a.slli(S2, S0, 4)
        a.addi(S2, S2, hbase)  # &hospital[i]
        a.li(S1, npat)
        a.label("b_pat")
        a.beqz(S1, "b_next_hosp")
        # Patient records are 20 bytes (time, seed, id, history...) -> the
        # 32-byte class, a *different* region than the 16-byte list nodes,
        # so backbone and rib lines are distinct (as with real records).
        a.alloc(T0, ZERO, 20)  # patient record
        emit_lcg(a, S7, T1)
        a.sw(S7, T0, 4)        # patient->seed
        a.sw(ZERO, T0, 0)      # patient->time = 0
        a.alloc(T1, ZERO, node_bytes)  # list node
        a.sw(T0, T1, OFF_PATIENT)
        a.lw(T2, S2, H_WAITING)
        a.sw(T2, T1, OFF_FORWARD)      # node->forward = head
        a.sw(T1, S2, H_WAITING)        # head = node
        a.addi(S1, S1, -1)
        a.j("b_pat")
        a.label("b_next_hosp")
        a.addi(S0, S0, 1)
        a.j("b_hosp")

        # ---------------- simulation ----------------
        a.label("sim_start")
        a.li(S3, 0)  # total time increments
        a.li(S4, 0)  # discharged
        a.li(T8, 0)  # treatment checksum
        a.li(S1, iterations)
        a.label("iter_loop")
        a.beqz(S1, "end")
        a.li(S0, nh - 1)
        a.label("hosp_loop")
        a.slli(S2, S0, 4)
        a.addi(S2, S2, hbase)  # &hospital[i]
        if impl != "baseline":
            # Prefetch the next hospital record (static stride); its head
            # pointer would otherwise serialize entry into the next list.
            a.pf(S2, -HOSP_STRIDE)

        # Root jumping: prefetch the next hospital's list while this one
        # is processed (Figure 2e).
        if idiom == "root":
            skip_rj = a.newlabel("rj_pre")
            a.lw(T5, S2, H_NEXT)
            a.li(S5, 0)
            if impl == "coop":
                a.beqz(T5, skip_rj)
                a.jpf(T5, H_WAITING)
            else:
                a.beqz(T5, skip_rj)
                a.lw(S5, T5, H_WAITING, tag="lds")  # j = next->waiting
                a.pf(S5, 0)
            a.label(skip_rj)
            # NOTE: S5 is the root-jumping cursor here, so the splice slot
            # is tracked in T7 (reloaded per step) instead.
            prev_reg = T7
        else:
            prev_reg = S5

        a.mov(prev_reg, S2)  # prev slot = &hospital.waiting
        a.lw(S6, S2, H_WAITING, tag="lds")
        a.label("node_loop")
        a.beqz(S6, "hosp_done")

        # -- idiom-specific prefetching at the top of the loop body --
        patient_in_t0 = False
        if impl != "baseline":
            if idiom == "queue":
                if impl == "sw":
                    a.lw(T5, S6, OFF_JP, tag="lds")
                    a.pf(T5, 0)
                else:
                    a.jpf(S6, OFF_JP)
                queue.update(S6, OFF_JP, T4, T5, T6)
            elif idiom == "full":
                if impl == "sw":
                    a.lw(T5, S6, OFF_JP, tag="lds")
                    a.pf(T5, 0)
                    a.lw(T5, S6, OFF_JPP, tag="lds")
                    a.pf(T5, 0)
                else:
                    a.jpf(S6, OFF_JP)
                    a.jpf(S6, OFF_JPP)
                a.lw(T0, S6, OFF_PATIENT, pad=NODE_CLASS, tag="lds")
                patient_in_t0 = True
                queue.update(S6, OFF_JP, T4, T5, T6, extra=[(OFF_JPP, T0)])
            elif idiom == "chain":
                if impl == "sw":
                    skip_cj = a.newlabel("cj")
                    a.lw(T5, S6, OFF_JP, tag="lds")
                    a.beqz(T5, skip_cj)
                    a.pf(T5, 0)
                    # Chained prefetch: a real load of the future node's
                    # patient pointer (the serialization artifact), then a
                    # dependent non-binding prefetch.
                    a.lw(T6, T5, OFF_PATIENT, tag="lds")
                    a.pf(T6, 0)
                    a.label(skip_cj)
                else:
                    a.jpf(S6, OFF_JP)
                queue.update(S6, OFF_JP, T4, T5, T6)
            elif idiom == "root" and impl == "sw":
                skip_rn = a.newlabel("rj_node")
                a.beqz(S5, skip_rn)
                a.lw(T5, S5, OFF_PATIENT, tag="lds")  # artifact load
                a.pf(T5, 0)
                a.lw(T6, S5, OFF_FORWARD, tag="lds")  # artifact load
                a.pf(T6, 0)
                a.mov(S5, T6)  # advance the cursor down the next list
                a.label(skip_rn)

        # -- check one patient --
        if not patient_in_t0:
            a.lw(T0, S6, OFF_PATIENT, pad=NODE_CLASS, tag="lds")
        a.lw(T1, T0, 0, pad=PATIENT_CLASS, tag="lds")  # patient->time
        a.addi(T1, T1, 1)
        a.sw(T1, T0, 0)
        a.addi(S3, S3, 1)
        a.lw(T2, T0, 4)  # patient->seed
        emit_lcg(a, T2, T3)
        a.sw(T2, T0, 4)
        # Treatment computation (kept in lock-step with _treat above).
        a.li(T4, TREAT_MUL)
        a.mul(T3, T1, T4)
        a.andi(T3, T3, MASK32)
        a.srli(T4, T3, 13)
        a.xor(T3, T3, T4)
        a.add(T3, T3, T2)
        a.andi(T3, T3, MASK32)
        a.slli(T4, T3, 7)
        a.andi(T4, T4, MASK32)
        a.xor(T3, T3, T4)
        a.li(T4, TREAT_MUL)
        a.mul(T3, T3, T4)
        a.andi(T3, T3, MASK32)
        a.srli(T4, T3, 11)
        a.xor(T3, T3, T4)
        a.add(T8, T8, T3)
        a.andi(T8, T8, MASK32)
        a.srli(T3, T2, 16)
        a.andi(T3, T3, 31)
        a.bnez(T3, "stay")
        # splice out
        a.lw(T4, S6, OFF_FORWARD, pad=NODE_CLASS, tag="lds")
        a.sw(T4, prev_reg, 0)
        a.beqz(S0, "discharge")
        a.lw(T5, S2, H_PARENT)     # move to parent hospital
        a.lw(T6, T5, H_WAITING, tag="lds")
        a.sw(T6, S6, OFF_FORWARD)
        a.sw(S6, T5, H_WAITING)
        a.mov(S6, T4)
        a.j("node_loop")
        a.label("discharge")
        a.addi(S4, S4, 1)
        a.mov(S6, T4)
        a.j("node_loop")
        a.label("stay")
        a.addi(prev_reg, S6, OFF_FORWARD)
        a.lw(S6, S6, OFF_FORWARD, pad=NODE_CLASS, tag="lds")
        a.j("node_loop")

        a.label("hosp_done")
        a.addi(S0, S0, -1)
        a.bge(S0, ZERO, "hosp_loop")
        a.addi(S1, S1, -1)
        a.j("iter_loop")

        a.label("end")
        a.li(A0, res_time)
        a.sw(S3, A0, 0)
        a.li(A0, res_disch)
        a.sw(S4, A0, 0)
        a.li(A0, res_chk)
        a.sw(T8, A0, 0)
        a.halt()

        program = a.assemble(f"health[{variant}]")
        exp_time, exp_disch, exp_chk = mirror(levels, branching, npat, iterations)

        def check(interp: Interpreter) -> None:
            got_t = interp.memory.load(res_time)
            got_d = interp.memory.load(res_disch)
            got_c = interp.memory.load(res_chk)
            assert got_t == exp_time, f"health: time {got_t} != {exp_time}"
            assert got_d == exp_disch, f"health: discharged {got_d} != {exp_disch}"
            assert got_c == exp_chk, f"health: checksum {got_c:#x} != {exp_chk:#x}"

        return BuiltProgram(
            program=program,
            expected={
                "total_time": exp_time,
                "discharged": exp_disch,
                "checksum": exp_chk,
            },
            check=check,
        )
