"""Olden ``bisort``: bitonic sort over a binary tree (volatile structure).

The paper uses bisort as a *negative* example: "bisort and tsp are both
highly dynamic structures for which any jump-pointer scheme will not
remain valid for long enough to be useful.  In fact, explicit jump-pointer
prefetching has an adverse effect on bisort, as traversal order changes
rapidly and any jump-pointer prefetches become purely overhead"
(Section 4.2).

The kernel preserves exactly that property (see DESIGN.md for the
substitution note): a large binary tree whose *child pointers are swapped*
data-dependently at every round (the structural flavour of bisort's
subtree exchanges), combined with a value compare-exchange step.  Each
round's traversal order therefore differs from the previous one, so
queue-installed jump-pointers go stale immediately.  The verification
checksum is traversal-order-dependent, so a wrong swap anywhere changes
the result.

Node layout (bytes): {value@0, left@4, right@8[, jp@12]} (16-byte class).
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    A1,
    RA,
    S0,
    S1,
    S2,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import lcg

OFF_VALUE = 0
OFF_LEFT = 4
OFF_RIGHT = 8
OFF_JP = 12
NODE_CLASS = 16
SEED0 = 0x5EED1E55
MASK32 = 0xFFFFFFFF


def mirror(levels: int, rounds: int) -> tuple[int, int]:
    """Returns (checksum of the final round, value sum).  Node = [v, l, r]."""
    seed = SEED0

    def build(level: int):
        nonlocal seed
        seed = lcg(seed)
        node = [seed & 0xFFFF, None, None]
        if level > 1:
            node[1] = build(level - 1)
            node[2] = build(level - 1)
        return node

    root = build(levels)

    def shuffle(node, rnd, collect):
        nonlocal checksum
        if node is None:
            return
        v = node[0]
        checksum = (checksum + v) if collect else checksum
        left, right = node[1], node[2]
        if left is not None and right is not None:
            if (v + rnd) & 1:
                node[1], node[2] = right, left
            lval = node[1][0]
            if lval < v:
                node[0], node[1][0] = lval, v
        shuffle(node[1], rnd, collect)
        shuffle(node[2], rnd, collect)

    checksum = 0
    for r in range(rounds):
        checksum = 0
        shuffle(root, r, True)
    checksum &= MASK32

    def total(node):
        if node is None:
            return 0
        return node[0] + total(node[1]) + total(node[2])

    return checksum, total(root)


@register
class Bisort(Workload):
    name = "bisort"
    structure = "large binary tree, traversal order mutates every round (volatile)"
    idioms = ()
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "jump-pointers go stale immediately: software/cooperative JPP is a "
        "net slowdown, hardware JPP is useless but harmless"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"levels": 11, "rounds": 4, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"levels": 5, "rounds": 2, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        levels: int = self.params["levels"]
        rounds: int = self.params["rounds"]
        interval: int = self.params["interval"]

        a = Assembler()
        res_chk = a.word(0)
        queue = SoftwareJumpQueue(a, interval, "bjq") if impl != "baseline" else None
        node_bytes = 16 if impl != "baseline" else 12

        a.label("main")
        a.li(S7, SEED0)
        a.li(A0, levels)
        a.jal("build")
        a.mov(S5, V0)
        a.li(S6, 0)          # round
        a.label("rounds")
        a.li(T0, rounds)
        a.bge(S6, T0, "end")
        a.li(S2, 0)          # checksum accumulator (reset per round)
        a.mov(A0, S5)
        a.mov(A1, S6)
        a.jal("shuffle")
        a.addi(S6, S6, 1)
        a.j("rounds")
        a.label("end")
        a.andi(S2, S2, MASK32)
        a.li(T0, res_chk)
        a.sw(S2, T0, 0)
        a.halt()

        # ---- build(level) -> node -------------------------------------
        a.func("build", S0, S1)
        from .common import emit_lcg
        emit_lcg(a, S7, T0)
        a.alloc(S0, ZERO, node_bytes)
        a.andi(T0, S7, 0xFFFF)
        a.sw(T0, S0, OFF_VALUE)
        a.li(T1, 1)
        a.bne(A0, T1, "b_inner")
        a.mov(V0, S0)
        a.leave(S0, S1)
        a.label("b_inner")
        a.addi(S1, A0, -1)
        a.mov(A0, S1)
        a.jal("build")
        a.sw(V0, S0, OFF_LEFT)
        a.mov(A0, S1)
        a.jal("build")
        a.sw(V0, S0, OFF_RIGHT)
        a.mov(V0, S0)
        a.leave(S0, S1)

        # ---- shuffle(A0=node, A1=round); checksum accumulates in S2 ----
        a.label("shuffle")
        a.bnez(A0, "s_rec")
        a.ret()
        a.label("s_rec")
        a.push(RA, S0, S1)
        if impl == "sw":
            a.lw(T0, A0, OFF_JP, tag="lds")
            a.pf(T0, 0)
        elif impl == "coop":
            a.jpf(A0, OFF_JP)
        if queue is not None:
            queue.update(A0, OFF_JP, T0, T1, T2)
        a.mov(S0, A0)
        a.lw(T0, S0, OFF_VALUE, pad=NODE_CLASS, tag="lds")
        a.add(S2, S2, T0)
        a.lw(T1, S0, OFF_LEFT, pad=NODE_CLASS, tag="lds")
        a.lw(T2, S0, OFF_RIGHT, pad=NODE_CLASS, tag="lds")
        a.beqz(T1, "s_kids")
        a.beqz(T2, "s_kids")
        # data-dependent child swap
        a.add(S1, T0, A1)
        a.andi(S1, S1, 1)
        a.beqz(S1, "s_noswap")
        a.sw(T2, S0, OFF_LEFT)
        a.sw(T1, S0, OFF_RIGHT)
        a.label("s_noswap")
        # compare-exchange with the (possibly new) left child
        a.lw(T1, S0, OFF_LEFT, pad=NODE_CLASS, tag="lds")
        a.lw(S1, T1, OFF_VALUE, pad=NODE_CLASS, tag="lds")
        a.bge(S1, T0, "s_kids")
        a.sw(S1, S0, OFF_VALUE)
        a.sw(T0, T1, OFF_VALUE)
        a.label("s_kids")
        a.lw(A0, S0, OFF_LEFT, pad=NODE_CLASS, tag="lds")
        a.jal("shuffle")
        a.lw(A0, S0, OFF_RIGHT, pad=NODE_CLASS, tag="lds")
        a.jal("shuffle")
        a.pop(RA, S0, S1)
        a.ret()

        program = a.assemble(f"bisort[{variant}]")
        exp_chk, exp_total = mirror(levels, rounds)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res_chk)
            assert got == exp_chk, f"bisort: checksum {got} != {exp_chk}"

        return BuiltProgram(
            program=program,
            expected={"checksum": exp_chk, "value_total": exp_total},
            check=check,
        )
