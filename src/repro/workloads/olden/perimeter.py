"""Olden ``perimeter``: perimeter of a region stored as a quadtree.

A quadtree is built once (pseudo-random subdivision down to ``max_level``)
and traversed once to sum the boundary contribution of the black leaves.
The substitution from the original (image-adjacency neighbour finding) is
documented in DESIGN.md: what the paper uses perimeter for is a
*single-pass* recursive traversal of a large tree, which is exactly what
this kernel preserves.

The single pass is the interesting property: software/cooperative queue
jumping installs jump-pointers *during creation* (allocation order equals
the later preorder traversal), so the one traversal is prefetched.
Hardware JPP needs a first traversal to install jump-pointers and so wins
nothing ("for single pass programs like perimeter and mst, hardware JPP
is useless", Section 4.2).

Node layout (bytes): {color@0, level@4, child0..3@8..20[, jp@24]} — 24
bytes baseline, 28 with a software jump-pointer; both in the 32-byte
class, so the hardware slot exists at +28.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    RA,
    S0,
    S1,
    S2,
    S3,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import emit_lcg, lcg

OFF_COLOR = 0
OFF_LEVEL = 4
OFF_CHILD = 8       # four words
OFF_JP = 24
NODE_CLASS = 32
SEED0 = 0x0BADCAFE


def mirror(max_level: int) -> tuple[int, int]:
    """Returns (perimeter, node_count); replicates the build/traversal."""
    seed = SEED0

    def build(level: int):
        nonlocal seed
        seed = lcg(seed)
        s = seed
        if level == 0 or (s >> 16) & 3 == 0:
            return ("leaf", s & 1, level)
        children = [build(level - 1) for __ in range(4)]
        return ("node", children, level)

    root = build(max_level)
    count = 0

    def walk(n):
        nonlocal count
        count += 1
        if n[0] == "leaf":
            return (1 << n[2]) if n[1] else 0
        total = 0
        for c in n[1]:
            total += walk(c)
        return total

    return walk(root), count


@register
class Perimeter(Workload):
    name = "perimeter"
    structure = "large quadtree, built once, traversed once (single pass)"
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "software/cooperative queue jumping (installed at creation) "
        "prefetches the single traversal; hardware JPP is useless"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"max_level": 7, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"max_level": 4, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        max_level: int = self.params["max_level"]
        interval: int = self.params["interval"]

        a = Assembler()
        res_perim = a.word(0)
        seed_word = a.word(SEED0)
        queue = SoftwareJumpQueue(a, interval, "pjq") if impl != "baseline" else None
        node_bytes = 28 if impl != "baseline" else 24

        a.label("main")
        a.li(T0, seed_word)
        a.lw(S7, T0, 0)          # global LCG seed lives in S7
        a.li(A0, max_level)
        a.jal("build")
        a.mov(A0, V0)
        a.jal("perim")
        a.li(T0, res_perim)
        a.sw(V0, T0, 0)
        a.halt()

        # ---- build(level) -> node ------------------------------------
        a.func("build", S0, S1, S2)
        a.mov(S1, A0)            # level
        emit_lcg(a, S7, T0)      # advance seed once per node
        a.alloc(S0, ZERO, node_bytes)
        if queue is not None:
            queue.update(S0, OFF_JP, T0, T1, T2)
        a.sw(S1, S0, OFF_LEVEL)
        a.beqz(S1, "b_leaf")
        a.srli(T0, S7, 16)
        a.andi(T0, T0, 3)
        a.bnez(T0, "b_inner")
        a.label("b_leaf")
        a.andi(T0, S7, 1)
        a.sw(T0, S0, OFF_COLOR)  # leaf: color from seed; children stay null
        a.mov(V0, S0)
        a.leave(S0, S1, S2)
        a.label("b_inner")
        a.li(T0, -1)
        a.sw(T0, S0, OFF_COLOR)  # internal marker
        a.li(S2, 0)
        a.label("b_kids")
        a.addi(A0, S1, -1)
        a.jal("build")
        a.slli(T1, S2, 2)
        a.add(T1, T1, S0)
        a.sw(V0, T1, OFF_CHILD)
        a.addi(S2, S2, 1)
        a.slti(T2, S2, 4)
        a.bnez(T2, "b_kids")
        a.mov(V0, S0)
        a.leave(S0, S1, S2)

        # ---- perim(node) -> contribution ------------------------------
        a.label("perim")
        a.bnez(A0, "p_rec")
        a.li(V0, 0)
        a.ret()
        a.label("p_rec")
        a.push(RA, S0, S1, S2)
        if impl == "sw":
            a.lw(T0, A0, OFF_JP, tag="lds")
            a.pf(T0, 0)
        elif impl == "coop":
            a.jpf(A0, OFF_JP)
        a.mov(S0, A0)
        a.lw(T0, S0, OFF_COLOR, pad=NODE_CLASS, tag="lds")
        a.li(T1, -1)
        a.beq(T0, T1, "p_inner")
        # leaf: contribution = color ? 1 << level : 0
        a.beqz(T0, "p_zero")
        a.lw(T2, S0, OFF_LEVEL, pad=NODE_CLASS, tag="lds")
        a.li(V0, 1)
        a.sll(V0, V0, T2)
        a.pop(RA, S0, S1, S2)
        a.ret()
        a.label("p_zero")
        a.li(V0, 0)
        a.pop(RA, S0, S1, S2)
        a.ret()
        a.label("p_inner")
        a.li(S1, 0)   # accumulator
        a.li(S2, 0)   # child index
        a.label("p_kids")
        a.slli(T1, S2, 2)
        a.add(T1, T1, S0)
        a.lw(A0, T1, OFF_CHILD, pad=NODE_CLASS, tag="lds")
        a.jal("perim")
        a.add(S1, S1, V0)
        a.addi(S2, S2, 1)
        a.slti(T2, S2, 4)
        a.bnez(T2, "p_kids")
        a.mov(V0, S1)
        a.pop(RA, S0, S1, S2)
        a.ret()

        program = a.assemble(f"perimeter[{variant}]")
        expected, count = mirror(max_level)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res_perim)
            assert got == expected, f"perimeter: {got} != {expected}"

        return BuiltProgram(
            program=program,
            expected={"perimeter": expected, "nodes": count},
            check=check,
        )
