"""The ten Olden benchmark kernels (importing registers them)."""

from . import (  # noqa: F401
    bh,
    bisort,
    em3d,
    health,
    mst,
    perimeter,
    power,
    treeadd,
    tsp,
    voronoi,
)

__all__ = [
    "bh", "bisort", "em3d", "health", "mst",
    "perimeter", "power", "treeadd", "tsp", "voronoi",
]
