"""Olden ``em3d``: electromagnetic wave propagation on a bipartite graph.

Two linked lists of nodes (E-field and H-field).  Each node holds a
pointer to an array of ``degree`` *from-node* pointers into the other list
and an array of coefficients; one iteration updates every node's value
from its from-nodes' values.  The structure is *static* and traversed many
times — with the interesting twist that the expensive loads go through
*pointer arrays at every node*:

    "It is costly to implement jump queues and explicit jump-pointers for
    arrays in software; consequently, full jumping cannot be used.  An
    algorithm that performs only explicit queue jumping in software and
    leaves the array prefetches to the hardware is the most effective
    method here." (Section 4.1)

So the software variant implements queue jumping on the list backbone
only; the cooperative variant issues the same single ``JPF`` per node and
the dependence hardware chain-prefetches the from-array and the remote
node values it points to.

Layouts (bytes): node {value@0, next@4, from@8, coeff@12[, jp@16]} (20 ->
class 32); from-array and coeff-array ``4*degree`` (class 16 at degree 4).
Values are floats; the final checksum over all node values is verified
exactly against a Python mirror (identical operation order).
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import lcg

N_VALUE = 0
N_NEXT = 4
N_FROM = 8
N_COEFF = 12
N_JP = 16
NODE_CLASS = 32


def _graph(n_e: int, n_h: int, degree: int, seed: int = 0xE3D):
    """Deterministic topology/coefficients shared by builder and mirror."""
    idx_e = []  # for each E node, `degree` H-node indices
    idx_h = []
    coeff_e = []
    coeff_h = []
    for i in range(n_e):
        for j in range(degree):
            seed = lcg(seed)
            idx_e.append(seed % n_h)
            coeff_e.append(((seed >> 8) & 1023) / 4096.0)
    for i in range(n_h):
        for j in range(degree):
            seed = lcg(seed)
            idx_h.append(seed % n_e)
            coeff_h.append(((seed >> 8) & 1023) / 4096.0)
    val_e = [0.5 + (i % 31) * 0.03125 for i in range(n_e)]
    val_h = [0.25 + (i % 29) * 0.03125 for i in range(n_h)]
    return idx_e, idx_h, coeff_e, coeff_h, val_e, val_h


def mirror(n_e: int, n_h: int, degree: int, iterations: int) -> float:
    idx_e, idx_h, coeff_e, coeff_h, val_e, val_h = _graph(n_e, n_h, degree)
    for __ in range(iterations):
        for i in range(n_e):
            v = val_e[i]
            for j in range(degree):
                v = v - coeff_e[i * degree + j] * val_h[idx_e[i * degree + j]]
            val_e[i] = v
        for i in range(n_h):
            v = val_h[i]
            for j in range(degree):
                v = v - coeff_h[i * degree + j] * val_e[idx_h[i * degree + j]]
            val_h[i] = v
    total = 0.0
    for v in val_e:
        total = total + v
    for v in val_h:
        total = total + v
    return total


@register
class Em3d(Workload):
    name = "em3d"
    structure = "static bipartite lists with per-node pointer arrays, many traversals"
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "software queue jumping covers only the backbone; cooperative and "
        "hardware chain the array prefetches and win; many traversals make "
        "hardware JPP shine"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"n_e": 256, "n_h": 256, "degree": 4, "iterations": 10, "interval": 4}

    @classmethod
    def test_params(cls) -> dict:
        return {"n_e": 24, "n_h": 24, "degree": 2, "iterations": 2, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        n_e: int = self.params["n_e"]
        n_h: int = self.params["n_h"]
        degree: int = self.params["degree"]
        iterations: int = self.params["iterations"]
        interval: int = self.params["interval"]
        idx_e, idx_h, coeff_e, coeff_h, val_e, val_h = _graph(n_e, n_h, degree)

        a = Assembler()
        res_chk = a.word(0)
        e_head = a.word(0)
        h_head = a.word(0)
        e_tab = a.space(n_e)
        h_tab = a.space(n_h)
        s_idx_e = a.array(idx_e)
        s_idx_h = a.array(idx_h)
        s_co_e = a.array(coeff_e)
        s_co_h = a.array(coeff_h)
        s_val_e = a.array(val_e)
        s_val_h = a.array(val_h)
        queue = SoftwareJumpQueue(a, interval, "ejq") if impl != "baseline" else None
        # Nodes carry value/next/from/coeff plus a degree field (Olden's
        # node is larger still): 20 bytes -> 32-byte class, so padding for
        # jump-pointers exists in the baseline layout too.
        node_bytes = 20

        def build_side(tag: str, count: int, tab: int, head: int, vals: int) -> None:
            """Allocate `count` nodes, record them in `tab`, link them into
            a list at `head` (built back-to-front so list order = index
            order), and set initial values."""
            a.li(S0, count - 1)
            a.label(f"b{tag}_loop")
            a.blt(S0, ZERO, f"b{tag}_done")
            a.alloc(T1, ZERO, node_bytes)
            a.slli(T2, S0, 2)
            a.addi(T2, T2, vals)
            a.lw(T3, T2, 0)
            a.sw(T3, T1, N_VALUE)
            a.slli(T2, S0, 2)
            a.addi(T2, T2, tab)
            a.sw(T1, T2, 0)
            a.li(T4, head)
            a.lw(T5, T4, 0)
            a.sw(T5, T1, N_NEXT)
            a.sw(T1, T4, 0)
            a.addi(S0, S0, -1)
            a.j(f"b{tag}_loop")
            a.label(f"b{tag}_done")

        def wire_side(tag: str, count: int, tab: int, other_tab: int,
                      idx_base: int, co_base: int) -> None:
            """Allocate from/coeff arrays and fill them from the static
            index/coefficient tables."""
            a.li(S0, 0)
            a.label(f"w{tag}_loop")
            a.li(T0, count)
            a.bge(S0, T0, f"w{tag}_done")
            a.slli(T1, S0, 2)
            a.addi(T1, T1, tab)
            a.lw(S1, T1, 0)                  # node
            a.alloc(T2, ZERO, 4 * degree)    # from array
            a.alloc(T3, ZERO, 4 * degree)    # coeff array
            a.sw(T2, S1, N_FROM)
            a.sw(T3, S1, N_COEFF)
            a.li(T4, degree)
            a.mul(T5, S0, T4)
            a.slli(T5, T5, 2)                # byte offset of row
            for j in range(degree):
                a.addi(T6, T5, idx_base + 4 * j)
                a.lw(T6, T6, 0)              # remote index
                a.slli(T6, T6, 2)
                a.addi(T6, T6, other_tab)
                a.lw(T6, T6, 0)              # remote node address
                a.sw(T6, T2, 4 * j)
                a.addi(T7, T5, co_base + 4 * j)
                a.lw(T7, T7, 0)
                a.sw(T7, T3, 4 * j)
            a.addi(S0, S0, 1)
            a.j(f"w{tag}_loop")
            a.label(f"w{tag}_done")

        def compute_side(tag: str, head: int) -> None:
            """One relaxation sweep over a list."""
            a.li(T0, head)
            a.lw(S1, T0, 0, tag="lds")
            a.label(f"c{tag}_loop")
            a.beqz(S1, f"c{tag}_done")
            if impl == "sw":
                a.lw(T5, S1, N_JP, tag="lds")
                a.pf(T5, 0)
            elif impl == "coop":
                a.jpf(S1, N_JP)
            if queue is not None:
                queue.update(S1, N_JP, T5, T6, T7)
            a.lw(S2, S1, N_VALUE, pad=NODE_CLASS, tag="lds")
            a.lw(S3, S1, N_FROM, pad=NODE_CLASS, tag="lds")
            a.lw(S4, S1, N_COEFF, pad=NODE_CLASS, tag="lds")
            for j in range(degree):
                a.lw(T1, S3, 4 * j, pad=16, tag="lds")   # from[j]
                a.lw(T2, T1, N_VALUE, pad=NODE_CLASS, tag="lds")  # remote value
                a.lw(T3, S4, 4 * j, pad=16, tag="lds")   # coeff[j]
                a.fmul(T2, T3, T2)
                a.fsub(S2, S2, T2)
            a.sw(S2, S1, N_VALUE)
            a.lw(S1, S1, N_NEXT, pad=NODE_CLASS, tag="lds")
            a.j(f"c{tag}_loop")
            a.label(f"c{tag}_done")

        a.label("main")
        build_side("e", n_e, e_tab, e_head, s_val_e)
        build_side("h", n_h, h_tab, h_head, s_val_h)
        wire_side("e", n_e, e_tab, h_tab, s_idx_e, s_co_e)
        wire_side("h", n_h, h_tab, e_tab, s_idx_h, s_co_h)

        a.li(S7, iterations)
        a.label("iter")
        a.beqz(S7, "sum")
        compute_side("e", e_head)
        compute_side("h", h_head)
        a.addi(S7, S7, -1)
        a.j("iter")

        # checksum: sum of all values, E list then H list
        a.label("sum")
        a.fli(S6, 0.0)
        for tag, head in (("se", e_head), ("sh", h_head)):
            a.li(T0, head)
            a.lw(S1, T0, 0, tag="lds")
            a.label(f"{tag}_loop")
            a.beqz(S1, f"{tag}_done")
            a.lw(T1, S1, N_VALUE, pad=NODE_CLASS, tag="lds")
            a.fadd(S6, S6, T1)
            a.lw(S1, S1, N_NEXT, pad=NODE_CLASS, tag="lds")
            a.j(f"{tag}_loop")
            a.label(f"{tag}_done")
        a.li(A0, res_chk)
        a.sw(S6, A0, 0)
        a.halt()

        program = a.assemble(f"em3d[{variant}]")
        expected = mirror(n_e, n_h, degree, iterations)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res_chk)
            assert got == expected, f"em3d: checksum {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"checksum": expected},
            check=check,
        )
