"""Olden ``treeadd``: recursive sum over a balanced binary tree.

Structure (Table 1): a single "backbone-only" binary tree, built once and
traversed ``passes`` times (the paper's run makes four passes).  The only
applicable idiom is **queue jumping**: each node gets one jump-pointer,
installed during creation (allocation order equals traversal order), and
the recursive sum prefetches through it.

Node layout (bytes): ``val@0, left@4, right@8`` — 12 bytes, allocated in
the 16-byte size class, so one padding word at offset 12 exists.  The
software variants store their explicit jump-pointer there; the baseline's
annotated loads (``pad=16``) let hardware JPP use the same word.

Expected shapes: hardware JPP spends the first pass installing
jump-pointers, forfeiting a quarter of the savings of the 4-pass run;
software/cooperative install during creation and optimize every pass.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    RA,
    S0,
    S1,
    S2,
    S3,
    T0,
    T1,
    T2,
    T3,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register

NODE_SIZE = 16
OFF_VAL = 0
OFF_LEFT = 4
OFF_RIGHT = 8
OFF_JP = 12


@register
class TreeAdd(Workload):
    name = "treeadd"
    structure = "balanced binary tree (backbone-only), 4 traversals"
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "queue jumping helps all implementations; hardware forfeits the "
        "first of the four passes installing jump-pointers"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"levels": 11, "passes": 4, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"levels": 6, "passes": 2, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        levels: int = self.params["levels"]
        passes: int = self.params["passes"]
        interval: int = self.params["interval"]
        if levels < 1:
            raise ValueError("levels must be >= 1")

        a = Assembler()
        result_addr = a.word(0)
        queue = SoftwareJumpQueue(a, interval, "tjq") if impl != "baseline" else None

        # ---- main ----------------------------------------------------
        a.label("main")
        a.li(A0, levels)
        a.jal("build")
        a.mov(S2, V0)  # root
        a.li(S3, passes)
        a.label("pass_loop")
        a.beqz(S3, "done")
        a.mov(A0, S2)
        a.jal("sum")
        a.li(T0, result_addr)
        a.sw(V0, T0, 0)
        a.addi(S3, S3, -1)
        a.j("pass_loop")
        a.label("done")
        a.halt()

        # ---- build(level) -> node -------------------------------------
        a.func("build", S0, S1)
        a.alloc(V0, ZERO, 12)  # val,left,right (padded to 16 by allocator)
        a.mov(S0, V0)
        a.li(T0, 1)
        a.sw(T0, S0, OFF_VAL)
        if queue is not None:
            # Jump-pointers are installed at creation: allocation order is
            # the traversal (preorder) order.
            queue.update(S0, OFF_JP, T0, T1, T2)
        a.li(T0, 1)
        a.bne(A0, T0, "build_inner")
        a.sw(ZERO, S0, OFF_LEFT)
        a.sw(ZERO, S0, OFF_RIGHT)
        a.mov(V0, S0)
        a.leave(S0, S1)
        a.label("build_inner")
        a.addi(S1, A0, -1)
        a.mov(A0, S1)
        a.jal("build")
        a.sw(V0, S0, OFF_LEFT)
        a.mov(A0, S1)
        a.jal("build")
        a.sw(V0, S0, OFF_RIGHT)
        a.mov(V0, S0)
        a.leave(S0, S1)

        # ---- sum(node) -> total ---------------------------------------
        a.label("sum")
        a.bnez(A0, "sum_rec")
        a.li(V0, 0)
        a.ret()
        a.label("sum_rec")
        a.push(RA, S0, S1)
        if impl == "sw":
            a.lw(T0, A0, OFF_JP, tag="lds")
            a.pf(T0, 0)
        elif impl == "coop":
            a.jpf(A0, OFF_JP)
        a.mov(S0, A0)
        a.lw(S1, S0, OFF_VAL, pad=NODE_SIZE, tag="lds")
        a.lw(A0, S0, OFF_LEFT, pad=NODE_SIZE, tag="lds")
        a.jal("sum")
        a.add(S1, S1, V0)
        a.lw(A0, S0, OFF_RIGHT, pad=NODE_SIZE, tag="lds")
        a.jal("sum")
        a.add(V0, V0, S1)
        a.pop(RA, S0, S1)
        a.ret()

        program = a.assemble(f"treeadd[{variant}]")
        expected_sum = (1 << levels) - 1

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(result_addr)
            assert got == expected_sum, f"treeadd: sum {got} != {expected_sum}"

        return BuiltProgram(
            program=program,
            expected={"sum": expected_sum, "nodes": expected_sum},
            check=check,
        )
