"""Olden ``voronoi``: divide-and-conquer computational geometry.

Substitution (see DESIGN.md): the original computes a Voronoi diagram via
quad-edge Delaunay triangulation; this kernel runs the same *shape* of
computation — a recursive divide-and-conquer over an x-sorted point set
(closest-pair with a strip merge), where each merge builds and walks a
small linked list of strip entries.  The paper uses voronoi as a program
with a *very small memory-latency component* where "useless prefetches
contend for memory resources with array based cache misses" and software
prefetching produces a net slowdown (Section 4.2); the queue-jumping
variants on the strip lists reproduce exactly that behaviour.

Strip node layout (bytes): {index@0, next@4[, jp@8]} (16-byte class).
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    A1,
    SP,
    RA,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    T0,
    T1,
    T2,
    T3,
    T4,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import lcg

N_IDX = 0
N_NEXT = 4
N_JP = 8
SEED0 = 0x0DDBA11
BIG = 1e30
#: strip pairs examined per entry (a y-sorted strip needs at most 7; the
#: x-ordered approximation checks a fixed window — identical in kernel and
#: mirror, so results still verify exactly)
WINDOW = 6


def _points(n: int) -> list[tuple[float, float]]:
    seed = SEED0
    pts = []
    for __ in range(n):
        seed = lcg(seed)
        x = (seed >> 8) / float(1 << 24)
        seed = lcg(seed)
        y = (seed >> 8) / float(1 << 24)
        pts.append((x, y))
    pts.sort()
    return pts


def mirror(n: int) -> float:
    pts = _points(n)

    def solve(lo: int, hi: int) -> float:
        if hi - lo <= 3:
            best = BIG
            for i in range(lo, hi):
                for j in range(i + 1, hi):
                    dx = pts[i][0] - pts[j][0]
                    dy = pts[i][1] - pts[j][1]
                    d = dx * dx + dy * dy
                    if d < best:
                        best = d
            return best
        mid = (lo + hi) // 2
        xm = pts[mid][0]
        d = solve(lo, mid)
        dr = solve(mid, hi)
        if dr < d:
            d = dr
        # collect the strip (prepend -> list order is descending index;
        # identical order in the kernel)
        strip = []
        for i in range(lo, hi):
            dx = pts[i][0] - xm
            if dx * dx < d:
                strip.insert(0, i)
        # compare each entry against the next WINDOW entries in list order
        for k, i in enumerate(strip):
            for j in strip[k + 1 : k + 1 + WINDOW]:
                dx = pts[i][0] - pts[j][0]
                dy = pts[i][1] - pts[j][1]
                dd = dx * dx + dy * dy
                if dd < d:
                    d = dd
        return d

    return solve(0, n)


@register
class Voronoi(Workload):
    name = "voronoi"
    structure = "D&C over sorted points; small transient strip lists (compute-bound)"
    idioms = ()
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "tiny memory component: prefetch overhead and useless prefetches "
        "contending with array misses produce a net slowdown"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"n": 256, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"n": 24, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        n: int = self.params["n"]
        interval: int = self.params["interval"]
        pts = _points(n)

        a = Assembler()
        res = a.word(0)
        s_x = a.array([p[0] for p in pts])
        s_y = a.array([p[1] for p in pts])
        queue = SoftwareJumpQueue(a, interval, "vjq") if impl != "baseline" else None
        node_bytes = 12 if impl != "baseline" else 8

        a.label("main")
        a.li(A0, 0)
        a.li(A1, n)
        a.jal("solve")
        a.li(T0, res)
        a.sw(V0, T0, 0)
        a.halt()

        # ---- dist2(T3=i, T4=j) -> V0 (clobbers T0..T2) -----------------
        a.label("dist2")
        a.slli(T0, T3, 2)
        a.addi(T1, T0, s_x)
        a.lw(T1, T1, 0)
        a.addi(T2, T0, s_y)
        a.lw(T2, T2, 0)
        a.slli(T0, T4, 2)
        a.addi(V0, T0, s_x)
        a.lw(V0, V0, 0)
        a.fsub(T1, T1, V0)
        a.addi(V0, T0, s_y)
        a.lw(V0, V0, 0)
        a.fsub(T2, T2, V0)
        a.fmul(T1, T1, T1)
        a.fmul(T2, T2, T2)
        a.fadd(V0, T1, T2)
        a.ret()

        # ---- solve(A0=lo, A1=hi) -> min d^2 ----------------------------
        a.func("solve", S0, S1, S2, S3, S4, S5)
        a.mov(S0, A0)            # lo
        a.mov(S1, A1)            # hi
        a.sub(T0, S1, S0)
        a.slti(T0, T0, 4)
        a.beqz(T0, "s_divide")
        # brute force (min accumulates in S3, as in the divide path)
        a.fli(S3, BIG)
        a.mov(S2, S0)            # i
        a.label("bf_i")
        a.addi(T0, S1, -1)
        a.bge(S2, T0, "s_ret")
        a.addi(S4, S2, 1)        # j
        a.label("bf_j")
        a.bge(S4, S1, "bf_inext")
        a.mov(T3, S2)
        a.mov(T4, S4)
        a.push(RA)
        a.jal("dist2")
        a.pop(RA)
        a.flt(T0, V0, S3)
        a.beqz(T0, "bf_nj")
        a.mov(S3, V0)
        a.label("bf_nj")
        a.addi(S4, S4, 1)
        a.j("bf_j")
        a.label("bf_inext")
        a.addi(S2, S2, 1)
        a.j("bf_i")

        a.label("s_divide")
        a.add(S2, S0, S1)
        a.srli(S2, S2, 1)        # mid
        a.mov(A0, S0)
        a.mov(A1, S2)
        a.jal("solve")
        a.mov(S3, V0)            # d = left
        a.mov(A0, S2)
        a.mov(A1, S1)
        a.jal("solve")
        a.flt(T0, V0, S3)
        a.beqz(T0, "s_strip")
        a.mov(S3, V0)
        a.label("s_strip")
        # xm
        a.slli(T0, S2, 2)
        a.addi(T0, T0, s_x)
        a.lw(S4, T0, 0)          # xm
        a.li(S5, 0)              # strip head
        a.mov(S2, S0)            # i
        a.label("st_loop")
        a.bge(S2, S1, "st_done")
        a.slli(T0, S2, 2)
        a.addi(T0, T0, s_x)
        a.lw(T1, T0, 0)
        a.fsub(T1, T1, S4)
        a.fmul(T1, T1, T1)
        a.flt(T2, T1, S3)
        a.beqz(T2, "st_next")
        a.alloc(T0, ZERO, node_bytes)
        a.sw(S2, T0, N_IDX)
        a.sw(S5, T0, N_NEXT)     # prepend
        a.mov(S5, T0)
        if queue is not None:
            queue.update(T0, N_JP, T1, T2, T4, reverse=True)
        a.label("st_next")
        a.addi(S2, S2, 1)
        a.j("st_loop")
        a.label("st_done")
        # pair comparisons along the strip list
        a.label("pair_outer")
        a.beqz(S5, "s_ret")
        if impl == "sw":
            a.lw(T0, S5, N_JP, tag="lds")
            a.pf(T0, 0)
        elif impl == "coop":
            a.jpf(S5, N_JP)
        a.lw(S2, S5, N_IDX, pad=16, tag="lds")
        a.lw(S4, S5, N_NEXT, pad=16, tag="lds")  # inner cursor
        a.li(T4, WINDOW)
        a.push(T4)
        a.label("pair_inner")
        a.beqz(S4, "pair_adv")
        a.lw(T4, SP, 0)          # remaining window
        a.beqz(T4, "pair_adv")
        a.addi(T4, T4, -1)
        a.sw(T4, SP, 0)
        a.mov(T3, S2)
        a.lw(T4, S4, N_IDX, pad=16, tag="lds")
        a.push(RA)
        a.jal("dist2")
        a.pop(RA)
        a.flt(T0, V0, S3)
        a.beqz(T0, "pair_no")
        a.mov(S3, V0)
        a.label("pair_no")
        a.lw(S4, S4, N_NEXT, pad=16, tag="lds")
        a.j("pair_inner")
        a.label("pair_adv")
        a.pop(T4)
        a.lw(S5, S5, N_NEXT, pad=16, tag="lds")
        a.j("pair_outer")

        a.label("s_ret")
        a.mov(V0, S3)
        a.leave(S0, S1, S2, S3, S4, S5)

        program = a.assemble(f"voronoi[{variant}]")
        expected = mirror(n)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res)
            assert got == expected, f"voronoi: {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"min_dist2": expected},
            check=check,
        )
