"""Olden ``mst``: minimum spanning tree over hash-table adjacency.

Each vertex owns a hash table mapping neighbour vertex -> edge weight;
buckets are short linked chains ("mst's short hash table bucket chains are
ideal for a root jumping implementation", Section 2.2/4.1).  The kernel is
the classic O(N^2) Prim: each step scans the linked list of remaining
vertices, performs a hash lookup of the distance to the newly added vertex
(walking one bucket chain), tracks the minimum, and splices the chosen
vertex out.  The program makes a *single pass* in the paper's sense — no
repeated traversal of a stable structure — which is why hardware JPP is
useless for it (it needs one traversal to install jump-pointers).

Idioms:

* ``root`` (the paper's choice) — while vertex *v*'s chain is walked, the
  *next* remaining vertex's bucket for the same key is prefetched through
  a pointer to its root; the chain itself is chain-prefetched (software
  pays artifact loads; cooperative's single ``JPF`` lets hardware do it).
* ``queue`` (for the Figure-4 idiom comparison) — jump-pointers on the
  remaining-vertex list only; decays as the list is spliced and never
  covers the chains, so it should clearly lose to root jumping.

Layouts (bytes): vertex record {table@0, mindist@4, index@8} (12 -> class
16); bucket array B*4 (class 64 for B=16); chain entry {key@0, weight@4,
next@8} (12 -> class 16); remaining-list node {vptr@0, next@4[, jp@8]}.
Functional result (total MST weight) is verified against a Python mirror;
the test-suite cross-checks the mirror against networkx.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    T8,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register

MASK32 = 0xFFFFFFFF
HASH_MUL = 2654435761
WEIGHT_MUL = 16807
INF = 1 << 30

V_TABLE = 0
V_MINDIST = 4
V_INDEX = 8
E_KEY = 0
E_WEIGHT = 4
E_NEXT = 8
R_VPTR = 0
R_NEXT = 4
R_JP = 8


def edge_weight(u: int, v: int) -> int:
    """Deterministic symmetric weight in [1, 256]."""
    m, mx = (u, v) if u < v else (v, u)
    x = (m * 1000003 + mx) & MASK32
    x = (x * WEIGHT_MUL) & MASK32
    return ((x >> 8) & 255) + 1


def bucket_of(u: int, buckets: int) -> int:
    return ((u * HASH_MUL) >> 8) & (buckets - 1)


def mirror(n: int, buckets: int) -> int:
    """Python mirror: same Prim scan order, same tie-breaking."""
    mindist = [INF] * n
    remaining = list(range(1, n))
    new = 0
    total = 0
    for __ in range(n - 1):
        best_d = INF
        best_pos = -1
        for pos, v in enumerate(remaining):
            d = edge_weight(v, new)
            if d < mindist[v]:
                mindist[v] = d
            if mindist[v] < best_d:
                best_d = mindist[v]
                best_pos = pos
        new = remaining.pop(best_pos)
        total += best_d
    return total


@register
class MST(Workload):
    name = "mst"
    structure = "hash-table adjacency; short bucket chains; single pass"
    idioms = ("root", "queue")
    variants = ("baseline", "sw:root", "sw:queue", "coop:root", "coop:queue")
    expectation = (
        "root jumping wins (short chains); hardware JPP is useless because "
        "the program makes a single pass"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"n": 64, "buckets": 16, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"n": 12, "buckets": 4, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        n: int = self.params["n"]
        buckets: int = self.params["buckets"]
        interval: int = self.params["interval"]

        a = Assembler()
        res_total = a.word(0)
        rem_head = a.word(0)
        vtable = a.space(n)
        queue = (
            SoftwareJumpQueue(a, interval, "mjq")
            if impl != "baseline" and idiom == "queue"
            else None
        )
        rnode_bytes = 12 if queue is not None else 8

        # ---------------- build: vertices and hash tables ----------------
        a.label("main")
        a.li(S0, 0)  # v
        a.label("b_vert")
        a.li(T0, n)
        a.bge(S0, T0, "b_edges")
        a.alloc(T1, ZERO, 12)            # vertex record
        a.alloc(T2, ZERO, 4 * buckets)   # bucket array (fresh heap = nulls)
        a.sw(T2, T1, V_TABLE)
        a.li(T3, INF)
        a.sw(T3, T1, V_MINDIST)
        a.sw(S0, T1, V_INDEX)
        a.slli(T4, S0, 2)
        a.addi(T4, T4, vtable)
        a.sw(T1, T4, 0)                  # vtable[v] = record
        a.addi(S0, S0, 1)
        a.j("b_vert")

        # edges: for v, for u != v: insert (u, w(u,v)) into v's table
        a.label("b_edges")
        a.li(S0, 0)  # v
        a.label("be_v")
        a.li(T0, n)
        a.bge(S0, T0, "b_rem")
        a.slli(T1, S0, 2)
        a.addi(T1, T1, vtable)
        a.lw(S2, T1, 0)                  # v record
        a.lw(S3, S2, V_TABLE)            # v table
        a.li(S1, 0)  # u
        a.label("be_u")
        a.li(T0, n)
        a.bge(S1, T0, "be_vnext")
        a.beq(S1, S0, "be_unext")
        # weight(u, v): m = min, mx = max
        a.blt(S0, S1, "be_minv")
        a.mov(T1, S1)                    # m = u
        a.mov(T2, S0)                    # mx = v
        a.j("be_wcalc")
        a.label("be_minv")
        a.mov(T1, S0)
        a.mov(T2, S1)
        a.label("be_wcalc")
        a.li(T3, 1000003)
        a.mul(T1, T1, T3)
        a.add(T1, T1, T2)
        a.andi(T1, T1, MASK32)
        a.li(T3, WEIGHT_MUL)
        a.mul(T1, T1, T3)
        a.andi(T1, T1, MASK32)
        a.srli(T1, T1, 8)
        a.andi(T1, T1, 255)
        a.addi(T1, T1, 1)                # weight
        # bucket(u)
        a.li(T3, HASH_MUL)
        a.mul(T2, S1, T3)
        a.srli(T2, T2, 8)
        a.andi(T2, T2, buckets - 1)
        a.slli(T2, T2, 2)
        a.add(T2, T2, S3)                # &table[h]
        a.alloc(T4, ZERO, 12)            # chain entry
        a.sw(S1, T4, E_KEY)
        a.sw(T1, T4, E_WEIGHT)
        a.lw(T5, T2, 0)
        a.sw(T5, T4, E_NEXT)
        a.sw(T4, T2, 0)
        a.label("be_unext")
        a.addi(S1, S1, 1)
        a.j("be_u")
        a.label("be_vnext")
        a.addi(S0, S0, 1)
        a.j("be_v")

        # remaining list: vertices 1..n-1 in ascending order (prepend from
        # n-1 down to 1)
        a.label("b_rem")
        a.li(S0, n - 1)
        a.label("br_loop")
        a.blez(S0, "prim")
        a.alloc(T1, ZERO, rnode_bytes)
        a.slli(T2, S0, 2)
        a.addi(T2, T2, vtable)
        a.lw(T3, T2, 0)
        a.sw(T3, T1, R_VPTR)
        a.li(T4, rem_head)
        a.lw(T5, T4, 0)
        a.sw(T5, T1, R_NEXT)
        a.sw(T1, T4, 0)
        a.addi(S0, S0, -1)
        a.j("br_loop")

        # ---------------- Prim ----------------
        a.label("prim")
        a.li(S3, 0)       # total weight
        a.li(S4, 0)       # new vertex index
        a.li(S5, n - 1)   # steps
        a.label("step")
        a.beqz(S5, "end")
        # hoff = 4 * bucket(new)
        a.li(T0, HASH_MUL)
        a.mul(S6, S4, T0)
        a.srli(S6, S6, 8)
        a.andi(S6, S6, buckets - 1)
        a.slli(S6, S6, 2)
        a.li(S7, INF)     # best distance
        a.li(T8, 0)       # best prev-slot
        a.li(S0, rem_head)  # prev slot address
        a.lw(S1, S0, 0, tag="lds")  # node = head
        a.label("scan")
        a.beqz(S1, "pick")

        if impl != "baseline":
            if idiom == "root":
                skip_rj = a.newlabel("mrj")
                a.lw(T5, S1, R_NEXT, pad=16, tag="lds")   # next list node
                a.beqz(T5, skip_rj)
                a.lw(T5, T5, R_VPTR, pad=16, tag="lds")   # artifact
                a.lw(T5, T5, V_TABLE, pad=16, tag="lds")  # artifact
                a.add(T5, T5, S6)                          # &next_tbl[h]
                if impl == "coop":
                    a.jpf(T5, 0)
                else:
                    a.pf(T5, 0)                            # bucket slot line
                    a.lw(T5, T5, 0, tag="lds")             # artifact: root
                    a.pf(T5, 0)                            # first chain node
                a.label(skip_rj)
            else:  # queue jumping on the remaining list
                if impl == "sw":
                    a.lw(T5, S1, R_JP, tag="lds")
                    a.pf(T5, 0)
                else:
                    a.jpf(S1, R_JP)
                queue.update(S1, R_JP, T5, T6, T7)

        a.lw(S2, S1, R_VPTR, pad=16, tag="lds")   # vertex record
        a.lw(T0, S2, V_TABLE, pad=16, tag="lds")  # bucket array
        a.add(T0, T0, S6)
        a.lw(T1, T0, 0, tag="lds")                # chain head
        a.label("chain")
        a.lw(T2, T1, E_KEY, pad=16, tag="lds")
        a.beq(T2, S4, "found")
        a.lw(T1, T1, E_NEXT, pad=16, tag="lds")
        a.bnez(T1, "chain")
        a.li(T3, INF)                             # not found (cannot happen
        a.j("relax")                              # in a dense graph)
        a.label("found")
        a.lw(T3, T1, E_WEIGHT, pad=16, tag="lds")
        a.label("relax")
        a.lw(T4, S2, V_MINDIST, pad=16, tag="lds")
        a.bge(T3, T4, "no_update")
        a.sw(T3, S2, V_MINDIST)
        a.mov(T4, T3)
        a.label("no_update")
        a.bge(T4, S7, "no_best")
        a.mov(S7, T4)
        a.mov(T8, S0)
        a.label("no_best")
        a.addi(S0, S1, R_NEXT)
        a.lw(S1, S1, R_NEXT, pad=16, tag="lds")
        a.j("scan")

        a.label("pick")
        a.lw(T0, T8, 0, tag="lds")        # best node
        a.lw(T1, T0, R_VPTR, pad=16, tag="lds")
        a.lw(S4, T1, V_INDEX, pad=16, tag="lds")
        a.add(S3, S3, S7)
        a.lw(T2, T0, R_NEXT, pad=16, tag="lds")
        a.sw(T2, T8, 0)                   # splice out
        a.addi(S5, S5, -1)
        a.j("step")

        a.label("end")
        a.li(A0, res_total)
        a.sw(S3, A0, 0)
        a.halt()

        program = a.assemble(f"mst[{variant}]")
        expected = mirror(n, buckets)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res_total)
            assert got == expected, f"mst: weight {got} != {expected}"

        return BuiltProgram(
            program=program,
            expected={"mst_weight": expected, "n": n},
            check=check,
        )
