"""Olden ``power``: power-system optimization over a fixed tree.

Root -> laterals -> branches -> leaves; every iteration propagates demand
values bottom-up with heavy floating-point work (divides and square roots)
at every node.  The tree is small and the program is compute-bound: the
paper's characterization gives power a very small memory-latency component
and warns that "even the smallest computation overheads introduced by
software prefetching overwhelm the potential benefit and produce an
overall slowdown" (Section 4.2).  The queue-jumping variants exist to
reproduce exactly that slowdown; hardware JPP should be harmless.

Node layout (bytes): {child@0, next@4, value@8[, jp@12]} — 12/16 bytes in
the 16-byte class.
"""

from __future__ import annotations

import math

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    A1,
    SP,
    RA,
    S0,
    S1,
    S2,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    V0,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register

OFF_CHILD = 0
OFF_NEXT = 4
OFF_VALUE = 8
OFF_JP = 12
NODE_CLASS = 16


def _initial(i: int) -> float:
    return 0.5 + (i % 17) * 0.0625


def _leaf_work(v: float) -> float:
    """Per-leaf computation (two divides and a square root, standing in for
    power's per-leaf optimization step)."""
    v = 1.0 / (v + 2.0)
    v = math.sqrt(v * v + 0.25)
    return v / 1.25


def mirror(laterals: int, branches: int, leaves: int, iterations: int) -> float:
    """Replicates the build order and the bottom-up sweeps exactly."""
    counter = [0]
    counts_by_depth = {0: laterals, 1: branches, 2: leaves}

    def build_level(count: int, depth: int):
        nodes = []
        for __ in range(count):
            val = _initial(counter[0])
            counter[0] += 1
            kids = build_level(counts_by_depth[depth + 1], depth + 1) if depth < 2 else []
            nodes.insert(0, [val, kids])  # prepend, like the assembly
        return nodes

    tree = build_level(laterals, 0)

    def compute(node) -> float:
        val, kids = node
        if not kids:
            node[0] = _leaf_work(val)
            return node[0]
        total = 0.0
        count = 0
        for k in kids:
            total = total + compute(k)
            count += 1
        node[0] = total / (float(count) + 1.0)
        return node[0]

    root_val = 0.0
    for __ in range(iterations):
        root_val = 0.0
        for lateral in tree:
            root_val = root_val + compute(lateral)
    return root_val


@register
class Power(Workload):
    name = "power"
    structure = "small fixed tree, FP-heavy per-node work (compute-bound)"
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "tiny memory component: software prefetch overhead causes a net "
        "slowdown; hardware JPP is at worst harmless"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"laterals": 10, "branches": 8, "leaves": 5, "iterations": 5,
                "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"laterals": 3, "branches": 2, "leaves": 2, "iterations": 2,
                "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        laterals: int = self.params["laterals"]
        branches: int = self.params["branches"]
        leaves: int = self.params["leaves"]
        iterations: int = self.params["iterations"]
        interval: int = self.params["interval"]

        a = Assembler()
        res = a.word(0)
        queue = SoftwareJumpQueue(a, interval, "wjq") if impl != "baseline" else None
        node_bytes = 16 if impl != "baseline" else 12

        a.label("main")
        a.li(S7, 0)              # global creation counter
        a.li(A0, laterals)
        a.li(A1, 0)              # depth
        a.jal("build_level")
        a.mov(S5, V0)            # lateral list head
        a.li(S6, iterations)
        a.label("iter")
        a.beqz(S6, "end")
        a.fli(S0, 0.0)           # root accumulator
        a.mov(S1, S5)
        a.label("root_kids")
        a.beqz(S1, "iter_done")
        a.mov(A0, S1)
        a.jal("compute")
        a.fadd(S0, S0, V0)
        a.lw(S1, S1, OFF_NEXT, pad=NODE_CLASS, tag="lds")
        a.j("root_kids")
        a.label("iter_done")
        a.addi(S6, S6, -1)
        a.j("iter")
        a.label("end")
        a.li(T0, res)
        a.sw(S0, T0, 0)
        a.halt()

        # ---- build_level(A0=count, A1=depth) -> list head --------------
        a.func("build_level", S0, S1, S2)
        a.li(S0, 0)          # head
        a.mov(S1, A0)        # remaining count
        a.label("bl_loop")
        a.beqz(S1, "bl_done")
        a.alloc(S2, ZERO, node_bytes)
        if queue is not None:
            queue.update(S2, OFF_JP, T0, T1, T2)
        # value = 0.5 + (counter % 17) * 0.0625
        a.li(T1, 17)
        a.rem(T2, S7, T1)
        a.i2f(T2, T2)
        a.fli(T1, 0.0625)
        a.fmul(T2, T2, T1)
        a.fli(T1, 0.5)
        a.fadd(T2, T2, T1)
        a.sw(T2, S2, OFF_VALUE)
        a.addi(S7, S7, 1)
        a.sw(S0, S2, OFF_NEXT)   # prepend
        a.mov(S0, S2)
        # children (depth 0 -> branches, depth 1 -> leaves, depth 2 -> none)
        a.li(T1, 2)
        a.bge(A1, T1, "bl_nokids")
        a.push(A1, S2)
        a.beqz(A1, "bl_d0")
        a.li(A0, leaves)
        a.j("bl_call")
        a.label("bl_d0")
        a.li(A0, branches)
        a.label("bl_call")
        a.addi(A1, A1, 1)
        a.jal("build_level")
        a.pop(A1, S2)
        a.sw(V0, S2, OFF_CHILD)
        a.label("bl_nokids")
        a.addi(S1, S1, -1)
        a.j("bl_loop")
        a.label("bl_done")
        a.mov(V0, S0)
        a.leave(S0, S1, S2)

        # ---- compute(A0=node) -> value --------------------------------
        a.label("compute")
        a.push(RA, S0, S1, S2)
        if impl == "sw":
            a.lw(T0, A0, OFF_JP, tag="lds")
            a.pf(T0, 0)
        elif impl == "coop":
            a.jpf(A0, OFF_JP)
        a.mov(S0, A0)
        a.lw(S2, S0, OFF_CHILD, pad=NODE_CLASS, tag="lds")
        a.bnez(S2, "c_inner")
        # leaf: v = sqrt((1/(v+2))^2 + 0.25) / 1.25
        a.lw(T1, S0, OFF_VALUE, pad=NODE_CLASS, tag="lds")
        a.fli(T2, 2.0)
        a.fadd(T1, T1, T2)
        a.fli(T2, 1.0)
        a.fdiv(T1, T2, T1)
        a.fmul(T2, T1, T1)
        a.fli(T0, 0.25)
        a.fadd(T2, T2, T0)
        a.fsqrt(T2, T2)
        a.fli(T0, 1.25)
        a.fdiv(T2, T2, T0)
        a.sw(T2, S0, OFF_VALUE)
        a.mov(V0, T2)
        a.pop(RA, S0, S1, S2)
        a.ret()
        a.label("c_inner")
        a.fli(S1, 0.0)           # sum; child count in T8 would be caller-
        a.push(ZERO)             # ...saved, so keep the count on the stack
        a.label("c_kids")
        a.beqz(S2, "c_done")
        a.mov(A0, S2)
        a.jal("compute")
        a.fadd(S1, S1, V0)
        a.lw(T1, SP, 0)          # count++
        a.addi(T1, T1, 1)
        a.sw(T1, SP, 0)
        a.lw(S2, S2, OFF_NEXT, pad=NODE_CLASS, tag="lds")
        a.j("c_kids")
        a.label("c_done")
        a.pop(T1)                # child count
        a.i2f(T2, T1)
        a.fli(T0, 1.0)
        a.fadd(T2, T2, T0)
        a.fdiv(S1, S1, T2)
        a.sw(S1, S0, OFF_VALUE)
        a.mov(V0, S1)
        a.pop(RA, S0, S1, S2)
        a.ret()

        program = a.assemble(f"power[{variant}]")
        expected = mirror(laterals, branches, leaves, iterations)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res)
            assert got == expected, f"power: {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"root_value": expected},
            check=check,
        )
