"""Olden ``tsp``: travelling-salesman tour construction.

The kernel builds a linked list of city records and constructs a tour by
repeated nearest-neighbour selection: each step scans the remaining list
for the city closest to the current one (floating-point distance), splices
it out, and extends the tour.  The structure is "large and extremely
volatile" (Table 1): the remaining list is spliced at every step, so any
jump-pointers installed at creation decay rapidly — the paper recommends
*not* implementing software JPP for tsp, and the ``sw:queue`` variant
exists to demonstrate the resulting slowdown.

City record (bytes): {x@0, y@4, next@8, id@12[, jp@16]} — 16 bytes in the
16-byte class baseline (no padding: hardware JPP has nowhere to store
jump-pointers, which is fine, it would not help anyway), 20 bytes (32-byte
class) with a software jump-pointer.
"""

from __future__ import annotations

from ...core.jump_queue import SoftwareJumpQueue
from ...isa.assembler import Assembler
from ...isa.interpreter import Interpreter
from ...isa.registers import (
    A0,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    ZERO,
)
from ..base import BuiltProgram, Workload, parse_variant
from ..registry import register
from .common import lcg

OFF_X = 0
OFF_Y = 4
OFF_NEXT = 8
OFF_ID = 12
OFF_JP = 16
SEED0 = 0x7E57C0DE
BIG = 1e30


def _coords(n: int) -> list[tuple[float, float]]:
    seed = SEED0
    pts = []
    for __ in range(n):
        seed = lcg(seed)
        x = (seed >> 8) / float(1 << 24)
        seed = lcg(seed)
        y = (seed >> 8) / float(1 << 24)
        pts.append((x, y))
    return pts


def mirror(n: int) -> float:
    """Nearest-neighbour tour length; identical arithmetic to the kernel."""
    pts = _coords(n)
    remaining = list(range(1, n))
    cx, cy = pts[0]
    total = 0.0
    while remaining:
        best_d = BIG
        best_pos = 0
        for pos, i in enumerate(remaining):
            dx = pts[i][0] - cx
            dy = pts[i][1] - cy
            d = dx * dx + dy * dy
            if d < best_d:
                best_d = d
                best_pos = pos
        i = remaining.pop(best_pos)
        cx, cy = pts[i]
        import math

        total = total + math.sqrt(best_d)
    return total


@register
class TSP(Workload):
    name = "tsp"
    structure = "city list, spliced at every step (large, extremely volatile)"
    idioms = ()
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "jump-pointers decay as the list is spliced: software JPP is pure "
        "overhead; hardware JPP finds no padding and does nothing"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"n": 160, "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"n": 20, "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        n: int = self.params["n"]
        interval: int = self.params["interval"]
        pts = _coords(n)

        a = Assembler()
        res_len = a.word(0)
        rem_head = a.word(0)
        s_x = a.array([p[0] for p in pts])
        s_y = a.array([p[1] for p in pts])
        queue = SoftwareJumpQueue(a, interval, "tjq") if impl != "baseline" else None
        node_bytes = 20 if impl != "baseline" else 16

        # ---- build the city list (prepend n-1 .. 1; city 0 is the start)
        a.label("main")
        a.li(S0, n - 1)
        a.label("b_loop")
        a.blez(S0, "tour")
        a.alloc(T0, ZERO, node_bytes)
        a.slli(T1, S0, 2)
        a.addi(T2, T1, s_x)
        a.lw(T3, T2, 0)
        a.sw(T3, T0, OFF_X)
        a.addi(T2, T1, s_y)
        a.lw(T3, T2, 0)
        a.sw(T3, T0, OFF_Y)
        a.sw(S0, T0, OFF_ID)
        a.li(T4, rem_head)
        a.lw(T5, T4, 0)
        a.sw(T5, T0, OFF_NEXT)
        a.sw(T0, T4, 0)
        if queue is not None:
            # The list is built by prepending, so creation order is the
            # reverse of traversal order: install backward.
            queue.update(T0, OFF_JP, T5, T6, T7, reverse=True)
        a.addi(S0, S0, -1)
        a.j("b_loop")

        # ---- nearest-neighbour tour ------------------------------------
        # S2/S3 = current x/y; S4 = tour length; S5 = remaining count
        a.label("tour")
        a.li(T0, s_x)
        a.lw(S2, T0, 0)
        a.li(T0, s_y)
        a.lw(S3, T0, 0)
        a.fli(S4, 0.0)
        a.li(S5, n - 1)
        a.label("step")
        a.beqz(S5, "end")
        a.fli(S6, BIG)      # best distance
        a.li(S7, 0)         # best prev-slot
        a.li(S0, rem_head)  # prev slot
        a.lw(S1, S0, 0, tag="lds")
        a.label("scan")
        a.beqz(S1, "pick")
        if impl == "sw":
            a.lw(T5, S1, OFF_JP, tag="lds")
            a.pf(T5, 0)
        elif impl == "coop":
            a.jpf(S1, OFF_JP)
        a.lw(T0, S1, OFF_X, pad=32 if impl != "baseline" else 16, tag="lds")
        a.lw(T1, S1, OFF_Y, pad=32 if impl != "baseline" else 16, tag="lds")
        a.fsub(T0, T0, S2)
        a.fsub(T1, T1, S3)
        a.fmul(T0, T0, T0)
        a.fmul(T1, T1, T1)
        a.fadd(T0, T0, T1)
        a.flt(T2, T0, S6)
        a.beqz(T2, "no_best")
        a.mov(S6, T0)
        a.mov(S7, S0)
        a.label("no_best")
        a.addi(S0, S1, OFF_NEXT)
        a.lw(S1, S1, OFF_NEXT, pad=32 if impl != "baseline" else 16, tag="lds")
        a.j("scan")
        a.label("pick")
        a.lw(T0, S7, 0, tag="lds")     # best node
        a.lw(S2, T0, OFF_X, tag="lds")
        a.lw(S3, T0, OFF_Y, tag="lds")
        a.lw(T1, T0, OFF_NEXT, tag="lds")
        a.sw(T1, S7, 0)                # splice out
        a.fsqrt(T2, S6)
        a.fadd(S4, S4, T2)
        a.addi(S5, S5, -1)
        a.j("step")

        a.label("end")
        a.li(A0, res_len)
        a.sw(S4, A0, 0)
        a.halt()

        program = a.assemble(f"tsp[{variant}]")
        expected = mirror(n)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res_len)
            assert got == expected, f"tsp: tour length {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"tour_length": expected},
            check=check,
        )
