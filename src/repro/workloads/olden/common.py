"""Shared helpers for the Olden kernels.

Includes the linear congruential generator used (identically) by the
assembly kernels and their Python mirror computations, so functional
results can be verified bit-for-bit.
"""

from __future__ import annotations

from ...isa.assembler import Assembler

LCG_A = 1664525
LCG_C = 1013904223
LCG_MASK = 0xFFFFFFFF


def lcg(seed: int) -> int:
    """One LCG step (Python mirror)."""
    return (seed * LCG_A + LCG_C) & LCG_MASK


def lcg_stream(seed: int, count: int) -> list[int]:
    out = []
    for __ in range(count):
        seed = lcg(seed)
        out.append(seed)
    return out


def emit_lcg(a: Assembler, seed_reg: int, tmp: int) -> None:
    """Emit ``seed = seed * A + C  (mod 2^32)`` into the assembler."""
    a.li(tmp, LCG_A)
    a.mul(seed_reg, seed_reg, tmp)
    a.addi(seed_reg, seed_reg, LCG_C)
    a.andi(seed_reg, seed_reg, LCG_MASK)


def frand(seed: int) -> tuple[float, int]:
    """Deterministic float in [0, 1) plus the advanced seed (mirror only)."""
    seed = lcg(seed)
    return (seed >> 8) / float(1 << 24), seed
