"""Extension workload: sparse matrix-vector multiplication over linked rows.

Not an Olden program — this implements the paper's closing future-work
suggestion:

    "jump-pointer prefetching may be generalized to other classes of data
    structures with serialized access idioms, like sparse matrices and
    database trees." (Section 6)

The matrix is stored the way sparse codes of the era stored dynamic
matrices: a linked list of row headers, each pointing at a linked list of
element nodes ``{col@0, value@4, next@8}`` (12 bytes -> the 16-byte class,
so hardware jump-pointer padding exists).  ``y = A x`` is computed
``iterations`` times; the element-list walk is a serial pointer chase and
the ``x[col]`` reads are data-dependent gathers — precisely the
"serialized access idiom" the paper points at.

Queue jumping applies verbatim: elements are created in traversal order,
so jump-pointers are installed at creation and every sweep prefetches
through them; the gathers ride along via chained prefetching in the
cooperative/hardware schemes.
"""

from __future__ import annotations

from ..core.jump_queue import SoftwareJumpQueue
from ..isa.assembler import Assembler
from ..isa.interpreter import Interpreter
from ..isa.registers import (
    A0,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    ZERO,
)
from .base import BuiltProgram, Workload, parse_variant
from .olden.common import lcg
from .registry import register

E_COL = 0
E_VAL = 4
E_NEXT = 8
E_JP = 12          # software jump-pointer (hardware uses the same slot)
ELEM_CLASS = 16
R_ELEMS = 0
R_NEXT = 4
SEED0 = 0x5EA15E


def _matrix(rows: int, cols: int, nnz_per_row: int):
    """Deterministic sparse structure shared by builder and mirror."""
    seed = SEED0
    structure = []
    for __ in range(rows):
        row = []
        for __e in range(nnz_per_row):
            seed = lcg(seed)
            col = seed % cols
            val = 0.25 + ((seed >> 8) & 255) / 512.0
            row.append((col, val))
        structure.append(row)
    x = [0.5 + (i % 13) * 0.125 for i in range(cols)]
    return structure, x


def mirror(rows: int, cols: int, nnz_per_row: int, iterations: int) -> float:
    structure, x = _matrix(rows, cols, nnz_per_row)
    total = 0.0
    for __ in range(iterations):
        total = 0.0
        for row in structure:
            acc = 0.0
            for col, val in row:
                acc = acc + val * x[col]
            total = total + acc
    return total


@register
class SpMV(Workload):
    name = "spmv"
    structure = (
        "linked rows of linked elements + gathered vector reads "
        "(extension: the paper's sparse-matrix generalization)"
    )
    idioms = ("queue",)
    variants = ("baseline", "sw:queue", "coop:queue")
    expectation = (
        "queue jumping on the element lists hides the chase; chained "
        "prefetching extends to the x[col] gathers"
    )

    @classmethod
    def default_params(cls) -> dict:
        return {"rows": 96, "cols": 512, "nnz_per_row": 8, "iterations": 8,
                "interval": 8}

    @classmethod
    def test_params(cls) -> dict:
        return {"rows": 8, "cols": 32, "nnz_per_row": 3, "iterations": 2,
                "interval": 4}

    def build_variant(self, variant: str) -> BuiltProgram:
        impl, idiom = parse_variant(variant)
        rows: int = self.params["rows"]
        cols: int = self.params["cols"]
        nnz: int = self.params["nnz_per_row"]
        iterations: int = self.params["iterations"]
        interval: int = self.params["interval"]
        structure, x = _matrix(rows, cols, nnz)

        a = Assembler()
        res = a.word(0)
        row_head = a.word(0)
        s_cols = a.array([c for row in structure for c, __ in row])
        s_vals = a.array([v for row in structure for __, v in row])
        s_x = a.array(x)
        queue = SoftwareJumpQueue(a, interval, "mjq") if impl != "baseline" else None

        # ---- build: rows front-to-back, elements appended at the tail so
        # creation order equals traversal order ------------------------------
        a.label("main")
        a.li(S0, rows - 1)        # row index, descending (prepend rows)
        a.label("b_row")
        a.blt(S0, ZERO, "compute")
        a.alloc(S1, ZERO, 8)      # row header {elems, next}
        a.li(T0, row_head)
        a.lw(T1, T0, 0)
        a.sw(T1, S1, R_NEXT)
        a.sw(S1, T0, 0)
        # elements of this row, tail-appended: walk the static tables in
        # reverse so the *list* ends up in table order
        a.li(S2, nnz - 1)
        a.label("b_elem")
        a.blt(S2, ZERO, "b_row_next")
        a.alloc(T0, ZERO, 12)
        a.li(T1, nnz)
        a.mul(T2, S0, T1)
        a.add(T2, T2, S2)
        a.slli(T2, T2, 2)
        a.addi(T3, T2, s_cols)
        a.lw(T3, T3, 0)
        a.sw(T3, T0, E_COL)
        a.addi(T3, T2, s_vals)
        a.lw(T3, T3, 0)
        a.sw(T3, T0, E_VAL)
        a.lw(T4, S1, R_ELEMS)
        a.sw(T4, T0, E_NEXT)      # prepend within the row
        a.sw(T0, S1, R_ELEMS)
        if queue is not None:
            # rows are prepended and elements prepended: creation order is
            # the exact reverse of traversal order -> install backward
            queue.update(T0, E_JP, T2, T3, T4, reverse=True)
        a.addi(S2, S2, -1)
        a.j("b_elem")
        a.label("b_row_next")
        a.addi(S0, S0, -1)
        a.j("b_row")

        # ---- y = A x, `iterations` times -----------------------------------
        a.label("compute")
        a.li(S7, iterations)
        a.label("iter")
        a.beqz(S7, "end")
        a.fli(S6, 0.0)            # total
        a.li(T0, row_head)
        a.lw(S1, T0, 0, tag="lds")
        a.label("c_row")
        a.beqz(S1, "iter_done")
        a.fli(S5, 0.0)            # row accumulator
        a.lw(S2, S1, R_ELEMS, tag="lds")
        a.label("c_elem")
        a.beqz(S2, "c_row_done")
        if impl == "sw":
            a.lw(T5, S2, E_JP, tag="lds")
            a.pf(T5, 0)
        elif impl == "coop":
            a.jpf(S2, E_JP)
        a.lw(T0, S2, E_COL, pad=ELEM_CLASS, tag="lds")
        a.slli(T0, T0, 2)
        a.addi(T0, T0, s_x)
        a.lw(T1, T0, 0, tag="lds")               # x[col] gather
        a.lw(T2, S2, E_VAL, pad=ELEM_CLASS, tag="lds")
        a.fmul(T1, T2, T1)
        a.fadd(S5, S5, T1)
        a.lw(S2, S2, E_NEXT, pad=ELEM_CLASS, tag="lds")
        a.j("c_elem")
        a.label("c_row_done")
        a.fadd(S6, S6, S5)
        a.lw(S1, S1, R_NEXT, tag="lds")
        a.j("c_row")
        a.label("iter_done")
        a.addi(S7, S7, -1)
        a.j("iter")

        a.label("end")
        a.li(A0, res)
        a.sw(S6, A0, 0)
        a.halt()

        program = a.assemble(f"spmv[{variant}]")
        expected = mirror(rows, cols, nnz, iterations)

        def check(interp: Interpreter) -> None:
            got = interp.memory.load(res)
            assert got == expected, f"spmv: {got!r} != {expected!r}"

        return BuiltProgram(
            program=program,
            expected={"y_total": expected},
            check=check,
        )
