"""Workloads: the Olden benchmark suite on the mini-ISA."""

from .base import BuiltProgram, Workload, parse_variant
from .registry import get_workload, register, workload_class, workload_names

__all__ = [
    "BuiltProgram",
    "Workload",
    "get_workload",
    "parse_variant",
    "register",
    "workload_class",
    "workload_names",
]
