"""repro — reproduction of "Effective Jump-Pointer Prefetching for Linked
Data Structures" (Roth & Sohi, ISCA 1999).

Public API highlights:

* :func:`repro.simulate` / :func:`repro.simulate_decomposed` — run a
  mini-ISA program on the simulated Table-2 machine.
* :func:`repro.get_workload` — the Olden kernels and their JPP variants.
* :class:`repro.MachineConfig` — machine parameters (Table 2 defaults).
* :mod:`repro.core` — the JPP framework: idioms, the software jump queue,
  and the Table-1 characterization.
* :mod:`repro.harness` — experiment runners for every paper table/figure.
* :mod:`repro.obs` — observability: metric registry, prefetch-outcome
  classification, event tracing, machine-readable run artifacts.
"""

from .config import (
    BranchPredConfig,
    BusConfig,
    CacheConfig,
    FuncUnitConfig,
    MachineConfig,
    PrefetchConfig,
    TLBConfig,
    bench_config,
    small_config,
    table2_config,
)
from .cpu import (
    Decomposition,
    SimResult,
    make_engine,
    simulate,
    simulate_decomposed,
)
from .core import Idiom, characterize, recommended_interval
from .errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    ReproError,
    WorkloadError,
)
from .isa import Assembler, Interpreter, Op, Program, run_to_completion
from .obs import EventTrace, MetricRegistry, Telemetry
from .workloads import BuiltProgram, Workload, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "Assembler",
    "BranchPredConfig",
    "BuiltProgram",
    "BusConfig",
    "CacheConfig",
    "ConfigError",
    "Decomposition",
    "EventTrace",
    "ExecutionError",
    "FuncUnitConfig",
    "Idiom",
    "Interpreter",
    "MachineConfig",
    "MetricRegistry",
    "Op",
    "PrefetchConfig",
    "Program",
    "ReproError",
    "SimResult",
    "TLBConfig",
    "Telemetry",
    "Workload",
    "WorkloadError",
    "__version__",
    "bench_config",
    "characterize",
    "get_workload",
    "make_engine",
    "recommended_interval",
    "run_to_completion",
    "simulate",
    "simulate_decomposed",
    "small_config",
    "table2_config",
    "workload_names",
]
