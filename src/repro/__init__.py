"""repro — reproduction of "Effective Jump-Pointer Prefetching for Linked
Data Structures" (Roth & Sohi, ISCA 1999).

Public API highlights:

* :func:`repro.simulate` / :func:`repro.simulate_decomposed` — run a
  mini-ISA program on the simulated Table-2 machine.
* :func:`repro.get_workload` — the Olden kernels and their JPP variants.
* :class:`repro.MachineConfig` — machine parameters (Table 2 defaults).
* :mod:`repro.core` — the JPP framework: idioms, the software jump queue,
  and the Table-1 characterization.
* :mod:`repro.harness` — experiment runners for every paper table/figure,
  plus declarative :class:`~repro.harness.ExperimentSpec` files
  (``examples/specs/``) run via :func:`~repro.harness.run_spec`.
* :func:`repro.get_machine` / :func:`repro.machine_names` — the named
  machine registry (``table2``, ``bench``, ``small``).
* :mod:`repro.obs` — observability: metric registry, prefetch-outcome
  classification, event tracing, machine-readable run artifacts.
"""

from .config import (
    BranchPredConfig,
    BusConfig,
    CacheConfig,
    FuncUnitConfig,
    MachineConfig,
    PrefetchConfig,
    TLBConfig,
    bench_config,
    get_machine,
    machine_names,
    register_machine,
    small_config,
    table2_config,
)
from .registry import Registry, describe_registries
from .cpu import (
    Decomposition,
    SimResult,
    make_engine,
    simulate,
    simulate_decomposed,
)
from .core import Idiom, characterize, recommended_interval
from .errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    ReproError,
    WorkloadError,
)
from .isa import Assembler, Interpreter, Op, Program, run_to_completion
from .obs import EventTrace, MetricRegistry, Telemetry
from .workloads import BuiltProgram, Workload, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "Assembler",
    "BranchPredConfig",
    "BuiltProgram",
    "BusConfig",
    "CacheConfig",
    "ConfigError",
    "Decomposition",
    "EventTrace",
    "ExecutionError",
    "FuncUnitConfig",
    "Idiom",
    "Interpreter",
    "MachineConfig",
    "MetricRegistry",
    "Op",
    "PrefetchConfig",
    "Program",
    "Registry",
    "ReproError",
    "SimResult",
    "TLBConfig",
    "Telemetry",
    "Workload",
    "WorkloadError",
    "__version__",
    "bench_config",
    "characterize",
    "describe_registries",
    "get_machine",
    "get_workload",
    "machine_names",
    "make_engine",
    "recommended_interval",
    "register_machine",
    "run_to_completion",
    "simulate",
    "simulate_decomposed",
    "small_config",
    "table2_config",
    "workload_names",
]
