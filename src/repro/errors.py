"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblyError(ReproError):
    """Raised for malformed programs: undefined labels, bad operands, etc."""


class ExecutionError(ReproError):
    """Raised when the functional interpreter cannot make progress.

    Examples: executing past the end of the text segment, exceeding the
    instruction budget, or dereferencing an address outside the simulated
    address space.
    """


class ConfigError(ReproError):
    """Raised for inconsistent machine or prefetcher configurations."""


class WorkloadError(ReproError):
    """Raised when a workload is asked for a variant it does not support."""
