"""Static instruction representation."""

from __future__ import annotations

from .opcodes import (
    BRANCH_OPS,
    CONTROL_OPS,
    MEM_OPS,
    Op,
)
from .registers import reg_name

#: Base virtual address of the text segment; instruction *i* lives at
#: ``TEXT_BASE + 4 * i``.
TEXT_BASE = 0x0040_0000
WORD = 4


class Instruction:
    """One static mini-ISA instruction.

    ``target`` holds a label name until the program is assembled, after
    which it is resolved to an instruction index.  ``pad`` is the annotated
    load size-class (0 = unannotated); ``tag`` is a free-form marker used by
    workload builders (e.g. ``"lds"`` on linked-data-structure loads, which
    drives the Table-1 characterization).
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "target", "pad", "tag", "index")

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: float | int = 0,
        target: str | int | None = None,
        pad: int = 0,
        tag: str | None = None,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.pad = pad
        self.tag = tag
        self.index = -1  # assigned at assembly

    @property
    def address(self) -> int:
        """Virtual address of this instruction."""
        return TEXT_BASE + WORD * self.index

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.op.name.lower()]
        if self.op in (Op.LW, Op.SW, Op.PF, Op.JPF):
            reg = self.rd if self.op == Op.LW else self.rs2
            parts.append(f"{reg_name(reg)}, {self.imm}({reg_name(self.rs1)})")
            if self.pad:
                parts.append(f"[pad={self.pad}]")
        elif self.op in BRANCH_OPS:
            parts.append(
                f"{reg_name(self.rs1)}, {reg_name(self.rs2)}, {self.target}"
            )
        elif self.op in (Op.J, Op.JAL):
            parts.append(str(self.target))
        elif self.op == Op.JR:
            parts.append(reg_name(self.rs1))
        else:
            parts.append(
                f"{reg_name(self.rd)}, {reg_name(self.rs1)}, "
                f"{reg_name(self.rs2)}, imm={self.imm}"
            )
        if self.tag:
            parts.append(f"#{self.tag}")
        return " ".join(parts)
