"""Opcodes of the mini-ISA and their classification.

The ISA is a small RISC modelled on MIPS-I (the paper's target): 32
integer registers, 4-byte words, register+offset addressing.  Three
extensions carry the paper's mechanisms:

* ``PF``   — a non-binding software prefetch (completes at issue, may start
  TLB miss handling), used by the software JPP implementations.
* ``JPF``  — the cooperative jump-pointer prefetch: a single non-binding
  *indirect* prefetch. Hardware loads the word at ``rs1+imm`` (the
  jump-pointer), prefetches the block it names, and feeds the value to the
  dependence predictor so chained prefetches can be spawned (Section 3.2).
* annotated loads — ordinary ``LW`` instructions carry an optional ``pad``
  attribute, the paper's ``h8/h16/...`` load variants of Section 3.3: the
  referenced object's size rounded up to the next power of two, letting the
  hardware locate jump-pointer storage in allocator padding.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """All mini-ISA opcodes."""

    # Integer ALU (register-register)
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLTU = enum.auto()
    # Integer ALU (register-immediate)
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()
    SLTI = enum.auto()
    # Integer multiply / divide
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    # Floating point
    FADD = enum.auto()
    FSUB = enum.auto()
    FNEG = enum.auto()
    FABS = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FSQRT = enum.auto()
    FLT = enum.auto()   # rd = 1 if rs1 < rs2 else 0
    FLE = enum.auto()
    FEQ = enum.auto()
    I2F = enum.auto()
    F2I = enum.auto()
    # Memory
    LW = enum.auto()
    SW = enum.auto()
    PF = enum.auto()
    JPF = enum.auto()
    ALLOC = enum.auto()
    # Control
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    HALT = enum.auto()
    NOP = enum.auto()


class FuClass(enum.IntEnum):
    """Functional unit classes (Table 2's pool)."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    MEM_PORT = 6
    NONE = 7


INT_RR_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
    Op.SLT, Op.SLTU,
})
INT_RI_OPS = frozenset({
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI, Op.SLTI,
})
FP_ADD_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FNEG, Op.FABS, Op.FLT, Op.FLE, Op.FEQ, Op.I2F, Op.F2I,
})
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
JUMP_OPS = frozenset({Op.J, Op.JAL, Op.JR})
CONTROL_OPS = BRANCH_OPS | JUMP_OPS
MEM_OPS = frozenset({Op.LW, Op.SW, Op.PF, Op.JPF})
PREFETCH_OPS = frozenset({Op.PF, Op.JPF})


#: Functional-unit class executing each opcode.
FU_CLASS: dict[Op, FuClass] = {}
for _op in INT_RR_OPS | INT_RI_OPS | CONTROL_OPS | {Op.ALLOC}:
    FU_CLASS[_op] = FuClass.INT_ALU
FU_CLASS[Op.MUL] = FuClass.INT_MUL
FU_CLASS[Op.DIV] = FuClass.INT_DIV
FU_CLASS[Op.REM] = FuClass.INT_DIV
for _op in FP_ADD_OPS:
    FU_CLASS[_op] = FuClass.FP_ADD
FU_CLASS[Op.FMUL] = FuClass.FP_MUL
FU_CLASS[Op.FDIV] = FuClass.FP_DIV
FU_CLASS[Op.FSQRT] = FuClass.FP_DIV
for _op in MEM_OPS:
    FU_CLASS[_op] = FuClass.MEM_PORT
FU_CLASS[Op.HALT] = FuClass.NONE
FU_CLASS[Op.NOP] = FuClass.NONE
del _op
