"""Functional interpreter for the mini-ISA.

Executes a :class:`~repro.isa.program.Program` and lazily yields the
committed dynamic instruction stream that the timing model consumes.  Each
yielded record is a tuple ``(inst, addr, value, taken)``:

* ``inst``  — the static :class:`~repro.isa.instruction.Instruction`
* ``addr``  — effective address for memory ops (else 0)
* ``value`` — loaded value / stored value / ALLOC result / JR target index
* ``taken`` — branch outcome (True for taken and all jumps)

The interpreter is deterministic, so a trace can be regenerated for the
second (compute-time) simulation of the paper's decomposition.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import ExecutionError
from ..mem.allocator import SizeClassAllocator
from ..mem.memory_image import MemoryImage
from .instruction import Instruction
from .opcodes import Op
from .program import Program
from .registers import NUM_REGS, SP

DynRecord = tuple[Instruction, int, int | float, bool]

_DEFAULT_MAX_STEPS = 200_000_000


class Interpreter:
    """See module docstring."""

    def __init__(self, program: Program, max_steps: int = _DEFAULT_MAX_STEPS) -> None:
        self.program = program
        self.max_steps = max_steps
        self.memory = MemoryImage(program.initial_memory)
        self.allocator = SizeClassAllocator(program.heap_base)
        self.registers: list[int | float] = [0] * NUM_REGS
        self.registers[SP] = program.stack_top
        self.steps = 0
        self.finished = False

    def run(self) -> Iterator[DynRecord]:
        """Execute until HALT, yielding the committed instruction stream."""
        regs = self.registers
        mem = self.memory._words  # hot path: direct dict access
        insts = self.program.instructions
        n = len(insts)
        pc = self.program.entry
        steps = 0
        max_steps = self.max_steps

        while True:
            if not 0 <= pc < n:
                raise ExecutionError(f"pc {pc} outside text segment (0..{n - 1})")
            if steps >= max_steps:
                raise ExecutionError(
                    f"instruction budget exceeded ({max_steps}); likely an "
                    f"infinite loop at pc {pc}"
                )
            inst = insts[pc]
            op = inst.op
            steps += 1
            next_pc = pc + 1
            addr = 0
            value: int | float = 0
            taken = False

            if op == Op.LW:
                addr = regs[inst.rs1] + inst.imm
                if addr % 4 or addr < 0:
                    raise ExecutionError(
                        f"pc {pc}: misaligned/negative load address {addr:#x}"
                    )
                value = mem.get(addr, 0)
                regs[inst.rd] = value
                if inst.rd == 0:
                    regs[0] = 0
            elif op == Op.SW:
                addr = regs[inst.rs1] + inst.imm
                if addr % 4 or addr < 0:
                    raise ExecutionError(
                        f"pc {pc}: misaligned/negative store address {addr:#x}"
                    )
                value = regs[inst.rs2]
                mem[addr] = value
            elif op == Op.ADDI:
                regs[inst.rd] = regs[inst.rs1] + inst.imm
                if inst.rd == 0:
                    regs[0] = 0
            elif op == Op.ADD:
                regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2]
                if inst.rd == 0:
                    regs[0] = 0
            elif op == Op.BNE:
                taken = regs[inst.rs1] != regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op == Op.BEQ:
                taken = regs[inst.rs1] == regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op == Op.BLT:
                taken = regs[inst.rs1] < regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op == Op.BGE:
                taken = regs[inst.rs1] >= regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op == Op.J:
                taken = True
                next_pc = inst.target
            elif op == Op.JAL:
                taken = True
                regs[inst.rd] = pc + 1
                next_pc = inst.target
                value = next_pc
            elif op == Op.JR:
                taken = True
                next_pc = regs[inst.rs1]
                if not isinstance(next_pc, int):
                    raise ExecutionError(f"pc {pc}: JR to non-integer target")
                value = next_pc
            elif op == Op.PF or op == Op.JPF:
                addr = regs[inst.rs1] + inst.imm
            elif op == Op.SUB:
                regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2]
            elif op == Op.MUL:
                regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2]
            elif op == Op.DIV:
                b = regs[inst.rs2]
                if b == 0:
                    raise ExecutionError(f"pc {pc}: integer division by zero")
                regs[inst.rd] = int(regs[inst.rs1] / b)
            elif op == Op.REM:
                b = regs[inst.rs2]
                if b == 0:
                    raise ExecutionError(f"pc {pc}: integer remainder by zero")
                a = regs[inst.rs1]
                regs[inst.rd] = a - int(a / b) * b
            elif op == Op.SLT:
                regs[inst.rd] = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
            elif op == Op.SLTU:
                regs[inst.rd] = 1 if abs(regs[inst.rs1]) < abs(regs[inst.rs2]) else 0
            elif op == Op.SLTI:
                regs[inst.rd] = 1 if regs[inst.rs1] < inst.imm else 0
            elif op == Op.AND:
                regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2]
            elif op == Op.OR:
                regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2]
            elif op == Op.XOR:
                regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2]
            elif op == Op.ANDI:
                regs[inst.rd] = regs[inst.rs1] & inst.imm
            elif op == Op.ORI:
                regs[inst.rd] = regs[inst.rs1] | inst.imm
            elif op == Op.XORI:
                regs[inst.rd] = regs[inst.rs1] ^ inst.imm
            elif op == Op.SLL:
                regs[inst.rd] = regs[inst.rs1] << regs[inst.rs2]
            elif op == Op.SRL or op == Op.SRA:
                regs[inst.rd] = regs[inst.rs1] >> regs[inst.rs2]
            elif op == Op.SLLI:
                regs[inst.rd] = regs[inst.rs1] << inst.imm
            elif op == Op.SRLI or op == Op.SRAI:
                regs[inst.rd] = regs[inst.rs1] >> inst.imm
            elif op == Op.FADD:
                regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2]
            elif op == Op.FSUB:
                regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2]
            elif op == Op.FNEG:
                regs[inst.rd] = -regs[inst.rs1]
            elif op == Op.FABS:
                regs[inst.rd] = abs(regs[inst.rs1])
            elif op == Op.FMUL:
                regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2]
            elif op == Op.FDIV:
                b = regs[inst.rs2]
                if b == 0:
                    raise ExecutionError(f"pc {pc}: FP division by zero")
                regs[inst.rd] = regs[inst.rs1] / b
            elif op == Op.FSQRT:
                v = regs[inst.rs1]
                if v < 0:
                    raise ExecutionError(f"pc {pc}: FSQRT of negative value")
                regs[inst.rd] = math.sqrt(v)
            elif op == Op.FLT:
                regs[inst.rd] = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
            elif op == Op.FLE:
                regs[inst.rd] = 1 if regs[inst.rs1] <= regs[inst.rs2] else 0
            elif op == Op.FEQ:
                regs[inst.rd] = 1 if regs[inst.rs1] == regs[inst.rs2] else 0
            elif op == Op.I2F:
                regs[inst.rd] = float(regs[inst.rs1])
            elif op == Op.F2I:
                regs[inst.rd] = int(regs[inst.rs1])
            elif op == Op.ALLOC:
                size = regs[inst.rs1] + inst.imm
                addr = self.allocator.alloc(int(size))
                regs[inst.rd] = addr
                value = addr
            elif op == Op.NOP:
                pass
            elif op == Op.HALT:
                self.steps = steps
                self.finished = True
                yield (inst, 0, 0, False)
                return
            else:  # pragma: no cover - exhaustive over Op
                raise ExecutionError(f"pc {pc}: unimplemented opcode {op.name}")

            if inst.rd == 0 and op not in (Op.SW, Op.PF, Op.JPF, Op.NOP):
                regs[0] = 0
            yield (inst, addr, value, taken)
            pc = next_pc
            self.steps = steps


def run_to_completion(program: Program, max_steps: int = _DEFAULT_MAX_STEPS) -> Interpreter:
    """Run ``program`` functionally, discarding the trace; returns the
    interpreter for state inspection (registers, memory, allocator)."""
    interp = Interpreter(program, max_steps=max_steps)
    for _ in interp.run():
        pass
    return interp
