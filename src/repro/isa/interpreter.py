"""Functional interpreter for the mini-ISA.

Executes a :class:`~repro.isa.program.Program` and lazily yields the
committed dynamic instruction stream that the timing model consumes.  Each
yielded record is a tuple ``(inst, addr, value, taken)``:

* ``inst``  — the static :class:`~repro.isa.instruction.Instruction`
* ``addr``  — effective address for memory ops (else 0)
* ``value`` — loaded value / stored value / ALLOC result / JR target index
* ``taken`` — branch outcome (True for taken and all jumps)

The interpreter is deterministic, so a trace can be regenerated for the
second (compute-time) simulation of the paper's decomposition.

The dispatch loop works on a *decoded* form of the program: each static
instruction is predigested once into a flat tuple ``(handler-id, rd, rs1,
rs2, imm, target, clears-zero, inst)`` so the per-dynamic-instruction cost
is one list index, one tuple unpack and a chain of small-int comparisons —
no attribute lookups and no enum comparisons.  Opcodes whose semantics
coincide (``ADD``/``FADD``, ``SRL``/``SRA``, ...) share a handler id.
Decoded programs are memoized on the :class:`Program` object, so the many
simulations of one program in a scheme matrix decode it only once.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import ExecutionError
from ..mem.allocator import SizeClassAllocator
from ..mem.memory_image import MemoryImage
from .instruction import Instruction
from .opcodes import Op
from .program import Program
from .registers import NUM_REGS, SP

DynRecord = tuple[Instruction, int, int | float, bool]

_DEFAULT_MAX_STEPS = 200_000_000

# Handler ids, ordered roughly by dynamic frequency.  Opcodes with
# identical semantics map to one handler (the yielded ``inst`` still
# carries the original opcode, so the timing model sees no difference).
(
    _H_LW, _H_SW, _H_ADDI, _H_ADD, _H_BNE, _H_BEQ, _H_BLT, _H_BGE,
    _H_J, _H_JAL, _H_JR, _H_PF, _H_SUB, _H_MUL, _H_SLT, _H_SLTI,
    _H_ALLOC, _H_AND, _H_OR, _H_XOR, _H_ANDI, _H_ORI, _H_XORI,
    _H_SLL, _H_SRL, _H_SLLI, _H_SRLI, _H_DIV, _H_REM, _H_SLTU,
    _H_FNEG, _H_FABS, _H_FDIV, _H_FSQRT, _H_FLE, _H_FEQ, _H_I2F,
    _H_F2I, _H_NOP, _H_HALT,
) = range(40)

_HANDLER: dict[Op, int] = {
    Op.LW: _H_LW, Op.SW: _H_SW, Op.ADDI: _H_ADDI,
    Op.ADD: _H_ADD, Op.FADD: _H_ADD,
    Op.BNE: _H_BNE, Op.BEQ: _H_BEQ, Op.BLT: _H_BLT, Op.BGE: _H_BGE,
    Op.J: _H_J, Op.JAL: _H_JAL, Op.JR: _H_JR,
    Op.PF: _H_PF, Op.JPF: _H_PF,
    Op.SUB: _H_SUB, Op.FSUB: _H_SUB,
    Op.MUL: _H_MUL, Op.FMUL: _H_MUL,
    Op.SLT: _H_SLT, Op.FLT: _H_SLT,
    Op.SLTI: _H_SLTI, Op.ALLOC: _H_ALLOC,
    Op.AND: _H_AND, Op.OR: _H_OR, Op.XOR: _H_XOR,
    Op.ANDI: _H_ANDI, Op.ORI: _H_ORI, Op.XORI: _H_XORI,
    Op.SLL: _H_SLL, Op.SRL: _H_SRL, Op.SRA: _H_SRL,
    Op.SLLI: _H_SLLI, Op.SRLI: _H_SRLI, Op.SRAI: _H_SRLI,
    Op.DIV: _H_DIV, Op.REM: _H_REM, Op.SLTU: _H_SLTU,
    Op.FNEG: _H_FNEG, Op.FABS: _H_FABS, Op.FDIV: _H_FDIV,
    Op.FSQRT: _H_FSQRT, Op.FLE: _H_FLE, Op.FEQ: _H_FEQ,
    Op.I2F: _H_I2F, Op.F2I: _H_F2I,
    Op.NOP: _H_NOP, Op.HALT: _H_HALT,
}

#: Opcodes exempt from the architectural zero-register reset.
_NO_ZERO_CLEAR = (Op.SW, Op.PF, Op.JPF, Op.NOP)

_DecodedInst = tuple[
    int, int, int, int, int | float, "str | int | None", bool, Instruction
]


def decode_memo(program: Program, key) -> dict:
    """Keyed per-program decode/compile cache slot for ``key``.

    Every consumer of predigested program forms — the decode-table
    interpreter (key ``"table"``), the block-JIT's per-block code objects
    (key ``("blockjit", max_block)``), the fused timing blocks (key
    ``("fused", signature)``) — memoizes under its own key so two engine
    kinds can never alias each other's decodings after a hot-swap.  The
    whole memo is invalidated when the program's instruction count
    changes (the pre-existing staleness guard, now shared by every key).
    """
    n = len(program.instructions)
    memo = getattr(program, "_decode_memo", None)
    if memo is None or memo.get("_n") != n:
        memo = {"_n": n}
        try:
            program._decode_memo = memo
        except AttributeError:  # pragma: no cover - slotted Program
            return {}
    return memo.setdefault(key, {})


def decode_program(program: Program) -> list[_DecodedInst]:
    """Predigest ``program`` for the dispatch loop (memoized per program)."""
    slot = decode_memo(program, "table")
    cached = slot.get("decoded")
    if cached is not None and len(cached) == len(program.instructions):
        return cached
    decoded = []
    for inst in program.instructions:
        op = inst.op
        try:
            hid = _HANDLER[op]
        except KeyError:  # pragma: no cover - exhaustive over Op
            raise ExecutionError(f"unimplemented opcode {op.name}") from None
        clears = inst.rd == 0 and op not in _NO_ZERO_CLEAR
        decoded.append(
            (hid, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.target,
             clears, inst)
        )
    slot["decoded"] = decoded
    return decoded


class Interpreter:
    """See module docstring."""

    def __init__(
        self, program: Program, max_steps: int | None = _DEFAULT_MAX_STEPS
    ) -> None:
        self.program = program
        self.max_steps = _DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self.memory = MemoryImage(program.initial_memory)
        self.allocator = SizeClassAllocator(program.heap_base)
        self.registers: list[int | float] = [0] * NUM_REGS
        self.registers[SP] = program.stack_top
        self.steps = 0
        self.finished = False

    def run(self) -> Iterator[DynRecord]:
        """Execute until HALT, yielding the committed instruction stream."""
        regs = self.registers
        mem = self.memory._words  # hot path: direct dict access
        mem_get = mem.get
        alloc = self.allocator.alloc
        code = decode_program(self.program)
        n = len(code)
        pc = self.program.entry
        steps = 0
        max_steps = self.max_steps

        try:
            while True:
                if not 0 <= pc < n:
                    raise ExecutionError(
                        f"pc {pc} outside text segment (0..{n - 1})"
                    )
                if steps >= max_steps:
                    raise ExecutionError(
                        f"instruction budget exceeded ({max_steps}); likely an "
                        f"infinite loop at pc {pc}"
                    )
                hid, rd, rs1, rs2, imm, target, clears, inst = code[pc]
                steps += 1
                next_pc = pc + 1
                addr = 0
                value: int | float = 0
                taken = False

                if hid == _H_LW:
                    addr = regs[rs1] + imm
                    if addr % 4 or addr < 0:
                        raise ExecutionError(
                            f"pc {pc}: misaligned/negative load address {addr:#x}"
                        )
                    value = mem_get(addr, 0)
                    regs[rd] = value
                elif hid == _H_SW:
                    addr = regs[rs1] + imm
                    if addr % 4 or addr < 0:
                        raise ExecutionError(
                            f"pc {pc}: misaligned/negative store address {addr:#x}"
                        )
                    value = regs[rs2]
                    mem[addr] = value
                elif hid == _H_ADDI:
                    regs[rd] = regs[rs1] + imm
                elif hid == _H_ADD:
                    regs[rd] = regs[rs1] + regs[rs2]
                elif hid == _H_BNE:
                    taken = regs[rs1] != regs[rs2]
                    if taken:
                        next_pc = target
                elif hid == _H_BEQ:
                    taken = regs[rs1] == regs[rs2]
                    if taken:
                        next_pc = target
                elif hid == _H_BLT:
                    taken = regs[rs1] < regs[rs2]
                    if taken:
                        next_pc = target
                elif hid == _H_BGE:
                    taken = regs[rs1] >= regs[rs2]
                    if taken:
                        next_pc = target
                elif hid == _H_J:
                    taken = True
                    next_pc = target
                elif hid == _H_JAL:
                    taken = True
                    regs[rd] = pc + 1
                    next_pc = target
                    value = next_pc
                elif hid == _H_JR:
                    taken = True
                    next_pc = regs[rs1]
                    if not isinstance(next_pc, int):
                        raise ExecutionError(f"pc {pc}: JR to non-integer target")
                    value = next_pc
                elif hid == _H_PF:
                    addr = regs[rs1] + imm
                elif hid == _H_SUB:
                    regs[rd] = regs[rs1] - regs[rs2]
                elif hid == _H_MUL:
                    regs[rd] = regs[rs1] * regs[rs2]
                elif hid == _H_SLT:
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                elif hid == _H_SLTI:
                    regs[rd] = 1 if regs[rs1] < imm else 0
                elif hid == _H_ALLOC:
                    size = regs[rs1] + imm
                    addr = alloc(int(size))
                    regs[rd] = addr
                    value = addr
                elif hid == _H_AND:
                    regs[rd] = regs[rs1] & regs[rs2]
                elif hid == _H_OR:
                    regs[rd] = regs[rs1] | regs[rs2]
                elif hid == _H_XOR:
                    regs[rd] = regs[rs1] ^ regs[rs2]
                elif hid == _H_ANDI:
                    regs[rd] = regs[rs1] & imm
                elif hid == _H_ORI:
                    regs[rd] = regs[rs1] | imm
                elif hid == _H_XORI:
                    regs[rd] = regs[rs1] ^ imm
                elif hid == _H_SLL:
                    regs[rd] = regs[rs1] << regs[rs2]
                elif hid == _H_SRL:
                    regs[rd] = regs[rs1] >> regs[rs2]
                elif hid == _H_SLLI:
                    regs[rd] = regs[rs1] << imm
                elif hid == _H_SRLI:
                    regs[rd] = regs[rs1] >> imm
                elif hid == _H_DIV:
                    b = regs[rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: integer division by zero")
                    regs[rd] = int(regs[rs1] / b)
                elif hid == _H_REM:
                    b = regs[rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: integer remainder by zero")
                    a = regs[rs1]
                    regs[rd] = a - int(a / b) * b
                elif hid == _H_SLTU:
                    regs[rd] = 1 if abs(regs[rs1]) < abs(regs[rs2]) else 0
                elif hid == _H_FNEG:
                    regs[rd] = -regs[rs1]
                elif hid == _H_FABS:
                    regs[rd] = abs(regs[rs1])
                elif hid == _H_FDIV:
                    b = regs[rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: FP division by zero")
                    regs[rd] = regs[rs1] / b
                elif hid == _H_FSQRT:
                    v = regs[rs1]
                    if v < 0:
                        raise ExecutionError(f"pc {pc}: FSQRT of negative value")
                    regs[rd] = math.sqrt(v)
                elif hid == _H_FLE:
                    regs[rd] = 1 if regs[rs1] <= regs[rs2] else 0
                elif hid == _H_FEQ:
                    regs[rd] = 1 if regs[rs1] == regs[rs2] else 0
                elif hid == _H_I2F:
                    regs[rd] = float(regs[rs1])
                elif hid == _H_F2I:
                    regs[rd] = int(regs[rs1])
                elif hid == _H_NOP:
                    pass
                else:  # _H_HALT
                    self.finished = True
                    yield (inst, 0, 0, False)
                    return

                if clears:
                    regs[0] = 0
                yield (inst, addr, value, taken)
                pc = next_pc
        finally:
            self.steps = steps

    # Backwards-compatible alias: external tools introspecting the decode
    # table (tests, debuggers) go through this.
    decode = staticmethod(decode_program)


def run_to_completion(
    program: Program, max_steps: int | None = _DEFAULT_MAX_STEPS
) -> Interpreter:
    """Run ``program`` functionally, discarding the trace; returns the
    interpreter for state inspection (registers, memory, allocator)."""
    interp = Interpreter(program, max_steps=max_steps)
    for _ in interp.run():
        pass
    return interp
