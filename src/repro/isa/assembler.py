"""A builder DSL for writing mini-ISA programs from Python.

Workload kernels are written against this class.  It provides one method
per opcode, pseudo-instructions (``li``, ``mov``, ...), stack/call macros,
and static-data helpers.  ``assemble()`` produces an immutable
:class:`~repro.isa.program.Program`.

Example::

    a = Assembler()
    a.label("loop")
    a.lw(T0, A0, 4, tag="lds")       # t0 = a0->next
    a.beq(T0, ZERO, "done")
    a.mov(A0, T0)
    a.j("loop")
    a.label("done")
    a.halt()
    program = a.assemble("list_walk")
"""

from __future__ import annotations

from ..errors import AssemblyError
from .instruction import WORD, Instruction
from .opcodes import Op
from .program import DATA_BASE, HEAP_BASE, STACK_TOP, Program
from .registers import RA, SP, ZERO


class Assembler:
    """Incrementally builds a program; see module docstring."""

    def __init__(
        self,
        data_base: int = DATA_BASE,
        heap_base: int = HEAP_BASE,
        stack_top: int = STACK_TOP,
    ) -> None:
        self._insts: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._memory: dict[int, int | float] = {}
        self._data_cursor = data_base
        self._heap_base = heap_base
        self._stack_top = stack_top
        self._gensym = 0

    # ------------------------------------------------------------------
    # Labels and assembly
    # ------------------------------------------------------------------

    def label(self, name: str) -> str:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return name

    def newlabel(self, prefix: str = "L") -> str:
        """Generate a fresh, unique label name (not yet placed)."""
        self._gensym += 1
        return f".{prefix}_{self._gensym}"

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._insts)

    def assemble(self, name: str = "program") -> Program:
        return Program(
            instructions=self._insts,
            labels=self._labels,
            initial_memory=dict(self._memory),
            entry=self._labels.get("main", 0),
            heap_base=self._heap_base,
            stack_top=self._stack_top,
            name=name,
        )

    # ------------------------------------------------------------------
    # Static data
    # ------------------------------------------------------------------

    def word(self, value: int | float = 0) -> int:
        """Reserve one initialized word in the data segment; returns address."""
        addr = self._data_cursor
        self._memory[addr] = value
        self._data_cursor += WORD
        return addr

    def array(self, values: list[int | float]) -> int:
        """Reserve a contiguous initialized array; returns base address."""
        base = self._data_cursor
        for v in values:
            self._memory[self._data_cursor] = v
            self._data_cursor += WORD
        return base

    def space(self, nwords: int) -> int:
        """Reserve ``nwords`` zero-initialized words; returns base address."""
        return self.array([0] * nwords)

    def poke(self, addr: int, value: int | float) -> None:
        """Overwrite one word of the initial data image (e.g. to link
        statically laid out records after reserving them)."""
        if addr % WORD:
            raise AssemblyError(f"poke to misaligned address {addr:#x}")
        self._memory[addr] = value

    @property
    def data_cursor(self) -> int:
        """Next free data-segment address."""
        return self._data_cursor

    # ------------------------------------------------------------------
    # Raw emit
    # ------------------------------------------------------------------

    def emit(self, inst: Instruction) -> Instruction:
        self._insts.append(inst)
        return inst

    def _rr(self, op: Op, rd: int, rs1: int, rs2: int, tag: str | None = None) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, tag=tag))

    def _ri(self, op: Op, rd: int, rs1: int, imm: int | float, tag: str | None = None) -> Instruction:
        return self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm, tag=tag))

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------

    def add(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.SUB, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.XOR, rd, rs1, rs2)

    def sll(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.SLL, rd, rs1, rs2)

    def srl(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.SRL, rd, rs1, rs2)

    def slt(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.SLT, rd, rs1, rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.ADDI, rd, rs1, imm)

    def andi(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.ANDI, rd, rs1, imm)

    def ori(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.ORI, rd, rs1, imm)

    def xori(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.XORI, rd, rs1, imm)

    def slli(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.SLLI, rd, rs1, imm)

    def srli(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.SRLI, rd, rs1, imm)

    def slti(self, rd: int, rs1: int, imm: int) -> Instruction:
        return self._ri(Op.SLTI, rd, rs1, imm)

    def mul(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.MUL, rd, rs1, rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.DIV, rd, rs1, rs2)

    def rem(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.REM, rd, rs1, rs2)

    # Pseudo-instructions -------------------------------------------------

    def li(self, rd: int, value: int | float) -> Instruction:
        """Load immediate (assembles to ``addi rd, zero, value``)."""
        return self._ri(Op.ADDI, rd, ZERO, value)

    def mov(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.ADD, rd, rs, ZERO)

    def neg(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.SUB, rd, ZERO, rs)

    def nop(self) -> Instruction:
        return self.emit(Instruction(Op.NOP))

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------

    def fadd(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FADD, rd, rs1, rs2)

    def fsub(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FSUB, rd, rs1, rs2)

    def fneg(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.FNEG, rd, rs, ZERO)

    def fabs(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.FABS, rd, rs, ZERO)

    def fmul(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FMUL, rd, rs1, rs2)

    def fdiv(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FDIV, rd, rs1, rs2)

    def fsqrt(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.FSQRT, rd, rs, ZERO)

    def flt(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FLT, rd, rs1, rs2)

    def fle(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FLE, rd, rs1, rs2)

    def feq(self, rd: int, rs1: int, rs2: int) -> Instruction:
        return self._rr(Op.FEQ, rd, rs1, rs2)

    def i2f(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.I2F, rd, rs, ZERO)

    def f2i(self, rd: int, rs: int) -> Instruction:
        return self._rr(Op.F2I, rd, rs, ZERO)

    def fli(self, rd: int, value: float) -> Instruction:
        """Load floating-point immediate."""
        return self._ri(Op.ADDI, rd, ZERO, float(value))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def lw(
        self, rd: int, base: int, off: int = 0, pad: int = 0, tag: str | None = None
    ) -> Instruction:
        """``rd = mem[base + off]``.

        ``pad`` is the annotated-load size class (paper Section 3.3); ``tag``
        marks the load for characterization (e.g. ``"lds"``).
        """
        return self.emit(Instruction(Op.LW, rd=rd, rs1=base, imm=off, pad=pad, tag=tag))

    def sw(self, src: int, base: int, off: int = 0, tag: str | None = None) -> Instruction:
        """``mem[base + off] = src``."""
        return self.emit(Instruction(Op.SW, rs1=base, rs2=src, imm=off, tag=tag))

    def pf(self, base: int, off: int = 0, tag: str | None = None) -> Instruction:
        """Non-binding prefetch of address ``base + off``."""
        return self.emit(Instruction(Op.PF, rs1=base, imm=off, tag=tag))

    def jpf(self, base: int, off: int = 0, tag: str | None = None) -> Instruction:
        """Cooperative jump-pointer prefetch (indirect through ``mem[base+off]``)."""
        return self.emit(Instruction(Op.JPF, rs1=base, imm=off, tag=tag))

    def alloc(self, rd: int, size_reg: int = ZERO, size_imm: int = 0) -> Instruction:
        """``rd = malloc(size_reg + size_imm)`` via the size-class allocator."""
        return self.emit(Instruction(Op.ALLOC, rd=rd, rs1=size_reg, imm=size_imm))

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def beq(self, rs1: int, rs2: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BEQ, rs1=rs1, rs2=rs2, target=target))

    def bne(self, rs1: int, rs2: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BNE, rs1=rs1, rs2=rs2, target=target))

    def blt(self, rs1: int, rs2: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BLT, rs1=rs1, rs2=rs2, target=target))

    def bge(self, rs1: int, rs2: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BGE, rs1=rs1, rs2=rs2, target=target))

    def beqz(self, rs: int, target: str) -> Instruction:
        return self.beq(rs, ZERO, target)

    def bnez(self, rs: int, target: str) -> Instruction:
        return self.bne(rs, ZERO, target)

    def blez(self, rs: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BGE, rs1=ZERO, rs2=rs, target=target))

    def bgtz(self, rs: int, target: str) -> Instruction:
        return self.emit(Instruction(Op.BLT, rs1=ZERO, rs2=rs, target=target))

    def j(self, target: str) -> Instruction:
        return self.emit(Instruction(Op.J, target=target))

    def jal(self, target: str) -> Instruction:
        return self.emit(Instruction(Op.JAL, rd=RA, target=target))

    def jr(self, rs: int) -> Instruction:
        return self.emit(Instruction(Op.JR, rs1=rs))

    def call(self, target: str) -> Instruction:
        return self.jal(target)

    def ret(self) -> Instruction:
        return self.jr(RA)

    def halt(self) -> Instruction:
        return self.emit(Instruction(Op.HALT))

    # ------------------------------------------------------------------
    # Stack macros
    # ------------------------------------------------------------------

    def push(self, *regs: int) -> None:
        """Push registers on the stack (first argument pushed first)."""
        if not regs:
            return
        self.addi(SP, SP, -WORD * len(regs))
        for i, reg in enumerate(regs):
            self.sw(reg, SP, WORD * i)

    def pop(self, *regs: int) -> None:
        """Pop registers pushed by a matching :meth:`push` call."""
        if not regs:
            return
        for i, reg in enumerate(regs):
            self.lw(reg, SP, WORD * i)
        self.addi(SP, SP, WORD * len(regs))

    def func(self, name: str, *save: int) -> str:
        """Open a function: place its label and save ``ra`` plus ``save`` regs."""
        self.label(name)
        self.push(RA, *save)
        return name

    def leave(self, *save: int) -> None:
        """Restore ``ra`` plus ``save`` regs (matching :meth:`func`) and return."""
        self.pop(RA, *save)
        self.ret()
