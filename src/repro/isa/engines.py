"""Simulation-engine registry: how the timing model executes programs.

Orthogonal to the *prefetch*-engine axis (``repro.prefetch.engines``),
which selects the scheme being studied, this registry selects the
*implementation* that produces the numbers.  Every entry is required to
be bit-identical to every other — same commit stream, same cycle counts,
same stats — so the choice is purely a speed/validation trade-off:

* ``table`` — the decode-table functional interpreter driving the plain
  :class:`~repro.cpu.timing.TimingModel` loop (the historical default).
* ``reference`` — the naive per-opcode interpreter from
  :mod:`repro.audit.diff` under the same timing loop; slow, exists to
  give differential validation an independently written semantics.
* ``compiled`` — the block-compiled fast path: hot basic blocks are
  fused into generated Python superinstructions executing functional
  *and* timing semantics with locals-bound state
  (:mod:`repro.cpu.compiled`), falling back to the table interpreter for
  cold code and observed runs.

``REPRO_SIM_ENGINE`` overrides the default for anything that does not
pass an explicit engine (CLI runs, sweeps, tests), which is how CI pins
a whole golden-variant sweep to ``compiled`` without touching call
sites.

The loaders are deferred: ``reference`` lives in the audit package and
``compiled`` imports the timing model, so resolving them at import time
would cycle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ReproError
from ..registry import Registry

#: Environment override consulted when no explicit engine is requested.
SIM_ENGINE_ENV = "REPRO_SIM_ENGINE"

#: Name used when neither the caller nor the environment chooses.
DEFAULT_SIM_ENGINE = "table"


@dataclass(frozen=True)
class SimEngine:
    """One registered way of executing the ISA under the timing model.

    ``factory`` returns the ``interpreter_factory`` to hand the timing
    model (``None`` means its built-in decode-table interpreter).
    ``fused`` marks engines that can replace the whole timing loop when
    no observer (telemetry/auditor/profiler) needs per-instruction
    hooks.
    """

    name: str
    description: str
    factory: Callable[[], Any]
    fused: bool = False


def _table_factory() -> Any:
    return None  # TimingModel's built-in Interpreter


def _reference_factory() -> Any:
    from ..audit.diff import ReferenceInterpreter

    return ReferenceInterpreter


def _compiled_factory() -> Any:
    from .blockjit import CompiledInterpreter

    return CompiledInterpreter


SIM_ENGINES: Registry[SimEngine] = Registry("simulation engine")
SIM_ENGINES.register("table", SimEngine(
    "table",
    "decode-table functional interpreter under the plain timing loop",
    _table_factory,
))
SIM_ENGINES.register("reference", SimEngine(
    "reference",
    "independent per-opcode reference interpreter (slow; validation)",
    _reference_factory,
))
SIM_ENGINES.register("compiled", SimEngine(
    "compiled",
    "block-compiled fused fast path (bit-identical, fastest)",
    _compiled_factory,
    fused=True,
))


def default_sim_engine() -> str:
    """The session default: ``$REPRO_SIM_ENGINE`` when set, else table."""
    name = os.environ.get(SIM_ENGINE_ENV, "").strip()
    if not name:
        return DEFAULT_SIM_ENGINE
    if name not in SIM_ENGINES:
        raise ReproError(
            f"${SIM_ENGINE_ENV}={name!r} is not a simulation engine; "
            f"available: {SIM_ENGINES.names()}"
        )
    return name


def resolve_sim_engine(name: str | None = None) -> SimEngine:
    """Look up ``name`` (or the session default when ``None``/empty)."""
    return SIM_ENGINES.get(name or default_sim_engine())
