"""Assembled program container."""

from __future__ import annotations

from ..errors import AssemblyError
from .instruction import Instruction
from .opcodes import Op

#: Default segment layout (word-aligned virtual addresses).
DATA_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
STACK_TOP = 0x7FFF_F000


class Program:
    """A fully assembled mini-ISA program.

    Holds the resolved instruction list, the entry point, the initial data
    image (word address -> value) produced by the assembler's static-data
    helpers, and segment layout constants used by the interpreter to place
    the heap and stack.
    """

    def __init__(
        self,
        instructions: list[Instruction],
        labels: dict[str, int],
        initial_memory: dict[int, int | float],
        entry: int = 0,
        heap_base: int = HEAP_BASE,
        stack_top: int = STACK_TOP,
        name: str = "program",
    ) -> None:
        self.instructions = instructions
        self.labels = labels
        self.initial_memory = initial_memory
        self.entry = entry
        self.heap_base = heap_base
        self.stack_top = stack_top
        self.name = name
        self._resolve()

    def _resolve(self) -> None:
        for i, inst in enumerate(self.instructions):
            inst.index = i
            if inst.target is not None and not isinstance(inst.target, int):
                label = inst.target
                if label not in self.labels:
                    raise AssemblyError(
                        f"{self.name}: undefined label {label!r} at instruction {i}"
                    )
                inst.target = self.labels[label]
        if not any(inst.op == Op.HALT for inst in self.instructions):
            raise AssemblyError(f"{self.name}: program has no HALT instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_size(self) -> int:
        """Static code size in instructions."""
        return len(self.instructions)

    def label_of(self, index: int) -> str | None:
        """Name of the label at instruction ``index``, if any (debug aid)."""
        for name, idx in self.labels.items():
            if idx == index:
                return name
        return None

    def disassemble(self, start: int = 0, count: int | None = None) -> str:
        """Textual listing of the program (debug aid)."""
        end = len(self.instructions) if count is None else start + count
        by_index = {idx: name for name, idx in self.labels.items()}
        lines = []
        for i in range(start, min(end, len(self.instructions))):
            if i in by_index:
                lines.append(f"{by_index[i]}:")
            lines.append(f"  {i:6d}  {self.instructions[i]!r}")
        return "\n".join(lines)
