"""Block-compiling functional interpreter (template JIT) for the mini-ISA.

The decode-table interpreter pays a generator suspension, a tuple unpack
and a handler-id comparison chain for every dynamic instruction.  This
module removes all three for straight-line code: it discovers basic
blocks in the decoded stream lazily (any pc entered at run time is a
leader; the block extends to the first control transfer or the
``max_block`` cap) and compiles each block once into a single Python
function — a *superinstruction* — whose body is the specialized source
for every instruction in the block with register indices, immediates and
branch targets baked in as literals.  Executing a block is then one
Python call: no dispatch, no unpacking, locals-bound state.

Semantics are bit-identical to :class:`~repro.isa.interpreter.Interpreter`
by construction — each generated line is the corresponding handler body
with the decode-time constants substituted, in the same order (operate,
zero-register clear, emit record), raising the same
:class:`~repro.errors.ExecutionError` messages at the same dynamic
instruction.  The differential validator (:mod:`repro.audit.diff`) and
the golden-cycle pins enforce this.

Warmup: blocks entered fewer than ``threshold`` times execute through
single-instruction *stubs* (length-1 compiled blocks — semantically the
plain interpreter loop), so cold code never pays multi-instruction
compile cost.  Knobs: ``REPRO_JIT_THRESHOLD`` (default 8, 1 = compile on
first entry) and ``REPRO_JIT_MAX_BLOCK`` (default 32).

Compiled code objects are cached on the :class:`Program` via
:func:`~repro.isa.interpreter.decode_memo` under keys that include the
engine kind and block cap, so repeated simulations of one program (a
scheme matrix, a sweep) compile each block once; only the cheap
``exec``-rebind of per-run state happens per run.

One observable difference is documented rather than hidden: the
interpreter executes a whole block before yielding its records, so a
consumer that abandons the stream mid-block leaves ``steps`` counting up
to ``max_block - 1`` instructions past the last yielded record (they
really did execute).  Fully-consumed streams — everything the timing
model, the validator and the golden pins do — see identical ``steps``.
"""

from __future__ import annotations

import math
import os
from typing import Iterator

from ..errors import ExecutionError
from ..mem.allocator import SizeClassAllocator
from ..mem.memory_image import MemoryImage
from .interpreter import (
    _DEFAULT_MAX_STEPS,
    _H_ADD, _H_ADDI, _H_ALLOC, _H_AND, _H_ANDI, _H_BEQ, _H_BGE, _H_BLT,
    _H_BNE, _H_DIV, _H_F2I, _H_FABS, _H_FDIV, _H_FEQ, _H_FLE, _H_FNEG,
    _H_FSQRT, _H_HALT, _H_I2F, _H_J, _H_JAL, _H_JR, _H_LW, _H_MUL,
    _H_NOP, _H_OR, _H_ORI, _H_PF, _H_REM, _H_SLL, _H_SLLI, _H_SLT,
    _H_SLTI, _H_SLTU, _H_SRL, _H_SRLI, _H_SUB, _H_SW, _H_XOR, _H_XORI,
    DynRecord,
    decode_memo,
    decode_program,
)
from .program import Program
from .registers import NUM_REGS, SP

__all__ = [
    "CompiledInterpreter",
    "block_span",
    "jit_max_block",
    "jit_threshold",
]

#: Handler ids that end a basic block (control transfer or halt).
_CONTROL_HIDS = frozenset((
    _H_BNE, _H_BEQ, _H_BLT, _H_BGE, _H_J, _H_JAL, _H_JR, _H_HALT,
))

#: Conditional-branch comparison operators by handler id.
_COND_OP = {_H_BNE: "!=", _H_BEQ: "==", _H_BLT: "<", _H_BGE: ">="}

#: Plain register-write ALU ops: handler id -> RHS expression template.
#: Each template is the corresponding Interpreter handler body verbatim
#: with the decoded fields as format placeholders.
_ALU_EXPR = {
    _H_ADDI: "R[{r1}] + {imm}",
    _H_ADD: "R[{r1}] + R[{r2}]",
    _H_SUB: "R[{r1}] - R[{r2}]",
    _H_MUL: "R[{r1}] * R[{r2}]",
    _H_SLT: "1 if R[{r1}] < R[{r2}] else 0",
    _H_SLTI: "1 if R[{r1}] < {imm} else 0",
    _H_AND: "R[{r1}] & R[{r2}]",
    _H_OR: "R[{r1}] | R[{r2}]",
    _H_XOR: "R[{r1}] ^ R[{r2}]",
    _H_ANDI: "R[{r1}] & {imm}",
    _H_ORI: "R[{r1}] | {imm}",
    _H_XORI: "R[{r1}] ^ {imm}",
    _H_SLL: "R[{r1}] << R[{r2}]",
    _H_SRL: "R[{r1}] >> R[{r2}]",
    _H_SLLI: "R[{r1}] << {imm}",
    _H_SRLI: "R[{r1}] >> {imm}",
    _H_SLTU: "1 if abs(R[{r1}]) < abs(R[{r2}]) else 0",
    _H_FNEG: "-R[{r1}]",
    _H_FABS: "abs(R[{r1}])",
    _H_FLE: "1 if R[{r1}] <= R[{r2}] else 0",
    _H_FEQ: "1 if R[{r1}] == R[{r2}] else 0",
    _H_I2F: "float(R[{r1}])",
    _H_F2I: "int(R[{r1}])",
}


def jit_threshold() -> int:
    """Block-entry count below which a pc runs through 1-inst stubs."""
    return max(1, int(os.environ.get("REPRO_JIT_THRESHOLD", "8")))


def jit_max_block() -> int:
    """Maximum instructions fused into one compiled block."""
    return max(1, int(os.environ.get("REPRO_JIT_MAX_BLOCK", "32")))


def block_span(code: list, pc: int, max_block: int) -> int:
    """End index (exclusive) of the basic block led by ``pc``."""
    n = len(code)
    end = pc
    while end < n and end - pc < max_block:
        hid = code[end][0]
        end += 1
        if hid in _CONTROL_HIDS:
            break
    return end


def _program_consts(program: Program, code: list) -> dict:
    """Per-program immutable constants shared by every run's blocks:
    the instruction objects and prebuilt constant commit records (tuples
    are immutable, so one object is reused for every dynamic instance)."""
    slot = decode_memo(program, "blockjit-consts")
    if "insts" not in slot:
        slot["insts"] = [d[7] for d in code]
        slot["plain"] = [(d[7], 0, 0, False) for d in code]
        taken = {}
        for i, d in enumerate(code):
            hid = d[0]
            if hid in (_H_BNE, _H_BEQ, _H_BLT, _H_BGE, _H_J):
                taken[i] = (d[7], 0, 0, True)
            elif hid == _H_JAL:
                taken[i] = (d[7], 0, d[5], True)
        slot["taken"] = taken
    return slot


def _fmt(value) -> str:
    """Literal source for an immediate (repr round-trips ints/floats)."""
    return repr(value)


def _emit_plain(a, pc: int, dec) -> None:
    """Emit the functional body of one non-control instruction (mirrors
    the Interpreter handler, then zero-clear, then the commit record)."""
    hid, rd, r1, r2, imm, target, clears, _inst = dec
    expr = _ALU_EXPR.get(hid)
    if expr is not None:
        a(f"    R[{rd}] = " + expr.format(r1=r1, r2=r2, imm=_fmt(imm)))
    elif hid == _H_LW:
        a(f"    a = R[{r1}] + {_fmt(imm)}")
        a("    if a % 4 or a < 0:")
        a(f"        raise XE(f\"pc {pc}: misaligned/negative load "
          "address {a:#x}\")")
        a("    v = MG(a, 0)")
        a(f"    R[{rd}] = v")
        if clears:
            a("    R[0] = 0")
        a(f"    _B((_I[{pc}], a, v, False))")
        return
    elif hid == _H_SW:
        a(f"    a = R[{r1}] + {_fmt(imm)}")
        a("    if a % 4 or a < 0:")
        a(f"        raise XE(f\"pc {pc}: misaligned/negative store "
          "address {a:#x}\")")
        a(f"    v = R[{r2}]")
        a("    M[a] = v")
        a(f"    _B((_I[{pc}], a, v, False))")
        return
    elif hid == _H_PF:
        a(f"    a = R[{r1}] + {_fmt(imm)}")
        a(f"    _B((_I[{pc}], a, 0, False))")
        return
    elif hid == _H_ALLOC:
        a(f"    v = R[{r1}] + {_fmt(imm)}")
        a("    a = AL(int(v))")
        a(f"    R[{rd}] = a")
        if clears:
            a("    R[0] = 0")
        a(f"    _B((_I[{pc}], a, a, False))")
        return
    elif hid == _H_DIV:
        a(f"    b = R[{r2}]")
        a("    if b == 0:")
        a(f"        raise XE(\"pc {pc}: integer division by zero\")")
        a(f"    R[{rd}] = int(R[{r1}] / b)")
    elif hid == _H_REM:
        a(f"    b = R[{r2}]")
        a("    if b == 0:")
        a(f"        raise XE(\"pc {pc}: integer remainder by zero\")")
        a(f"    a = R[{r1}]")
        a(f"    R[{rd}] = a - int(a / b) * b")
    elif hid == _H_FDIV:
        a(f"    b = R[{r2}]")
        a("    if b == 0:")
        a(f"        raise XE(\"pc {pc}: FP division by zero\")")
        a(f"    R[{rd}] = R[{r1}] / b")
    elif hid == _H_FSQRT:
        a(f"    v = R[{r1}]")
        a("    if v < 0:")
        a(f"        raise XE(\"pc {pc}: FSQRT of negative value\")")
        a(f"    R[{rd}] = SQ(v)")
    elif hid == _H_NOP:
        pass
    else:  # pragma: no cover - every non-control hid handled above
        raise ExecutionError(f"blockjit: unhandled handler id {hid}")
    if clears:
        a("    R[0] = 0")
    a(f"    _B(_T[{pc}])")


def _emit_control(a, pc: int, dec) -> None:
    """Emit a block terminator (branch/jump/halt): record + return pc."""
    hid, rd, r1, r2, imm, target, clears, _inst = dec
    if hid in _COND_OP:
        a(f"    if R[{r1}] {_COND_OP[hid]} R[{r2}]:")
        if clears:
            a("        R[0] = 0")
        a(f"        _B(_TT[{pc}])")
        a(f"        return {_fmt(target)}")
        if clears:
            a("    R[0] = 0")
        a(f"    _B(_T[{pc}])")
        a(f"    return {pc + 1}")
    elif hid == _H_J:
        if clears:
            a("    R[0] = 0")
        a(f"    _B(_TT[{pc}])")
        a(f"    return {_fmt(target)}")
    elif hid == _H_JAL:
        a(f"    R[{rd}] = {pc + 1}")
        if clears:
            a("    R[0] = 0")
        a(f"    _B(_TT[{pc}])")
        a(f"    return {_fmt(target)}")
    elif hid == _H_JR:
        a(f"    v = R[{r1}]")
        a("    if not isinstance(v, int):")
        a(f"        raise XE(\"pc {pc}: JR to non-integer target\")")
        if clears:
            a("    R[0] = 0")
        a(f"    _B((_I[{pc}], 0, v, True))")
        a("    return v")
    else:  # _H_HALT — yields its record *before* the zero-clear point.
        a(f"    _B(_T[{pc}])")
        a("    return None")


_PARAMS = ("R=R, M=M, MG=MG, AL=AL, _I=_I, _T=_T, _TT=_TT, _B=_B, XE=XE, "
           "SQ=SQ, abs=abs, int=int, float=float, isinstance=isinstance")


def gen_block_source(code: list, pc0: int, cap: int) -> tuple[str, int]:
    """Specialized source for the block led by ``pc0``; returns
    ``(source, block_length)``.  The function binds all external state as
    defaults (evaluated from the exec namespace) so the body runs on
    fast locals; it returns the successor pc, or None on HALT."""
    end = block_span(code, pc0, cap)
    lines = [f"def _blk({_PARAMS}):"]
    a = lines.append
    for pc in range(pc0, end):
        dec = code[pc]
        if dec[0] in _CONTROL_HIDS:
            _emit_control(a, pc, dec)
        else:
            _emit_plain(a, pc, dec)
    if code[end - 1][0] not in _CONTROL_HIDS:
        a(f"    return {end}")  # cap hit: fall through to the next block
    return "\n".join(lines) + "\n", end - pc0


class CompiledInterpreter:
    """Drop-in for :class:`~repro.isa.interpreter.Interpreter` running
    lazily-discovered basic blocks as compiled superinstructions.

    Same constructor, same lazily-yielded ``(inst, addr, value, taken)``
    records, same exposed state (``registers``, ``memory``,
    ``allocator``, ``steps``, ``finished``).
    """

    def __init__(
        self,
        program: Program,
        max_steps: int | None = _DEFAULT_MAX_STEPS,
        threshold: int | None = None,
        max_block: int | None = None,
    ) -> None:
        self.program = program
        self.max_steps = _DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self.memory = MemoryImage(program.initial_memory)
        self.allocator = SizeClassAllocator(program.heap_base)
        self.registers: list[int | float] = [0] * NUM_REGS
        self.registers[SP] = program.stack_top
        self.steps = 0
        self.finished = False
        self.threshold = jit_threshold() if threshold is None else max(1, threshold)
        self.max_block = jit_max_block() if max_block is None else max(1, max_block)
        #: Block binds this run (stubs included); compile-overhead probe.
        self.blocks_bound = 0

    def _bind(self, pc: int, code: list, cache: dict, cap: int, env: dict):
        """Compile (cached per program) and bind (per run) block ``pc``."""
        entry = cache.get(pc)
        if entry is None:
            src, bl = gen_block_source(code, pc, cap)
            cobj = compile(
                src, f"<blockjit:{self.program.name}:{pc}>", "exec"
            )
            entry = cache[pc] = (cobj, bl)
        cobj, bl = entry
        exec(cobj, env)
        self.blocks_bound += 1
        return (env.pop("_blk"), bl)

    def run(self) -> Iterator[DynRecord]:
        """Execute until HALT, yielding the committed instruction stream."""
        program = self.program
        code = decode_program(program)
        n = len(code)
        consts = _program_consts(program, code)
        buf: list = []
        env = {
            "R": self.registers,
            "M": self.memory._words,
            "MG": self.memory._words.get,
            "AL": self.allocator.alloc,
            "_I": consts["insts"],
            "_T": consts["plain"],
            "_TT": consts["taken"],
            "_B": buf.append,
            "XE": ExecutionError,
            "SQ": math.sqrt,
        }
        max_block = self.max_block
        cache = decode_memo(program, ("blockjit", max_block))
        stub_cache = decode_memo(program, ("blockjit", 1))
        blocks: list = [None] * n
        stubs: list = [None] * n
        counts = [0] * n
        threshold = self.threshold
        bind = self._bind
        pc = program.entry
        steps = 0
        max_steps = self.max_steps

        try:
            while True:
                if not 0 <= pc < n:
                    raise ExecutionError(
                        f"pc {pc} outside text segment (0..{n - 1})"
                    )
                blk = blocks[pc]
                if blk is None:
                    c = counts[pc] + 1
                    counts[pc] = c
                    if c >= threshold:
                        blk = blocks[pc] = bind(pc, code, cache, max_block, env)
                    else:
                        blk = stubs[pc]
                        if blk is None:
                            blk = stubs[pc] = bind(pc, code, stub_cache, 1, env)
                fn, bl = blk
                if steps + bl > max_steps:
                    # Not enough budget for the whole block: step through
                    # stubs so the budget error fires at the exact
                    # dynamic instruction with the interpreter's message.
                    if steps >= max_steps:
                        raise ExecutionError(
                            f"instruction budget exceeded ({max_steps}); "
                            f"likely an infinite loop at pc {pc}"
                        )
                    blk = stubs[pc]
                    if blk is None:
                        blk = stubs[pc] = bind(pc, code, stub_cache, 1, env)
                    fn, bl = blk
                try:
                    nxt = fn()
                except BaseException:
                    # Completed instructions each appended one record;
                    # the faulting one counts too (the interpreter
                    # increments ``steps`` before executing).
                    steps += len(buf) + 1
                    raise
                steps += bl
                if buf:
                    yield from buf
                    buf.clear()
                if nxt is None:
                    self.finished = True
                    return
                pc = nxt
        finally:
            self.steps = steps
