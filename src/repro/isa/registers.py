"""Register names for the mini-ISA (MIPS-flavoured conventions).

Registers are plain integers 0..31.  ``ZERO`` is hard-wired to zero.
Calling convention used by the workload kernels:

* ``A0..A3`` — arguments; ``V0/V1`` — return values
* ``T0..T9`` — caller-saved temporaries
* ``S0..S7`` — callee-saved
* ``SP`` grows downward; ``RA`` holds return addresses.
"""

from __future__ import annotations

NUM_REGS = 32

ZERO = 0
AT = 1
V0 = 2
V1 = 3
A0 = 4
A1 = 5
A2 = 6
A3 = 7
T0 = 8
T1 = 9
T2 = 10
T3 = 11
T4 = 12
T5 = 13
T6 = 14
T7 = 15
S0 = 16
S1 = 17
S2 = 18
S3 = 19
S4 = 20
S5 = 21
S6 = 22
S7 = 23
T8 = 24
T9 = 25
K0 = 26
K1 = 27
GP = 28
SP = 29
FP = 30
RA = 31

REG_NAMES = {
    ZERO: "zero", AT: "at", V0: "v0", V1: "v1",
    A0: "a0", A1: "a1", A2: "a2", A3: "a3",
    T0: "t0", T1: "t1", T2: "t2", T3: "t3", T4: "t4", T5: "t5",
    T6: "t6", T7: "t7", T8: "t8", T9: "t9",
    S0: "s0", S1: "s1", S2: "s2", S3: "s3", S4: "s4", S5: "s5",
    S6: "s6", S7: "s7",
    K0: "k0", K1: "k1", GP: "gp", SP: "sp", FP: "fp", RA: "ra",
}


def reg_name(reg: int) -> str:
    """Human-readable name of register ``reg`` (for disassembly)."""
    return REG_NAMES.get(reg, f"r{reg}")
