"""Mini-ISA: opcodes, assembler DSL, programs and functional interpreter."""

from .assembler import Assembler
from .instruction import TEXT_BASE, WORD, Instruction
from .interpreter import DynRecord, Interpreter, run_to_completion
from .opcodes import FU_CLASS, FuClass, Op
from .program import DATA_BASE, HEAP_BASE, STACK_TOP, Program
from . import registers

__all__ = [
    "Assembler",
    "DATA_BASE",
    "DynRecord",
    "FU_CLASS",
    "FuClass",
    "HEAP_BASE",
    "Instruction",
    "Interpreter",
    "Op",
    "Program",
    "STACK_TOP",
    "TEXT_BASE",
    "WORD",
    "registers",
    "run_to_completion",
]
