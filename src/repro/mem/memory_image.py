"""Sparse word-addressable memory image.

The simulated machine has 4-byte words.  Values stored in memory are
Python numbers (ints for integers/pointers, floats for FP data); this is a
simulator-level convenience — addresses and layout are still fully
byte-accurate.
"""

from __future__ import annotations

from ..errors import ExecutionError

WORD = 4


class MemoryImage:
    """Word-granular sparse memory.  Uninitialized words read as zero."""

    __slots__ = ("_words",)

    def __init__(self, initial: dict[int, int | float] | None = None) -> None:
        self._words: dict[int, int | float] = dict(initial) if initial else {}

    def load(self, addr: int) -> int | float:
        if addr % WORD or addr < 0:
            raise ExecutionError(f"misaligned or negative load address {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int | float) -> None:
        if addr % WORD or addr < 0:
            raise ExecutionError(f"misaligned or negative store address {addr:#x}")
        self._words[addr] = value

    def peek(self, addr: int) -> int | float:
        """Load without alignment checks (prefetch-engine probes)."""
        return self._words.get(addr, 0)

    def copy(self) -> "MemoryImage":
        return MemoryImage(self._words)

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, addr: int) -> bool:
        return addr in self._words
