"""Fully-associative TLB with LRU replacement and hardware miss handling."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TLBConfig


@dataclass(slots=True)
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Translate is modelled as: hit = 0 extra cycles, miss = fixed hardware
    miss-handling penalty (30 cycles in Table 2)."""

    __slots__ = ("cfg", "stats", "_entries", "_seq", "_page_shift")

    def __init__(self, cfg: TLBConfig) -> None:
        self.cfg = cfg
        self.stats = TLBStats()
        self._entries: dict[int, int] = {}
        self._seq = 0
        self._page_shift = cfg.page_size.bit_length() - 1

    def translate(self, addr: int) -> int:
        """Returns the extra latency (0 on hit, miss penalty on miss)."""
        page = addr >> self._page_shift
        self._seq += 1
        self.stats.accesses += 1
        if page in self._entries:
            self._entries[page] = self._seq
            return 0
        self.stats.misses += 1
        if len(self._entries) >= self.cfg.entries:
            victim = min(self._entries, key=self._entries.__getitem__)
            del self._entries[victim]
        self._entries[page] = self._seq
        return self.cfg.miss_penalty
