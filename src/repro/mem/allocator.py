"""Power-of-two size-class heap allocator.

Mirrors the behaviour the paper relies on (Section 3.3): small heap objects
are allocated in power-of-two size classes, every block of class *C* is
*C*-aligned, and any request smaller than its class leaves unused padding
at the end of the block.  Because blocks are class-aligned, the padding —
and in particular the *last word* of the block — can be located from any
interior address plus the size class alone:

    block_base = addr - addr % C
    jump_slot  = block_base + C - 4

This is exactly the computation the paper's annotated load variants
(``h8/h16/...``) let the hardware perform, and what
:class:`repro.prefetch.jqt.JumpPointerStorage` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError

WORD = 4
MIN_CLASS = 8
MAX_CLASS = 1 << 16
#: Address space reserved per size class (blocks of one class are packed).
CLASS_REGION = 1 << 24


def size_class(size: int) -> int:
    """Smallest power-of-two class that holds ``size`` bytes."""
    if size <= 0:
        raise ExecutionError(f"allocation of non-positive size {size}")
    c = MIN_CLASS
    while c < size:
        c <<= 1
    return c


def padding_bytes(size: int) -> int:
    """Unused bytes at the end of a block allocated for ``size`` bytes."""
    return size_class(size) - size


def jump_slot(addr: int, klass: int) -> int:
    """Address of the last word of the class-``klass`` block containing ``addr``."""
    base = addr - addr % klass
    return base + klass - WORD


@dataclass
class AllocatorStats:
    """Aggregate allocation statistics."""

    allocations: int = 0
    requested_bytes: int = 0
    allocated_bytes: int = 0
    per_class: dict[int, int] = field(default_factory=dict)

    @property
    def padding_fraction(self) -> float:
        if not self.allocated_bytes:
            return 0.0
        return 1.0 - self.requested_bytes / self.allocated_bytes


class SizeClassAllocator:
    """Bump allocator with per-class regions (no free list; Olden-style churn
    is modelled by reuse of nodes within the program, not by ``free``)."""

    def __init__(self, heap_base: int) -> None:
        if heap_base % MAX_CLASS:
            raise ExecutionError(
                f"heap base {heap_base:#x} must be {MAX_CLASS}-byte aligned"
            )
        self._heap_base = heap_base
        self._cursors: dict[int, int] = {}
        self._regions: dict[int, int] = {}
        self.stats = AllocatorStats()
        region = heap_base
        c = MIN_CLASS
        while c <= MAX_CLASS:
            self._regions[c] = region
            self._cursors[c] = region
            region += CLASS_REGION
            c <<= 1
        self._heap_end = region

    @property
    def heap_end(self) -> int:
        return self._heap_end

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the (class-aligned) block address."""
        klass = size_class(size)
        if klass > MAX_CLASS:
            raise ExecutionError(f"allocation of {size} bytes exceeds max class")
        addr = self._cursors[klass]
        self._cursors[klass] = addr + klass
        if self._cursors[klass] > self._regions[klass] + CLASS_REGION:
            raise ExecutionError(f"size-class {klass} region exhausted")
        st = self.stats
        st.allocations += 1
        st.requested_bytes += size
        st.allocated_bytes += klass
        st.per_class[klass] = st.per_class.get(klass, 0) + 1
        return addr

    def class_of(self, addr: int) -> int | None:
        """Size class of the region containing ``addr`` (None if not heap)."""
        if not self._heap_base <= addr < self._heap_end:
            return None
        idx = (addr - self._heap_base) // CLASS_REGION
        return MIN_CLASS << idx

    def block_base(self, addr: int) -> int | None:
        """Base address of the allocated block containing ``addr``."""
        klass = self.class_of(addr)
        if klass is None:
            return None
        return addr - addr % klass
