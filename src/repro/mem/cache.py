"""Set-associative cache state model with LRU replacement.

This models cache *contents* (hit/miss/eviction and dirty state); access
*timing* (buses, MSHRs, miss latencies) lives in
:class:`repro.mem.hierarchy.MemoryHierarchy`.  The dirty-bit set drives
the hierarchy's write-back accounting: stores mark lines dirty, and a
fill that evicts a dirty victim returns ``evicted_dirty=True`` so the
hierarchy can charge the victim write-back to the bus — background-only
under ``mshr_model="blocking"``, contending with demand traffic under
the non-blocking models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheConfig


@dataclass(slots=True)
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Tag array of a set-associative write-back cache with true LRU."""

    __slots__ = ("cfg", "name", "stats", "_sets", "_dirty", "_seq", "_line_mask", "_set_mask", "_line_shift")

    def __init__(self, cfg: CacheConfig, name: str = "cache") -> None:
        self.cfg = cfg
        self.name = name
        self.stats = CacheStats()
        self._sets: list[dict[int, int]] = [dict() for _ in range(cfg.sets)]
        self._dirty: set[int] = set()
        self._seq = 0
        self._line_mask = ~(cfg.line - 1)
        self._line_shift = cfg.line.bit_length() - 1
        self._set_mask = cfg.sets - 1

    def line_addr(self, addr: int) -> int:
        return addr & self._line_mask

    def _set_index(self, line: int) -> int:
        return (line >> self._line_shift) & self._set_mask

    def access(self, addr: int, write: bool = False) -> bool:
        """Reference ``addr``; returns True on hit.  Updates LRU and dirty
        state but does not allocate on miss (call :meth:`fill`)."""
        line = addr & self._line_mask
        s = self._sets[self._set_index(line)]
        self.stats.accesses += 1
        self._seq += 1
        if line in s:
            s[line] = self._seq
            if write:
                self._dirty.add(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Hit check without touching LRU or statistics."""
        line = addr & self._line_mask
        return line in self._sets[self._set_index(line)]

    def fill(self, addr: int, dirty: bool = False) -> tuple[int | None, bool]:
        """Allocate the line holding ``addr``.

        Returns ``(evicted_line, evicted_dirty)``; ``(None, False)`` when no
        eviction occurred (or the line was already present).
        """
        line = addr & self._line_mask
        s = self._sets[self._set_index(line)]
        self._seq += 1
        if line in s:
            s[line] = self._seq
            if dirty:
                self._dirty.add(line)
            return None, False
        evicted = None
        evicted_dirty = False
        if len(s) >= self.cfg.assoc:
            evicted = min(s, key=s.__getitem__)
            del s[evicted]
            evicted_dirty = evicted in self._dirty
            self._dirty.discard(evicted)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
        s[line] = self._seq
        if dirty:
            self._dirty.add(line)
        return evicted, evicted_dirty

    def invalidate(self, addr: int) -> bool:
        """Remove the line holding ``addr``; returns True if it was present."""
        line = addr & self._line_mask
        s = self._sets[self._set_index(line)]
        if line in s:
            del s[line]
            self._dirty.discard(line)
            return True
        return False

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
