"""Two-level memory hierarchy with miss, bus, MSHR and TLB timing.

Latency composition for a demand L1 data miss issued at time *t*:

1. L1 lookup (``dl1.latency``), miss detected; an MSHR is acquired (at most
   ``max_outstanding_misses`` in flight — Table 2's 8; a full MSHR file
   delays the request until the earliest outstanding miss completes).
2. L2 lookup (12 cycles).  On a hit the line crosses the L2 bus (8 bytes per
   bus cycle at half core frequency).  On a miss, main memory is accessed
   (70 cycles) and the L2 line crosses the memory bus (8 bytes per bus cycle
   at quarter core frequency), then the L1 line crosses the L2 bus.
3. The line is filled; in-flight misses are recorded so later accesses to
   the same line merge and see only the residual latency.

Prefetch requests follow the same path but fill the prefetch buffer when
one is configured (hardware/cooperative/DBP schemes); a demand hit in the
prefetch buffer costs one cycle and installs the line into L1 ("installed
into the cache if used", Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..config import MachineConfig
from .cache import Cache

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Telemetry


@dataclass(slots=True)
class HierarchyStats:
    """Event and bandwidth counters for one simulation."""

    loads: int = 0
    stores: int = 0
    l1d_partial_hits: int = 0
    pb_hits: int = 0
    prefetches_requested: int = 0
    prefetches_issued: int = 0
    prefetches_redundant: int = 0
    prefetches_throttled: int = 0
    prefetches_useful: int = 0
    bytes_l1_l2: int = 0
    bytes_l2_mem: int = 0
    dtlb_cycles: int = 0
    miss_intervals: list[tuple[int, int]] | None = None
    lds_load_misses: int = 0
    load_misses: int = 0

    extra: dict[str, int] = field(default_factory=dict)


class MemoryHierarchy:
    """See module docstring."""

    __slots__ = (
        "cfg", "il1", "dl1", "l2", "itlb", "dtlb", "pb", "stats",
        "_l2_bus_demand", "_l2_bus_all", "_mem_bus_demand", "_mem_bus_all",
        "_mshr_done", "_inflight", "_pf_lines", "_pf_inflight", "_perfect",
        "_demand_fill_estimate", "_obs", "_miss_hist", "_dl1_line_mask",
        "_prof",
    )

    def __init__(
        self,
        cfg: MachineConfig,
        use_prefetch_buffer: bool = False,
        collect_miss_intervals: bool = False,
    ) -> None:
        from .tlb import TLB  # local import to avoid cycle in docs builds

        self.cfg = cfg
        self.il1 = Cache(cfg.il1, "il1")
        self.dl1 = Cache(cfg.dl1, "dl1")
        self.l2 = Cache(cfg.l2, "l2")
        self.itlb = TLB(cfg.itlb)
        self.dtlb = TLB(cfg.dtlb)
        self.pb: Cache | None = (
            Cache(cfg.prefetch.prefetch_buffer, "pb") if use_prefetch_buffer else None
        )
        self.stats = HierarchyStats()
        if collect_miss_intervals:
            self.stats.miss_intervals = []
        # Two-class bus accounting: demand transfers have priority and see
        # only other demand traffic; prefetch/background transfers queue
        # behind everything (`*_all`).
        self._l2_bus_demand = 0
        self._l2_bus_all = 0
        self._mem_bus_demand = 0
        self._mem_bus_all = 0
        self._mshr_done: list[int] = []  # completion times of in-flight misses
        self._inflight: dict[int, int] = {}  # line -> data ready time
        self._pf_lines: set[int] = set()  # lines filled by prefetch, not yet used
        self._pf_inflight: set[int] = set()
        self._perfect = cfg.perfect_data_memory
        # Worst-case demand fill latency: used to promote in-flight
        # background (prefetch) fills that a demand access merges with —
        # the demand must never wait longer than its own miss would take.
        self._demand_fill_estimate = (
            cfg.dl1.latency
            + cfg.l2.latency
            + cfg.memory_latency
            + cfg.mem_bus.cycles_for(cfg.l2.line)
            + cfg.l2_bus.cycles_for(cfg.dl1.line)
        )
        # Optional observability context (None = zero-overhead fast path).
        self._obs: "Telemetry | None" = None
        self._miss_hist = None
        # Optional profiler (same contract): notes the service level and
        # latency of every demand load for the CPI stack / site table.
        self._prof = None
        # L1 line mask, hoisted for the demand-access fast path.
        self._dl1_line_mask = ~(cfg.dl1.line - 1)

    def set_telemetry(self, obs: "Telemetry | None") -> None:
        """Attach an observability context; registers this component's
        instruments into its metric registry."""
        self._obs = obs
        if obs is not None:
            from ..obs import MISS_LATENCY_BOUNDS

            self._miss_hist = obs.registry.histogram(
                "mem.miss_latency_cycles",
                MISS_LATENCY_BOUNDS,
                help="demand L1 data-miss latency (request to fill)",
            )
        else:
            self._miss_hist = None

    def set_profiler(self, prof) -> None:
        """Attach a :class:`repro.obs.profile.Profiler` (or ``None``)."""
        self._prof = prof

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def audit_check(self) -> list[tuple[str, str]]:
        """Invariant sweep for :class:`repro.audit.Auditor`; returns
        ``(invariant, message)`` pairs for every violated law.

        * **cache-access-conservation** — per level, ``hits + misses ==
          accesses`` (a double-counted or dropped lookup breaks this).
        * **cache-capacity** — no tag array holds more lines than
          ``sets * assoc``.
        * **tlb-access-conservation** — per TLB, ``misses <= accesses``.
        * **prefetch-request-accounting** — every prefetch request
          resolves to exactly one of issued / redundant / throttled
          (skipped under perfect data memory, which short-circuits).
        """
        violations: list[tuple[str, str]] = []
        caches = [self.il1, self.dl1, self.l2]
        if self.pb is not None:
            caches.append(self.pb)
        for cache in caches:
            s = cache.stats
            if s.hits + s.misses != s.accesses:
                violations.append((
                    "cache-access-conservation",
                    f"{cache.name}: hits {s.hits} + misses {s.misses} "
                    f"!= accesses {s.accesses}",
                ))
            capacity = cache.cfg.sets * cache.cfg.assoc
            resident = cache.resident_lines()
            if resident > capacity:
                violations.append((
                    "cache-capacity",
                    f"{cache.name}: {resident} resident lines > "
                    f"capacity {capacity}",
                ))
        for name, tlb in (("itlb", self.itlb), ("dtlb", self.dtlb)):
            t = tlb.stats
            if t.misses > t.accesses:
                violations.append((
                    "tlb-access-conservation",
                    f"{name}: misses {t.misses} > accesses {t.accesses}",
                ))
        st = self.stats
        if not self._perfect:
            resolved = (
                st.prefetches_issued
                + st.prefetches_redundant
                + st.prefetches_throttled
            )
            if resolved > st.prefetches_requested:
                violations.append((
                    "prefetch-request-accounting",
                    f"{resolved} resolved prefetch requests > "
                    f"{st.prefetches_requested} requested",
                ))
        return violations

    # ------------------------------------------------------------------
    # Shared L2/memory path
    # ------------------------------------------------------------------

    def _acquire_mshr(self, time: int) -> int:
        """Returns the time the request can proceed given the MSHR limit."""
        done = self._mshr_done
        done[:] = [t for t in done if t > time]
        if len(done) >= self.cfg.max_outstanding_misses:
            time = min(done)
            done[:] = [t for t in done if t > time]
        return time

    def _release_mshr(self, done_time: int) -> None:
        self._mshr_done.append(done_time)

    def _l2_path(
        self,
        line_addr: int,
        time: int,
        fill_line_bytes: int,
        background: bool = False,
    ) -> int:
        """Request ``fill_line_bytes`` at ``line_addr`` from L2/memory at
        ``time``; returns the time the data arrives at the L1 boundary.
        ``background`` transfers (prefetches, store-miss fills) yield bus
        priority to demand transfers."""
        cfg = self.cfg
        t = time + cfg.l2.latency
        l2_hit = self.l2.access(line_addr)
        if l2_hit:
            bus_start = max(t, self._l2_bus_all if background else self._l2_bus_demand)
        else:
            # Main memory access, then fill L2.
            mem_start = max(
                t, self._mem_bus_all if background else self._mem_bus_demand
            )
            data_at_l2 = mem_start + cfg.memory_latency
            xfer = cfg.mem_bus.cycles_for(cfg.l2.line)
            mem_done = data_at_l2 + xfer
            self._mem_bus_all = max(self._mem_bus_all, mem_done)
            if not background:
                self._mem_bus_demand = max(self._mem_bus_demand, mem_done)
            self.stats.bytes_l2_mem += cfg.l2.line
            evicted, dirty = self.l2.fill(line_addr)
            if dirty:
                self.stats.bytes_l2_mem += cfg.l2.line
                self._mem_bus_all += cfg.mem_bus.cycles_for(cfg.l2.line)
            bus_start = max(
                mem_done, self._l2_bus_all if background else self._l2_bus_demand
            )
        xfer_l1 = cfg.l2_bus.cycles_for(fill_line_bytes)
        done = bus_start + xfer_l1
        self._l2_bus_all = max(self._l2_bus_all, done)
        if not background:
            self._l2_bus_demand = max(self._l2_bus_demand, done)
        self.stats.bytes_l1_l2 += fill_line_bytes
        if self._prof is not None:
            self._prof._l2_source = "l2" if l2_hit else "mem"
        return done

    def _writeback_l1(self, line_addr: int) -> None:
        """Dirty L1 eviction: background traffic on the L2 bus."""
        self.stats.bytes_l1_l2 += self.cfg.dl1.line
        self._l2_bus_all += self.cfg.l2_bus.cycles_for(self.cfg.dl1.line)
        if not self.l2.access(line_addr, write=True):
            # Allocate-on-writeback; memory traffic counted, timing folded
            # into bus occupancy.
            __, dirty = self.l2.fill(line_addr, dirty=True)
            self.stats.bytes_l2_mem += self.cfg.l2.line
            if dirty:
                self.stats.bytes_l2_mem += self.cfg.l2.line

    def _fill_l1(self, addr: int, dirty: bool) -> None:
        evicted, evicted_dirty = self.dl1.fill(addr, dirty=dirty)
        if evicted is not None:
            if evicted in self._pf_lines:
                # A prefetched line leaving L1 unused: too early.
                self._pf_lines.discard(evicted)
                if self._obs is not None:
                    self._obs.outcomes.on_evict(evicted)
            if evicted_dirty:
                self._writeback_l1(evicted)

    # ------------------------------------------------------------------
    # Demand data accesses
    # ------------------------------------------------------------------

    def data_access(
        self, addr: int, time: int, write: bool = False, lds: bool = False
    ) -> int:
        """Demand load/store of the word at ``addr`` starting at ``time``;
        returns the completion time."""
        st = self.stats
        if write:
            st.stores += 1
        else:
            st.loads += 1
        if self._perfect:
            if self._prof is not None and not write:
                self._prof.note_access("l1", 1)
            return time + 1

        time += self.dtlb.translate(addr)

        line = addr & self._dl1_line_mask
        inflight = self._inflight.get(line)
        if inflight is not None and inflight > time:
            # Merge with an in-flight miss (possibly a late prefetch).
            st.l1d_partial_hits += 1
            if line in self._pf_inflight:
                st.prefetches_useful += 1
                if self._obs is not None:
                    self._obs.outcomes.on_demand(line, time)
                self._pf_inflight.discard(line)
                self._pf_lines.discard(line)
                # Promote the background fill to demand priority.
                cap = time + self._demand_fill_estimate
                if inflight > cap:
                    inflight = cap
                    self._inflight[line] = cap
            if write and self.dl1.probe(addr):
                self.dl1.access(addr, write=True)  # dirty/LRU update
            elif self._prof is not None and not write:
                self._prof.note_access("merge", inflight - time)
            return inflight

        if self.dl1.access(addr, write=write):
            if line in self._pf_lines:
                st.prefetches_useful += 1
                if self._obs is not None:
                    self._obs.outcomes.on_demand(line, time)
                self._pf_lines.discard(line)
                self._pf_inflight.discard(line)
            if self._prof is not None and not write:
                self._prof.note_access("l1", self.cfg.dl1.latency)
            return time + self.cfg.dl1.latency

        if not write:
            st.load_misses += 1
            if lds:
                st.lds_load_misses += 1

        if self.pb is not None and self.pb.probe(line):
            # Prefetch-buffer hit: 1 cycle, install into L1.
            self.pb.invalidate(line)
            st.pb_hits += 1
            st.prefetches_useful += 1
            if self._obs is not None:
                self._obs.outcomes.on_demand(line, time)
            self._pf_inflight.discard(line)
            self._fill_l1(addr, dirty=write)
            if self._prof is not None and not write:
                self._prof.note_access(
                    "pb", self.cfg.prefetch.prefetch_buffer.latency
                )
            return time + self.cfg.prefetch.prefetch_buffer.latency

        t = self._acquire_mshr(time + self.cfg.dl1.latency)
        ready = self._l2_path(line, t, self.cfg.dl1.line, background=write)
        self._release_mshr(ready)
        if self._prof is not None and not write:
            # _l2_path just recorded whether L2 hit or memory serviced it.
            self._prof.note_access(self._prof._l2_source, ready - time)
        obs = self._obs
        if obs is not None and not write:
            self._miss_hist.observe(ready - time)
            trace = obs.trace
            if trace is not None:
                trace.complete("demand-miss", time, ready - time, cat="mem",
                               line=line, lds=lds)
                trace.instant("fill", ready, cat="mem", line=line)
        self._fill_l1(addr, dirty=write)
        inflight_map = self._inflight
        inflight_map[line] = ready
        if len(inflight_map) > 4096:
            # In place (not rebound): the block-compiled fast path holds a
            # direct reference to this dict across the whole run.
            live = [(ln, rt) for ln, rt in inflight_map.items() if rt > time]
            inflight_map.clear()
            inflight_map.update(live)
        if st.miss_intervals is not None and not write:
            st.miss_intervals.append((time, ready))
        return ready

    def jp_store(self, addr: int, time: int) -> None:
        """Hardware jump-pointer install (Figure 3b): a fire-and-forget
        store request.  Hits update the cached line; misses write around
        the L1 (no allocation, no MSHR) — the word travels to L2/memory on
        its own, which is counted as bandwidth but delays nobody."""
        if self.dl1.probe(addr):
            self.dl1.access(addr, write=True)
            return
        self.stats.bytes_l1_l2 += 4
        self._l2_bus_all += self.cfg.l2_bus.cycles_for(4)
        line = self.l2.line_addr(addr)
        if not self.l2.access(line, write=True):
            self.l2.fill(line, dirty=True)
            self.stats.bytes_l2_mem += self.cfg.l2.line

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------

    def inst_fetch(self, addr: int, time: int) -> int:
        """Fetch the instruction line at ``addr``; returns ready time."""
        time += self.itlb.translate(addr)
        line = self.il1.line_addr(addr)
        if self.il1.access(addr):
            return time + self.cfg.il1.latency
        t = self._acquire_mshr(time + self.cfg.il1.latency)
        ready = self._l2_path(line, t, self.cfg.il1.line)
        self._release_mshr(ready)
        self.il1.fill(addr)
        return ready

    # ------------------------------------------------------------------
    # Prefetches
    # ------------------------------------------------------------------

    def probe_cached(self, addr: int, time: int) -> bool:
        """True if the line holding ``addr`` is in L1, the prefetch buffer,
        or already in flight (no prefetch request would be generated)."""
        line = addr & self._dl1_line_mask
        dl1 = self.dl1
        if line in dl1._sets[(line >> dl1._line_shift) & dl1._set_mask]:
            return True
        pb = self.pb
        if pb is not None:
            pl = line & pb._line_mask
            if pl in pb._sets[(pl >> pb._line_shift) & pb._set_mask]:
                return True
        inflight = self._inflight.get(line)
        return inflight is not None and inflight > time

    def prefetch_request(self, addr: int, time: int) -> int | None:
        """Issue a (hardware or software) prefetch of the line at ``addr``.

        Returns the fill-completion time, or None if the request was
        redundant (line already cached, buffered, or in flight).
        """
        st = self.stats
        st.prefetches_requested += 1
        if self._perfect:
            return None
        line = addr & self._dl1_line_mask
        if self.dl1.probe(line) or (self.pb is not None and self.pb.probe(line)):
            st.prefetches_redundant += 1
            return None
        inflight = self._inflight.get(line)
        if inflight is not None and inflight > time:
            st.prefetches_redundant += 1
            return None

        # Prefetches wait for idle resources (the paper's PRQ rationale:
        # "to minimize resource contention"): they may not take the last
        # MSHRs (reserved for demand misses) and do not pile onto already
        # backlogged buses, where they would delay demand transfers (the
        # model has no demand-priority reordering).
        self._mshr_done[:] = [t for t in self._mshr_done if t > time]
        if len(self._mshr_done) >= self.cfg.max_outstanding_misses - 2:
            st.prefetches_throttled += 1
            return None

        time += self.dtlb.translate(addr)
        t = self._acquire_mshr(time)
        ready = self._l2_path(line, t, self.cfg.dl1.line, background=True)
        self._release_mshr(ready)
        st.prefetches_issued += 1
        obs = self._obs
        if obs is not None and obs.trace is not None:
            obs.trace.complete("prefetch", time, ready - time, cat="prefetch",
                               line=line)
        if self.pb is not None:
            evicted, __ = self.pb.fill(line)
            if evicted is not None:
                self._pf_inflight.discard(evicted)
                if obs is not None:
                    obs.outcomes.on_evict(evicted)
        else:
            self._fill_l1(addr, dirty=False)
            self._pf_lines.add(line)
        self._inflight[line] = ready
        self._pf_inflight.add(line)
        return ready
