"""Two-level memory hierarchy with miss, bus, MSHR and TLB timing.

Latency composition for a demand L1 data miss issued at time *t*:

1. L1 lookup (``dl1.latency``), miss detected; an MSHR is acquired (at most
   ``max_outstanding_misses`` in flight — Table 2's 8; a full MSHR file
   delays the request until the earliest outstanding miss completes).
2. L2 lookup (12 cycles).  On a hit the line crosses the L2 bus (8 bytes per
   bus cycle at half core frequency).  On a miss, main memory is accessed
   (70 cycles) and the L2 line crosses the memory bus (8 bytes per bus cycle
   at quarter core frequency), then the L1 line crosses the L2 bus.
3. The line is filled; in-flight misses are recorded so later accesses to
   the same line merge and see only the residual latency.

Prefetch requests follow the same path but fill the prefetch buffer when
one is configured (hardware/cooperative/DBP schemes); a demand hit in the
prefetch buffer costs one cycle and installs the line into L1 ("installed
into the cache if used", Table 2).

MSHR models (``MachineConfig.mshr_model``)
------------------------------------------

The data side supports three MSHR fidelity levels, selectable per machine
(spec files: ``overrides = {"mshr_model" = "coalescing"}``; CLI:
``repro audit --mshr-model full``, ``repro run-spec --set
mshr_model=coalescing``):

* ``blocking`` (default) — the historical model above, bit-exact: misses
  are capped by the MSHR file, merges with in-flight lines see the
  residual latency, and dirty-victim writebacks occupy only background
  bus slots.
* ``coalescing`` — per-line MSHR entries with secondary-miss coalescing:
  a demand miss (or prefetch) to an in-flight line joins that entry's
  target list instead of allocating a new MSHR or re-walking the bus, and
  a demand join *promotes* a background (prefetch/store) fill to demand
  bus priority — it completes no later than the entry's demand-priority
  completion time, computed when the transfer was scheduled.  Prefetches
  to in-flight lines are reclassified from ``redundant`` to
  ``coalesced``.  Dirty-victim L1 writebacks additionally consume demand
  bus slots (the victim must drain before the fill's port is free), so
  write-back traffic now contends with demand and prefetch transfers.
* ``full`` — ``coalescing`` plus critical-word-first fill (the triggering
  demand load completes after one word crosses the L2 bus rather than the
  whole line) and hit-during-refill (a secondary demand load is served as
  the refill streams past, at ``max(t + dl1.latency, first-beat
  arrival)``, without waiting for the full line).

The instruction side keeps the blocking model throughout (I-fetch misses
do not coalesce into data MSHRs).  Every model shares the same L1-hit
path, so the block-compiled engine's inlined hit fast path
(:mod:`repro.cpu.compiled`) stays bit-identical to the table engine under
every model; all model-specific behavior lives on the miss/merge paths.

MSHR bookkeeping is audited (:meth:`MemoryHierarchy.audit_check`):
``allocated == retired + outstanding``, target-list conservation,
coalesce accounting, and the occupancy bound never exceeding
``max_outstanding_misses``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..config import MachineConfig
from .cache import Cache

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Telemetry


@dataclass(slots=True)
class HierarchyStats:
    """Event and bandwidth counters for one simulation."""

    loads: int = 0
    stores: int = 0
    l1d_partial_hits: int = 0
    pb_hits: int = 0
    prefetches_requested: int = 0
    prefetches_issued: int = 0
    prefetches_redundant: int = 0
    prefetches_throttled: int = 0
    prefetches_useful: int = 0
    bytes_l1_l2: int = 0
    bytes_l2_mem: int = 0
    dtlb_cycles: int = 0
    miss_intervals: list[tuple[int, int]] | None = None
    lds_load_misses: int = 0
    load_misses: int = 0
    # Dirty-victim L1 writebacks (counted under every model; only the
    # non-blocking models charge them against demand bus slots).
    writebacks_l1: int = 0
    writeback_bus_cycles: int = 0
    # MSHR-entry accounting (non-blocking models only; stays zero under
    # `blocking`, which has no per-line entry table).
    mshrs_allocated: int = 0
    mshrs_retired: int = 0
    mshr_coalesced: int = 0
    mshr_targets: int = 0
    mshr_targets_retired: int = 0
    mshr_occupancy_peak: int = 0
    prefetches_coalesced: int = 0
    # `full` model only: demand misses returned at the critical word, and
    # secondary loads served while the refill streamed past.
    critical_word_returns: int = 0
    refill_hits: int = 0

    extra: dict[str, int] = field(default_factory=dict)


class MemoryHierarchy:
    """See module docstring."""

    __slots__ = (
        "cfg", "il1", "dl1", "l2", "itlb", "dtlb", "pb", "stats",
        "_l2_bus_demand", "_l2_bus_all", "_mem_bus_demand", "_mem_bus_all",
        "_mshr_done", "_inflight", "_pf_lines", "_pf_inflight", "_perfect",
        "_demand_fill_estimate", "_obs", "_miss_hist", "_dl1_line_mask",
        "_prof", "_nb", "_full", "_mshr_entries", "_mshr_hist",
        "_last_demand_ready", "_last_data_ready", "_wb_until",
    )

    def __init__(
        self,
        cfg: MachineConfig,
        use_prefetch_buffer: bool = False,
        collect_miss_intervals: bool = False,
    ) -> None:
        from .tlb import TLB  # local import to avoid cycle in docs builds

        self.cfg = cfg
        self.il1 = Cache(cfg.il1, "il1")
        self.dl1 = Cache(cfg.dl1, "dl1")
        self.l2 = Cache(cfg.l2, "l2")
        self.itlb = TLB(cfg.itlb)
        self.dtlb = TLB(cfg.dtlb)
        self.pb: Cache | None = (
            Cache(cfg.prefetch.prefetch_buffer, "pb") if use_prefetch_buffer else None
        )
        self.stats = HierarchyStats()
        if collect_miss_intervals:
            self.stats.miss_intervals = []
        # Two-class bus accounting: demand transfers have priority and see
        # only other demand traffic; prefetch/background transfers queue
        # behind everything (`*_all`).
        self._l2_bus_demand = 0
        self._l2_bus_all = 0
        self._mem_bus_demand = 0
        self._mem_bus_all = 0
        self._mshr_done: list[int] = []  # completion times of in-flight misses
        self._inflight: dict[int, int] = {}  # line -> data ready time
        # Non-blocking MSHR models (see module docstring).  `_nb` is
        # hoisted so the blocking fast path pays one attribute read.
        self._nb = cfg.mshr_model != "blocking"
        self._full = cfg.mshr_model == "full"
        # line -> [ready, demand_ready, data_ready, targets]: the fill
        # completion, its hypothetical demand-priority completion (used to
        # promote background fills a demand join rides), the first-beat
        # arrival (critical word / refill streaming), and the target list
        # length.  Retired lazily at allocation time.
        self._mshr_entries: dict[int, list[int]] = {}
        # Side channel filled by _l2_path under non-blocking models.
        self._last_demand_ready = 0
        self._last_data_ready = 0
        # Demand-bus time up to which the backlog tail is a writeback
        # drain (profiler attribution of wb-held demand misses).
        self._wb_until = 0
        self._pf_lines: set[int] = set()  # lines filled by prefetch, not yet used
        self._pf_inflight: set[int] = set()
        self._perfect = cfg.perfect_data_memory
        # Worst-case demand fill latency: used to promote in-flight
        # background (prefetch) fills that a demand access merges with —
        # the demand must never wait longer than its own miss would take.
        self._demand_fill_estimate = (
            cfg.dl1.latency
            + cfg.l2.latency
            + cfg.memory_latency
            + cfg.mem_bus.cycles_for(cfg.l2.line)
            + cfg.l2_bus.cycles_for(cfg.dl1.line)
        )
        # Optional observability context (None = zero-overhead fast path).
        self._obs: "Telemetry | None" = None
        self._miss_hist = None
        self._mshr_hist = None
        # Optional profiler (same contract): notes the service level and
        # latency of every demand load for the CPI stack / site table.
        self._prof = None
        # L1 line mask, hoisted for the demand-access fast path.
        self._dl1_line_mask = ~(cfg.dl1.line - 1)

    def set_telemetry(self, obs: "Telemetry | None") -> None:
        """Attach an observability context; registers this component's
        instruments into its metric registry."""
        self._obs = obs
        if obs is not None:
            from ..obs import MISS_LATENCY_BOUNDS, linear_buckets

            self._miss_hist = obs.registry.histogram(
                "mem.miss_latency_cycles",
                MISS_LATENCY_BOUNDS,
                help="demand L1 data-miss latency (request to fill)",
            )
            self._mshr_hist = obs.registry.histogram(
                "mem.mshr_occupancy",
                linear_buckets(1, 1, self.cfg.max_outstanding_misses),
                help="live MSHR entries, sampled at each allocation "
                     "(non-blocking mshr models only)",
            )
        else:
            self._miss_hist = None
            self._mshr_hist = None

    def set_profiler(self, prof) -> None:
        """Attach a :class:`repro.obs.profile.Profiler` (or ``None``)."""
        self._prof = prof

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def audit_check(self) -> list[tuple[str, str]]:
        """Invariant sweep for :class:`repro.audit.Auditor`; returns
        ``(invariant, message)`` pairs for every violated law.

        * **cache-access-conservation** — per level, ``hits + misses ==
          accesses`` (a double-counted or dropped lookup breaks this).
        * **cache-capacity** — no tag array holds more lines than
          ``sets * assoc``.
        * **tlb-access-conservation** — per TLB, ``misses <= accesses``.
        * **prefetch-request-accounting** — every prefetch request
          resolves to exactly one of issued / redundant / throttled /
          coalesced (skipped under perfect data memory, which
          short-circuits).

        Non-blocking MSHR models add the entry-table conservation laws:

        * **mshr-conservation** — ``allocated == retired + outstanding``.
        * **mshr-coalesce-accounting** — every coalesced (secondary) miss
          is exactly one demand partial hit or one coalesced prefetch.
        * **mshr-target-accounting** — targets ever attached equal
          targets retired plus targets on live entries.
        * **mshr-occupancy** — live entries never exceeded
          ``max_outstanding_misses``.
        """
        violations: list[tuple[str, str]] = []
        caches = [self.il1, self.dl1, self.l2]
        if self.pb is not None:
            caches.append(self.pb)
        for cache in caches:
            s = cache.stats
            if s.hits + s.misses != s.accesses:
                violations.append((
                    "cache-access-conservation",
                    f"{cache.name}: hits {s.hits} + misses {s.misses} "
                    f"!= accesses {s.accesses}",
                ))
            capacity = cache.cfg.sets * cache.cfg.assoc
            resident = cache.resident_lines()
            if resident > capacity:
                violations.append((
                    "cache-capacity",
                    f"{cache.name}: {resident} resident lines > "
                    f"capacity {capacity}",
                ))
        for name, tlb in (("itlb", self.itlb), ("dtlb", self.dtlb)):
            t = tlb.stats
            if t.misses > t.accesses:
                violations.append((
                    "tlb-access-conservation",
                    f"{name}: misses {t.misses} > accesses {t.accesses}",
                ))
        st = self.stats
        if not self._perfect:
            resolved = (
                st.prefetches_issued
                + st.prefetches_redundant
                + st.prefetches_throttled
                + st.prefetches_coalesced
            )
            if resolved > st.prefetches_requested:
                violations.append((
                    "prefetch-request-accounting",
                    f"{resolved} resolved prefetch requests > "
                    f"{st.prefetches_requested} requested",
                ))
        if self._nb:
            entries = self._mshr_entries
            outstanding = len(entries)
            if st.mshrs_allocated != st.mshrs_retired + outstanding:
                violations.append((
                    "mshr-conservation",
                    f"allocated {st.mshrs_allocated} != retired "
                    f"{st.mshrs_retired} + outstanding {outstanding}",
                ))
            if st.mshr_coalesced != st.l1d_partial_hits + st.prefetches_coalesced:
                violations.append((
                    "mshr-coalesce-accounting",
                    f"coalesced {st.mshr_coalesced} != partial hits "
                    f"{st.l1d_partial_hits} + coalesced prefetches "
                    f"{st.prefetches_coalesced}",
                ))
            live_targets = sum(e[3] for e in entries.values())
            if st.mshr_targets != st.mshr_targets_retired + live_targets:
                violations.append((
                    "mshr-target-accounting",
                    f"targets {st.mshr_targets} != retired "
                    f"{st.mshr_targets_retired} + live {live_targets}",
                ))
            if st.mshr_occupancy_peak > self.cfg.max_outstanding_misses:
                violations.append((
                    "mshr-occupancy",
                    f"peak occupancy {st.mshr_occupancy_peak} > "
                    f"MSHR file size {self.cfg.max_outstanding_misses}",
                ))
        return violations

    # ------------------------------------------------------------------
    # Shared L2/memory path
    # ------------------------------------------------------------------

    def _acquire_mshr(self, time: int) -> int:
        """Returns the time the request can proceed given the MSHR limit."""
        done = self._mshr_done
        done[:] = [t for t in done if t > time]
        if len(done) >= self.cfg.max_outstanding_misses:
            time = min(done)
            done[:] = [t for t in done if t > time]
        return time

    def _release_mshr(self, done_time: int) -> None:
        self._mshr_done.append(done_time)

    def _mshr_alloc(self, line: int, ready: int, now: int) -> list[int]:
        """Non-blocking models: allocate the per-line MSHR entry for a
        primary miss issued at ``now`` (retiring entries whose fills have
        completed), recording the demand-priority and first-beat times
        :meth:`_l2_path` just computed.  Only ever called on miss paths —
        never on L1 hits — so the table- and block-compiled engines see
        identical bookkeeping."""
        st = self.stats
        entries = self._mshr_entries
        if entries:
            retired = [ln for ln, e in entries.items() if e[0] <= now]
            for ln in retired:
                st.mshr_targets_retired += entries.pop(ln)[3]
            st.mshrs_retired += len(retired)
        while len(entries) >= self.cfg.max_outstanding_misses:
            # The file is physically full (time-based pruning lags when
            # ``_mshr_done`` slots were freed at later I-fetch or prefetch
            # probe times): reuse the earliest-completing miss's slot.
            # Secondary misses to its line still merge on ``_inflight``
            # time — they just cannot attach to a recycled entry.
            victim = min(entries, key=lambda ln: entries[ln][0])
            st.mshr_targets_retired += entries.pop(victim)[3]
            st.mshrs_retired += 1
        entry = [ready, self._last_demand_ready, self._last_data_ready, 1]
        entries[line] = entry
        st.mshrs_allocated += 1
        st.mshr_targets += 1
        occ = len(entries)
        if occ > st.mshr_occupancy_peak:
            st.mshr_occupancy_peak = occ
        if self._mshr_hist is not None:
            self._mshr_hist.observe(occ)
        return entry

    def _l2_path(
        self,
        line_addr: int,
        time: int,
        fill_line_bytes: int,
        background: bool = False,
    ) -> int:
        """Request ``fill_line_bytes`` at ``line_addr`` from L2/memory at
        ``time``; returns the time the data arrives at the L1 boundary.
        ``background`` transfers (prefetches, store-miss fills) yield bus
        priority to demand transfers.

        Under non-blocking MSHR models this also records two side-channel
        times for the new MSHR entry: ``_last_demand_ready`` — what this
        fill's completion would be at demand bus priority (equal to the
        return value for demand transfers; always ``<=`` the background
        completion because the demand timelines never trail the ``_all``
        timelines) — and ``_last_data_ready`` — when the first beat (the
        critical word) of the L1 fill arrives."""
        cfg = self.cfg
        nb = self._nb
        t = time + cfg.l2.latency
        l2_hit = self.l2.access(line_addr)
        if l2_hit:
            dq = self._l2_bus_demand
            bus_start = max(t, self._l2_bus_all if background else dq)
            d_bus_start = max(t, dq) if nb and background else bus_start
            wb_held = dq > t
        else:
            # Main memory access, then fill L2.
            mem_start = max(
                t, self._mem_bus_all if background else self._mem_bus_demand
            )
            data_at_l2 = mem_start + cfg.memory_latency
            xfer = cfg.mem_bus.cycles_for(cfg.l2.line)
            mem_done = data_at_l2 + xfer
            if nb and background:
                d_mem_done = (
                    max(t, self._mem_bus_demand) + cfg.memory_latency + xfer
                )
            else:
                d_mem_done = mem_done
            self._mem_bus_all = max(self._mem_bus_all, mem_done)
            if not background:
                self._mem_bus_demand = max(self._mem_bus_demand, mem_done)
            self.stats.bytes_l2_mem += cfg.l2.line
            evicted, dirty = self.l2.fill(line_addr)
            if dirty:
                self.stats.bytes_l2_mem += cfg.l2.line
                self._mem_bus_all += cfg.mem_bus.cycles_for(cfg.l2.line)
            dq = self._l2_bus_demand
            bus_start = max(mem_done, self._l2_bus_all if background else dq)
            d_bus_start = max(d_mem_done, dq) if nb and background else bus_start
            wb_held = dq > mem_done
        xfer_l1 = cfg.l2_bus.cycles_for(fill_line_bytes)
        done = bus_start + xfer_l1
        self._l2_bus_all = max(self._l2_bus_all, done)
        if not background:
            self._l2_bus_demand = max(self._l2_bus_demand, done)
        self.stats.bytes_l1_l2 += fill_line_bytes
        if nb:
            self._last_demand_ready = d_bus_start + xfer_l1
            # Critical-word-first: the requested word rides the first
            # beat(s) of the L1 fill (one 4-byte mini-ISA word).
            self._last_data_ready = bus_start + cfg.l2_bus.cycles_for(4)
        if self._prof is not None:
            if nb and not background and wb_held and self._wb_until >= dq:
                # The demand bus wait was (at least) a writeback drain.
                self._prof._l2_source = "wb"
            else:
                self._prof._l2_source = "l2" if l2_hit else "mem"
        return done

    def _writeback_l1(self, line_addr: int) -> None:
        """Dirty L1 eviction.  Under ``blocking`` the victim drains as
        background traffic on the L2 bus; under the non-blocking models it
        additionally occupies demand bus slots — the fill that evicted it
        cannot use the port until the victim has drained — so write-back
        traffic contends with demand and prefetch transfers alike."""
        st = self.stats
        wb = self.cfg.l2_bus.cycles_for(self.cfg.dl1.line)
        st.bytes_l1_l2 += self.cfg.dl1.line
        st.writebacks_l1 += 1
        st.writeback_bus_cycles += wb
        self._l2_bus_all += wb
        if self._nb:
            self._l2_bus_demand += wb
            self._wb_until = self._l2_bus_demand
        if not self.l2.access(line_addr, write=True):
            # Allocate-on-writeback; memory traffic counted, timing folded
            # into bus occupancy.
            __, dirty = self.l2.fill(line_addr, dirty=True)
            self.stats.bytes_l2_mem += self.cfg.l2.line
            if dirty:
                self.stats.bytes_l2_mem += self.cfg.l2.line

    def _fill_l1(self, addr: int, dirty: bool) -> None:
        evicted, evicted_dirty = self.dl1.fill(addr, dirty=dirty)
        if evicted is not None:
            if evicted in self._pf_lines:
                # A prefetched line leaving L1 unused: too early.
                self._pf_lines.discard(evicted)
                if self._obs is not None:
                    self._obs.outcomes.on_evict(evicted)
            if evicted_dirty:
                self._writeback_l1(evicted)

    # ------------------------------------------------------------------
    # Demand data accesses
    # ------------------------------------------------------------------

    def data_access(
        self, addr: int, time: int, write: bool = False, lds: bool = False
    ) -> int:
        """Demand load/store of the word at ``addr`` starting at ``time``;
        returns the completion time."""
        st = self.stats
        if write:
            st.stores += 1
        else:
            st.loads += 1
        if self._perfect:
            if self._prof is not None and not write:
                self._prof.note_access("l1", 1)
            return time + 1

        time += self.dtlb.translate(addr)

        line = addr & self._dl1_line_mask
        inflight = self._inflight.get(line)
        if inflight is not None and inflight > time:
            # Merge with an in-flight miss (possibly a late prefetch).
            st.l1d_partial_hits += 1
            entry = None
            if self._nb:
                # Coalesce: join the in-flight entry's target list instead
                # of allocating an MSHR or re-walking the bus.
                st.mshr_coalesced += 1
                entry = self._mshr_entries.get(line)
                if entry is not None:
                    entry[3] += 1
                    st.mshr_targets += 1
            if line in self._pf_inflight:
                st.prefetches_useful += 1
                if self._obs is not None:
                    self._obs.outcomes.on_demand(line, time)
                self._pf_inflight.discard(line)
                self._pf_lines.discard(line)
                # Promote the background fill to demand priority.
                cap = time + self._demand_fill_estimate
                if inflight > cap:
                    inflight = cap
                    self._inflight[line] = cap
                    if entry is not None:
                        entry[0] = cap
            if entry is not None and not write:
                # A demand join promotes a background fill to its
                # demand-priority completion (never earlier than next
                # cycle); the promoted time sticks for later joins.
                promoted = entry[1]
                if promoted <= time:
                    promoted = time + 1
                if promoted < inflight:
                    inflight = promoted
                    self._inflight[line] = promoted
                    entry[0] = promoted
                if self._full:
                    # Hit during refill: served as the fill streams past,
                    # without waiting for the whole line to land.
                    early = entry[2]
                    floor = time + self.cfg.dl1.latency
                    if early < floor:
                        early = floor
                    if early < inflight:
                        st.refill_hits += 1
                        inflight = early
            if write and self.dl1.probe(addr):
                self.dl1.access(addr, write=True)  # dirty/LRU update
            elif self._prof is not None and not write:
                self._prof.note_access("merge", inflight - time)
            return inflight

        if self.dl1.access(addr, write=write):
            if line in self._pf_lines:
                st.prefetches_useful += 1
                if self._obs is not None:
                    self._obs.outcomes.on_demand(line, time)
                self._pf_lines.discard(line)
                self._pf_inflight.discard(line)
            if self._prof is not None and not write:
                self._prof.note_access("l1", self.cfg.dl1.latency)
            return time + self.cfg.dl1.latency

        if not write:
            st.load_misses += 1
            if lds:
                st.lds_load_misses += 1

        if self.pb is not None and self.pb.probe(line):
            # Prefetch-buffer hit: 1 cycle, install into L1.
            self.pb.invalidate(line)
            st.pb_hits += 1
            st.prefetches_useful += 1
            if self._obs is not None:
                self._obs.outcomes.on_demand(line, time)
            self._pf_inflight.discard(line)
            self._fill_l1(addr, dirty=write)
            if self._prof is not None and not write:
                self._prof.note_access(
                    "pb", self.cfg.prefetch.prefetch_buffer.latency
                )
            return time + self.cfg.prefetch.prefetch_buffer.latency

        t = self._acquire_mshr(time + self.cfg.dl1.latency)
        ready = self._l2_path(line, t, self.cfg.dl1.line, background=write)
        self._release_mshr(ready)
        ret = ready
        if self._nb:
            self._mshr_alloc(line, ready, t)
            if self._full and not write:
                # Critical-word-first: the triggering load completes when
                # its word crosses the bus; the line lands at `ready`.
                cw = self._last_data_ready
                if cw < ret:
                    st.critical_word_returns += 1
                    ret = cw
        if self._prof is not None and not write:
            # _l2_path just recorded whether L2 hit or memory serviced it.
            self._prof.note_access(self._prof._l2_source, ret - time)
        obs = self._obs
        if obs is not None and not write:
            self._miss_hist.observe(ret - time)
            trace = obs.trace
            if trace is not None:
                trace.complete("demand-miss", time, ret - time, cat="mem",
                               line=line, lds=lds)
                trace.instant("fill", ready, cat="mem", line=line)
        self._fill_l1(addr, dirty=write)
        inflight_map = self._inflight
        inflight_map[line] = ready
        if len(inflight_map) > 4096:
            # In place (not rebound): the block-compiled fast path holds a
            # direct reference to this dict across the whole run.
            live = [(ln, rt) for ln, rt in inflight_map.items() if rt > time]
            inflight_map.clear()
            inflight_map.update(live)
        if st.miss_intervals is not None and not write:
            st.miss_intervals.append((time, ret))
        return ret

    def jp_store(self, addr: int, time: int) -> None:
        """Hardware jump-pointer install (Figure 3b): a fire-and-forget
        store request.  Hits update the cached line; misses write around
        the L1 (no allocation, no MSHR) — the word travels to L2/memory on
        its own, which is counted as bandwidth but delays nobody."""
        if self.dl1.probe(addr):
            self.dl1.access(addr, write=True)
            return
        self.stats.bytes_l1_l2 += 4
        self._l2_bus_all += self.cfg.l2_bus.cycles_for(4)
        line = self.l2.line_addr(addr)
        if not self.l2.access(line, write=True):
            self.l2.fill(line, dirty=True)
            self.stats.bytes_l2_mem += self.cfg.l2.line

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------

    def inst_fetch(self, addr: int, time: int) -> int:
        """Fetch the instruction line at ``addr``; returns ready time.

        The instruction side keeps the blocking model under every
        ``mshr_model`` (it shares the MSHR file's capacity but I-misses
        never coalesce into the data-side entry table)."""
        time += self.itlb.translate(addr)
        line = self.il1.line_addr(addr)
        if self.il1.access(addr):
            return time + self.cfg.il1.latency
        t = self._acquire_mshr(time + self.cfg.il1.latency)
        ready = self._l2_path(line, t, self.cfg.il1.line)
        self._release_mshr(ready)
        self.il1.fill(addr)
        return ready

    # ------------------------------------------------------------------
    # Prefetches
    # ------------------------------------------------------------------

    def probe_cached(self, addr: int, time: int) -> bool:
        """True if the line holding ``addr`` is in L1, the prefetch buffer,
        or already in flight (no prefetch request would be generated)."""
        line = addr & self._dl1_line_mask
        dl1 = self.dl1
        if line in dl1._sets[(line >> dl1._line_shift) & dl1._set_mask]:
            return True
        pb = self.pb
        if pb is not None:
            pl = line & pb._line_mask
            if pl in pb._sets[(pl >> pb._line_shift) & pb._set_mask]:
                return True
        inflight = self._inflight.get(line)
        return inflight is not None and inflight > time

    def prefetch_request(self, addr: int, time: int) -> int | None:
        """Issue a (hardware or software) prefetch of the line at ``addr``.

        Returns the fill-completion time, or None if the request was
        redundant (line already cached, buffered, or in flight).  Under
        the non-blocking MSHR models a request to an in-flight line is
        *coalesced* — it joins that entry's target list and is counted
        separately from plain redundancy.
        """
        st = self.stats
        st.prefetches_requested += 1
        if self._perfect:
            return None
        line = addr & self._dl1_line_mask
        if self.dl1.probe(line) or (self.pb is not None and self.pb.probe(line)):
            st.prefetches_redundant += 1
            return None
        inflight = self._inflight.get(line)
        if inflight is not None and inflight > time:
            if self._nb:
                st.prefetches_coalesced += 1
                st.mshr_coalesced += 1
                entry = self._mshr_entries.get(line)
                if entry is not None:
                    entry[3] += 1
                    st.mshr_targets += 1
            else:
                st.prefetches_redundant += 1
            return None

        # Prefetches wait for idle resources (the paper's PRQ rationale:
        # "to minimize resource contention"): they may not take the last
        # MSHRs (reserved for demand misses) and do not pile onto already
        # backlogged buses, where they would delay demand transfers (the
        # model has no demand-priority reordering).
        self._mshr_done[:] = [t for t in self._mshr_done if t > time]
        if len(self._mshr_done) >= self.cfg.max_outstanding_misses - 2:
            st.prefetches_throttled += 1
            return None

        time += self.dtlb.translate(addr)
        t = self._acquire_mshr(time)
        ready = self._l2_path(line, t, self.cfg.dl1.line, background=True)
        self._release_mshr(ready)
        if self._nb:
            self._mshr_alloc(line, ready, t)
        st.prefetches_issued += 1
        obs = self._obs
        if obs is not None and obs.trace is not None:
            obs.trace.complete("prefetch", time, ready - time, cat="prefetch",
                               line=line)
        if self.pb is not None:
            evicted, __ = self.pb.fill(line)
            if evicted is not None:
                self._pf_inflight.discard(evicted)
                if obs is not None:
                    obs.outcomes.on_evict(evicted)
        else:
            self._fill_l1(addr, dirty=False)
            self._pf_lines.add(line)
        self._inflight[line] = ready
        self._pf_inflight.add(line)
        return ready
