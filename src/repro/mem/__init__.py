"""Memory subsystem: memory image, size-class allocator, caches, TLBs and
the two-level timing hierarchy."""

from .allocator import (
    SizeClassAllocator,
    jump_slot,
    padding_bytes,
    size_class,
)
from .cache import Cache, CacheStats
from .hierarchy import HierarchyStats, MemoryHierarchy
from .memory_image import MemoryImage
from .tlb import TLB, TLBStats

__all__ = [
    "Cache",
    "CacheStats",
    "HierarchyStats",
    "MemoryHierarchy",
    "MemoryImage",
    "SizeClassAllocator",
    "TLB",
    "TLBStats",
    "jump_slot",
    "padding_bytes",
    "size_class",
]
