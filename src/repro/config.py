"""Machine configuration dataclasses.

The defaults mirror Table 2 of the paper (the "Simulated Machine
Configuration" used for every experiment).  All sizes are in bytes and all
latencies in core cycles unless noted otherwise.

Every config dataclass is serializable (``to_dict``/``from_dict`` with
strict unknown-key rejection) and supports declarative dotted-path
overrides::

    bench_config().with_overrides({"prefetch.jump_interval": 4,
                                   "memory_latency": 280})

which is how experiment spec files (:mod:`repro.harness.spec`) describe
machine variations.  Named machines live in the :data:`MACHINES`
registry ("table2", "bench", "small"); :func:`register_machine` adds new
ones.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, get_type_hints

from .errors import ConfigError
from .registry import Registry

#: MSHR models of the memory hierarchy, in fidelity order (see
#: :mod:`repro.mem.hierarchy`): ``blocking`` reproduces the historical
#: capped-outstanding-misses behavior bit-exactly, ``coalescing`` adds
#: per-line MSHR entries with secondary-miss target lists and dirty-victim
#: bus contention, ``full`` adds critical-word-first fill and
#: hit-during-refill on top of coalescing.
MSHR_MODELS: tuple[str, ...] = ("blocking", "coalescing", "full")


def _check_power_of_two(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) \
            or value <= 0 or value & (value - 1):
        raise ConfigError(f"{name} must be a positive power of two, got {value}")


def _check_positive(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigError(f"{name} must be a positive integer, got {value}")


# ----------------------------------------------------------------------
# Serialization and dotted-path overrides (shared by every config class)
# ----------------------------------------------------------------------

def _leaf_compatible(current: Any, value: Any) -> bool:
    """Loose type agreement for an override leaf: ints for ints, numbers
    for floats, bools for bools — rejects category errors (a dict where a
    latency goes) without blocking e.g. an int for a float field."""
    if isinstance(current, bool):
        return isinstance(value, bool)
    if isinstance(current, int):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(current, float):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, type(current))


def _config_from_dict(cls: type, data: Any, context: str = "") -> Any:
    """Strict recursive constructor: unknown keys and malformed nesting
    raise :class:`ConfigError` instead of being silently dropped."""
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    hints = get_type_hints(cls)
    known = {f.name for f in dataclasses.fields(cls)}
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key not in known:
            raise ConfigError(
                f"unknown config key {context + str(key)!r} "
                f"for {cls.__name__}; known keys: {sorted(known)}"
            )
        ftype = hints[key]
        if dataclasses.is_dataclass(ftype):
            value = _config_from_dict(ftype, value, context=f"{context}{key}.")
        elif not _annotation_compatible(ftype, value):
            raise ConfigError(
                f"config key {context + str(key)!r} expects "
                f"{ftype.__name__}, got {type(value).__name__} ({value!r})"
            )
        kwargs[key] = value
    return cls(**kwargs)


def _annotation_compatible(ftype: type, value: Any) -> bool:
    """Leaf agreement against the declared field type (same rules as
    :func:`_leaf_compatible`, keyed on the annotation instead of the
    current value)."""
    if ftype is bool:
        return isinstance(value, bool)
    if ftype is int:
        return isinstance(value, int) and not isinstance(value, bool)
    if ftype is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    try:
        return isinstance(value, ftype)
    except TypeError:  # exotic annotation (e.g. parametrized generics)
        return True


def _override_section(current: Any, path: str, value: Any) -> Any:
    """A mapping assigned to a section path merges field-by-field."""
    if not isinstance(value, Mapping):
        raise ConfigError(
            f"config path {path!r} names a {type(current).__name__} "
            "section; assign a mapping of its fields or extend the path"
        )
    known = {f.name for f in dataclasses.fields(current)}
    unknown = set(value) - known
    if unknown:
        raise ConfigError(
            f"unknown config key(s) {sorted(unknown)} under {path!r}; "
            f"known keys: {sorted(known)}"
        )
    return replace(current, **dict(value))


def _override_path(obj: Any, full: str, parts: list[str], value: Any) -> Any:
    name = parts[0]
    if not dataclasses.is_dataclass(obj) or not name or \
            name not in {f.name for f in dataclasses.fields(obj)}:
        owner = type(obj).__name__
        raise ConfigError(
            f"unknown config path {full!r}: {owner} has no field {name!r}"
        )
    current = getattr(obj, name)
    if len(parts) > 1:
        if not dataclasses.is_dataclass(current):
            raise ConfigError(
                f"config path {full!r} descends into {name!r}, "
                "which is not a config section"
            )
        value = _override_path(current, full, parts[1:], value)
    elif dataclasses.is_dataclass(current):
        value = _override_section(current, full, value)
    elif not _leaf_compatible(current, value):
        raise ConfigError(
            f"config path {full!r} expects {type(current).__name__}, "
            f"got {type(value).__name__} ({value!r})"
        )
    return replace(obj, **{name: value})


class SerializableConfig:
    """Mixin: dict round-trip plus dotted-path overrides.

    ``from_dict(cfg.to_dict()) == cfg`` holds for every config class;
    both directions validate (construction runs ``__post_init__``,
    parsing rejects unknown keys)."""

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe nested dict of every field (the cache-key form)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SerializableConfig":
        """Inverse of :meth:`to_dict`; missing keys take field defaults,
        unknown keys raise :class:`~repro.errors.ConfigError`."""
        return _config_from_dict(cls, data)

    def with_overrides(
        self, overrides: Mapping[str, Any] | None
    ) -> "SerializableConfig":
        """A copy with dotted-path fields replaced, e.g.
        ``{"prefetch.jump_interval": 4, "dl1.size": 16384}``.  Paths are
        validated against the dataclass tree; a path ending at a nested
        section accepts a mapping of that section's fields."""
        cfg = self
        for path, value in (overrides or {}).items():
            cfg = _override_path(cfg, path, str(path).split("."), value)
        return cfg


# ----------------------------------------------------------------------
# Config dataclasses
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CacheConfig(SerializableConfig):
    """Geometry and access latency of one set-associative cache."""

    size: int
    line: int
    assoc: int
    latency: int

    def __post_init__(self) -> None:
        _check_power_of_two("cache size", self.size)
        _check_power_of_two("cache line", self.line)
        if self.assoc <= 0:
            raise ConfigError(f"associativity must be positive, got {self.assoc}")
        if self.size % (self.line * self.assoc):
            raise ConfigError(
                f"cache size {self.size} not divisible by line*assoc "
                f"({self.line}*{self.assoc})"
            )
        if self.latency < 0:
            raise ConfigError("cache latency must be non-negative")

    @property
    def sets(self) -> int:
        return self.size // (self.line * self.assoc)


@dataclass(frozen=True)
class TLBConfig(SerializableConfig):
    """A fully-associative TLB with hardware miss handling."""

    entries: int
    page_size: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        _check_power_of_two("TLB page size", self.page_size)
        if self.entries <= 0:
            raise ConfigError("TLB must have at least one entry")
        if self.miss_penalty < 0:
            raise ConfigError(
                f"TLB miss penalty must be non-negative, got {self.miss_penalty}"
            )


@dataclass(frozen=True)
class BusConfig(SerializableConfig):
    """A bus transferring ``width`` bytes per bus cycle.

    ``clock_divisor`` is the ratio of core frequency to bus frequency; the
    paper's L2 bus runs at 1/2 core frequency and the memory bus at 1/4.
    """

    width: int = 8
    clock_divisor: int = 2

    def __post_init__(self) -> None:
        _check_power_of_two("bus width", self.width)
        _check_power_of_two("bus clock divisor", self.clock_divisor)

    def cycles_for(self, nbytes: int) -> int:
        """Core cycles the bus is occupied transferring ``nbytes``."""
        beats = -(-nbytes // self.width)  # ceil division
        return beats * self.clock_divisor


@dataclass(frozen=True)
class FuncUnitConfig(SerializableConfig):
    """Counts and latencies of the functional unit pool (Table 2)."""

    int_alu: int = 4
    int_alu_latency: int = 1
    int_mul: int = 1
    int_mul_latency: int = 3
    int_div: int = 1
    int_div_latency: int = 20
    fp_add: int = 2
    fp_add_latency: int = 2
    fp_mul: int = 1
    fp_mul_latency: int = 4
    fp_div: int = 1
    fp_div_latency: int = 24
    mem_ports: int = 2
    mem_port_latency: int = 1

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            label = "latency" if f.name.endswith("_latency") else "count"
            _check_positive(
                f"functional unit {label} {f.name!r}", getattr(self, f.name)
            )


@dataclass(frozen=True)
class BranchPredConfig(SerializableConfig):
    """8K-entry combined gshare/bimodal predictor with a 2K 4-way BTB."""

    meta_entries: int = 8192
    bimodal_entries: int = 8192
    gshare_entries: int = 8192
    history_bits: int = 10
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 16
    misprediction_penalty: int = 3
    """Front-end refill cycles after the branch resolves."""


@dataclass(frozen=True)
class PrefetchConfig(SerializableConfig):
    """Parameters of the DBP and jump-pointer hardware (Table 2)."""

    # Dependence predictor (DBP)
    dep_entries: int = 256
    dep_assoc: int = 4
    dep_queries_per_cycle: int = 2
    # Prefetch request queue / prefetch buffer
    prq_entries: int = 8
    prefetch_buffer: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=2048, line=32, assoc=8, latency=1)
    )
    # Jump-pointer hardware
    jqt_entries: int = 32
    jump_interval: int = 8
    jpr_accesses_per_cycle: int = 1
    max_chain_depth: int = 8
    """Safety bound on recursively chained prefetches per trigger."""
    onchip_table_entries: int = 0
    """If non-zero, store jump-pointers in an on-chip table of this many
    entries instead of allocator padding (the Section 3.3 ablation)."""
    adaptive_interval: bool = False
    """Enable the adaptive per-PC jump interval (the paper's Section 6
    future-work item; see :mod:`repro.prefetch.adaptive`)."""
    adaptive_max_interval: int = 64


@dataclass(frozen=True)
class MachineConfig(SerializableConfig):
    """Full simulated machine, defaulting to the paper's Table 2."""

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    window: int = 64
    lsq_entries: int = 32
    front_pipeline_depth: int = 2
    """Cycles between fetch and dispatch (decode/rename)."""

    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=32 * 1024, line=32, assoc=2, latency=1)
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=64 * 1024, line=32, assoc=2, latency=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=512 * 1024, line=64, assoc=4, latency=12)
    )
    memory_latency: int = 70
    max_outstanding_misses: int = 8
    mshr_model: str = "blocking"
    """MSHR behavior of the data-side memory hierarchy: one of
    :data:`MSHR_MODELS`.  ``blocking`` (the default) only caps outstanding
    misses; ``coalescing`` merges secondary misses into per-line MSHR
    entries and charges dirty-victim writebacks against demand bus slots;
    ``full`` additionally models critical-word-first fill and
    hit-during-refill."""
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=16))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    l2_bus: BusConfig = field(default_factory=lambda: BusConfig(width=8, clock_divisor=2))
    mem_bus: BusConfig = field(default_factory=lambda: BusConfig(width=8, clock_divisor=4))

    func_units: FuncUnitConfig = field(default_factory=FuncUnitConfig)
    branch_pred: BranchPredConfig = field(default_factory=BranchPredConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)

    alloc_latency: int = 8
    """Charged latency of the ALLOC instruction (library allocator fast path)."""

    perfect_data_memory: bool = False
    """When True every data access costs one cycle; used for the paper's
    compute-time decomposition (memory stall = realistic - perfect)."""

    def __post_init__(self) -> None:
        if self.mshr_model not in MSHR_MODELS:
            raise ConfigError(
                f"unknown mshr_model {self.mshr_model!r}; "
                f"available: {list(MSHR_MODELS)}"
            )

    def with_memory_latency(self, latency: int) -> "MachineConfig":
        """The Figure 7 sweep: same machine, different main-memory latency."""
        return self.with_overrides({"memory_latency": latency})

    def with_jump_interval(self, interval: int) -> "MachineConfig":
        return self.with_overrides({"prefetch.jump_interval": interval})

    def perfect(self) -> "MachineConfig":
        """Variant used to measure compute time (single-cycle data memory)."""
        return replace(self, perfect_data_memory=True)


# ----------------------------------------------------------------------
# Named machines
# ----------------------------------------------------------------------

#: Named machine registry: name -> zero-argument factory returning a
#: :class:`MachineConfig`.  Experiment specs select machines by name.
MACHINES: Registry[Callable[[], MachineConfig]] = Registry(
    "machine", error=ConfigError
)


def register_machine(
    name: str, factory: Callable[[], MachineConfig]
) -> Callable[[], MachineConfig]:
    """Add a named machine; returns ``factory`` so it can decorate."""
    return MACHINES.register(name, factory)


def get_machine(name: str) -> MachineConfig:
    """A fresh :class:`MachineConfig` for the named machine."""
    return MACHINES.get(name)()


def machine_names() -> list[str]:
    return MACHINES.names()


def table2_config() -> MachineConfig:
    """The paper's baseline machine (Table 2)."""
    return MachineConfig()


def bench_config() -> MachineConfig:
    """The experiment machine: Table 2's shape with capacities scaled down.

    The workload kernels run data sets scaled to pure-Python simulation
    speed (tens of KB instead of tens of MB), so cache capacities are
    scaled by the same factor: the ratios footprint/L1 and footprint/L2
    and all latencies match the paper's setup.  The buses are widened by
    the inverse factor of the kernels' higher miss density (scaled-down
    kernels miss more often per instruction than the full-size Olden runs)
    so the machine stays in the paper's latency-dominated regime instead
    of saturating on bandwidth.  See DESIGN.md, "Substitutions".
    """
    return MachineConfig(
        il1=CacheConfig(size=8 * 1024, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=8 * 1024, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=16 * 1024, line=64, assoc=4, latency=12),
        l2_bus=BusConfig(width=32, clock_divisor=2),
        mem_bus=BusConfig(width=64, clock_divisor=4),
    )


def small_config() -> MachineConfig:
    """A scaled-down machine for fast unit tests.

    Keeps the Table-2 *shape* (two-level hierarchy, same line sizes and
    latencies) while shrinking capacities so small test workloads still
    exercise misses and replacements.
    """
    return MachineConfig(
        il1=CacheConfig(size=4 * 1024, line=32, assoc=2, latency=1),
        dl1=CacheConfig(size=4 * 1024, line=32, assoc=2, latency=1),
        l2=CacheConfig(size=32 * 1024, line=64, assoc=4, latency=12),
    )


register_machine("table2", table2_config)
register_machine("bench", bench_config)
register_machine("small", small_config)
