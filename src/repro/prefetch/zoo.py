"""The scheme zoo: competing prefetchers from the related literature.

The paper only races its own four schemes; these engines give
jump-pointer prefetching outside competition (ROADMAP "scheme zoo"):

* :class:`PointerChaseEngine` — a dedicated pointer-chase traversal
  unit (after Srivastava & Navalakha, arXiv:1801.08088): one modeled
  walker follows the recurrent ``next`` dependence ahead of the core,
  serially, one memory latency per hop.  Unlike DBP's event-driven
  unroll, the unit is a *resource* — it chases one chain at a time and
  triggers that arrive while it is busy are simply not chased.
* :class:`StrideEngine` — the classic per-PC reference prediction
  table (Chen & Baer): an honest non-pointer baseline.  Strided
  array code is its home turf; linked traversals defeat it because
  node-to-node deltas are allocation noise.
* :class:`ContentDirectedEngine` — content-directed prefetching
  (Cooksey-style): every committed load value that looks like a heap
  pointer is prefetched, and the pointed-to node is scanned for more
  pointers once its fill returns.  Greedy, learning-free, and
  bandwidth-hungry — the useless-prefetch column is its story.
* :class:`ForesightEngine` — a foresight-style proactive scheme
  (after Skiplists with Foresight, arXiv:2606.13321): on *entry* into
  an annotated linked structure (a recurrent ``lds`` load whose base
  register was produced outside the recurrence), it bursts a bounded
  frontier of node prefetches down the learned recurrent offsets,
  so the first hops of the traversal — the ones jump-pointer schemes
  cannot cover before the queue fills — are already in flight.

All four submit through the shared PRQ model (:meth:`PrefetchEngine.
request`), keep their per-address state in :class:`~repro.prefetch.
bounded.BoundedClockMap` (the PR-5 ``_recent_chase`` lesson, made
reusable), and report structure bounds via ``audit_check`` so the
:class:`repro.audit.Auditor` sweeps them like the paper's own engines.
"""

from __future__ import annotations

from ..config import PrefetchConfig
from ..isa.instruction import Instruction
from .base import PrefetchEngine
from .bounded import BoundedClockMap
from .engines import DBPEngine, register_engine


@register_engine
class PointerChaseEngine(DBPEngine):
    """Dedicated traversal unit chasing the recurrent dependence."""

    name = "pointer-chase"

    #: Nodes one walk may run ahead of the triggering load.
    RUNAHEAD = 8
    #: Prefetches one walk may issue (node fields fan out per hop).
    WALK_BUDGET = 24
    #: A node walked within this window is not walked again.
    VISIT_WINDOW = 4096
    VISIT_CAPACITY = 8192

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        self._visited = BoundedClockMap(self.VISIT_WINDOW,
                                        self.VISIT_CAPACITY)
        self._tu_free = 0          # traversal unit busy until this cycle
        self._tu_clock_faults = 0  # times the unit clock would run backwards

    def _walk(self, pc: int, node: int, time: int) -> None:
        """One traversal-unit walk starting from ``node`` at ``time``."""
        if time < self._tu_free:
            # Unit is mid-chase on another chain: this trigger is lost
            # (the modeled unit has no trigger queue).
            self.stats.extra["tu_busy_drops"] = (
                self.stats.extra.get("tu_busy_drops", 0) + 1
            )
            return
        pairs = list(self.predictor.lookup(pc))
        if not pairs:
            return
        self_offset = None
        for consumer_pc, offset in pairs:
            if consumer_pc == pc:
                self_offset = offset
                break
        hop = self.cfg.memory_latency
        budget = self.WALK_BUDGET
        t = time
        cur = node
        line_mask = self.line_mask
        for _ in range(self.RUNAHEAD):
            if self._visited.check((pc, cur & line_mask), t):
                break
            for consumer_pc, offset in pairs:
                if budget <= 0:
                    break
                addr = cur + offset
                if addr % 4 or addr < 0:
                    continue
                budget -= 1
                self.request(addr, t, kind="chase", pc=consumer_pc)
            self.stats.extra["tu_hops"] = (
                self.stats.extra.get("tu_hops", 0) + 1
            )
            if budget <= 0 or self_offset is None:
                break
            nxt = self.timing_mem.peek(cur + self_offset)
            if not self.valid_pointer(nxt) or nxt == cur:
                break
            # The unit dereferences the next pointer itself: one full
            # memory access of pacing per hop (the chase is serial).
            t += hop
            cur = nxt
        if t < self._tu_free:
            self._tu_clock_faults += 1
        else:
            self._tu_free = t

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        self._learn(inst, addr, producer_pc, producer_value)
        pc = inst.index
        if pc in self.recurrent_pcs and self.valid_pointer(value):
            self._walk(pc, value, time)

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        violations.extend(self._visited.audit_check("chase-visited"))
        if self._tu_clock_faults:
            violations.append((
                "traversal-clock-monotone",
                f"traversal unit clock ran backwards "
                f"{self._tu_clock_faults} time(s)",
            ))
        return violations


@register_engine
class StrideEngine(PrefetchEngine):
    """Per-PC reference prediction table (stride prefetching)."""

    name = "stride"
    uses_prefetch_buffer = True
    needs_issue_hook = True

    #: RPT capacity (static load sites tracked).
    TABLE_ENTRIES = 512
    #: Confidence saturates here; prefetch at >= :data:`CONF_THRESHOLD`.
    CONF_MAX = 3
    CONF_THRESHOLD = 2
    #: Lines prefetched ahead of a confident stride.
    DEGREE = 2
    #: A line prefetched within this window is not re-requested.
    RECENT_WINDOW = 512
    RECENT_CAPACITY = 4096

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        # pc -> [last_addr, stride, confidence]
        self._rpt: dict[int, list[int]] = {}
        self._recent = BoundedClockMap(self.RECENT_WINDOW,
                                       self.RECENT_CAPACITY)

    def on_load_issue(self, inst: Instruction, addr: int, time: int) -> None:
        pc = inst.index
        entry = self._rpt.get(pc)
        if entry is None:
            if len(self._rpt) >= self.TABLE_ENTRIES:
                # FIFO eviction: static PCs mostly fit; rolling over is
                # deterministic and bounded either way.
                del self._rpt[next(iter(self._rpt))]
            self._rpt[pc] = [addr, 0, 0]
            return
        last, stride, conf = entry
        new_stride = addr - last
        if new_stride == stride and stride != 0:
            conf = min(conf + 1, self.CONF_MAX)
        elif conf > 0:
            conf -= 1
        else:
            stride = new_stride
        entry[0] = addr
        entry[1] = stride
        entry[2] = conf
        if conf < self.CONF_THRESHOLD or stride == 0:
            return
        line_mask = self.line_mask
        for d in range(1, self.DEGREE + 1):
            target = addr + stride * d
            if target < 0:
                break
            line = target & line_mask
            if line == addr & line_mask or self._recent.check(line, time):
                continue
            self.request(target, time, kind="stride", pc=pc)

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        if len(self._rpt) > self.TABLE_ENTRIES:
            violations.append((
                "rpt-capacity",
                f"{len(self._rpt)} RPT entries > "
                f"capacity {self.TABLE_ENTRIES}",
            ))
        for pc, (__, ___, conf) in self._rpt.items():
            if not 0 <= conf <= self.CONF_MAX:
                violations.append((
                    "stride-confidence-range",
                    f"pc {pc}: confidence {conf} outside "
                    f"[0, {self.CONF_MAX}]",
                ))
        violations.extend(self._recent.audit_check("stride-recent"))
        return violations


@register_engine
class ContentDirectedEngine(PrefetchEngine):
    """Content-directed prefetching: chase anything pointer-shaped."""

    name = "cdp"
    uses_prefetch_buffer = True
    needs_dataflow = True

    #: Words of the pointed-to node scanned for second-level pointers.
    SCAN_WORDS = 8
    #: Prefetches one committed load may spawn (1 target + scan hits).
    TRIGGER_BUDGET = 4
    #: A line prefetched within this window is not re-requested.
    RECENT_WINDOW = 1024
    RECENT_CAPACITY = 8192

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        self._recent = BoundedClockMap(self.RECENT_WINDOW,
                                       self.RECENT_CAPACITY)
        self._budget = 0

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        if not self.valid_pointer(value):
            return
        line_mask = self.line_mask
        if self._recent.check(value & line_mask, time):
            return
        self._budget = self.TRIGGER_BUDGET - 1
        pc = inst.index
        done = self.request(value, time, kind="cdp", pc=pc)
        if done is None:
            return
        # Once the node arrives, scan it for more pointers (the
        # content-directed recursion, depth 2, budget-bounded).
        peek = self.timing_mem.peek
        for w in range(self.SCAN_WORDS):
            if self._budget <= 0:
                break
            word = peek(value + 4 * w)
            if not self.valid_pointer(word) or word == value:
                continue
            if self._recent.check(word & line_mask, done):
                continue
            self._budget -= 1
            self.request(word, done, kind="cdp", pc=pc)

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        violations.extend(self._recent.audit_check("cdp-recent"))
        if self._budget < 0:
            violations.append((
                "cdp-budget-nonnegative",
                f"content-scan budget is {self._budget}",
            ))
        return violations


@register_engine
class ForesightEngine(DBPEngine):
    """Proactive structure-entry prefetching over idiom annotations."""

    name = "foresight"

    #: Nodes prefetched per structure entry (frontier size bound).
    BURST_NODES = 8
    #: Frontier levels walked per entry (trees fan out; lists go deep).
    BURST_DEPTH = 8
    #: One structure head re-entered within this window is not re-burst.
    ENTRY_WINDOW = 2048
    ENTRY_CAPACITY = 4096

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        self._entries = BoundedClockMap(self.ENTRY_WINDOW,
                                        self.ENTRY_CAPACITY)

    def _burst(self, pc: int, head: int, time: int) -> None:
        """Prefetch a bounded frontier of nodes reachable from ``head``."""
        pairs = [
            (cpc, off) for cpc, off in self.predictor.lookup(pc)
            if cpc in self.recurrent_pcs
        ]
        if not pairs:
            return
        peek = self.timing_mem.peek
        budget = self.BURST_NODES
        frontier = [head]
        seen = {head}
        for __ in range(self.BURST_DEPTH):
            if budget <= 0 or not frontier:
                break
            nxt_frontier: list[int] = []
            for node in frontier:
                if budget <= 0:
                    break
                budget -= 1
                self.request(node, time, kind="foresight", pc=pc)
                self.stats.extra["foresight_nodes"] = (
                    self.stats.extra.get("foresight_nodes", 0) + 1
                )
                for __, offset in pairs:
                    link = peek(node + offset)
                    if (
                        self.valid_pointer(link) and link not in seen
                        and isinstance(link, int)
                    ):
                        seen.add(link)
                        nxt_frontier.append(link)
            frontier = nxt_frontier

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        self._learn(inst, addr, producer_pc, producer_value)
        pc = inst.index
        if (
            inst.tag != "lds"                 # idiom annotation gate
            or pc not in self.recurrent_pcs
            or not self.valid_pointer(value)
        ):
            return
        if producer_pc is not None and producer_pc in self.recurrent_pcs:
            return  # mid-traversal, not a structure entry
        if self._entries.check((pc, value & self.line_mask), time):
            return
        self.stats.extra["structure_entries"] = (
            self.stats.extra.get("structure_entries", 0) + 1
        )
        self._burst(pc, value, time)

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        violations.extend(self._entries.audit_check("foresight-entry"))
        return violations


__all__ = [
    "ContentDirectedEngine",
    "ForesightEngine",
    "PointerChaseEngine",
    "StrideEngine",
]
