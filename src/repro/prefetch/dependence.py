"""Dependence predictor and value correlator.

The dependence predictor is the central DBP structure [Roth, Moshovos &
Sohi 1998]: a set-associative table of *correlations* — (producer load PC)
-> list of (consumer load PC, address offset) — meaning "the value loaded
by the producer, plus offset, is the address of the consumer".  Completed
loads (and completed prefetches, speculatively) query it to launch chained
prefetches.

The value correlator implements the cooperative scheme's learning
(Section 3.2): it remembers recent jump-pointer values fetched by ``JPF``
instructions; when a later demand load's base address equals a remembered
value, a correlation from the ``JPF`` to that load is created, after which
the hardware automatically issues chained-prefetch instances of loads that
depend on a jump-pointer prefetch.
"""

from __future__ import annotations

from ..config import PrefetchConfig

#: Offsets outside this window are considered coincidental, not field access.
MIN_OFFSET = -64
MAX_OFFSET = 4096


class DependencePredictor:
    """Set-associative producer->consumer correlation table."""

    def __init__(self, pcfg: PrefetchConfig) -> None:
        self._sets = max(1, pcfg.dep_entries // pcfg.dep_assoc)
        self._assoc = pcfg.dep_assoc
        self._table: dict[int, dict[int, tuple[dict[int, int], int]]] = {}
        self._seq = 0
        self.learned = 0
        self.evicted = 0

    def learn(self, producer_pc: int, consumer_pc: int, offset: int) -> bool:
        """Record that consumer's address = producer's value + offset."""
        if not MIN_OFFSET <= offset <= MAX_OFFSET:
            return False
        idx = producer_pc % self._sets
        s = self._table.setdefault(idx, {})
        self._seq += 1
        if producer_pc not in s:
            if len(s) >= self._assoc:
                victim = min(s, key=lambda k: s[k][1])
                del s[victim]
                self.evicted += 1
            s[producer_pc] = ({}, self._seq)
        consumers, __ = s[producer_pc]
        s[producer_pc] = (consumers, self._seq)
        if consumer_pc not in consumers:
            self.learned += 1
        consumers[consumer_pc] = offset
        return True

    _EMPTY: tuple[tuple[int, int], ...] = ()

    def lookup(self, producer_pc: int):
        """Consumers of ``producer_pc`` as an iterable of (consumer_pc,
        offset) pairs.  Returns a live view over the correlation entry (the
        chase loop consumes it before any ``learn`` can run); wrap in
        ``list``/``dict`` to snapshot."""
        s = self._table.get(producer_pc % self._sets)
        if not s or producer_pc not in s:
            return self._EMPTY
        consumers, __ = s[producer_pc]
        self._seq += 1
        s[producer_pc] = (consumers, self._seq)
        return consumers.items()

    def is_recurrent(self, pc: int) -> bool:
        """True if ``pc`` participates in a length-1 or length-2 dependence
        cycle — the paper's "backbone" (recurrent) loads such as
        ``l = l->next`` or a tree's mutually-recursive child loads."""
        for consumer_pc, __ in self.lookup_quiet(pc):
            if consumer_pc == pc:
                return True
            for c2, __ in self.lookup_quiet(consumer_pc):
                if c2 == pc:
                    return True
        return False

    def lookup_quiet(self, producer_pc: int):
        """Lookup without LRU update (used by recurrence tests).  Returns
        a live (consumer_pc, offset) view, like :meth:`lookup`."""
        s = self._table.get(producer_pc % self._sets)
        if not s or producer_pc not in s:
            return self._EMPTY
        return s[producer_pc][0].items()


class ValueCorrelator:
    """Small CAM of recently fetched jump-pointer values -> JPF PC."""

    def __init__(self, capacity: int = 64) -> None:
        self._capacity = capacity
        self._entries: dict[int, tuple[int, int]] = {}  # value -> (pc, seq)
        self._seq = 0

    def record(self, value: int, pc: int) -> None:
        self._seq += 1
        if value not in self._entries and len(self._entries) >= self._capacity:
            victim = min(self._entries, key=lambda k: self._entries[k][1])
            del self._entries[victim]
        self._entries[value] = (pc, self._seq)

    def match(self, value: int) -> int | None:
        """JPF PC that fetched ``value``, if remembered.

        The entry is retained (refreshed) so every load consuming the
        jump-pointer's value — a node's value, rib pointer and next field —
        gets its own correlation; entries age out by capacity.
        """
        hit = self._entries.get(value)
        if hit is None:
            return None
        pc, __ = hit
        self._seq += 1
        self._entries[value] = (pc, self._seq)
        return pc
