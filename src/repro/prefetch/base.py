"""Prefetch engine interface and shared request-queue model.

An engine is attached to one simulation.  The timing model calls:

* :meth:`on_load_issue`   — every demand load, at issue time (hardware JPP
  reads the jump-pointer of the accessed node here).
* :meth:`on_load_commit`  — every demand load, at commit time, with the
  originating-load provenance of its base register (DBP learning/trigger,
  JQT update + jump-pointer store).
* :meth:`on_sw_prefetch`  — every ``PF``/``JPF`` instruction, at issue time.

Prefetch requests are admitted through the 8-entry prefetch request queue
(PRQ), which issues at the engine's query bandwidth when data-cache ports
are idle; requests arriving at a full queue are dropped (Table 2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..config import MachineConfig, PrefetchConfig
from ..isa.instruction import Instruction
from ..mem.hierarchy import MemoryHierarchy
from ..mem.memory_image import MemoryImage

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Telemetry


@dataclass
class EngineStats:
    sw_prefetches: int = 0
    jump_prefetches: int = 0
    chained_prefetches: int = 0
    prq_drops: int = 0
    jp_stores: int = 0
    jp_invalid: int = 0
    correlations_learned: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class PrefetchEngine:
    """Base class: no prefetching (the unoptimized baseline)."""

    name = "none"
    uses_prefetch_buffer = False
    needs_issue_hook = False
    needs_dataflow = False

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        self.pcfg = pcfg or PrefetchConfig()
        self.stats = EngineStats()
        self.hierarchy: MemoryHierarchy | None = None
        self.timing_mem: MemoryImage | None = None
        self._heap_lo = 0
        self._heap_hi = 0
        self._prq: deque[int] = deque()
        self._prq_last_issue = -1
        self.obs: "Telemetry | None" = None
        self._prq_hist = None

    # ------------------------------------------------------------------

    def attach(
        self,
        hierarchy: MemoryHierarchy,
        timing_mem: MemoryImage,
        heap_lo: int,
        heap_hi: int,
        cfg: MachineConfig,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.timing_mem = timing_mem
        self._heap_lo = heap_lo
        self._heap_hi = heap_hi
        self.cfg = cfg
        self.line_mask = ~(cfg.dl1.line - 1)
        self.obs = telemetry
        if telemetry is not None:
            from ..obs import linear_buckets

            self._prq_hist = telemetry.registry.histogram(
                "prefetch.prq_occupancy",
                linear_buckets(0, 1, self.pcfg.prq_entries + 1),
                help="PRQ entries in use, sampled at each admission",
            )

    def valid_pointer(self, value: object) -> bool:
        """Heuristic pointer test used before chasing a prefetch address."""
        return (
            isinstance(value, int)
            and self._heap_lo <= value < self._heap_hi
            and value % 4 == 0
        )

    # ------------------------------------------------------------------
    # PRQ
    # ------------------------------------------------------------------

    def _admit(self, time: int) -> int | None:
        """Admit a prefetch request to the PRQ at ``time``.

        Returns the time the request actually issues, or None if the queue
        is full and the request is dropped.
        """
        q = self._prq
        while q and q[0] <= time:
            q.popleft()
        if len(q) >= self.pcfg.prq_entries:
            self.stats.prq_drops += 1
            return None
        issue = max(time, self._prq_last_issue + 1)
        self._prq_last_issue = issue
        q.append(issue)
        if self._prq_hist is not None:
            self._prq_hist.observe(len(q))
        return issue

    def request(
        self, addr: int, time: int, kind: str = "chained", pc: int | None = None
    ) -> int | None:
        """PRQ-admit and issue one prefetch; returns the time the target
        data is available (fill time, or now for already-cached lines), or
        None if the PRQ was full and the request dropped.  ``pc`` (the
        triggering load's index) attributes the outcome per-PC."""
        if self.hierarchy.probe_cached(addr, time):
            # Already cached/buffered/in flight: no request is generated.
            return time + 1
        t = self._admit(time)
        if t is None:
            if self.obs is not None:
                self.obs.outcomes.record_drop(kind, pc)
            return None
        if kind == "jump":
            self.stats.jump_prefetches += 1
        elif kind == "sw":
            self.stats.sw_prefetches += 1
        else:
            self.stats.chained_prefetches += 1
        done = self.hierarchy.prefetch_request(addr, t)
        if done is not None and self.obs is not None:
            self.obs.outcomes.record_issue(addr & self.line_mask, kind, pc, t, done)
        return done if done is not None else t

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        """Invariant sweep for :class:`repro.audit.Auditor`; subclasses
        extend with their own structure bounds.  Returns
        ``(invariant, message)`` pairs for every violated law."""
        violations: list[tuple[str, str]] = []
        if len(self._prq) > self.pcfg.prq_entries:
            violations.append((
                "prq-occupancy",
                f"{len(self._prq)} PRQ entries > "
                f"capacity {self.pcfg.prq_entries}",
            ))
        return violations

    # ------------------------------------------------------------------
    # Hooks (no-ops in the baseline)
    # ------------------------------------------------------------------

    def on_load_issue(self, inst: Instruction, addr: int, time: int) -> None:
        pass

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        pass

    def on_sw_prefetch(self, inst: Instruction, addr: int, time: int) -> None:
        pass


class SoftwarePrefetchEngine(PrefetchEngine):
    """Executes the program's non-binding ``PF`` instructions.

    There is no prefetch hardware: software prefetches fill the L1 data
    cache directly and ``JPF`` (if present) degrades to a plain address
    prefetch of the jump-pointer's block — software-only programs instead
    use explicit two-instruction (load + ``PF``) sequences.
    """

    name = "software"

    def on_sw_prefetch(self, inst: Instruction, addr: int, time: int) -> None:
        self.stats.sw_prefetches += 1
        done = self.hierarchy.prefetch_request(addr, time)
        if done is not None and self.obs is not None:
            self.obs.outcomes.record_issue(
                addr & self.line_mask, "sw", inst.index, time, done
            )
