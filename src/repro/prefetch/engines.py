"""The three prefetch hardware configurations of the paper.

* :class:`DBPEngine` — dependence-based prefetching only (the comparison
  point from [16]): learns load-load dependences, speculatively unrolls the
  traversal kernel, chained prefetches pace serially at memory latency.
* :class:`CooperativeEngine` — DBP hardware plus the ``JPF`` interface:
  software jump-pointer prefetches trigger hardware chained prefetching
  (Section 3.2).
* :class:`HardwareJPPEngine` — DBP extended with the Jump Queue Table and
  Jump-pointer Register; jump-pointers are created at recurrent-load commit
  and used at recurrent-load issue (Section 3.3).  Implements chain jumping
  (queue jumping falls out automatically on backbone-only structures).

All three submit prefetches through
:meth:`~repro.mem.hierarchy.MemoryHierarchy.prefetch_request`, so their
interaction with the MSHR model is uniform: under ``blocking`` a
prefetch to an in-flight line is dropped as redundant, while under the
non-blocking models it coalesces into the line's demand MSHR (counted
``prefetches_coalesced``, joining the entry's target list) instead of
burning a prefetch-request-queue slot's bus walk.
"""

from __future__ import annotations

from ..config import PrefetchConfig
from ..errors import ConfigError
from ..isa.instruction import Instruction
from ..obs.outcomes import EARLY, LATE, classify_timeliness
from ..registry import Registry
from .base import EngineStats, PrefetchEngine, SoftwarePrefetchEngine
from .dependence import DependencePredictor, ValueCorrelator
from .jqt import JumpPointerStorage, JumpQueueTable

#: Named prefetch-engine registry.  Schemes
#: (:mod:`repro.harness.schemes`) and the simulator dispatch by lookup;
#: :func:`register_engine` adds new engines without touching either.
ENGINES: Registry[type[PrefetchEngine]] = Registry(
    "prefetch engine", error=ConfigError
)


def register_engine(cls: type[PrefetchEngine]) -> type[PrefetchEngine]:
    """Class decorator adding an engine under its ``name`` attribute."""
    ENGINES.register(cls.name, cls)
    return cls


def engine_names() -> list[str]:
    return ENGINES.names()


register_engine(PrefetchEngine)          # "none"
register_engine(SoftwarePrefetchEngine)  # "software"


@register_engine
class DBPEngine(PrefetchEngine):
    """Dependence-based prefetching (no jump-pointers)."""

    name = "dbp"
    uses_prefetch_buffer = True
    needs_dataflow = True

    #: A (consumer, address) pair chased within this many cycles is not
    #: chased again — models the predictor declining to re-launch an
    #: already-outstanding unroll.
    RECHASE_WINDOW = 400
    #: Hard size bound on the re-chase table.  Eviction is windowed: once
    #: per elapsed window (or whenever the table overflows this bound)
    #: every entry too old to ever suppress again is dropped.  Trigger
    #: times are not monotone — chained fill times run up to
    #: ``max_chain_depth`` memory latencies ahead of the commit-time
    #: triggers, and completion times within the instruction window skew
    #: backwards — so aging is measured against a monotone high-water
    #: clock with a slack covering the machine's worst-case completion
    #: span (see :meth:`attach`); suppression only looks back one window,
    #: so entries beyond ``slack`` can never change a suppression
    #: decision and pruning is cycle-exact.
    RECHASE_TABLE_MAX = 65536
    #: Don't bother rebuilding tiny tables on the window cadence.
    RECHASE_PRUNE_MIN = 4096
    #: Prefetches one trigger event (a completed load or a jump-pointer
    #: prefetch) may spawn.  Models the pacing imposed by the 8-entry PRQ
    #: and the predictor's 2 queries/cycle: the speculative unroll proceeds
    #: a bounded distance per arrival rather than fanning out exponentially.
    CHASE_BUDGET = 16

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        self.predictor = DependencePredictor(self.pcfg)
        self.recurrent_pcs: set[int] = set()
        self._recent_chase: dict[tuple[int, int], int] = {}
        self._chase_tmax = 0  # monotone high-water mark of trigger times
        self._chase_pruned_at = 0
        self._chase_slack = 4 * self.RECHASE_WINDOW  # refined at attach()
        self._budget = 0

    def attach(self, *args, **kwargs) -> None:
        super().attach(*args, **kwargs)
        # Worst-case gap between the high-water trigger time and any later
        # trigger: in-flight completion times span at most the instruction
        # window's dependent-miss chain, plus the chained-prefetch unroll
        # runs max_chain_depth fills further ahead.  Per-hop cost is one
        # full memory access with generous queueing margin.
        cfg = self.cfg
        hop = cfg.memory_latency + cfg.l2.latency + 64
        self._chase_slack = self.RECHASE_WINDOW + hop * (
            cfg.window + self.pcfg.max_chain_depth
        )

    # -- learning ------------------------------------------------------

    def _learn(
        self,
        inst: Instruction,
        addr: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        if producer_pc is None or not isinstance(producer_value, int):
            return
        offset = addr - producer_value
        if self.predictor.learn(producer_pc, inst.index, offset):
            self.stats.correlations_learned += 1
            pc = inst.index
            if producer_pc == pc:
                self.recurrent_pcs.add(pc)
            else:
                # Mutual recursion (tree child loads feed each other).
                for cpc, __ in self.predictor.lookup_quiet(pc):
                    if cpc == producer_pc:
                        self.recurrent_pcs.add(pc)
                        self.recurrent_pcs.add(producer_pc)
                        break

    # -- chained prefetching -------------------------------------------

    def _trigger(self, producer_pc: int, value: int, time: int) -> None:
        """Start one unroll with a fresh chase budget."""
        self._budget = self.CHASE_BUDGET
        self._chase(producer_pc, value, time, self.pcfg.max_chain_depth)

    def _chase(self, producer_pc: int, value: int, time: int, depth: int) -> None:
        """Speculatively unroll the traversal kernel from ``value``.

        Iterative depth-first formulation of the natural recursion (this is
        the simulation's hottest engine path).  Each frame keeps the
        re-chase dict reference it captured at entry — when a prune swaps
        in a rebuilt dict, outer frames intentionally keep consulting (and
        writing) the table they started with, matching the recursive
        version's closure-over-local behavior exactly.
        """
        if depth <= 0 or not self.valid_pointer(value):
            return
        lookup = self.predictor.lookup
        request = self.request
        peek = self.timing_mem.peek
        window = self.RECHASE_WINDOW
        prune_min = self.RECHASE_PRUNE_MIN
        table_max = self.RECHASE_TABLE_MAX
        heap_lo = self._heap_lo
        heap_hi = self._heap_hi
        slack = self._chase_slack
        budget = self._budget
        tmax = self._chase_tmax
        pruned_at = self._chase_pruned_at
        stack = [[value, time, depth, iter(lookup(producer_pc)),
                  self._recent_chase]]
        while stack:
            frame = stack[-1]
            value, time, depth, it, recent = frame
            descended = False
            for consumer_pc, offset in it:
                if budget <= 0:
                    # Cascaded early returns in the recursive form: every
                    # outer frame would bail at its next budget check with
                    # no further side effects.
                    stack.clear()
                    descended = True
                    break
                addr = value + offset
                if addr % 4 or addr < 0:
                    continue
                # One unroll step (this consumer at this address) is
                # launched at most once per window; a duplicate means the
                # same speculative kernel instance is already outstanding,
                # subtree included.
                key = (consumer_pc, addr)
                seen = recent.get(key)
                if seen is not None and time - seen < window:
                    continue
                recent[key] = time
                if time > tmax:
                    tmax = time
                if (
                    tmax - pruned_at >= window and len(recent) > prune_min
                ) or len(recent) > table_max:
                    cutoff = tmax - slack
                    self._recent_chase = recent = {
                        k: t for k, t in recent.items() if t >= cutoff
                    }
                    frame[4] = recent
                    pruned_at = tmax
                budget -= 1
                done = request(addr, time, pc=consumer_pc)
                if done is None:
                    continue
                nxt = peek(addr)
                if (
                    depth > 1 and isinstance(nxt, int) and nxt
                    and heap_lo <= nxt < heap_hi and not nxt % 4
                ):
                    stack.append([nxt, done, depth - 1,
                                  iter(lookup(consumer_pc)),
                                  self._recent_chase])
                    descended = True
                    break
            if not descended:
                stack.pop()
        self._budget = budget
        self._chase_tmax = tmax
        self._chase_pruned_at = pruned_at

    # -- auditing --------------------------------------------------------

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        # Windowed eviction keeps everything younger than 4 windows, so a
        # burst may briefly overshoot RECHASE_TABLE_MAX; 2x is the point
        # where bookkeeping has genuinely stopped being bounded.
        if len(self._recent_chase) > 2 * self.RECHASE_TABLE_MAX:
            violations.append((
                "rechase-table-bound",
                f"{len(self._recent_chase)} re-chase entries > "
                f"bound {2 * self.RECHASE_TABLE_MAX}",
            ))
        if self._budget < 0:
            violations.append((
                "chase-budget-nonnegative", f"chase budget is {self._budget}"
            ))
        return violations

    # -- hooks -----------------------------------------------------------

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        self._learn(inst, addr, producer_pc, producer_value)
        if isinstance(value, int) and value:
            self._trigger(inst.index, value, time)


@register_engine
class CooperativeEngine(DBPEngine):
    """DBP hardware driven by software jump-pointer prefetches (``JPF``)."""

    name = "cooperative"

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        self.correlator = ValueCorrelator()

    def on_sw_prefetch(self, inst: Instruction, addr: int, time: int) -> None:
        from ..isa.opcodes import Op

        if inst.op == Op.PF:
            self.stats.sw_prefetches += 1
            done = self.hierarchy.prefetch_request(addr, time)
            if done is not None and self.obs is not None:
                self.obs.outcomes.record_issue(
                    addr & self.line_mask, "sw", inst.index, time, done
                )
            return
        # JPF: hardware performs the second (non-binding) load of the
        # software prefetch pair: read the jump-pointer, prefetch its
        # target, and chain through the dependence predictor.
        jp = self.timing_mem.peek(addr)
        if not self.valid_pointer(jp):
            self.stats.jp_invalid += 1
            return
        self.correlator.record(jp, inst.index)
        done = self.request(jp, time, kind="jump", pc=inst.index)
        if done is not None:
            self._trigger(inst.index, jp, done)

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        base = addr - inst.imm if isinstance(inst.imm, int) else None
        if base is not None:
            jpf_pc = self.correlator.match(base)
            if jpf_pc is not None and self.predictor.learn(
                jpf_pc, inst.index, inst.imm
            ):
                self.stats.correlations_learned += 1
        super().on_load_commit(inst, addr, value, time, producer_pc, producer_value)


@register_engine
class HardwareJPPEngine(DBPEngine):
    """DBP + JQT/JPR: fully automatic jump-pointer prefetching."""

    name = "hardware"
    needs_issue_hook = True

    #: a jump prefetch whose data sat unused this long is "too early"
    EARLY_SLACK = 800

    def __init__(self, pcfg: PrefetchConfig | None = None) -> None:
        super().__init__(pcfg)
        if self.pcfg.adaptive_interval:
            from .adaptive import AdaptiveJumpQueueTable

            self.jqt: JumpQueueTable = AdaptiveJumpQueueTable(
                self.pcfg, max_interval=self.pcfg.adaptive_max_interval
            )
        else:
            self.jqt = JumpQueueTable(self.pcfg)
        self.storage = JumpPointerStorage(self.pcfg)
        self._jump_outstanding: dict[int, tuple[int, int]] = {}

    def _adapt_feedback(self, addr: int, time: int) -> None:
        line = addr & self.line_mask
        record = self._jump_outstanding.pop(line, None)
        if record is None:
            return
        pc, done = record
        outcome = classify_timeliness(time, done, early_slack=self.EARLY_SLACK)
        self.jqt.feedback(pc, late=outcome == LATE, early=outcome == EARLY)

    def on_load_issue(self, inst: Instruction, addr: int, time: int) -> None:
        pc = inst.index
        adaptive = self.pcfg.adaptive_interval
        if adaptive:
            self._adapt_feedback(addr, time)
        if pc not in self.recurrent_pcs:
            return
        if inst.pad <= 0 and not self.storage.onchip:
            return  # no padding: hardware has nowhere to look
        jp = self.storage.load(self.timing_mem, addr, inst.pad)
        self.jqt.stats.retrievals += 1
        if not self.valid_pointer(jp):
            self.jqt.stats.retrieval_misses += 1
            return
        done = self.request(jp, time, kind="jump", pc=pc)
        if done is not None and isinstance(inst.imm, int):
            if adaptive:
                self._jump_outstanding[jp & self.line_mask] = (pc, done)
                if len(self._jump_outstanding) > 4096:
                    self._jump_outstanding.clear()
            node_base = jp - inst.imm
            self._trigger(pc, node_base, done)

    def on_load_commit(
        self,
        inst: Instruction,
        addr: int,
        value: int | float,
        time: int,
        producer_pc: int | None,
        producer_value: int | float | None,
    ) -> None:
        super().on_load_commit(inst, addr, value, time, producer_pc, producer_value)
        pc = inst.index
        if pc not in self.recurrent_pcs:
            return
        if inst.pad <= 0 and not self.storage.onchip:
            return
        home = self.jqt.advance(pc, addr)
        if home is None:
            return
        slot = self.storage.store(self.timing_mem, home, inst.pad, addr)
        self.stats.jp_stores += 1
        if slot is not None:
            # The jump-pointer store is real cache traffic (usually an L1
            # hit: the home node was referenced I hops ago; cold homes
            # write around without allocating).
            self.hierarchy.jp_store(slot, time)

    def audit_check(self, now: int) -> list[tuple[str, str]]:
        violations = super().audit_check(now)
        jqt = self.jqt
        if len(jqt._queues) > self.pcfg.jqt_entries:
            violations.append((
                "jqt-occupancy",
                f"{len(jqt._queues)} JQT entries > "
                f"capacity {self.pcfg.jqt_entries}",
            ))
        depth_limit = getattr(jqt, "max_interval", jqt.interval)
        for pc, (q, __) in jqt._queues.items():
            if len(q) > depth_limit:
                violations.append((
                    "jump-queue-depth",
                    f"pc {pc}: queue depth {len(q)} > "
                    f"interval limit {depth_limit}",
                ))
        if (
            self.storage.onchip
            and len(self.storage._table) > self.pcfg.onchip_table_entries
        ):
            violations.append((
                "onchip-storage-capacity",
                f"{len(self.storage._table)} on-chip jump-pointers > "
                f"capacity {self.pcfg.onchip_table_entries}",
            ))
        if len(self._jump_outstanding) > 4096:
            violations.append((
                "jump-outstanding-bound",
                f"{len(self._jump_outstanding)} outstanding jump "
                f"prefetches > bound 4096",
            ))
        return violations


def _engine_classes() -> dict[str, type[PrefetchEngine]]:
    """Back-compat snapshot of the registry (prefer :data:`ENGINES`)."""
    return ENGINES.as_dict()


# The scheme zoo registers its engines here, before the back-compat
# snapshot below is taken (it imports register_engine/DBPEngine from this
# partially-initialized module, which is safe because both are already
# bound).
from . import zoo  # noqa: E402,F401  (imported for registration side effect)

ENGINE_CLASSES: dict[str, type[PrefetchEngine]] = _engine_classes()
