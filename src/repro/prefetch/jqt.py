"""Jump Queue Table, Jump-pointer Register and jump-pointer storage.

The JQT (Section 3.3, Figure 3) implements the queue method in hardware:
each recurrent ("backbone") load has a queue of its last *I* effective
addresses.  When a new instance commits, a jump-pointer is created from the
node at the head of the queue (the *home*, visited *I* hops ago) to the
current node (the *target*), and the queue advances.

Jump-pointers are stored either in *allocator padding* — located from the
access address and the annotated load's size class (see
:func:`repro.mem.allocator.jump_slot`) — or, for the Section 3.3 ablation,
in a finite on-chip table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..config import PrefetchConfig
from ..mem.allocator import jump_slot


@dataclass
class JQTStats:
    installs: int = 0
    retrievals: int = 0
    retrieval_misses: int = 0
    entry_evictions: int = 0


class JumpQueueTable:
    """Fully-associative table of per-PC address queues (32 entries)."""

    def __init__(self, pcfg: PrefetchConfig) -> None:
        self._entries = pcfg.jqt_entries
        self._interval = pcfg.jump_interval
        self._queues: dict[int, tuple[deque[int], int]] = {}
        self._seq = 0
        self.stats = JQTStats()

    @property
    def interval(self) -> int:
        return self._interval

    def advance(self, pc: int, addr: int) -> int | None:
        """Record a committed instance of recurrent load ``pc`` with
        effective address ``addr``.

        Returns the *home* address a jump-pointer (home -> addr) should be
        installed at, or None while the queue is still filling.
        """
        self._seq += 1
        entry = self._queues.get(pc)
        if entry is None:
            if len(self._queues) >= self._entries:
                victim = min(self._queues, key=lambda k: self._queues[k][1])
                del self._queues[victim]
                self.stats.entry_evictions += 1
            q: deque[int] = deque(maxlen=self._interval)
            self._queues[pc] = (q, self._seq)
        else:
            q, __ = entry
            self._queues[pc] = (q, self._seq)
        home = None
        if len(q) == self._interval:
            home = q[0]
        q.append(addr)
        if home is not None:
            self.stats.installs += 1
        return home

    def feedback(self, pc: int, late: bool, early: bool) -> None:
        """Timeliness feedback hook; the fixed-interval table ignores it
        (see :class:`repro.prefetch.adaptive.AdaptiveJumpQueueTable`)."""


class JumpPointerStorage:
    """Where hardware-created jump-pointers live.

    ``padding`` mode computes the slot from the effective address plus the
    annotated size class and reads/writes the (timing-side) memory image —
    the storage scales with the data structure and survives as long as the
    nodes do.  ``onchip`` mode keeps an LRU table of ``capacity`` (home
    block -> target) pairs, modelling the non-scalable on-chip alternative
    the paper argues against.
    """

    def __init__(self, pcfg: PrefetchConfig) -> None:
        self.onchip = pcfg.onchip_table_entries > 0
        self._capacity = pcfg.onchip_table_entries
        self._table: dict[int, tuple[int, int]] = {}
        self._seq = 0

    def store(self, timing_mem, home_addr: int, pad: int, target: int) -> int | None:
        """Install jump-pointer home->target; returns the written memory
        address in padding mode (for bandwidth accounting), else None."""
        if self.onchip:
            self._seq += 1
            key = home_addr
            if key not in self._table and len(self._table) >= self._capacity:
                victim = min(self._table, key=lambda k: self._table[k][1])
                del self._table[victim]
            self._table[key] = (target, self._seq)
            return None
        if pad <= 0:
            return None
        slot = jump_slot(home_addr, pad)
        timing_mem.store(slot, target)
        return slot

    def load(self, timing_mem, addr: int, pad: int) -> int | None:
        """Retrieve the jump-pointer at the node containing ``addr``."""
        if self.onchip:
            hit = self._table.get(addr)
            if hit is None:
                return None
            target, __ = hit
            self._seq += 1
            self._table[addr] = (target, self._seq)
            return target
        if pad <= 0:
            return None
        value = timing_mem.peek(jump_slot(addr, pad))
        return value if isinstance(value, int) and value else None
