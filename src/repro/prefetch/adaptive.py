"""Adaptive jump intervals — the paper's first "future direction".

    "Our simulated implementation used a fixed queueing interval of 8
    nodes without regard to the trade-offs in latency tolerance and
    predictive accuracy.  A more detailed study of this spectrum is
    needed, with a better mechanism adapting the interval on a case by
    case basis." (Section 6)

:class:`AdaptiveJumpQueueTable` gives each recurrent load its own
interval, steered by the observed *timeliness* of its jump prefetches:

* a prefetch is **late** when the demand access arrives before the fill
  completes (the jump did not reach far enough ahead) → widen;
* a prefetch is **early** when its data sat unused for much longer than
  a memory latency (risking eviction and staleness) → narrow.

Feedback arrives through :meth:`feedback`; after ``ADAPT_EVERY``
observations the interval doubles or halves within
``[MIN_INTERVAL, max_interval]``.  Existing queue contents are preserved
on re-sizing (truncated from the old end when narrowing), so adaptation
does not restart the pipeline of pending jump-pointers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import PrefetchConfig
from ..obs.outcomes import EARLY, LATE, TIMELY
from .jqt import JumpQueueTable


@dataclass
class AdaptiveStats:
    late: int = 0
    early: int = 0
    timely: int = 0
    widenings: int = 0
    narrowings: int = 0
    intervals: dict[int, int] = field(default_factory=dict)


class AdaptiveJumpQueueTable(JumpQueueTable):
    """Per-PC jump intervals steered by prefetch-timeliness feedback."""

    MIN_INTERVAL = 2
    ADAPT_EVERY = 16
    #: fraction of observations that must agree before adapting
    VOTE = 0.625

    def __init__(self, pcfg: PrefetchConfig, max_interval: int = 64) -> None:
        super().__init__(pcfg)
        self.max_interval = max_interval
        self._intervals: dict[int, int] = {}
        self._votes: dict[int, list[int]] = {}  # pc -> [late, early, total]
        self.adapt_stats = AdaptiveStats()

    def interval_of(self, pc: int) -> int:
        return self._intervals.get(pc, self._interval)

    def advance(self, pc: int, addr: int) -> int | None:
        """As in the base table, but against the PC's own interval."""
        self._seq += 1
        interval = self.interval_of(pc)
        entry = self._queues.get(pc)
        if entry is None:
            if len(self._queues) >= self._entries:
                victim = min(self._queues, key=lambda k: self._queues[k][1])
                del self._queues[victim]
                self.stats.entry_evictions += 1
            q: deque[int] = deque(maxlen=interval)
            self._queues[pc] = (q, self._seq)
        else:
            q, __ = entry
            if q.maxlen != interval:
                # re-size preserving the newest entries
                q = deque(list(q)[-interval:], maxlen=interval)
            self._queues[pc] = (q, self._seq)
        home = None
        if len(q) == interval:
            home = q[0]
        q.append(addr)
        if home is not None:
            self.stats.installs += 1
        return home

    def feedback(self, pc: int, late: bool, early: bool) -> None:
        """Boolean-flag compatibility wrapper around :meth:`observe`."""
        self.observe(pc, LATE if late else EARLY if early else TIMELY)

    def observe(self, pc: int, outcome: str) -> None:
        """Report one jump-prefetch timeliness outcome for ``pc``, using
        the shared labels of :mod:`repro.obs.outcomes` (``late`` /
        ``early`` / ``timely``, as produced by ``classify_timeliness``)."""
        st = self.adapt_stats
        late = outcome == LATE
        early = outcome == EARLY
        if late:
            st.late += 1
        elif early:
            st.early += 1
        else:
            st.timely += 1
        votes = self._votes.setdefault(pc, [0, 0, 0])
        votes[0] += late
        votes[1] += early
        votes[2] += 1
        if votes[2] < self.ADAPT_EVERY:
            return
        n_late, n_early, total = votes
        self._votes[pc] = [0, 0, 0]
        interval = self.interval_of(pc)
        if n_late >= total * self.VOTE and interval < self.max_interval:
            self._intervals[pc] = interval * 2
            st.widenings += 1
        elif n_early >= total * self.VOTE and interval > self.MIN_INTERVAL:
            self._intervals[pc] = interval // 2
            st.narrowings += 1
        st.intervals = dict(self._intervals)
