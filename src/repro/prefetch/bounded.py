"""Monotone-clock bounded map for prefetch-engine bookkeeping.

Every engine keeps some per-address dict — "did I already prefetch this
line recently?", "which nodes has the traversal unit visited?".  Keyed
by *dynamic* addresses, such a dict grows with the footprint of the
program unless something evicts; the PR-5 ``DBPEngine._recent_chase``
bug was exactly this failure mode.  :class:`BoundedClockMap` is the
shared fix: a ``key -> timestamp`` map with

* a **recency window** — an entry older than ``window`` no longer
  suppresses (callers use :meth:`fresh` as the "already done recently"
  test), and
* a **hard size bound** — eviction runs on a monotone high-water clock
  (timestamps observed out of order never roll it back), dropping every
  entry too old to change a future :meth:`fresh` decision; if pruning
  by age cannot get under the bound, the oldest entries go too, so
  ``len(map) <= capacity`` holds after every :meth:`note`.

The map is deliberately deterministic (no wall clock, no hashing
randomness in the eviction order beyond dict insertion order), so
engines built on it stay bit-identical across the table, reference, and
compiled simulation engines.
"""

from __future__ import annotations

from typing import Hashable, Iterator


class BoundedClockMap:
    """``key -> last-seen time`` with windowed, capacity-bounded eviction."""

    __slots__ = ("window", "capacity", "_entries", "_clock", "_pruned_at")

    def __init__(self, window: int, capacity: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.window = window
        self.capacity = capacity
        self._entries: dict[Hashable, int] = {}
        self._clock = 0       # monotone high-water mark of noted times
        self._pruned_at = 0   # clock value at the last windowed prune

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable) -> int | None:
        return self._entries.get(key)

    def fresh(self, key: Hashable, time: int) -> bool:
        """True if ``key`` was noted less than ``window`` ago.

        This is the suppression test: a fresh key means the same work is
        already outstanding and should not be re-launched.
        """
        seen = self._entries.get(key)
        return seen is not None and time - seen < self.window

    def note(self, key: Hashable, time: int) -> None:
        """Record ``key`` at ``time`` and run bounded eviction."""
        entries = self._entries
        entries[key] = time
        if time > self._clock:
            self._clock = time
        if (
            self._clock - self._pruned_at >= self.window
            and len(entries) > self.capacity // 4
        ) or len(entries) > self.capacity:
            self._prune()

    def check(self, key: Hashable, time: int) -> bool:
        """Combined test-and-set: True (and no write) when ``key`` is
        fresh, else notes it and returns False."""
        if self.fresh(key, time):
            return True
        self.note(key, time)
        return False

    def _prune(self) -> None:
        cutoff = self._clock - self.window
        entries = self._entries
        kept = {k: t for k, t in entries.items() if t >= cutoff}
        if len(kept) > self.capacity:
            # A burst inside one window can exceed the bound; drop the
            # oldest survivors (dict order is insertion order, and within
            # a window insertion order is what we have) until it holds.
            drop = len(kept) - self.capacity
            for key in list(kept)[:drop]:
                del kept[key]
        self._entries = kept
        self._pruned_at = self._clock

    def clear(self) -> None:
        self._entries.clear()

    # -- auditing --------------------------------------------------------

    def audit_check(self, label: str) -> list[tuple[str, str]]:
        """Bound violations for :meth:`PrefetchEngine.audit_check` sweeps."""
        violations: list[tuple[str, str]] = []
        if len(self._entries) > self.capacity:
            violations.append((
                f"{label}-bound",
                f"{len(self._entries)} {label} entries > "
                f"capacity {self.capacity}",
            ))
        if self._pruned_at > self._clock:
            violations.append((
                f"{label}-clock-monotone",
                f"{label} prune clock {self._pruned_at} ahead of "
                f"high-water clock {self._clock}",
            ))
        return violations
