"""Prefetch engines: software, DBP, cooperative, and hardware JPP."""

from .adaptive import AdaptiveJumpQueueTable, AdaptiveStats
from .base import EngineStats, PrefetchEngine, SoftwarePrefetchEngine
from .dependence import DependencePredictor, ValueCorrelator
from .engines import (
    ENGINE_CLASSES,
    CooperativeEngine,
    DBPEngine,
    HardwareJPPEngine,
)
from .jqt import JumpPointerStorage, JumpQueueTable

__all__ = [
    "AdaptiveJumpQueueTable",
    "AdaptiveStats",
    "CooperativeEngine",
    "DBPEngine",
    "DependencePredictor",
    "ENGINE_CLASSES",
    "EngineStats",
    "HardwareJPPEngine",
    "JumpPointerStorage",
    "JumpQueueTable",
    "PrefetchEngine",
    "SoftwarePrefetchEngine",
    "ValueCorrelator",
]
