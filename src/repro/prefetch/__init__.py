"""Prefetch engines: the paper's four schemes plus the scheme zoo."""

from .adaptive import AdaptiveJumpQueueTable, AdaptiveStats
from .base import EngineStats, PrefetchEngine, SoftwarePrefetchEngine
from .bounded import BoundedClockMap
from .dependence import DependencePredictor, ValueCorrelator
from .engines import (
    ENGINE_CLASSES,
    ENGINES,
    CooperativeEngine,
    DBPEngine,
    HardwareJPPEngine,
    engine_names,
    register_engine,
)
from .jqt import JumpPointerStorage, JumpQueueTable
from .zoo import (
    ContentDirectedEngine,
    ForesightEngine,
    PointerChaseEngine,
    StrideEngine,
)

__all__ = [
    "AdaptiveJumpQueueTable",
    "AdaptiveStats",
    "BoundedClockMap",
    "ContentDirectedEngine",
    "CooperativeEngine",
    "DBPEngine",
    "DependencePredictor",
    "ENGINE_CLASSES",
    "ENGINES",
    "engine_names",
    "ForesightEngine",
    "register_engine",
    "EngineStats",
    "HardwareJPPEngine",
    "JumpPointerStorage",
    "JumpQueueTable",
    "PointerChaseEngine",
    "PrefetchEngine",
    "SoftwarePrefetchEngine",
    "StrideEngine",
    "ValueCorrelator",
]
