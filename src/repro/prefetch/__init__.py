"""Prefetch engines: software, DBP, cooperative, and hardware JPP."""

from .adaptive import AdaptiveJumpQueueTable, AdaptiveStats
from .base import EngineStats, PrefetchEngine, SoftwarePrefetchEngine
from .dependence import DependencePredictor, ValueCorrelator
from .engines import (
    ENGINE_CLASSES,
    ENGINES,
    CooperativeEngine,
    DBPEngine,
    HardwareJPPEngine,
    engine_names,
    register_engine,
)
from .jqt import JumpPointerStorage, JumpQueueTable

__all__ = [
    "AdaptiveJumpQueueTable",
    "AdaptiveStats",
    "CooperativeEngine",
    "DBPEngine",
    "DependencePredictor",
    "ENGINE_CLASSES",
    "ENGINES",
    "engine_names",
    "register_engine",
    "EngineStats",
    "HardwareJPPEngine",
    "JumpPointerStorage",
    "JumpQueueTable",
    "PrefetchEngine",
    "SoftwarePrefetchEngine",
    "ValueCorrelator",
]
