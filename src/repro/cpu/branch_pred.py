"""Combined branch predictor: gshare + bimodal with a meta chooser, a
set-associative BTB and a return-address stack (Table 2's front end)."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BranchPredConfig


@dataclass(slots=True)
class BranchStats:
    cond_branches: int = 0
    cond_mispredicts: int = 0
    btb_misses: int = 0
    returns: int = 0
    return_mispredicts: int = 0

    @property
    def mispredict_ratio(self) -> float:
        if not self.cond_branches:
            return 0.0
        return self.cond_mispredicts / self.cond_branches


class _CounterTable:
    """Array of saturating 2-bit counters, initialized weakly taken."""

    __slots__ = ("_table", "_mask")

    def __init__(self, entries: int) -> None:
        self._table = [2] * entries
        self._mask = entries - 1

    def lookup(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        c = self._table[i]
        if taken:
            if c < 3:
                self._table[i] = c + 1
        elif c > 0:
            self._table[i] = c - 1


class BranchPredictor:
    """See module docstring.

    The timing model calls :meth:`predict_cond` /(jump/return variants) at
    fetch time with the *actual* outcome; the predictor returns whether its
    prediction was correct and trains itself, so prediction accuracy is
    modelled without simulating wrong-path instructions.
    """

    def __init__(self, cfg: BranchPredConfig) -> None:
        self.cfg = cfg
        self.stats = BranchStats()
        self._bimodal = _CounterTable(cfg.bimodal_entries)
        self._gshare = _CounterTable(cfg.gshare_entries)
        self._meta = _CounterTable(cfg.meta_entries)
        self._history = 0
        self._history_mask = (1 << cfg.history_bits) - 1
        self._btb: dict[int, dict[int, tuple[int, int]]] = {}
        self._btb_sets = cfg.btb_entries // cfg.btb_assoc
        self._btb_seq = 0
        self._ras: list[int] = []

    # ------------------------------------------------------------------
    # BTB
    # ------------------------------------------------------------------

    def _btb_lookup(self, pc: int) -> int | None:
        s = self._btb.get(pc % self._btb_sets)
        if s and pc in s:
            target, __ = s[pc]
            self._btb_seq += 1
            s[pc] = (target, self._btb_seq)
            return target
        return None

    def _btb_insert(self, pc: int, target: int) -> None:
        idx = pc % self._btb_sets
        s = self._btb.setdefault(idx, {})
        self._btb_seq += 1
        if pc not in s and len(s) >= self.cfg.btb_assoc:
            victim = min(s, key=lambda k: s[k][1])
            del s[victim]
        s[pc] = (target, self._btb_seq)

    # ------------------------------------------------------------------
    # Prediction interfaces (predict + train in one call)
    # ------------------------------------------------------------------

    def predict_cond(self, pc: int, taken: bool, target: int) -> tuple[bool, bool]:
        """Predict a conditional branch; returns (direction_correct,
        target_known).  ``target_known`` is only meaningful when the branch
        is predicted taken."""
        st = self.stats
        st.cond_branches += 1
        gidx = pc ^ (self._history << 2)
        bim = self._bimodal.lookup(pc)
        gsh = self._gshare.lookup(gidx)
        use_gshare = self._meta.lookup(pc)
        prediction = gsh if use_gshare else bim
        # Train meta toward the component that was right.
        if gsh != bim:
            self._meta.update(pc, gsh == taken)
        self._bimodal.update(pc, taken)
        self._gshare.update(gidx, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

        correct = prediction == taken
        if not correct:
            st.cond_mispredicts += 1
        target_known = True
        if taken:
            btb_target = self._btb_lookup(pc)
            target_known = btb_target == target
            if not target_known:
                st.btb_misses += 1
            self._btb_insert(pc, target)
        return correct, target_known

    def predict_jump(self, pc: int, target: int) -> bool:
        """Direct jump/call: returns True if the BTB knew the target."""
        btb_target = self._btb_lookup(pc)
        known = btb_target == target
        if not known:
            self.stats.btb_misses += 1
        self._btb_insert(pc, target)
        return known

    def on_call(self, return_pc: int) -> None:
        """Push the return address at a JAL."""
        if len(self._ras) >= self.cfg.ras_entries:
            del self._ras[0]
        self._ras.append(return_pc)

    def predict_return(self, target: int) -> bool:
        """Indirect jump through RA: returns True if the RAS was right."""
        self.stats.returns += 1
        predicted = self._ras.pop() if self._ras else None
        correct = predicted == target
        if not correct:
            self.stats.return_mispredicts += 1
        return correct
