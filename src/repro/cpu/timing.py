"""Out-of-order core timing model.

A dataflow-with-resources model of the paper's Table-2 machine: each
committed instruction's fetch, dispatch, issue, completion and commit times
are computed in program order, constrained by

* fetch width and instruction-cache line fetches (with ITLB),
* the 64-entry instruction window (dispatch stalls when the instruction
  ``window`` ago has not committed) and the 32-entry load/store queue,
* true register dependences (last-writer completion times),
* issue width and the Table-2 functional unit pool (unpipelined divides),
* two cache ports; loads wait for all previous store addresses and forward
  from in-flight stores with a 1-cycle bypass,
* the memory hierarchy of :mod:`repro.mem.hierarchy` (MSHRs — blocking,
  coalescing or full per ``MachineConfig.mshr_model`` — buses, TLBs),
* branch mispredictions: fetch redirects at branch resolution plus a
  front-end refill penalty; BTB misses on taken branches and RAS misses on
  returns cost a decode-stage redirect.

Wrong-path instructions are not simulated (their fetch slots are subsumed
by the redirect penalty); see DESIGN.md for the substitution note.
"""

from __future__ import annotations

from collections import deque

from ..config import MachineConfig
from ..isa.engines import resolve_sim_engine
from ..isa.instruction import Instruction
from ..isa.interpreter import Interpreter
from ..isa.opcodes import FU_CLASS, FuClass, Op
from ..isa.program import Program
from ..isa.registers import NUM_REGS
from ..mem.allocator import CLASS_REGION, MIN_CLASS, MAX_CLASS
from ..mem.hierarchy import MemoryHierarchy
from ..mem.memory_image import MemoryImage
from ..prefetch.base import PrefetchEngine
from .branch_pred import BranchPredictor
from .stats import SimResult

_DISPATCH_EXTRA = 1  # cycles from dispatch to earliest issue

#: ``issued_at`` is pruned down whenever it exceeds this many entries …
_ISSUED_AT_PRUNE_THRESHOLD = 200_000
#: … checked once every this many commits (so between checks it can grow
#: by at most the same amount again; the audit invariant uses the sum).
_ISSUED_AT_PRUNE_INTERVAL = 65536


def periodic_due(n_committed: int, interval: int) -> bool:
    """True on every ``interval``-th commit, and never at commit zero.

    ``n % interval == 0`` alone is truthy at ``n == 0``, which made the
    periodic maintenance hook fire before the first commit; every
    every-N-commits check (the ``issued_at`` prune, the audit cadence)
    goes through this predicate or an inline copy of it.
    """
    return bool(n_committed) and n_committed % interval == 0


def heap_range(heap_base: int) -> tuple[int, int]:
    """Address range the size-class allocator can hand out."""
    classes = 0
    c = MIN_CLASS
    while c <= MAX_CLASS:
        classes += 1
        c <<= 1
    return heap_base, heap_base + classes * CLASS_REGION


class TimingModel:
    """Runs one program to completion under one machine + engine."""

    def __init__(
        self,
        program: Program,
        cfg: MachineConfig,
        engine: PrefetchEngine | None = None,
        collect_miss_intervals: bool = False,
        max_steps: int | None = None,
        attribute_stalls: bool = False,
        telemetry=None,
        audit=None,
        interpreter_factory=None,
        profile=None,
        sim_engine: str | None = None,
    ) -> None:
        self.attribute_stalls = attribute_stalls
        self.auditor = audit
        self._interpreter_factory = interpreter_factory
        if profile is None and attribute_stalls:
            from ..obs.profile import Profiler

            profile = Profiler()
        self.profiler = profile
        # Simulation-engine dispatch: ``table``/``reference``/``compiled``
        # (or $REPRO_SIM_ENGINE when unset) pick how the program executes;
        # results are bit-identical either way.  The fused fast path only
        # engages when nothing observes per-instruction state and the
        # caller has not substituted its own interpreter.
        se = resolve_sim_engine(sim_engine)
        self.sim_engine = se.name
        self._fused = (
            se.fused
            and interpreter_factory is None
            and telemetry is None
            and audit is None
            and self.profiler is None
        )
        if not self._fused and interpreter_factory is None and se.name != "table":
            self._interpreter_factory = se.factory()
        self.program = program
        self.cfg = cfg
        self.telemetry = telemetry
        self.engine = engine or PrefetchEngine()
        self.hierarchy = MemoryHierarchy(
            cfg,
            use_prefetch_buffer=self.engine.uses_prefetch_buffer,
            collect_miss_intervals=collect_miss_intervals,
        )
        self.hierarchy.set_telemetry(telemetry)
        if self.profiler is not None:
            self.hierarchy.set_profiler(self.profiler)
        self.timing_mem = MemoryImage(program.initial_memory)
        lo, hi = heap_range(program.heap_base)
        self.engine.attach(
            self.hierarchy, self.timing_mem, lo, hi, cfg, telemetry=telemetry
        )
        self.bpred = BranchPredictor(cfg.branch_pred)
        self._max_steps = max_steps

    @property
    def stall_attribution(self) -> dict[tuple[int, str], int]:
        """Commit-stall cycles keyed by ``(pc, reason)`` — lives on the
        attached :class:`~repro.obs.profile.Profiler` (empty when
        profiling is off)."""
        return self.profiler.stall_attribution if self.profiler is not None else {}

    # ------------------------------------------------------------------

    # Execute-stage categories (meta field ``excat``).
    _EX_LW, _EX_SW, _EX_PF, _EX_ALLOC, _EX_HALT, _EX_OTHER = range(6)
    # Control-resolution kinds (meta field ``ctl``).
    _CTL_NONE, _CTL_J, _CTL_JAL, _CTL_JR, _CTL_COND = range(5)
    # Register-write kinds (meta field ``wrkind``).
    _WR_NONE, _WR_PLAIN, _WR_ADDI, _WR_ADD = range(4)

    def _instruction_meta(
        self, fu_free: dict, fu_latency: dict, iline_mask: int
    ) -> list[tuple]:
        """Per-static-instruction tuples precomputing everything the hot
        loop would otherwise re-derive per dynamic instruction: the I-cache
        line, FU binding, execute/control/write dispatch categories, and
        the operand fields.  Indexed by ``inst.index``."""
        text_base = 0x0040_0000
        unpipelined = (FuClass.INT_DIV, FuClass.FP_DIV)
        no_rs2 = (Op.ADDI, Op.LW, Op.PF, Op.JPF, Op.SW)
        insts = self.program.instructions
        meta: list[tuple] = [()] * len(insts)
        for si in insts:
            op = si.op
            fu = FU_CLASS[op]
            frees = fu_free[fu] if fu is not FuClass.NONE else None
            lat = fu_latency.get(fu, 1)
            fu_occ = lat if fu in unpipelined else 1
            cdelta = lat if frees is not None else 1
            is_mem = op is Op.LW or op is Op.SW or op is Op.PF or op is Op.JPF
            needs_rs2 = op not in no_rs2
            if op is Op.LW:
                excat = self._EX_LW
            elif op is Op.SW:
                excat = self._EX_SW
            elif op is Op.PF or op is Op.JPF:
                excat = self._EX_PF
            elif op is Op.ALLOC:
                excat = self._EX_ALLOC
            elif op is Op.HALT:
                excat = self._EX_HALT
            else:
                excat = self._EX_OTHER
            if op is Op.JR:
                ctl = self._CTL_JR
            elif si.target is None:
                ctl = self._CTL_NONE
            elif op is Op.J:
                ctl = self._CTL_J
            elif op is Op.JAL:
                ctl = self._CTL_JAL
            else:
                ctl = self._CTL_COND
            if op is Op.LW or op is Op.SW or op is Op.PF or op is Op.JPF:
                wrkind = self._WR_NONE  # handled by their own excat branches
            elif si.rd and fu is not FuClass.NONE:
                if op is Op.ADDI:
                    wrkind = self._WR_ADDI
                elif op is Op.ADD:
                    wrkind = self._WR_ADD
                else:
                    wrkind = self._WR_PLAIN
            else:
                wrkind = self._WR_NONE
            meta[si.index] = (
                (text_base + 4 * si.index) & iline_mask,  # 0: I-cache line
                is_mem,                                   # 1
                needs_rs2,                                # 2
                frees,                                    # 3: FU scoreboard
                fu_occ,                                   # 4: FU occupancy
                cdelta,                                   # 5: issue->complete
                excat,                                    # 6
                si.rs1,                                   # 7
                si.rs2,                                   # 8
                si.rd,                                    # 9
                ctl,                                      # 10
                si.target,                                # 11
                si.tag == "lds",                          # 12
                si.index,                                 # 13
                wrkind,                                   # 14
            )
        return meta

    def run(self) -> SimResult:
        if self._fused:
            # Import here: repro.cpu.compiled imports this module.
            from .compiled import run_compiled

            return run_compiled(self)
        cfg = self.cfg
        engine = self.engine
        hierarchy = self.hierarchy
        timing_mem_store = self.timing_mem.store
        bpred = self.bpred
        fu_cfg = cfg.func_units

        make_interp = self._interpreter_factory or Interpreter
        interp = make_interp(self.program, max_steps=self._max_steps)

        auditor = self.auditor
        audit_every = 0
        if auditor is not None:
            auditor.attach(self)
            audit_every = auditor.interval

        # Register scoreboard and (optional) load provenance.
        reg_ready = [0] * NUM_REGS
        track_dataflow = engine.needs_dataflow
        src_pc: list[int | None] = [None] * NUM_REGS
        src_val: list[int | float | None] = [None] * NUM_REGS
        issue_hook = engine.needs_issue_hook

        # Window / LSQ occupancy (commit times of in-flight instructions).
        rob: deque[int] = deque()
        lsq: deque[int] = deque()
        rob_append, rob_popleft = rob.append, rob.popleft
        lsq_append, lsq_popleft = lsq.append, lsq.popleft
        window = cfg.window
        lsq_entries = cfg.lsq_entries

        # Fetch state.
        fetch_cycle = 0
        fetch_count = 0
        fetch_width = cfg.fetch_width
        redirect_floor = 0
        cur_line = -1
        line_ready = 0
        iline_mask = ~(cfg.il1.line - 1)
        front = cfg.front_pipeline_depth
        il1_latency = cfg.il1.latency
        inst_fetch = hierarchy.inst_fetch
        data_access = hierarchy.data_access

        # Issue bandwidth and functional units.
        issue_width = cfg.issue_width
        issued_at: dict[int, int] = {}
        issued_get = issued_at.get
        fu_free: dict[int, list[int]] = {
            FuClass.INT_ALU: [0] * fu_cfg.int_alu,
            FuClass.INT_MUL: [0] * fu_cfg.int_mul,
            FuClass.INT_DIV: [0] * fu_cfg.int_div,
            FuClass.FP_ADD: [0] * fu_cfg.fp_add,
            FuClass.FP_MUL: [0] * fu_cfg.fp_mul,
            FuClass.FP_DIV: [0] * fu_cfg.fp_div,
            FuClass.MEM_PORT: [0] * fu_cfg.mem_ports,
        }
        fu_latency = {
            FuClass.INT_ALU: fu_cfg.int_alu_latency,
            FuClass.INT_MUL: fu_cfg.int_mul_latency,
            FuClass.INT_DIV: fu_cfg.int_div_latency,
            FuClass.FP_ADD: fu_cfg.fp_add_latency,
            FuClass.FP_MUL: fu_cfg.fp_mul_latency,
            FuClass.FP_DIV: fu_cfg.fp_div_latency,
            FuClass.MEM_PORT: fu_cfg.mem_port_latency,
        }
        meta = self._instruction_meta(fu_free, fu_latency, iline_mask)

        # Store tracking for LSQ semantics.
        store_addr_floor = 0  # prefix max of store address-ready times
        pending_stores: dict[int, tuple[int, int]] = {}  # addr -> (data_ready, commit)
        ps_get = pending_stores.get

        # Commit state.
        last_commit = 0
        commit_cycle = 0
        commit_count = 0
        commit_width = cfg.commit_width

        mispredict_penalty = cfg.branch_pred.misprediction_penalty
        alloc_latency = cfg.alloc_latency
        trace = self.telemetry.trace if self.telemetry is not None else None

        # Optional profiler: when detached the hot loop pays only the
        # ``profiling`` truth checks (same contract as telemetry/audit).
        profiler = self.profiler
        profiling = profiler is not None
        if profiling:
            profiler.attach(self)
            prof_charge = profiler.charge
            prof_on_load = profiler.on_load
            prof_on_forward = profiler.on_forward
        load_reason = "load.l1"
        dep_ready = 0

        predict_cond = bpred.predict_cond
        predict_jump = bpred.predict_jump
        predict_return = bpred.predict_return
        on_call = bpred.on_call
        on_load_issue = engine.on_load_issue
        on_load_commit = engine.on_load_commit
        on_sw_prefetch = engine.on_sw_prefetch

        n_committed = 0
        n_loads = 0
        n_stores = 0
        n_lds_loads = 0

        _EX_LW, _EX_SW, _EX_PF = self._EX_LW, self._EX_SW, self._EX_PF
        _EX_ALLOC, _EX_HALT = self._EX_ALLOC, self._EX_HALT
        _CTL_J, _CTL_JAL, _CTL_JR, _CTL_COND = (
            self._CTL_J, self._CTL_JAL, self._CTL_JR, self._CTL_COND
        )
        _WR_NONE, _WR_ADDI, _WR_ADD = self._WR_NONE, self._WR_ADDI, self._WR_ADD

        for inst, addr, value, taken in interp.run():
            (line, is_mem, needs_rs2, frees, fu_occ, cdelta, excat,
             rs1, rs2, rd, ctl, target, is_lds, idx,
             wrkind) = meta[inst.index]

            # ---------------- fetch ----------------
            t = fetch_cycle
            redirected = redirect_floor > t
            if redirected:
                t = redirect_floor
            if line != cur_line:
                cur_line = line
                line_ready = inst_fetch(line, t) - il1_latency
            if line_ready > t:
                t = line_ready
            if t > fetch_cycle:
                fetch_cycle = t
                fetch_count = 1
            else:
                fetch_count += 1
                if fetch_count > fetch_width:
                    fetch_cycle += 1
                    fetch_count = 1
                    t = fetch_cycle
                    if line_ready > t:  # pragma: no cover - defensive
                        t = line_ready

            fetch_time = t

            # ---------------- dispatch ----------------
            dispatch = fetch_time + front
            if len(rob) >= window:
                head = rob_popleft()
                if head > dispatch:
                    dispatch = head
            if is_mem and len(lsq) >= lsq_entries:
                head = lsq_popleft()
                if head > dispatch:
                    dispatch = head

            # ---------------- operand readiness ----------------
            ready = dispatch + _DISPATCH_EXTRA
            r = reg_ready[rs1]
            if r > ready:
                ready = r
            if needs_rs2:
                r = reg_ready[rs2]
                if r > ready:
                    ready = r
            # A store's address generation does not wait for its data; the
            # data register is folded in at completion below.
            if profiling:
                dep_ready = ready  # operand readiness before FU/width waits

            # ---------------- issue (width + FU) ----------------
            if frees is not None:
                best = 0
                best_t = frees[0]
                for k in range(1, len(frees)):
                    if frees[k] < best_t:
                        best_t = frees[k]
                        best = k
                if best_t > ready:
                    ready = best_t
                cnt = issued_get(ready, 0)
                while cnt >= issue_width:
                    ready += 1
                    cnt = issued_get(ready, 0)
                issued_at[ready] = cnt + 1
                frees[best] = ready + fu_occ
            issue = ready

            # ---------------- execute ----------------
            if excat == _EX_LW:
                n_loads += 1
                if is_lds:
                    n_lds_loads += 1
                start = issue
                if store_addr_floor > start:
                    start = store_addr_floor
                if trace is not None:
                    trace.instant(
                        "load-issue", start, cat="core",
                        pc=idx, addr=addr, lds=is_lds,
                    )
                if issue_hook:
                    on_load_issue(inst, addr, start)
                fwd = ps_get(addr)
                if fwd is not None and fwd[1] > start:
                    complete = max(start, fwd[0]) + 1
                    if profiling:
                        load_reason = prof_on_forward(idx, complete - start)
                else:
                    complete = data_access(addr, start, write=False, lds=is_lds)
                    if profiling:
                        load_reason = prof_on_load(idx, complete - start)
            elif excat == _EX_SW:
                n_stores += 1
                # Address is known at issue (AGU); later loads wait only for
                # the address, not the data.
                if issue > store_addr_floor:
                    store_addr_floor = issue
                data_ready = reg_ready[rs2]
                complete = (data_ready if data_ready > issue else issue) + 1
            elif excat == _EX_PF:
                on_sw_prefetch(inst, addr, issue)
                complete = issue + 1
            elif excat == _EX_ALLOC:
                complete = issue + alloc_latency
            elif excat == _EX_HALT:
                complete = dispatch
            else:
                complete = issue + cdelta

            # ---------------- control resolution ----------------
            if ctl:
                if ctl == _CTL_COND:
                    dir_ok, tgt_ok = predict_cond(idx, taken, target)
                    if not dir_ok:
                        rf = complete + mispredict_penalty
                        if rf > redirect_floor:
                            redirect_floor = rf
                    elif taken and not tgt_ok:
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df
                elif ctl == _CTL_J:
                    if not predict_jump(idx, target):
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df
                elif ctl == _CTL_JAL:
                    known = predict_jump(idx, target)
                    on_call(idx + 1)
                    if not known:
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df
                else:  # _CTL_JR
                    if not predict_return(value):
                        rf = complete + mispredict_penalty
                        if rf > redirect_floor:
                            redirect_floor = rf

            # ---------------- commit (in order, width-limited) ----------------
            prev_commit = last_commit
            ct = complete if complete > last_commit else last_commit
            if ct > commit_cycle:
                commit_cycle = ct
                commit_count = 1
            else:
                commit_count += 1
                if commit_count > commit_width:
                    commit_cycle += 1
                    commit_count = 1
                ct = commit_cycle
            last_commit = ct
            rob_append(ct)
            if is_mem:
                lsq_append(ct)
            if profiling:
                delta = ct - prev_commit
                if delta:
                    # Charge the commit-front advance to the latest
                    # pipeline stage that lifted it (see obs.profile).
                    if complete <= prev_commit:
                        reason = "base"  # commit width, not this inst
                    elif excat == _EX_LW:
                        reason = load_reason
                    elif frees is not None and issue > dep_ready:
                        reason = "fu"
                    elif dispatch > fetch_time + front:
                        reason = "window"
                    elif redirected:
                        reason = "branch"
                    else:
                        reason = "base"
                    prof_charge(idx, reason, delta, ct)

            # ---------------- post-commit effects ----------------
            if excat == _EX_SW:
                timing_mem_store(addr, value)
                pending_stores[addr] = (complete, ct)
                if len(pending_stores) > 8192:
                    pending_stores = {
                        a: v for a, v in pending_stores.items() if v[1] > ct
                    }
                    ps_get = pending_stores.get
                data_access(addr, ct, write=True)
            elif excat == _EX_LW:
                if track_dataflow:
                    # The engine reacts when the value arrives (completion);
                    # DBP launches chained prefetches off completed loads.
                    on_load_commit(
                        inst, addr, value, complete, src_pc[rs1], src_val[rs1]
                    )
                    src_pc[rd] = idx
                    src_val[rd] = value
                reg_ready[rd] = complete
            elif wrkind != _WR_NONE:
                reg_ready[rd] = complete
                if track_dataflow:
                    if wrkind == _WR_ADDI:
                        src_pc[rd] = src_pc[rs1]
                        src_val[rd] = src_val[rs1]
                    elif wrkind == _WR_ADD:
                        if src_pc[rs1] is not None:
                            src_pc[rd] = src_pc[rs1]
                            src_val[rd] = src_val[rs1]
                        else:
                            src_pc[rd] = src_pc[rs2]
                            src_val[rd] = src_val[rs2]
                    else:
                        src_pc[rd] = None
                        src_val[rd] = None

            n_committed += 1
            # Inline periodic_due(): the n_committed guard keeps the prune
            # (and anything hung off this cadence) from firing at commit 0.
            if (
                n_committed
                and not n_committed % _ISSUED_AT_PRUNE_INTERVAL
                and len(issued_at) > _ISSUED_AT_PRUNE_THRESHOLD
            ):
                floor = dispatch - 4 * window
                issued_at = {c: k for c, k in issued_at.items() if c >= floor}
                issued_get = issued_at.get
            if audit_every and not n_committed % audit_every:
                auditor.on_commit(
                    n_committed,
                    last_commit,
                    rob=rob,
                    lsq=lsq,
                    issued_at=issued_at,
                )

        # ------------------------------------------------------------------
        cycles = last_commit
        h = hierarchy
        tele_dict = None
        if self.telemetry is not None:
            self.telemetry.finalize()
        if profiling:
            profiler.on_finish(self, n_committed, last_commit)
        # After finalize: the end-of-run sweep sees the tracker (and the
        # profiler) in terminal state, and violation counters land in the
        # artifact dict.
        if auditor is not None:
            auditor.on_finish(self, n_committed, last_commit)
        if self.telemetry is not None:
            tele_dict = self.telemetry.to_dict()
        return SimResult(
            cycles=cycles,
            instructions=n_committed,
            loads=n_loads,
            stores=n_stores,
            lds_loads=n_lds_loads,
            branch=bpred.stats,
            hierarchy=h.stats,
            engine=engine.stats,
            l1d_accesses=h.dl1.stats.accesses,
            l1d_misses=h.dl1.stats.misses,
            l2_accesses=h.l2.stats.accesses,
            l2_misses=h.l2.stats.misses,
            dtlb_misses=h.dtlb.stats.misses,
            engine_name=engine.name,
            telemetry=tele_dict,
            profile=profiler.to_dict() if profiling else None,
        )
