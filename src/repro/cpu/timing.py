"""Out-of-order core timing model.

A dataflow-with-resources model of the paper's Table-2 machine: each
committed instruction's fetch, dispatch, issue, completion and commit times
are computed in program order, constrained by

* fetch width and instruction-cache line fetches (with ITLB),
* the 64-entry instruction window (dispatch stalls when the instruction
  ``window`` ago has not committed) and the 32-entry load/store queue,
* true register dependences (last-writer completion times),
* issue width and the Table-2 functional unit pool (unpipelined divides),
* two cache ports; loads wait for all previous store addresses and forward
  from in-flight stores with a 1-cycle bypass,
* the memory hierarchy of :mod:`repro.mem.hierarchy` (MSHRs, buses, TLBs),
* branch mispredictions: fetch redirects at branch resolution plus a
  front-end refill penalty; BTB misses on taken branches and RAS misses on
  returns cost a decode-stage redirect.

Wrong-path instructions are not simulated (their fetch slots are subsumed
by the redirect penalty); see DESIGN.md for the substitution note.
"""

from __future__ import annotations

from collections import deque

from ..config import MachineConfig
from ..isa.instruction import Instruction
from ..isa.interpreter import Interpreter
from ..isa.opcodes import FU_CLASS, FuClass, Op
from ..isa.program import Program
from ..isa.registers import NUM_REGS
from ..mem.allocator import CLASS_REGION, MIN_CLASS, MAX_CLASS
from ..mem.hierarchy import MemoryHierarchy
from ..mem.memory_image import MemoryImage
from ..prefetch.base import PrefetchEngine
from .branch_pred import BranchPredictor
from .stats import SimResult

_DISPATCH_EXTRA = 1  # cycles from dispatch to earliest issue


def heap_range(heap_base: int) -> tuple[int, int]:
    """Address range the size-class allocator can hand out."""
    classes = 0
    c = MIN_CLASS
    while c <= MAX_CLASS:
        classes += 1
        c <<= 1
    return heap_base, heap_base + classes * CLASS_REGION


class TimingModel:
    """Runs one program to completion under one machine + engine."""

    def __init__(
        self,
        program: Program,
        cfg: MachineConfig,
        engine: PrefetchEngine | None = None,
        collect_miss_intervals: bool = False,
        max_steps: int | None = None,
        attribute_stalls: bool = False,
        telemetry=None,
    ) -> None:
        self.attribute_stalls = attribute_stalls
        self.stall_attribution: dict[tuple[str, str | None], int] = {}
        self.program = program
        self.cfg = cfg
        self.telemetry = telemetry
        self.engine = engine or PrefetchEngine()
        self.hierarchy = MemoryHierarchy(
            cfg,
            use_prefetch_buffer=self.engine.uses_prefetch_buffer,
            collect_miss_intervals=collect_miss_intervals,
        )
        self.hierarchy.set_telemetry(telemetry)
        self.timing_mem = MemoryImage(program.initial_memory)
        lo, hi = heap_range(program.heap_base)
        self.engine.attach(
            self.hierarchy, self.timing_mem, lo, hi, cfg, telemetry=telemetry
        )
        self.bpred = BranchPredictor(cfg.branch_pred)
        self._max_steps = max_steps

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.cfg
        engine = self.engine
        hierarchy = self.hierarchy
        timing_mem_store = self.timing_mem.store
        bpred = self.bpred
        fu_cfg = cfg.func_units

        interp = (
            Interpreter(self.program, max_steps=self._max_steps)
            if self._max_steps
            else Interpreter(self.program)
        )

        # Register scoreboard and (optional) load provenance.
        reg_ready = [0] * NUM_REGS
        track_dataflow = engine.needs_dataflow
        src_pc: list[int | None] = [None] * NUM_REGS
        src_val: list[int | float | None] = [None] * NUM_REGS
        issue_hook = engine.needs_issue_hook

        # Window / LSQ occupancy (commit times of in-flight instructions).
        rob: deque[int] = deque()
        lsq: deque[int] = deque()
        window = cfg.window
        lsq_entries = cfg.lsq_entries

        # Fetch state.
        fetch_cycle = 0
        fetch_count = 0
        fetch_width = cfg.fetch_width
        redirect_floor = 0
        cur_line = -1
        line_ready = 0
        iline_mask = ~(cfg.il1.line - 1)
        front = cfg.front_pipeline_depth

        # Issue bandwidth and functional units.
        issue_width = cfg.issue_width
        issued_at: dict[int, int] = {}
        fu_free: dict[int, list[int]] = {
            FuClass.INT_ALU: [0] * fu_cfg.int_alu,
            FuClass.INT_MUL: [0] * fu_cfg.int_mul,
            FuClass.INT_DIV: [0] * fu_cfg.int_div,
            FuClass.FP_ADD: [0] * fu_cfg.fp_add,
            FuClass.FP_MUL: [0] * fu_cfg.fp_mul,
            FuClass.FP_DIV: [0] * fu_cfg.fp_div,
            FuClass.MEM_PORT: [0] * fu_cfg.mem_ports,
        }
        fu_latency = {
            FuClass.INT_ALU: fu_cfg.int_alu_latency,
            FuClass.INT_MUL: fu_cfg.int_mul_latency,
            FuClass.INT_DIV: fu_cfg.int_div_latency,
            FuClass.FP_ADD: fu_cfg.fp_add_latency,
            FuClass.FP_MUL: fu_cfg.fp_mul_latency,
            FuClass.FP_DIV: fu_cfg.fp_div_latency,
            FuClass.MEM_PORT: fu_cfg.mem_port_latency,
        }
        unpipelined = (FuClass.INT_DIV, FuClass.FP_DIV)

        # Store tracking for LSQ semantics.
        store_addr_floor = 0  # prefix max of store address-ready times
        pending_stores: dict[int, tuple[int, int]] = {}  # addr -> (data_ready, commit)

        # Commit state.
        last_commit = 0
        commit_cycle = 0
        commit_count = 0
        commit_width = cfg.commit_width

        mispredict_penalty = cfg.branch_pred.misprediction_penalty
        perfect = cfg.perfect_data_memory
        trace = self.telemetry.trace if self.telemetry is not None else None

        n_committed = 0
        n_loads = 0
        n_stores = 0
        n_lds_loads = 0
        text_base = 0x0040_0000

        _LW, _SW, _PF, _JPF = Op.LW, Op.SW, Op.PF, Op.JPF
        _ADD, _ADDI, _ALLOC, _HALT = Op.ADD, Op.ADDI, Op.ALLOC, Op.HALT
        _J, _JAL, _JR = Op.J, Op.JAL, Op.JR

        for inst, addr, value, taken in interp.run():
            op = inst.op

            # ---------------- fetch ----------------
            pc_addr = text_base + 4 * inst.index
            line = pc_addr & iline_mask
            t = fetch_cycle
            if redirect_floor > t:
                t = redirect_floor
            if line != cur_line:
                cur_line = line
                line_ready = hierarchy.inst_fetch(line, t) - cfg.il1.latency
            if line_ready > t:
                t = line_ready
            if t > fetch_cycle:
                fetch_cycle = t
                fetch_count = 1
            else:
                fetch_count += 1
                if fetch_count > fetch_width:
                    fetch_cycle += 1
                    fetch_count = 1
                    t = fetch_cycle
                    if line_ready > t:  # pragma: no cover - defensive
                        t = line_ready

            fetch_time = t

            # ---------------- dispatch ----------------
            dispatch = fetch_time + front
            if len(rob) >= window:
                head = rob.popleft()
                if head > dispatch:
                    dispatch = head
            is_mem = op is _LW or op is _SW or op is _PF or op is _JPF
            if is_mem and len(lsq) >= lsq_entries:
                head = lsq.popleft()
                if head > dispatch:
                    dispatch = head

            # ---------------- operand readiness ----------------
            ready = dispatch + _DISPATCH_EXTRA
            r = reg_ready[inst.rs1]
            if r > ready:
                ready = r
            if (
                op is not _ADDI
                and op is not _LW
                and op is not _PF
                and op is not _JPF
                and op is not _SW
            ):
                r = reg_ready[inst.rs2]
                if r > ready:
                    ready = r
            # A store's address generation does not wait for its data; the
            # data register is folded in at completion below.

            # ---------------- issue (width + FU) ----------------
            fu = FU_CLASS[op]
            if fu is not FuClass.NONE:
                frees = fu_free[fu]
                best = 0
                best_t = frees[0]
                for k in range(1, len(frees)):
                    if frees[k] < best_t:
                        best_t = frees[k]
                        best = k
                if best_t > ready:
                    ready = best_t
                while issued_at.get(ready, 0) >= issue_width:
                    ready += 1
                issued_at[ready] = issued_at.get(ready, 0) + 1
                frees[best] = ready + (
                    fu_latency[fu] if fu in unpipelined else 1
                )
            issue = ready

            # ---------------- execute ----------------
            if op is _LW:
                n_loads += 1
                lds = inst.tag == "lds"
                if lds:
                    n_lds_loads += 1
                start = issue
                if store_addr_floor > start:
                    start = store_addr_floor
                if trace is not None:
                    trace.instant(
                        "load-issue", start, cat="core",
                        pc=inst.index, addr=addr, lds=lds,
                    )
                if issue_hook:
                    engine.on_load_issue(inst, addr, start)
                fwd = pending_stores.get(addr)
                if fwd is not None and fwd[1] > start:
                    complete = max(start, fwd[0]) + 1
                else:
                    complete = hierarchy.data_access(addr, start, write=False, lds=lds)
            elif op is _SW:
                n_stores += 1
                # Address is known at issue (AGU); later loads wait only for
                # the address, not the data.
                if issue > store_addr_floor:
                    store_addr_floor = issue
                data_ready = reg_ready[inst.rs2]
                complete = (data_ready if data_ready > issue else issue) + 1
            elif op is _PF or op is _JPF:
                engine.on_sw_prefetch(inst, addr, issue)
                complete = issue + 1
            elif op is _ALLOC:
                complete = issue + cfg.alloc_latency
            elif op is _HALT:
                complete = dispatch
            elif fu is FuClass.NONE:
                complete = issue + 1
            else:
                complete = issue + fu_latency[fu]

            # ---------------- control resolution ----------------
            if inst.target is not None or op is _JR:
                if op is _J:
                    if not bpred.predict_jump(inst.index, inst.target):
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df
                elif op is _JAL:
                    known = bpred.predict_jump(inst.index, inst.target)
                    bpred.on_call(inst.index + 1)
                    if not known:
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df
                elif op is _JR:
                    if not bpred.predict_return(value):
                        rf = complete + mispredict_penalty
                        if rf > redirect_floor:
                            redirect_floor = rf
                else:  # conditional branch
                    dir_ok, tgt_ok = bpred.predict_cond(inst.index, taken, inst.target)
                    if not dir_ok:
                        rf = complete + mispredict_penalty
                        if rf > redirect_floor:
                            redirect_floor = rf
                    elif taken and not tgt_ok:
                        df = fetch_time + front
                        if df > redirect_floor:
                            redirect_floor = df

            # ---------------- commit (in order, width-limited) ----------------
            prev_commit = last_commit
            ct = complete if complete > last_commit else last_commit
            if ct > commit_cycle:
                commit_cycle = ct
                commit_count = 1
            else:
                commit_count += 1
                if commit_count > commit_width:
                    commit_cycle += 1
                    commit_count = 1
                ct = commit_cycle
            last_commit = ct
            rob.append(ct)
            if is_mem:
                lsq.append(ct)
            if self.attribute_stalls:
                delta = ct - prev_commit
                if delta:
                    key = (op.name, inst.tag)
                    attr = self.stall_attribution
                    attr[key] = attr.get(key, 0) + delta

            # ---------------- post-commit effects ----------------
            rd = inst.rd
            if op is _SW:
                timing_mem_store(addr, value)
                pending_stores[addr] = (complete, ct)
                if len(pending_stores) > 8192:
                    pending_stores = {
                        a: v for a, v in pending_stores.items() if v[1] > ct
                    }
                hierarchy.data_access(addr, ct, write=True)
            elif op is _LW:
                if track_dataflow:
                    # The engine reacts when the value arrives (completion);
                    # DBP launches chained prefetches off completed loads.
                    engine.on_load_commit(
                        inst, addr, value, complete, src_pc[inst.rs1], src_val[inst.rs1]
                    )
                    src_pc[rd] = inst.index
                    src_val[rd] = value
                reg_ready[rd] = complete
            elif rd and fu is not FuClass.NONE and op is not _PF and op is not _JPF:
                reg_ready[rd] = complete
                if track_dataflow:
                    if op is _ADDI:
                        src_pc[rd] = src_pc[inst.rs1]
                        src_val[rd] = src_val[inst.rs1]
                    elif op is _ADD:
                        if src_pc[inst.rs1] is not None:
                            src_pc[rd] = src_pc[inst.rs1]
                            src_val[rd] = src_val[inst.rs1]
                        else:
                            src_pc[rd] = src_pc[inst.rs2]
                            src_val[rd] = src_val[inst.rs2]
                    else:
                        src_pc[rd] = None
                        src_val[rd] = None

            n_committed += 1
            if not n_committed % 65536 and len(issued_at) > 200_000:
                floor = dispatch - 4 * window
                issued_at = {c: k for c, k in issued_at.items() if c >= floor}

        # ------------------------------------------------------------------
        cycles = last_commit
        h = hierarchy
        tele_dict = None
        if self.telemetry is not None:
            self.telemetry.finalize()
            tele_dict = self.telemetry.to_dict()
        return SimResult(
            cycles=cycles,
            instructions=n_committed,
            loads=n_loads,
            stores=n_stores,
            lds_loads=n_lds_loads,
            branch=bpred.stats,
            hierarchy=h.stats,
            engine=engine.stats,
            l1d_accesses=h.dl1.stats.accesses,
            l1d_misses=h.dl1.stats.misses,
            l2_accesses=h.l2.stats.accesses,
            l2_misses=h.l2.stats.misses,
            dtlb_misses=h.dtlb.stats.misses,
            engine_name=engine.name,
            telemetry=tele_dict,
        )
