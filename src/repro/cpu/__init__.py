"""Out-of-order core timing model and simulation entry points."""

from .branch_pred import BranchPredictor, BranchStats
from .simulator import Decomposition, make_engine, simulate, simulate_decomposed
from .stats import SimResult
from .timing import TimingModel, heap_range

__all__ = [
    "BranchPredictor",
    "BranchStats",
    "Decomposition",
    "SimResult",
    "TimingModel",
    "heap_range",
    "make_engine",
    "simulate",
    "simulate_decomposed",
]
