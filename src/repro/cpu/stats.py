"""Simulation results and derived metrics."""

from __future__ import annotations

import bisect
from dataclasses import asdict, dataclass, field

from ..mem.hierarchy import HierarchyStats
from ..prefetch.base import EngineStats
from .branch_pred import BranchStats


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    lds_loads: int
    branch: BranchStats
    hierarchy: HierarchyStats
    engine: EngineStats
    l1d_accesses: int
    l1d_misses: int
    l2_accesses: int
    l2_misses: int
    dtlb_misses: int
    engine_name: str = "none"
    extra: dict[str, float] = field(default_factory=dict)
    telemetry: dict | None = None
    """Serialized :class:`repro.obs.Telemetry` (metric registry dump and
    prefetch-outcome counts) when the run was observed; None otherwise."""
    profile: dict | None = None
    """Serialized :class:`repro.obs.profile.Profiler` (CPI stack, per-site
    stall table, latency histograms) when the run was profiled."""

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_miss_ratio(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def lds_load_fraction(self) -> float:
        """Fraction of dynamic loads that traverse linked data structures."""
        return self.lds_loads / self.loads if self.loads else 0.0

    @property
    def lds_miss_fraction(self) -> float:
        """Fraction of L1 data-load misses caused by LDS loads (Table 1)."""
        h = self.hierarchy
        return h.lds_load_misses / h.load_misses if h.load_misses else 0.0

    @property
    def bytes_l1_l2_per_inst(self) -> float:
        """Figure 6's metric (caller normalizes by *baseline* instructions)."""
        return self.hierarchy.bytes_l1_l2 / self.instructions if self.instructions else 0.0

    def miss_parallelism(self) -> float:
        """Average number of in-flight L1 data misses, sampled at each miss
        (Table 1's parallelism metric).  Requires the simulation to have
        been run with ``collect_miss_intervals=True``."""
        intervals = self.hierarchy.miss_intervals
        if not intervals:
            return 0.0
        starts = sorted(s for s, __ in intervals)
        ends = sorted(e for __, e in intervals)
        total = 0
        for s, __ in intervals:
            # misses started at or before s minus misses already done at s
            total += _count_le(starts, s) - _count_le(ends, s)
        return total / len(intervals)

    def to_dict(self) -> dict:
        """JSON-safe dict of all counters, nested stats, derived metrics
        and (when present) the telemetry dump.  Large raw samples
        (``miss_intervals``) are reduced to their count."""
        hier = asdict(self.hierarchy)
        intervals = hier.pop("miss_intervals", None)
        hier["miss_interval_count"] = len(intervals) if intervals else 0
        return {
            "engine": self.engine_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "lds_loads": self.lds_loads,
            "l1d_accesses": self.l1d_accesses,
            "l1d_misses": self.l1d_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "dtlb_misses": self.dtlb_misses,
            "derived": {
                "ipc": self.ipc,
                "l1d_miss_ratio": self.l1d_miss_ratio,
                "lds_load_fraction": self.lds_load_fraction,
                "lds_miss_fraction": self.lds_miss_fraction,
                "bytes_l1_l2_per_inst": self.bytes_l1_l2_per_inst,
            },
            "branch": asdict(self.branch),
            "hierarchy": hier,
            "engine_stats": asdict(self.engine),
            "extra": dict(self.extra),
            "telemetry": self.telemetry,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SimResult":
        """Inverse of :meth:`to_dict` (used by the on-disk result cache).

        Raw ``miss_intervals`` samples are not serialized, so they come
        back as ``None`` — identical to a run executed without
        ``collect_miss_intervals``.
        """
        hier = dict(d["hierarchy"])
        hier.pop("miss_interval_count", None)
        hier["miss_intervals"] = None
        return cls(
            cycles=d["cycles"],
            instructions=d["instructions"],
            loads=d["loads"],
            stores=d["stores"],
            lds_loads=d["lds_loads"],
            branch=BranchStats(**d["branch"]),
            hierarchy=HierarchyStats(**hier),
            engine=EngineStats(**d["engine_stats"]),
            l1d_accesses=d["l1d_accesses"],
            l1d_misses=d["l1d_misses"],
            l2_accesses=d["l2_accesses"],
            l2_misses=d["l2_misses"],
            dtlb_misses=d["dtlb_misses"],
            engine_name=d["engine"],
            extra=dict(d.get("extra") or {}),
            telemetry=d.get("telemetry"),
            profile=d.get("profile"),
        )


def _count_le(sorted_values: list[int], x: int) -> int:
    return bisect.bisect_right(sorted_values, x)
