"""Top-level simulation entry points."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..isa.program import Program
from ..prefetch.base import PrefetchEngine
from ..prefetch.engines import ENGINES
from .stats import SimResult
from .timing import TimingModel


def make_engine(name: str, cfg: MachineConfig) -> PrefetchEngine:
    """Instantiate a prefetch engine by registry name (``none``,
    ``software``, ``dbp``, ``cooperative``, ``hardware``, plus anything
    added via :func:`repro.prefetch.register_engine`)."""
    return ENGINES.get(name)(cfg.prefetch)


def simulate(
    program: Program,
    cfg: MachineConfig | None = None,
    engine: str | PrefetchEngine = "none",
    collect_miss_intervals: bool = False,
    max_steps: int | None = None,
    telemetry=None,
    audit=None,
    interpreter_factory=None,
    profile=None,
    sim_engine: str | None = None,
) -> SimResult:
    """Run ``program`` on the simulated machine; returns a
    :class:`~repro.cpu.stats.SimResult`.

    ``telemetry`` is an optional :class:`repro.obs.Telemetry` context;
    when given, the result carries its serialized metric registry and
    prefetch-outcome counts (``SimResult.telemetry``).  ``audit`` is an
    optional :class:`repro.audit.Auditor` that sweeps the model's
    conservation-law invariants every ``audit.interval`` commits;
    ``profile`` is an optional :class:`repro.obs.Profiler` that charges
    every commit-front advance to a CPI-stack bucket (the serialized
    profile lands in ``SimResult.profile``); ``interpreter_factory``
    substitutes the functional interpreter (the differential validator
    passes :class:`repro.audit.diff.ReferenceInterpreter` here);
    ``sim_engine`` selects the execution implementation by registry name
    (``table``/``reference``/``compiled``, :mod:`repro.isa.engines`) —
    ``None`` defers to ``$REPRO_SIM_ENGINE`` and then the ``table``
    default, and every engine is bit-identical."""
    cfg = cfg or MachineConfig()
    if isinstance(engine, str):
        engine = make_engine(engine, cfg)
    model = TimingModel(
        program,
        cfg,
        engine,
        collect_miss_intervals=collect_miss_intervals,
        max_steps=max_steps,
        telemetry=telemetry,
        audit=audit,
        interpreter_factory=interpreter_factory,
        profile=profile,
        sim_engine=sim_engine,
    )
    return model.run()


@dataclass(frozen=True)
class Decomposition:
    """The paper's execution-time decomposition (Section 4 preamble).

    ``compute`` is a second simulation with uniform single-cycle data
    memory; ``memory`` is the remainder of the realistic run's time.
    """

    total: int
    compute: int

    @property
    def memory(self) -> int:
        return max(0, self.total - self.compute)

    @property
    def memory_fraction(self) -> float:
        return self.memory / self.total if self.total else 0.0


def simulate_decomposed(
    program: Program,
    cfg: MachineConfig | None = None,
    engine: str = "none",
    max_steps: int | None = None,
    sim_engine: str | None = None,
) -> tuple[SimResult, Decomposition]:
    """Realistic + compute-time pair of simulations for one configuration."""
    cfg = cfg or MachineConfig()
    real = simulate(program, cfg, engine=engine, max_steps=max_steps,
                    sim_engine=sim_engine)
    compute = simulate(program, cfg.perfect(), engine="none",
                       max_steps=max_steps, sim_engine=sim_engine)
    return real, Decomposition(total=real.cycles, compute=compute.cycles)
