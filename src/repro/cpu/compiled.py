"""Fused block-compiled timing fast path (template JIT over the hot loop).

:mod:`repro.isa.blockjit` removes functional-interpreter dispatch; this
module goes one tier further and fuses the *timing model* into the same
generated superinstructions.  For each basic block it emits one Python
function containing, per instruction, the functional handler body
followed by the timing-model stages (fetch, dispatch, operand readiness,
issue, execute, control resolution, commit, post-commit effects) with
every decode-time constant — register indices, immediates, I-cache line,
FU binding, latencies, machine widths — baked in as literals.  This
eliminates the generator yield/resume per instruction, the meta-tuple
unpack, and every ``excat``/``ctl``/``wrkind`` dispatch chain.

Cycle-exactness is the contract: each emitted stage is the corresponding
:meth:`~repro.cpu.timing.TimingModel.run` statement with constants
substituted, in the same order.  The only statements *elided* are ones a
short proof shows are dead inside a basic block, and the elision is the
"batched per-block cache/TLB lookup" the block compiler exists for:

* **I-line check** — within a block, pcs are consecutive, so whether
  instruction *j* starts a new I-cache line is static; ``inst_fetch``
  (which walks the ITLB + IL1) is called once per line per block instead
  of being guarded per instruction.
* **redirect floor** — ``redirect_floor`` only changes at control
  resolution, and blocks end at control transfers; for *j > 0*,
  ``t >= fetch_cycle(after j-1) >= t(j-1) >= redirect_floor`` makes the
  check statically false.
* **line-ready wait** — for *j > 0* on an unchanged line,
  ``line_ready <= t(j-1) <= fetch_cycle <= t``, so the wait is dead.

Everything observable is preserved: the ``pending_stores`` prune runs at
exactly the original per-store points (a pruned entry is visible to
store-to-load forwarding, so its cadence matters), the ``issued_at``
prune keeps its exact every-65536-commits cadence, FU selection keeps
argmin-first tie-breaking, and error messages fire at the same dynamic
instruction with the same text (the budget check falls back to
single-instruction stubs near the limit).

The fast path only engages when no telemetry, auditor or profiler is
attached — those hooks observe per-instruction state mid-pipeline, so
observed runs keep the plain :class:`~repro.cpu.timing.TimingModel` loop
(driven by the block-JIT functional interpreter instead); profiled CPI
stacks therefore stay conserved by construction.  Prefetch engines are
fully supported: their ``on_load_issue`` / ``on_load_commit`` /
``on_sw_prefetch`` hooks and dataflow-provenance tracking are compiled
into the blocks, specialized away when the engine does not need them.

The inlined L1-hit load/store path is what makes every
``MachineConfig.mshr_model`` safe here without model-specific codegen:
the hierarchy's contract (see :mod:`repro.mem.hierarchy`) keeps all
MSHR/coalescing/write-back bookkeeping off the L1-hit path — confined to
the merge, miss, and prefetch paths, which both engines reach through
the same ``data_access``/``prefetch_request`` calls — so the compiled
engine stays bit-identical to the table loop under ``blocking``,
``coalescing`` and ``full`` alike.

Generated code objects are cached per program under a machine/engine
signature via :func:`~repro.isa.interpreter.decode_memo`; per run, only
an ``exec`` rebinding state into each block's defaults is paid.
"""

from __future__ import annotations

import math
from collections import deque

from ..errors import ExecutionError
from ..isa.blockjit import _CONTROL_HIDS, block_span, jit_max_block, jit_threshold
from ..isa.interpreter import _DEFAULT_MAX_STEPS, decode_memo, decode_program
from ..isa.opcodes import FuClass
from ..isa.registers import NUM_REGS, SP
from ..mem.allocator import SizeClassAllocator
from ..mem.memory_image import MemoryImage
from ..prefetch.base import PrefetchEngine
from ..prefetch.engines import DBPEngine, HardwareJPPEngine
from .stats import SimResult
from .timing import (
    _DISPATCH_EXTRA,
    _ISSUED_AT_PRUNE_INTERVAL,
    _ISSUED_AT_PRUNE_THRESHOLD,
    TimingModel,
)

__all__ = ["run_compiled"]

# State-array slots (block-local scalars spilled between block calls).
(_S_FCYC, _S_FCNT, _S_RF, _S_LINE, _S_LRDY, _S_SAF, _S_LC, _S_CC, _S_CK,
 _S_NC, _S_NL, _S_NS, _S_NLDS) = range(13)

_WRITEBACK = (
    "    S[0] = fcyc; S[1] = fc; S[2] = rf0; S[3] = cl; S[4] = lr; "
    "S[5] = sa; S[6] = lc; S[7] = cc; S[8] = ck; S[9] = n9; S[10] = n10; "
    "S[11] = n11; S[12] = n12"
)

_PROLOGUE = (
    "    fcyc = S[0]; fc = S[1]; rf0 = S[2]; cl = S[3]; lr = S[4]; "
    "sa = S[5]; lc = S[6]; cc = S[7]; ck = S[8]; n9 = S[9]; n10 = S[10]; "
    "n11 = S[11]; n12 = S[12]"
)

_PARAMS = (
    "S=S, R=R, M=M, MG=MG, AL=AL, _I=_I, XE=XE, SQ=SQ, RR=RR, rob=rob, "
    "lsq=lsq, RA=RA, LA=LA, RP=RP, LP=LP, IA=IA, IG=IG, PS=PS, PG=PG, "
    "DA=DA, IF=IF, TS=TS, BP=BP, BS=BS, BT=BT, GT=GT, MT=MT, BTB=BTB, "
    "RAS=RAS, BI=BI, RPC=RPC, LI=LI, LC_=LC_, "
    "SP_=SP_, SPC=SPC, SVL=SVL, _len=_len, F0=F0, F1=F1, F2=F2, F3=F3, "
    "F4=F4, F5=F5, F6=F6, HS=HS, DT=DT, DTS=DTS, DTE=DTE, D1=D1, "
    "D1ST=D1ST, D1S=D1S, D1D=D1D, PFL=PFL, IFG=IFG, IT=IT, ITS=ITS, "
    "ITE=ITE, I1=I1, I1ST=I1ST, I1S=I1S, abs=abs, int=int, float=float, "
    "isinstance=isinstance"
)

# Handler-id groups reused from the functional JIT's emission tables.
from ..isa.blockjit import (  # noqa: E402  (kept near use for readability)
    _ALU_EXPR, _COND_OP,
)
from ..isa.interpreter import (  # noqa: E402
    _H_ALLOC, _H_DIV, _H_FDIV, _H_FSQRT, _H_HALT, _H_J, _H_JAL, _H_JR,
    _H_LW, _H_NOP, _H_PF, _H_REM, _H_SW,
)


def _fmt(value) -> str:
    return repr(value)


def _emit_functional(L, pc: int, dec) -> None:
    """Functional handler body for one instruction (no commit record;
    leaves ``a``/``v``/``tk`` for the timing stages that need them)."""
    hid, rd, r1, r2, imm, target, clears, _inst = dec
    expr = _ALU_EXPR.get(hid)
    if expr is not None:
        L.append(f"    R[{rd}] = " + expr.format(r1=r1, r2=r2, imm=_fmt(imm)))
    elif hid == _H_LW:
        L.append(f"    a = R[{r1}] + {_fmt(imm)}")
        L.append("    if a % 4 or a < 0:")
        L.append(f"        raise XE(f\"pc {pc}: misaligned/negative load "
                 "address {a:#x}\")")
        L.append("    v = MG(a, 0)")
        L.append(f"    R[{rd}] = v")
    elif hid == _H_SW:
        L.append(f"    a = R[{r1}] + {_fmt(imm)}")
        L.append("    if a % 4 or a < 0:")
        L.append(f"        raise XE(f\"pc {pc}: misaligned/negative store "
                 "address {a:#x}\")")
        L.append(f"    v = R[{r2}]")
        L.append("    M[a] = v")
    elif hid == _H_PF:
        L.append(f"    a = R[{r1}] + {_fmt(imm)}")
    elif hid == _H_ALLOC:
        L.append(f"    v = R[{r1}] + {_fmt(imm)}")
        L.append("    a = AL(int(v))")
        L.append(f"    R[{rd}] = a")
    elif hid == _H_DIV:
        L.append(f"    b = R[{r2}]")
        L.append("    if b == 0:")
        L.append(f"        raise XE(\"pc {pc}: integer division by zero\")")
        L.append(f"    R[{rd}] = int(R[{r1}] / b)")
    elif hid == _H_REM:
        L.append(f"    b = R[{r2}]")
        L.append("    if b == 0:")
        L.append(f"        raise XE(\"pc {pc}: integer remainder by zero\")")
        L.append(f"    a = R[{r1}]")
        L.append(f"    R[{rd}] = a - int(a / b) * b")
    elif hid == _H_FDIV:
        L.append(f"    b = R[{r2}]")
        L.append("    if b == 0:")
        L.append(f"        raise XE(\"pc {pc}: FP division by zero\")")
        L.append(f"    R[{rd}] = R[{r1}] / b")
    elif hid == _H_FSQRT:
        L.append(f"    v = R[{r1}]")
        L.append("    if v < 0:")
        L.append(f"        raise XE(\"pc {pc}: FSQRT of negative value\")")
        L.append(f"    R[{rd}] = SQ(v)")
    elif hid in _COND_OP:
        L.append(f"    tk = R[{r1}] {_COND_OP[hid]} R[{r2}]")
    elif hid == _H_JAL:
        L.append(f"    R[{rd}] = {pc + 1}")
    elif hid == _H_JR:
        L.append(f"    v = R[{r1}]")
        L.append("    if not isinstance(v, int):")
        L.append(f"        raise XE(\"pc {pc}: JR to non-integer target\")")
    elif hid in (_H_J, _H_NOP, _H_HALT):
        pass
    else:  # pragma: no cover - exhaustive over handler ids
        raise ExecutionError(f"fused jit: unhandled handler id {hid}")
    # Architectural zero-register reset (HALT returns before this point
    # in the interpreter, and its handler writes nothing anyway).
    if clears and hid != _H_HALT:
        L.append("    R[0] = 0")


def _emit_iline(L, line: int, spec, indent: str) -> None:
    """Inline ITLB-hit + IL1-hit fast path for fetching ``line`` (a line
    address, so the page and set index are codegen-time literals); falls
    back to :meth:`MemoryHierarchy.inst_fetch` on either miss.  The fast
    path performs exactly the bookkeeping the hit path of
    ``TLB.translate`` + ``Cache.access`` would (stats, LRU sequence), and
    ``time + il1.latency - il1.latency`` collapses to ``lr = t``."""
    ipg = line >> spec["ipgs"]
    isi = (line >> spec["i1ls"]) & spec["i1sm"]
    L.append(f"{indent}s2 = I1S[{isi}]")
    L.append(f"{indent}if {ipg} in ITE and {line} in s2:")
    L.append(f"{indent}    IT._seq += 1; ITS.accesses += 1; "
             f"ITE[{ipg}] = IT._seq")
    L.append(f"{indent}    I1._seq += 1; I1ST.accesses += 1; "
             f"I1ST.hits += 1; s2[{line}] = I1._seq")
    L.append(f"{indent}    lr = t")
    L.append(f"{indent}else:")
    L.append(f"{indent}    lr = IF({line}, t) - {spec['il1']}")


def _emit_fetch(L, j: int, line: int, prev_line: int, spec) -> None:
    fw = spec["fw"]
    if j > 0 and line == prev_line:
        # Same line, mid-block: the redirect/line-ready waits are
        # statically dead (see module docstring), leaving pure
        # fetch-width accounting.
        L.append("    fc += 1")
        L.append(f"    if fc > {fw}:")
        L.append("        fcyc += 1; fc = 1")
        L.append("    t = fcyc")
        return
    L.append("    t = fcyc")
    if j == 0:
        L.append("    if rf0 > t: t = rf0")
        L.append(f"    if {line} != cl:")
        L.append(f"        cl = {line}")
        _emit_iline(L, line, spec, "        ")
    else:
        # Consecutive pcs crossed an I-line boundary: statically a new
        # line (cl == previous line != this one).
        L.append(f"    cl = {line}")
        _emit_iline(L, line, spec, "    ")
    L.append("    if lr > t: t = lr")
    L.append("    if t > fcyc:")
    L.append("        fcyc = t; fc = 1")
    L.append("    else:")
    L.append("        fc += 1")
    L.append(f"        if fc > {fw}:")
    L.append("            fcyc += 1; fc = 1")
    L.append("            t = fcyc")
    L.append("            if lr > t: t = lr")


def _emit_inst(L, pc: int, j: int, dec, m, spec, prev_line: int) -> None:
    """One instruction's fused functional + timing stages."""
    (line, is_mem, needs_rs2, frees, fu_occ, cdelta, excat,
     rs1, rs2, rd, ctl, target, is_lds, _idx, wrkind) = m
    hid = dec[0]

    _emit_functional(L, pc, dec)
    _emit_fetch(L, j, line, prev_line, spec)

    # ---------------- dispatch ----------------
    L.append(f"    dp = t + {spec['front']}")
    L.append(f"    if _len(rob) >= {spec['window']}:")
    L.append("        h = RP()")
    L.append("        if h > dp: dp = h")
    if is_mem:
        L.append(f"    if _len(lsq) >= {spec['lsqn']}:")
        L.append("        h = LP()")
        L.append("        if h > dp: dp = h")

    # ---------------- operand readiness ----------------
    L.append(f"    rdy = dp + {_DISPATCH_EXTRA}")
    L.append(f"    r = RR[{rs1}]")
    L.append("    if r > rdy: rdy = r")
    if needs_rs2:
        L.append(f"    r = RR[{rs2}]")
        L.append("    if r > rdy: rdy = r")

    # ---------------- issue (width + FU, argmin-first) ----------------
    if frees is not None:
        fn_name, count = spec["fu"][id(frees)]
        if count == 1:
            L.append(f"    bt = {fn_name}[0]")
            sel = f"{fn_name}[0]"
        else:
            L.append(f"    _f = {fn_name}")
            L.append("    b = 0")
            L.append("    bt = _f[0]")
            for k in range(1, count):
                L.append(f"    u = _f[{k}]")
                L.append(f"    if u < bt: bt = u; b = {k}")
            sel = "_f[b]"
        L.append("    if bt > rdy: rdy = bt")
        L.append("    c = IG(rdy, 0)")
        L.append(f"    while c >= {spec['iw']}:")
        L.append("        rdy += 1")
        L.append("        c = IG(rdy, 0)")
        L.append("    IA[rdy] = c + 1")
        L.append(f"    {sel} = rdy + {fu_occ}")

    # ---------------- execute ----------------
    EX_LW, EX_SW, EX_PF, EX_ALLOC, EX_HALT = (
        TimingModel._EX_LW, TimingModel._EX_SW, TimingModel._EX_PF,
        TimingModel._EX_ALLOC, TimingModel._EX_HALT,
    )
    if excat == EX_LW:
        L.append("    n10 += 1")
        if is_lds:
            L.append("    n12 += 1")
        L.append("    st = rdy")
        L.append("    if sa > st: st = sa")
        if spec["hook"]:
            if spec["hookgate"]:
                # Non-adaptive hardware JPP: the hook no-ops unless the
                # load is recurrent (and has somewhere to keep a
                # jump-pointer), so the membership test replaces the call.
                if spec["pads"][pc] > 0 or spec["onchip"]:
                    L.append(f"    if {pc} in RPC: LI(_I[{pc}], a, st)")
            else:
                L.append(f"    LI(_I[{pc}], a, st)")
        L.append("    fw = PG(a)")
        L.append("    if fw is not None and fw[1] > st:")
        L.append("        t0 = fw[0]")
        L.append("        cm = (t0 if t0 > st else st) + 1")
        if spec["perfect"]:
            L.append("    else:")
            L.append("        HS.loads += 1")
            L.append("        cm = st + 1")
        else:
            # Inline the all-hit demand-load path (DTLB hit, no in-flight
            # merge, L1 hit, line not prefetched): exactly the counters and
            # LRU updates data_access() would make, without the calls.
            L.append("    else:")
            L.append(f"        pg = a >> {spec['pgs']}")
            L.append(f"        ln = a & {spec['dlm']}")
            L.append("        fw2 = IFG(ln)")
            L.append(f"        s3 = D1S[(ln >> {spec['d1ls']}) & "
                     f"{spec['d1sm']}]")
            pfl = "" if spec["noeng"] else " and ln not in PFL"
            L.append("        if (pg in DTE and ln in s3 and "
                     f"(fw2 is None or fw2 <= st){pfl}):")
            L.append("            HS.loads += 1")
            L.append("            DT._seq += 1; DTS.accesses += 1; "
                     "DTE[pg] = DT._seq")
            L.append("            D1._seq += 1; D1ST.accesses += 1; "
                     "D1ST.hits += 1; s3[ln] = D1._seq")
            L.append(f"            cm = st + {spec['dl1lat']}")
            L.append("        else:")
            L.append(f"            cm = DA(a, st, False, {bool(is_lds)})")
    elif excat == EX_SW:
        L.append("    n11 += 1")
        L.append("    if rdy > sa: sa = rdy")
        L.append(f"    dr = RR[{rs2}]")
        L.append("    cm = (dr if dr > rdy else rdy) + 1")
    elif excat == EX_PF:
        if not spec["noeng"]:  # the base engine's hook is a no-op
            L.append(f"    SP_(_I[{pc}], a, rdy)")
        L.append("    cm = rdy + 1")
    elif excat == EX_ALLOC:
        L.append(f"    cm = rdy + {spec['alloc']}")
    elif excat == EX_HALT:
        L.append("    cm = dp")
    else:
        L.append(f"    cm = rdy + {cdelta}")

    # ---------------- control resolution ----------------
    # The branch predictor is inlined: per-pc table indices are literals,
    # and the BTB lookup-then-insert pair on a hit collapses to one final
    # write with the sequence counter advanced by both touches.  Eviction
    # (and first-touch insertion) falls back to ``_btb_insert``.
    CTL_J, CTL_JAL, CTL_JR, CTL_COND = (
        TimingModel._CTL_J, TimingModel._CTL_JAL, TimingModel._CTL_JR,
        TimingModel._CTL_COND,
    )

    def emit_btb(var: str, ind: str = "    ") -> None:
        si = pc % spec["btb_sets"]
        tgt = _fmt(target)
        L.append(f"{ind}s4 = BTB.get({si})")
        L.append(f"{ind}e4 = None if s4 is None else s4.get({pc})")
        L.append(f"{ind}if e4 is not None:")
        L.append(f"{ind}    {var} = e4[0] == {tgt}")
        L.append(f"{ind}    BP._btb_seq += 2")
        L.append(f"{ind}    s4[{pc}] = ({tgt}, BP._btb_seq)")
        L.append(f"{ind}else:")
        L.append(f"{ind}    {var} = False")
        L.append(f"{ind}    BI({pc}, {tgt})")

    if ctl == CTL_COND:
        bi, mi = pc & spec["bm"], pc & spec["mm"]
        L.append("    BS.cond_branches += 1")
        L.append("    hist = BP._history")
        L.append(f"    gidx = ({pc} ^ (hist << 2)) & {spec['gm']}")
        L.append(f"    bc = BT[{bi}]")
        L.append("    gc = GT[gidx]")
        L.append("    pg_ = gc >= 2")
        L.append("    pb_ = bc >= 2")
        L.append(f"    dok = (pg_ if MT[{mi}] >= 2 else pb_) == tk")
        L.append("    if pg_ != pb_:")
        L.append(f"        c0 = MT[{mi}]")
        L.append("        if pg_ == tk:")
        L.append(f"            if c0 < 3: MT[{mi}] = c0 + 1")
        L.append("        elif c0 > 0:")
        L.append(f"            MT[{mi}] = c0 - 1")
        L.append("    if tk:")
        L.append(f"        if bc < 3: BT[{bi}] = bc + 1")
        L.append("        if gc < 3: GT[gidx] = gc + 1")
        L.append(f"        BP._history = ((hist << 1) | 1) & {spec['hm']}")
        L.append("    else:")
        L.append(f"        if bc > 0: BT[{bi}] = bc - 1")
        L.append("        if gc > 0: GT[gidx] = gc - 1")
        L.append(f"        BP._history = (hist << 1) & {spec['hm']}")
        L.append("    if not dok:")
        L.append("        BS.cond_mispredicts += 1")
        L.append("    if tk:")
        emit_btb("tok", ind="        ")
        L.append("        if not tok:")
        L.append("            BS.btb_misses += 1")
        L.append("    if not dok:")
        L.append(f"        x = cm + {spec['mp']}")
        L.append("        if x > rf0: rf0 = x")
        L.append("    elif tk and not tok:")
        L.append(f"        x = t + {spec['front']}")
        L.append("        if x > rf0: rf0 = x")
    elif ctl == CTL_J or ctl == CTL_JAL:
        emit_btb("kn")
        if ctl == CTL_JAL:
            L.append(f"    if _len(RAS) >= {spec['rasn']}: del RAS[0]")
            L.append(f"    RAS.append({pc + 1})")
        L.append("    if not kn:")
        L.append("        BS.btb_misses += 1")
        L.append(f"        x = t + {spec['front']}")
        L.append("        if x > rf0: rf0 = x")
    elif ctl == CTL_JR:
        L.append("    BS.returns += 1")
        L.append("    if RAS:")
        L.append("        dok = RAS.pop() == v")
        L.append("    else:")
        L.append("        dok = False")
        L.append("    if not dok:")
        L.append("        BS.return_mispredicts += 1")
        L.append(f"        x = cm + {spec['mp']}")
        L.append("        if x > rf0: rf0 = x")

    # ---------------- commit (in order, width-limited) ----------------
    L.append("    ct = cm if cm > lc else lc")
    L.append("    if ct > cc:")
    L.append("        cc = ct; ck = 1")
    L.append("    else:")
    L.append("        ck += 1")
    L.append(f"        if ck > {spec['cw']}:")
    L.append("            cc += 1; ck = 1")
    L.append("        ct = cc")
    L.append("    lc = ct")
    L.append("    RA(ct)")
    if is_mem:
        L.append("    LA(ct)")

    # ---------------- post-commit effects ----------------
    WR_NONE, WR_ADDI, WR_ADD = (
        TimingModel._WR_NONE, TimingModel._WR_ADDI, TimingModel._WR_ADD,
    )
    if excat == EX_SW:
        L.append("    TS(a, v)")
        L.append("    PS[a] = (cm, ct)")
        L.append("    if _len(PS) > 8192:")
        L.append("        _p = [(k2, w2) for k2, w2 in PS.items() "
                 "if w2[1] > ct]")
        L.append("        PS.clear()")
        L.append("        PS.update(_p)")
        if spec["perfect"]:
            L.append("    HS.stores += 1")
        else:
            # Same inline all-hit path for the commit-time store access
            # (write=True additionally dirties the line; the return value
            # is unused).
            L.append(f"    pg = a >> {spec['pgs']}")
            L.append(f"    ln = a & {spec['dlm']}")
            L.append("    fw2 = IFG(ln)")
            L.append(f"    s3 = D1S[(ln >> {spec['d1ls']}) & {spec['d1sm']}]")
            pfl = "" if spec["noeng"] else " and ln not in PFL"
            L.append("    if (pg in DTE and ln in s3 and "
                     f"(fw2 is None or fw2 <= ct){pfl}):")
            L.append("        HS.stores += 1")
            L.append("        DT._seq += 1; DTS.accesses += 1; "
                     "DTE[pg] = DT._seq")
            L.append("        D1._seq += 1; D1ST.accesses += 1; "
                     "D1ST.hits += 1; s3[ln] = D1._seq")
            L.append("        D1D.add(ln)")
            L.append("    else:")
            L.append("        DA(a, ct, True)")
    elif excat == EX_LW:
        if spec["track"]:
            cgate = spec["cgate"]
            if cgate:
                # DBP-family commit hook: a complete no-op unless there is
                # a producer to learn from, a pointer value to chase, or
                # (hardware JPP) a recurrent load with jump-pointer room.
                cond = (f"(ppc is not None and isinstance(SVL[{rs1}], int))"
                        " or (isinstance(v, int) and v)")
                if cgate == 2 and (spec["pads"][pc] > 0 or spec["onchip"]):
                    cond += f" or {pc} in RPC"
                L.append(f"    ppc = SPC[{rs1}]")
                L.append(f"    if {cond}:")
                L.append(f"        LC_(_I[{pc}], a, v, cm, ppc, SVL[{rs1}])")
            else:
                L.append(f"    LC_(_I[{pc}], a, v, cm, SPC[{rs1}], SVL[{rs1}])")
            L.append(f"    SPC[{rd}] = {pc}")
            L.append(f"    SVL[{rd}] = v")
        L.append(f"    RR[{rd}] = cm")
    elif wrkind != WR_NONE:
        L.append(f"    RR[{rd}] = cm")
        if spec["track"]:
            if wrkind == WR_ADDI:
                L.append(f"    SPC[{rd}] = SPC[{rs1}]")
                L.append(f"    SVL[{rd}] = SVL[{rs1}]")
            elif wrkind == WR_ADD:
                L.append(f"    if SPC[{rs1}] is not None:")
                L.append(f"        SPC[{rd}] = SPC[{rs1}]")
                L.append(f"        SVL[{rd}] = SVL[{rs1}]")
                L.append("    else:")
                L.append(f"        SPC[{rd}] = SPC[{rs2}]")
                L.append(f"        SVL[{rd}] = SVL[{rs2}]")
            else:
                L.append(f"    SPC[{rd}] = None")
                L.append(f"    SVL[{rd}] = None")

    # ---------------- bookkeeping + issued_at prune ----------------
    L.append("    n9 += 1")
    L.append(f"    if not n9 % {_ISSUED_AT_PRUNE_INTERVAL} and "
             f"_len(IA) > {_ISSUED_AT_PRUNE_THRESHOLD}:")
    L.append(f"        fl = dp - {spec['w4']}")
    L.append("        _p = [(c2, k2) for c2, k2 in IA.items() if c2 >= fl]")
    L.append("        IA.clear()")
    L.append("        IA.update(_p)")


def gen_fused_source(code, meta, pc0: int, cap: int, spec) -> tuple[str, int]:
    """Fused functional+timing source for the block led by ``pc0``."""
    end = block_span(code, pc0, cap)
    L = [f"def _blk({_PARAMS}):", _PROLOGUE]
    prev_line = -1
    for j, pc in enumerate(range(pc0, end)):
        _emit_inst(L, pc, j, code[pc], meta[pc], spec, prev_line)
        prev_line = meta[pc][0]
    last = code[end - 1][0]
    if last in _COND_OP:
        tgt = code[end - 1][5]
        L.append(f"    nx = {_fmt(tgt)} if tk else {end}")
    elif last == _H_JR:
        L.append("    nx = v")
    elif last == _H_HALT:
        L.append("    nx = None")
    elif last in (_H_J, _H_JAL):
        L.append(f"    nx = {_fmt(code[end - 1][5])}")
    else:
        L.append(f"    nx = {end}")  # cap hit: fall through
    L.append(_WRITEBACK)
    L.append("    return nx")
    return "\n".join(L) + "\n", end - pc0


def run_compiled(model: TimingModel) -> SimResult:
    """Run ``model``'s program to completion on the fused fast path.

    Only legal when no telemetry/auditor/profiler is attached (enforced
    here; :meth:`TimingModel.run` routes observed runs to the plain
    loop).  Returns the same :class:`SimResult` the plain loop would.
    """
    assert model.telemetry is None and model.auditor is None \
        and model.profiler is None, "fused path cannot host observers"
    program = model.program
    cfg = model.cfg
    engine = model.engine
    hierarchy = model.hierarchy
    bpred = model.bpred
    fu_cfg = cfg.func_units

    # Functional state (the interpreter half of the fusion).
    registers: list[int | float] = [0] * NUM_REGS
    registers[SP] = program.stack_top
    memory = MemoryImage(program.initial_memory)
    allocator = SizeClassAllocator(program.heap_base)

    # Timing state — one-to-one with TimingModel.run()'s locals.
    reg_ready = [0] * NUM_REGS
    track_dataflow = engine.needs_dataflow
    src_pc: list[int | None] = [None] * NUM_REGS
    src_val: list[int | float | None] = [None] * NUM_REGS
    issue_hook = engine.needs_issue_hook
    rob: deque[int] = deque()
    lsq: deque[int] = deque()
    iline_mask = ~(cfg.il1.line - 1)
    issued_at: dict[int, int] = {}
    fu_free: dict[int, list[int]] = {
        FuClass.INT_ALU: [0] * fu_cfg.int_alu,
        FuClass.INT_MUL: [0] * fu_cfg.int_mul,
        FuClass.INT_DIV: [0] * fu_cfg.int_div,
        FuClass.FP_ADD: [0] * fu_cfg.fp_add,
        FuClass.FP_MUL: [0] * fu_cfg.fp_mul,
        FuClass.FP_DIV: [0] * fu_cfg.fp_div,
        FuClass.MEM_PORT: [0] * fu_cfg.mem_ports,
    }
    fu_latency = {
        FuClass.INT_ALU: fu_cfg.int_alu_latency,
        FuClass.INT_MUL: fu_cfg.int_mul_latency,
        FuClass.INT_DIV: fu_cfg.int_div_latency,
        FuClass.FP_ADD: fu_cfg.fp_add_latency,
        FuClass.FP_MUL: fu_cfg.fp_mul_latency,
        FuClass.FP_DIV: fu_cfg.fp_div_latency,
        FuClass.MEM_PORT: fu_cfg.mem_port_latency,
    }
    meta = model._instruction_meta(fu_free, fu_latency, iline_mask)
    pending_stores: dict[int, tuple[int, int]] = {}

    code = decode_program(program)
    n = len(code)
    S = [0] * 13
    S[_S_LINE] = -1  # cur_line sentinel

    fu_names = {id(lst): (f"F{int(fu)}", len(lst)) for fu, lst in fu_free.items()}
    spec = {
        "fw": cfg.fetch_width,
        "front": cfg.front_pipeline_depth,
        "il1": cfg.il1.latency,
        "window": cfg.window,
        "lsqn": cfg.lsq_entries,
        "iw": cfg.issue_width,
        "cw": cfg.commit_width,
        "mp": cfg.branch_pred.misprediction_penalty,
        "alloc": cfg.alloc_latency,
        "w4": 4 * cfg.window,
        "track": track_dataflow,
        "hook": issue_hook,
        "fu": fu_names,
        # Memory-hierarchy fast-path geometry (all codegen-time literals).
        "perfect": cfg.perfect_data_memory,
        "pgs": cfg.dtlb.page_size.bit_length() - 1,
        "dlm": ~(cfg.dl1.line - 1),
        "d1ls": cfg.dl1.line.bit_length() - 1,
        "d1sm": cfg.dl1.sets - 1,
        "dl1lat": cfg.dl1.latency,
        "ipgs": cfg.itlb.page_size.bit_length() - 1,
        "i1ls": cfg.il1.line.bit_length() - 1,
        "i1sm": cfg.il1.sets - 1,
        # Branch-predictor geometry (table masks are codegen literals).
        "bm": cfg.branch_pred.bimodal_entries - 1,
        "gm": cfg.branch_pred.gshare_entries - 1,
        "mm": cfg.branch_pred.meta_entries - 1,
        "hm": (1 << cfg.branch_pred.history_bits) - 1,
        "btb_sets": cfg.branch_pred.btb_entries // cfg.branch_pred.btb_assoc,
        "rasn": cfg.branch_pred.ras_entries,
        # True when the prefetch engine is the no-op base class: no line is
        # ever prefetched, so the ``_pf_lines`` check can be elided.
        "noeng": type(engine) is PrefetchEngine,
        # Engine-hook gating (see _emit_inst): exact classes only, so any
        # subclassed engine falls back to unconditional hook calls.
        "hookgate": (type(engine) is HardwareJPPEngine
                     and not engine.pcfg.adaptive_interval),
        "cgate": (2 if type(engine) is HardwareJPPEngine
                  else 1 if type(engine) is DBPEngine else 0),
        "onchip": (engine.storage.onchip
                   if isinstance(engine, HardwareJPPEngine) else False),
        "pads": tuple(inst.pad for inst in program.instructions),
    }
    fu_counts = tuple(len(lst) for lst in fu_free.values())
    fu_lats = tuple(fu_latency.values())
    sig_tail = (
        cfg.fetch_width, cfg.front_pipeline_depth, cfg.il1.line,
        cfg.il1.latency, cfg.il1.sets, cfg.window, cfg.lsq_entries,
        cfg.issue_width, cfg.commit_width,
        cfg.branch_pred.misprediction_penalty, cfg.alloc_latency,
        fu_counts, fu_lats, track_dataflow, issue_hook,
        cfg.perfect_data_memory, cfg.dtlb.page_size, cfg.dl1.line,
        cfg.dl1.sets, cfg.dl1.latency, cfg.itlb.page_size,
        cfg.branch_pred.bimodal_entries, cfg.branch_pred.gshare_entries,
        cfg.branch_pred.meta_entries, cfg.branch_pred.history_bits,
        cfg.branch_pred.btb_entries, cfg.branch_pred.btb_assoc,
        cfg.branch_pred.ras_entries, spec["noeng"],
        spec["hookgate"], spec["cgate"], spec["onchip"],
    )
    max_block = jit_max_block()
    cache = decode_memo(program, ("fused", max_block) + sig_tail)
    stub_cache = decode_memo(program, ("fused", 1) + sig_tail)

    env = {
        "S": S, "R": registers, "M": memory._words,
        "MG": memory._words.get, "AL": allocator.alloc,
        "_I": program.instructions, "XE": ExecutionError, "SQ": math.sqrt,
        "RR": reg_ready, "rob": rob, "lsq": lsq,
        "RA": rob.append, "LA": lsq.append,
        "RP": rob.popleft, "LP": lsq.popleft,
        "IA": issued_at, "IG": issued_at.get,
        "PS": pending_stores, "PG": pending_stores.get,
        "DA": hierarchy.data_access, "IF": hierarchy.inst_fetch,
        "TS": model.timing_mem.store,
        # Branch-predictor internals for the inline prediction fast path.
        "BP": bpred, "BS": bpred.stats,
        "BT": bpred._bimodal._table, "GT": bpred._gshare._table,
        "MT": bpred._meta._table, "BTB": bpred._btb, "RAS": bpred._ras,
        "BI": bpred._btb_insert,
        "LI": engine.on_load_issue, "LC_": engine.on_load_commit,
        "SP_": engine.on_sw_prefetch,
        "RPC": getattr(engine, "recurrent_pcs", None),
        "SPC": src_pc, "SVL": src_val, "_len": len,
        # Hierarchy internals for the inline hit fast paths.
        "HS": hierarchy.stats,
        "DT": hierarchy.dtlb, "DTS": hierarchy.dtlb.stats,
        "DTE": hierarchy.dtlb._entries,
        "D1": hierarchy.dl1, "D1ST": hierarchy.dl1.stats,
        "D1S": hierarchy.dl1._sets, "D1D": hierarchy.dl1._dirty,
        "PFL": hierarchy._pf_lines, "IFG": hierarchy._inflight.get,
        "IT": hierarchy.itlb, "ITS": hierarchy.itlb.stats,
        "ITE": hierarchy.itlb._entries,
        "I1": hierarchy.il1, "I1ST": hierarchy.il1.stats,
        "I1S": hierarchy.il1._sets,
    }
    for fu, lst in fu_free.items():
        env[f"F{int(fu)}"] = lst

    def bind(pc: int, store: dict, cap: int):
        entry = store.get(pc)
        if entry is None:
            src, bl = gen_fused_source(code, meta, pc, cap, spec)
            cobj = compile(src, f"<fusedjit:{program.name}:{pc}>", "exec")
            entry = store[pc] = (cobj, bl)
        cobj, bl = entry
        exec(cobj, env)
        return (env.pop("_blk"), bl)

    blocks: list = [None] * n
    stubs: list = [None] * n
    counts = [0] * n
    threshold = jit_threshold()
    max_steps = (
        _DEFAULT_MAX_STEPS if model._max_steps is None else model._max_steps
    )
    pc = program.entry
    steps = 0

    while True:
        if not 0 <= pc < n:
            raise ExecutionError(f"pc {pc} outside text segment (0..{n - 1})")
        blk = blocks[pc]
        if blk is None:
            c = counts[pc] + 1
            counts[pc] = c
            if c >= threshold:
                blk = blocks[pc] = bind(pc, cache, max_block)
            else:
                blk = stubs[pc]
                if blk is None:
                    blk = stubs[pc] = bind(pc, stub_cache, 1)
        fn, bl = blk
        if steps + bl > max_steps:
            if steps >= max_steps:
                raise ExecutionError(
                    f"instruction budget exceeded ({max_steps}); likely an "
                    f"infinite loop at pc {pc}"
                )
            blk = stubs[pc]
            if blk is None:
                blk = stubs[pc] = bind(pc, stub_cache, 1)
            fn, bl = blk
        nxt = fn()
        steps += bl
        if nxt is None:
            break
        pc = nxt

    h = hierarchy
    return SimResult(
        cycles=S[_S_LC],
        instructions=S[_S_NC],
        loads=S[_S_NL],
        stores=S[_S_NS],
        lds_loads=S[_S_NLDS],
        branch=bpred.stats,
        hierarchy=h.stats,
        engine=engine.stats,
        l1d_accesses=h.dl1.stats.accesses,
        l1d_misses=h.dl1.stats.misses,
        l2_accesses=h.l2.stats.accesses,
        l2_misses=h.l2.stats.misses,
        dtlb_misses=h.dtlb.stats.misses,
        engine_name=engine.name,
        telemetry=None,
        profile=None,
    )
