"""Generic named registries.

Machines, prefetch engines, schemes, and workloads are all dispatched by
name; each axis of the experiment matrix owns one :class:`Registry`
instance instead of a hand-maintained dict or if/elif chain.  The class
deliberately mirrors the original workload registry's contract (register
once, helpful unknown-name errors, optional lazy population) so every
axis behaves identically:

* duplicate registration is an error — two subsystems cannot silently
  fight over a name;
* unknown-name lookups raise the registry's error type listing what *is*
  available;
* a ``loader`` callable can defer imports until the first lookup (the
  workload registry imports its benchmark modules this way);
* iteration order is registration order (the paper's scheme order is
  meaningful); :meth:`names` can sort on request.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, TypeVar

from .errors import ReproError

T = TypeVar("T")


class Registry(Generic[T]):
    """A name -> item mapping with registration-time duplicate checks."""

    def __init__(
        self,
        kind: str,
        error: type[Exception] = ReproError,
        loader: Callable[[], None] | None = None,
    ) -> None:
        self.kind = kind
        self.error = error
        self._loader = loader
        self._loaded = loader is None
        self._items: dict[str, T] = {}

    # -- population ----------------------------------------------------

    def register(self, name: str, item: T) -> T:
        """Add ``item`` under ``name``; returns ``item`` for chaining."""
        if not name:
            raise self.error(f"cannot register a {self.kind} without a name")
        if name in self._items:
            raise self.error(f"duplicate {self.kind} name {name!r}")
        self._items[name] = item
        return item

    def unregister(self, name: str) -> None:
        """Remove ``name`` if present (test teardown; no-op when absent)."""
        self._items.pop(name, None)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Mark first: the loader's imports may consult the registry.
            self._loaded = True
            loader = self._loader
            assert loader is not None
            loader()

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> T:
        self._ensure_loaded()
        try:
            return self._items[name]
        except KeyError:
            raise self.error(
                f"unknown {self.kind} {name!r}; "
                f"available: {sorted(self._items)}"
            ) from None

    def names(self, sort: bool = False) -> list[str]:
        self._ensure_loaded()
        return sorted(self._items) if sort else list(self._items)

    def items(self) -> list[tuple[str, T]]:
        self._ensure_loaded()
        return list(self._items.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        self._ensure_loaded()
        return iter(self._items)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._items)

    def as_dict(self) -> dict[str, T]:
        """A snapshot copy (for introspection; mutations are ignored)."""
        self._ensure_loaded()
        return dict(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind}: {self.names()})"


def describe_registries() -> dict[str, list[str]]:
    """Names in every experiment-axis registry (CLI ``list`` backend)."""
    from .config import MACHINES, MSHR_MODELS
    from .harness.schemes import SCHEME_REGISTRY
    from .isa.engines import SIM_ENGINES
    from .prefetch.engines import ENGINES
    from .workloads.registry import WORKLOADS

    return {
        "machines": MACHINES.names(),
        "schemes": SCHEME_REGISTRY.names(),
        "engines": ENGINES.names(),
        "sim_engines": SIM_ENGINES.names(),
        "mshr_models": list(MSHR_MODELS),
        "workloads": WORKLOADS.names(sort=True),
    }
