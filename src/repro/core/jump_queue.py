"""Software jump-pointer creation: the queue method (Section 2.1).

On creation or first traversal of a structure, a FIFO of the last *I* node
addresses is maintained.  As each node is visited, a jump-pointer is
installed from the node at the head of the queue (*home*, visited *I* hops
ago) to the current node (*target*), and the queue advances.

:class:`SoftwareJumpQueue` emits the corresponding mini-ISA code into a
workload's assembler: the queue lives in static data (a circular buffer
plus an index word), and each ``update`` call costs ~9 instructions — the
explicit creation overhead the paper measures (e.g. health's a-priori 12%
slowdown).
"""

from __future__ import annotations

from ..isa.assembler import Assembler
from ..isa.registers import ZERO


class SoftwareJumpQueue:
    """Emits queue-method jump-pointer creation code.

    Parameters
    ----------
    a:
        The assembler being built into.
    interval:
        The jump distance *I* in nodes.
    name:
        Unique name (several queues can coexist, e.g. full jumping keeps
        one per pointer kind).
    """

    def __init__(self, a: Assembler, interval: int, name: str = "jq") -> None:
        if interval < 1 or interval & (interval - 1):
            raise ValueError(
                f"jump interval must be a positive power of two, got {interval}"
            )
        self.a = a
        self.interval = interval
        self.name = name
        self.buf = a.space(interval)  # circular buffer of node addresses
        self.idx = a.word(0)          # current byte offset (0..4*interval-4)

    def reset(self, tmp: int) -> None:
        """Clear the queue (between independent traversals)."""
        a = self.a
        for i in range(self.interval):
            a.li(tmp, self.buf + 4 * i)
            a.sw(ZERO, tmp, 0)
        a.li(tmp, self.idx)
        a.sw(ZERO, tmp, 0)

    def update(
        self,
        node: int,
        jp_off: int,
        t_idx: int,
        t_addr: int,
        t_home: int,
        target: int | None = None,
        extra: list[tuple[int, int]] | None = None,
        reverse: bool = False,
    ) -> None:
        """Visit ``node``: install a jump-pointer at the home node and
        enqueue the current node.

        ``jp_off`` is the offset of the jump-pointer field in a node;
        ``target`` (default: ``node``) is the value stored.  ``extra`` is a
        list of additional ``(offset, value_register)`` stores into the home
        node — full jumping installs its rib jump-pointers this way.
        ``reverse=True`` stores the *home's address into the current node*
        instead: use it when the creation order is the reverse of the later
        traversal order (e.g. a list built by prepending).  ``t_*`` are
        scratch registers.
        """
        a = self.a
        skip = a.newlabel(f"{self.name}_noinstall")
        a.li(t_addr, self.idx)
        a.lw(t_idx, t_addr, 0)                   # i = idx (byte offset)
        a.addi(t_addr, t_idx, self.buf)          # &buf[i]
        a.lw(t_home, t_addr, 0)                  # home = buf[i]
        a.beqz(t_home, skip)                     # queue still filling
        if reverse:
            a.sw(t_home, node, jp_off)
        else:
            a.sw(target if target is not None else node, t_home, jp_off)
            for off, reg in extra or ():
                a.sw(reg, t_home, off)
        a.label(skip)
        a.sw(node, t_addr, 0)                    # buf[i] = node
        a.addi(t_idx, t_idx, 4)                  # i = (i + 4) & (4I - 4)
        a.andi(t_idx, t_idx, 4 * self.interval - 4)
        a.li(t_addr, self.idx)
        a.sw(t_idx, t_addr, 0)


def emit_software_prefetch(a: Assembler, node: int, jp_off: int, tmp: int) -> None:
    """Software jump-pointer prefetch: a load of the jump-pointer followed
    by a dependent non-binding prefetch (Luk & Mowry's convention)."""
    a.lw(tmp, node, jp_off)
    a.pf(tmp, 0)


def emit_cooperative_prefetch(a: Assembler, node: int, jp_off: int) -> None:
    """Cooperative jump-pointer prefetch: the load pair is reduced to one
    non-binding ``JPF``; hardware performs the dependent prefetch and any
    chained prefetches (Section 3.2)."""
    a.jpf(node, jp_off)
