"""The four jump-pointer prefetching idioms (Section 2.2).

An idiom is a way of combining the two building blocks — jump-pointer
prefetches and chained prefetches — into a prefetching solution for one
data structure:

* **queue jumping** — jump-pointers at every node of a "backbone-only"
  structure (list, tree, graph of one node type), created with the queue
  method; the whole structure is prefetched through them.
* **full jumping** — "backbone-and-ribs" structures; every node carries a
  jump-pointer to the node *I* hops ahead *and* to that node's rib(s); all
  prefetches are jump-pointer prefetches and proceed in parallel.
* **chain jumping** — jump-pointer prefetch for the backbone, chained
  prefetches for the ribs; half the jump-pointer storage/maintenance of
  full jumping, but prefetches serialize (needs a longer interval).
* **root jumping** — a single jump-pointer to the *root* of the next small
  structure; the structure is prefetched entirely with chained prefetches.
  Immune to structure mutation, but serial and only fit for short chains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Idiom(enum.Enum):
    QUEUE = "queue"
    FULL = "full"
    CHAIN = "chain"
    ROOT = "root"

    @property
    def uses_jump_pointers(self) -> bool:
        return True

    @property
    def uses_chained_prefetches(self) -> bool:
        return self in (Idiom.CHAIN, Idiom.ROOT)

    @property
    def jump_pointers_per_node(self) -> int:
        """Per-backbone-node jump-pointer storage cost.  QUEUE and CHAIN
        pay one per node, FULL pays a second one for the rib(s), and ROOT
        pays none at all per node — its single jump-pointer is per
        *structure* (see :attr:`jump_pointers_per_structure`)."""
        if self is Idiom.FULL:
            return 2
        if self is Idiom.ROOT:
            return 0
        return 1

    @property
    def jump_pointers_per_structure(self) -> int:
        """Fixed per-structure storage cost: ROOT keeps exactly one
        jump-pointer to the next structure's root; every other idiom's
        cost scales with node count instead (Section 2.2)."""
        return 1 if self is Idiom.ROOT else 0


@dataclass(frozen=True)
class Implementation:
    """One of the paper's three implementation strategies (Section 3)."""

    name: str  # "software" | "cooperative" | "hardware"
    jump_prefetch_in_hardware: bool
    chained_prefetch_in_hardware: bool


SOFTWARE = Implementation("software", False, False)
COOPERATIVE = Implementation("cooperative", False, True)
HARDWARE = Implementation("hardware", True, True)

IMPLEMENTATIONS = {i.name: i for i in (SOFTWARE, COOPERATIVE, HARDWARE)}


def recommended_interval(
    work_per_node: int, node_latency: int, serial_hops: int = 1
) -> int:
    """The interval rule of Section 2.1/2.2: the jump distance should cover
    the target access latency; chain jumping incurs its latencies in
    series, so the interval scales with the number of serial hops."""
    if work_per_node <= 0:
        raise ValueError("work_per_node must be positive")
    import math

    return max(1, math.ceil(node_latency * serial_hops / work_per_node))
