"""Benchmark characterization (Table 1 of the paper).

For each program we measure the features the paper uses to decide whether
JPP is *needed* and *applicable*:

* the fraction of dynamic loads that are LDS (pointer-chasing) loads,
* the L1 data-cache miss ratio and the share of misses due to LDS loads,
* the average number of in-flight L1 misses sampled at each miss — the
  available memory parallelism (a low value means misses serialize and
  scheduling-based prefetching cannot help),
* the memory fraction of execution time (the decomposition),

plus the static structure description and the idiom(s) judged appropriate,
which come from the workload's metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..cpu.simulator import simulate
from ..cpu.stats import SimResult


@dataclass(frozen=True)
class CharacterizationRow:
    """One row of Table 1."""

    name: str
    instructions: int
    loads: int
    lds_load_fraction: float
    l1d_miss_ratio: float
    lds_miss_fraction: float
    miss_parallelism: float
    memory_fraction: float
    structure: str
    idioms: tuple[str, ...]

    def as_dict(self) -> dict[str, object]:
        return {
            "benchmark": self.name,
            "insts": self.instructions,
            "loads": self.loads,
            "%lds loads": round(100 * self.lds_load_fraction, 1),
            "L1 miss%": round(100 * self.l1d_miss_ratio, 2),
            "%misses lds": round(100 * self.lds_miss_fraction, 1),
            "miss parallelism": round(self.miss_parallelism, 2),
            "mem frac%": round(100 * self.memory_fraction, 1),
            "structure": self.structure,
            "idioms": "/".join(self.idioms) or "-",
        }


def characterize(
    name: str,
    program,
    cfg: MachineConfig,
    structure: str = "",
    idioms: tuple[str, ...] = (),
) -> tuple[CharacterizationRow, SimResult]:
    """Simulate the unoptimized program and derive its Table-1 row."""
    real = simulate(program, cfg, engine="none", collect_miss_intervals=True)
    compute = simulate(program, cfg.perfect(), engine="none")
    mem_frac = (
        (real.cycles - compute.cycles) / real.cycles if real.cycles else 0.0
    )
    row = CharacterizationRow(
        name=name,
        instructions=real.instructions,
        loads=real.loads,
        lds_load_fraction=real.lds_load_fraction,
        l1d_miss_ratio=real.l1d_miss_ratio,
        lds_miss_fraction=real.lds_miss_fraction,
        miss_parallelism=real.miss_parallelism(),
        memory_fraction=max(0.0, mem_frac),
        structure=structure,
        idioms=idioms,
    )
    return row, real
