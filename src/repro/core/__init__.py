"""The paper's primary contribution: the jump-pointer prefetching framework.

* :mod:`repro.core.idioms` — the four prefetching idioms and the three
  implementation strategies.
* :mod:`repro.core.jump_queue` — the software queue method for creating
  jump-pointers, as emitted code.
* :mod:`repro.core.characterization` — Table-1 program characterization.
"""

from .characterization import CharacterizationRow, characterize
from .idioms import (
    COOPERATIVE,
    HARDWARE,
    IMPLEMENTATIONS,
    SOFTWARE,
    Idiom,
    Implementation,
    recommended_interval,
)
from .jump_queue import (
    SoftwareJumpQueue,
    emit_cooperative_prefetch,
    emit_software_prefetch,
)

__all__ = [
    "COOPERATIVE",
    "CharacterizationRow",
    "HARDWARE",
    "IMPLEMENTATIONS",
    "Idiom",
    "Implementation",
    "SOFTWARE",
    "SoftwareJumpQueue",
    "characterize",
    "emit_cooperative_prefetch",
    "emit_software_prefetch",
    "recommended_interval",
]
