"""Simulation auditing: invariants, differential validation, fidelity.

Three layers, composable separately or through the ``repro audit`` CLI:

* :mod:`repro.audit.invariants` — the opt-in runtime :class:`Auditor`
  that sweeps conservation laws (outcome classification, cache-access
  accounting, queue capacities, monotone clocks) every N commits of one
  simulation.
* :mod:`repro.audit.diff` — a deliberately-naive
  :class:`ReferenceInterpreter` plus lockstep commit-stream and
  field-by-field stats diffing against the decode-table fast path.
* :mod:`repro.audit.paper_targets` / :mod:`repro.audit.gate` — the
  paper's headline numbers as machine-readable targets with tolerance
  bands, and the gate entry points that turn golden-cell re-runs into
  per-metric drift reports.
* :mod:`repro.audit.bench` — the ``repro bench-diff`` comparator:
  signed per-metric drift between two ``BENCH_*.json`` performance
  reports under exact/lower/higher tolerance rules (the CI
  perf-regression gate).
"""

from .bench import (
    BenchRule,
    DEFAULT_RULES,
    compare_benchmarks,
    flatten_report,
    regressions,
)
from .diff import (
    Divergence,
    FieldDiff,
    ReferenceInterpreter,
    diff_all_engines,
    diff_commit_streams,
    diff_results,
    reference_simulate,
)
from .gate import (
    AuditCell,
    audit_workloads,
    differential_check,
    fidelity_gate,
    load_golden,
)
from .invariants import (
    AuditError,
    Auditor,
    AuditViolation,
    corrupt_mshr_tracker,
    corrupt_outcome_tracker,
)
from .paper_targets import (
    FIGURE5_TARGETS,
    TABLE1_TARGETS,
    PaperTarget,
    all_targets,
    evaluate_targets,
    figure5_observations,
    table1_observations,
)

__all__ = [
    "AuditCell",
    "AuditError",
    "Auditor",
    "AuditViolation",
    "BenchRule",
    "DEFAULT_RULES",
    "Divergence",
    "FieldDiff",
    "FIGURE5_TARGETS",
    "PaperTarget",
    "ReferenceInterpreter",
    "TABLE1_TARGETS",
    "all_targets",
    "audit_workloads",
    "compare_benchmarks",
    "corrupt_mshr_tracker",
    "corrupt_outcome_tracker",
    "diff_all_engines",
    "diff_commit_streams",
    "diff_results",
    "differential_check",
    "evaluate_targets",
    "fidelity_gate",
    "figure5_observations",
    "flatten_report",
    "load_golden",
    "reference_simulate",
    "regressions",
    "table1_observations",
]
