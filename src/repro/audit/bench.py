"""Benchmark-report diffing: signed per-metric drift with tolerance bands.

Compares two performance-baseline reports (the ``BENCH_*.json`` files
emitted by ``benchmarks/perf_baseline.py``) leaf by leaf and classifies
every numeric metric under a small rule table, the same shape as
:mod:`repro.audit.paper_targets`' drift rows:

* ``exact``  — must be bit-identical (simulated cycle/instruction
  counts, sweep cell counts, cache hit/miss accounting).  Any drift
  means the *timing model* changed, which a perf PR must never do.
* ``lower``  — smaller is better (wall-clock seconds).  Fails when the
  current value exceeds ``baseline * (1 + tolerance)``.
* ``higher`` — bigger is better (simulated instructions/second,
  speedups, parallel scaling).  Fails when the current value falls
  below ``baseline * (1 - tolerance)``.
* ``info``   — reported but never gating (CPU counts, the frozen seed
  denominators, metrics present in only one report).

``compare_benchmarks`` is the pure core; the ``repro bench-diff`` CLI
subcommand wraps it with file loading, optional baseline regeneration,
and a non-zero exit on regressions (wired into CI as the
perf-regression gate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "BenchRule",
    "DEFAULT_RULES",
    "compare_benchmarks",
    "flatten_report",
    "regressions",
]


@dataclass(frozen=True)
class BenchRule:
    """Classification rule for metric leaves whose name matches ``leaf``.

    ``leaf`` matches the final dotted-path component; a leading ``*``
    makes it a suffix match (``*seconds`` catches ``serial_seconds``,
    ``warm_cache_seconds``, ...).  First matching rule in the table
    wins, so put specific names (``seed_seconds``) before wildcards.
    """

    leaf: str
    mode: str  # "exact" | "lower" | "higher" | "info"
    tolerance: float | None = None  # None -> comparator default

    def matches(self, name: str) -> bool:
        if self.leaf.startswith("*"):
            return name.endswith(self.leaf[1:])
        return name == self.leaf


#: Rule table for ``perf_baseline.py`` reports.  Ordered: first match wins.
DEFAULT_RULES: tuple[BenchRule, ...] = (
    # Machine-independent simulation facts: any drift is a model change.
    BenchRule("cycles", "exact"),
    BenchRule("instructions", "exact"),
    BenchRule("cells", "exact"),
    BenchRule("hits", "exact"),
    BenchRule("misses", "exact"),
    # Frozen seed denominators travel with the report; never gate on them.
    BenchRule("seed_seconds", "info"),
    BenchRule("cpu_count", "info"),
    BenchRule("writes", "info"),
    BenchRule("invalid", "info"),
    # Wall-clock: smaller is better.
    BenchRule("*seconds", "lower"),
    # Throughput and speedup ratios: bigger is better.  These carry
    # their own tolerances so a generous CLI --tolerance (used to wash
    # out runner-speed noise on wall-clock leaves) cannot turn the
    # throughput floor vacuous: absolute insts/s may drop to 0.3x of
    # the reference box before failing, while the fused-vs-table ratio
    # — measured same-box, same-run — gets a tighter 0.65x floor.
    BenchRule("sim_insts_per_sec", "higher", 0.7),
    BenchRule("speedup_vs_seed", "higher"),
    BenchRule("fused_speedup", "higher", 0.35),
    BenchRule("warm_speedup", "higher"),
    # Pool scaling is a property of the host's free cores at run time
    # (the report marks it ``cpu_limited``), not of the code under test;
    # report it, never gate on it.
    BenchRule("jobs4_scaling", "info"),
    # Dispatch-overhead reports (BENCH_PR9): message sizes are
    # machine-independent facts of the wire format, per-cell times are
    # wall-clock, and the old-vs-new ratio is same-box/same-run — a
    # real floor even under a generous CLI tolerance.
    BenchRule("distinct_configs", "exact"),
    BenchRule("*bytes_per_cell", "exact"),
    BenchRule("bytes_ratio", "exact"),
    BenchRule("*us_per_cell", "lower"),
    BenchRule("speedup", "higher", 0.5),
)


def flatten_report(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested report as ``dotted.path -> value``.

    Non-numeric leaves (schema tags, benchmark-name lists) are skipped;
    bools are not numbers here.
    """
    out: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten_report(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = value
    return out


def _rule_for(name: str, rules: tuple[BenchRule, ...]) -> BenchRule | None:
    leaf = name.rsplit(".", 1)[-1]
    for rule in rules:
        if rule.matches(leaf):
            return rule
    return None


def _evaluate(
    mode: str, base: float, cur: float, tol: float
) -> tuple[bool, str]:
    """(ok, band-description) for one metric under one rule."""
    if mode == "exact":
        return cur == base, "=="
    if mode == "lower":
        return cur <= base * (1.0 + tol), f"<= {1.0 + tol:.2f}x"
    if mode == "higher":
        return cur >= base * (1.0 - tol), f">= {1.0 - tol:.2f}x"
    return True, "info"


def compare_benchmarks(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    rules: tuple[BenchRule, ...] = DEFAULT_RULES,
    tolerance: float = 0.25,
) -> list[dict]:
    """Per-metric drift rows between two benchmark reports.

    Returns one row per numeric leaf present in either report, ordered
    by dotted path: ``{"metric", "mode", "baseline", "current",
    "drift", "band", "ok"}``.  A metric missing from ``current`` fails
    (the report shrank — a silent loss of coverage) unless its rule is
    ``info``; one missing from ``baseline`` is informational (new
    metric, nothing to regress against).  ``tolerance`` is the default
    relative band for ``lower``/``higher`` rules without their own.
    """
    base_leaves = flatten_report(baseline)
    cur_leaves = flatten_report(current)
    rows: list[dict] = []
    for name in sorted(set(base_leaves) | set(cur_leaves)):
        rule = _rule_for(name, rules)
        mode = rule.mode if rule else "info"
        tol = tolerance if rule is None or rule.tolerance is None else rule.tolerance
        base = base_leaves.get(name)
        cur = cur_leaves.get(name)
        if base is None:
            ok, band = True, "new"
        elif cur is None:
            ok, band = mode == "info", "missing"
        elif not (math.isfinite(base) and math.isfinite(cur)):
            ok, band = False, "non-finite"
        else:
            ok, band = _evaluate(mode, base, cur, tol)
        drift = None if base is None or cur is None else cur - base
        rows.append({
            "metric": name,
            "mode": mode,
            "baseline": base,
            "current": cur,
            "drift": None if drift is None else round(drift, 3),
            "band": band,
            "ok": ok,
        })
    return rows


def regressions(rows: list[dict]) -> list[dict]:
    """The failing subset of :func:`compare_benchmarks` rows."""
    return [row for row in rows if not row["ok"]]
