"""Runtime invariant checking for the timing simulator.

An :class:`Auditor` rides along one simulation (``simulate(...,
audit=Auditor())``) and sweeps the model's conservation laws every
``interval`` commits plus once at the end of the run:

* **core** — commit cycles monotone, commit count strictly increasing,
  ROB occupancy ≤ window, LSQ occupancy ≤ lsq_entries, the issue-slot
  bookkeeping (``issued_at``) bounded by its prune policy;
* **memory hierarchy** — per level ``hits + misses == accesses``,
  resident lines ≤ capacity, TLB misses ≤ accesses, prefetch request
  accounting, and — under the non-blocking ``mshr_model`` settings — the
  MSHR conservation laws (allocated == retired + outstanding, coalesce
  and per-entry target accounting, occupancy peak ≤
  ``max_outstanding_misses``); see
  :meth:`repro.mem.hierarchy.MemoryHierarchy.audit_check`;
* **prefetch engine** — PRQ occupancy ≤ capacity, the DBP re-chase table
  bounded, JQT/jump-queue occupancy ≤ capacity (see the ``audit_check``
  overrides in :mod:`repro.prefetch.engines`);
* **outcome taxonomy** — every issued or dropped prefetch classified
  exactly once across timely/late/early-evicted/useless/dropped (see
  :meth:`repro.obs.outcomes.OutcomeTracker.audit_check`);
* **CPI-stack conservation** — when a profiler rides along, its
  attribution buckets must sum exactly to the commit front (see
  :meth:`repro.obs.profile.Profiler.audit_check`).

Violations become structured :class:`AuditViolation` records, counted in
the run's :class:`~repro.obs.metrics.MetricRegistry` (``audit.checks``,
``audit.violations``, ``audit.violation.<invariant>``) and mirrored into
the event trace when one is attached.  ``strict=True`` escalates the
first violation to an :class:`AuditError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..obs.outcomes import TIMELY

#: Slack the core's ``issued_at`` map may legitimately carry: the prune
#: keeps up to the threshold and runs every prune-interval commits, each
#: of which can add at most one entry.
_ISSUED_AT_BOUND = 200_000 + 65536


class AuditError(ReproError):
    """A conservation-law violation escalated by ``Auditor(strict=True)``."""


@dataclass(frozen=True)
class AuditViolation:
    """One violated invariant, with where and when it was observed."""

    invariant: str
    message: str
    commit: int
    cycle: int
    component: str = "core"

    def describe(self) -> str:
        return (
            f"[{self.component}] {self.invariant} at commit "
            f"{self.commit} (cycle {self.cycle}): {self.message}"
        )


@dataclass
class Auditor:
    """Opt-in invariant sweeper for one :class:`TimingModel` run.

    ``interval`` is the commit cadence (the core calls
    :meth:`on_commit` every ``interval``-th commit through
    :func:`repro.cpu.timing.periodic_due` semantics — never at commit
    zero); ``max_violations`` caps the stored record list so a
    systematically-broken run cannot exhaust memory (the counters keep
    counting past the cap).
    """

    interval: int = 2048
    strict: bool = False
    max_violations: int = 256
    violations: list[AuditViolation] = field(default_factory=list)
    checks: int = 0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"audit interval must be >= 1, got {self.interval}")
        self._model = None
        self._last_cycle = 0
        self._last_commit = 0
        self._counted = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, model) -> None:
        """Called by :meth:`TimingModel.run` before the commit loop."""
        self._model = model
        self._last_cycle = 0
        self._last_commit = 0

    @property
    def ok(self) -> bool:
        return self._counted == 0

    @property
    def violation_count(self) -> int:
        return self._counted

    # -- recording ------------------------------------------------------

    def _record(
        self, invariant: str, message: str, commit: int, cycle: int,
        component: str,
    ) -> None:
        violation = AuditViolation(invariant, message, commit, cycle, component)
        self._counted += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        telemetry = getattr(self._model, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(
                "audit.violations", help="conservation-law violations observed"
            ).inc()
            telemetry.registry.counter(
                f"audit.violation.{invariant}",
                help="violations of one named invariant",
            ).inc()
            if telemetry.trace is not None:
                telemetry.trace.instant(
                    "audit-violation", cycle, cat="core",
                    invariant=invariant, component=component, message=message,
                )
        if self.strict:
            raise AuditError(violation.describe())

    def _sweep_components(self, commit: int, cycle: int) -> None:
        model = self._model
        for invariant, message in model.hierarchy.audit_check():
            self._record(invariant, message, commit, cycle, "hierarchy")
        for invariant, message in model.engine.audit_check(cycle):
            self._record(invariant, message, commit, cycle, "engine")
        profiler = getattr(model, "profiler", None)
        if profiler is not None:
            for invariant, message in profiler.audit_check(cycle):
                self._record(invariant, message, commit, cycle, "profiler")
        telemetry = getattr(model, "telemetry", None)
        if telemetry is not None:
            for invariant, message in telemetry.outcomes.audit_check():
                self._record(invariant, message, commit, cycle, "outcomes")

    # -- hook sites (called by TimingModel.run) -------------------------

    def on_commit(
        self,
        n_committed: int,
        cycle: int,
        rob=None,
        lsq=None,
        issued_at=None,
    ) -> None:
        """Periodic sweep: core-loop structures plus every component."""
        self.checks += 1
        telemetry = getattr(self._model, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(
                "audit.checks", help="invariant sweeps performed"
            ).inc()
        if cycle < self._last_cycle:
            self._record(
                "cycle-monotone",
                f"commit cycle went backwards: {self._last_cycle} -> {cycle}",
                n_committed, cycle, "core",
            )
        self._last_cycle = cycle
        if n_committed <= self._last_commit:
            self._record(
                "commit-count-increasing",
                f"commit count did not advance: "
                f"{self._last_commit} -> {n_committed}",
                n_committed, cycle, "core",
            )
        self._last_commit = n_committed
        cfg = self._model.cfg
        if rob is not None and len(rob) > cfg.window:
            self._record(
                "rob-occupancy",
                f"{len(rob)} ROB entries > window {cfg.window}",
                n_committed, cycle, "core",
            )
        if lsq is not None and len(lsq) > cfg.lsq_entries:
            self._record(
                "lsq-occupancy",
                f"{len(lsq)} LSQ entries > capacity {cfg.lsq_entries}",
                n_committed, cycle, "core",
            )
        if issued_at is not None and len(issued_at) > _ISSUED_AT_BOUND:
            self._record(
                "issued-at-bound",
                f"{len(issued_at)} issue-slot entries > "
                f"bound {_ISSUED_AT_BOUND}",
                n_committed, cycle, "core",
            )
        self._sweep_components(n_committed, cycle)

    def on_finish(self, model, n_committed: int, cycle: int) -> None:
        """End-of-run sweep, after telemetry finalization."""
        self._model = model
        self.checks += 1
        self._sweep_components(n_committed, cycle)

    # -- reporting ------------------------------------------------------

    def to_rows(self) -> list[dict]:
        return [
            {
                "invariant": v.invariant,
                "component": v.component,
                "commit": v.commit,
                "cycle": v.cycle,
                "message": v.message,
            }
            for v in self.violations
        ]


def corrupt_outcome_tracker(tracker, after: int = 8):
    """Deterministically mis-classify prefetch outcomes in ``tracker``.

    From the ``after``-th issue on, every ``record_issue`` also bumps the
    ``timely`` count without a matching issue/drop event — exactly the
    silent double-classification bug the ``outcome-conservation``
    invariant exists to catch.  Used by the audit drills (the
    ``harness/faults`` ``corrupt`` selector routes cells here) and the
    self-tests; returns the tracker for chaining.
    """
    real_record_issue = tracker.record_issue
    state = {"n": 0}

    def corrupted(line, kind, pc, issue, fill):
        real_record_issue(line, kind, pc, issue, fill)
        state["n"] += 1
        if state["n"] > after:
            tracker.counts[TIMELY] += 1  # spurious classification

    tracker.record_issue = corrupted
    return tracker


def corrupt_mshr_tracker(auditor, after: int = 0):
    """Deterministically skew the hierarchy's MSHR conservation counters.

    From the ``after``-th audit sweep on, every sweep first bumps
    ``mshrs_allocated`` without a matching allocation — the phantom-MSHR
    bug the ``mshr-conservation`` law exists to catch.  The corruption is
    injected through the :class:`Auditor` hooks (the hierarchy itself is
    ``__slots__``-ed, so its methods cannot be wrapped per-instance),
    which also guarantees every corrupted sweep sees the skew.  Only
    meaningful under a non-blocking ``mshr_model`` — the law is gated off
    under ``blocking``.  Returns the auditor for chaining.
    """
    state = {"n": 0}

    def skew(model) -> None:
        state["n"] += 1
        if state["n"] > after:
            model.hierarchy.stats.mshrs_allocated += 1

    real_on_commit = auditor.on_commit
    real_on_finish = auditor.on_finish

    def corrupted_commit(n_committed, cycle, *args, **kwargs):
        skew(auditor._model)
        real_on_commit(n_committed, cycle, *args, **kwargs)

    def corrupted_finish(model, n_committed, cycle):
        skew(model)
        real_on_finish(model, n_committed, cycle)

    auditor.on_commit = corrupted_commit
    auditor.on_finish = corrupted_finish
    return auditor
