"""Differential validation: reference interpreter vs. decode-table fast path.

The functional interpreter (:class:`repro.isa.interpreter.Interpreter`)
predigests programs into a handler-id decode table for speed; this module
keeps that fast path honest with a deliberately naive
:class:`ReferenceInterpreter` that re-reads every instruction field and
dispatches on the :class:`~repro.isa.opcodes.Op` enum directly — no
decode table, no handler sharing, no memoization.  The two must yield
bit-identical committed-instruction streams and final architectural
state for every program.

:func:`diff_commit_streams` runs both in lockstep and reports the first
divergent dynamic instruction (which record, which field, both values)
rather than a bare "streams differ".  :func:`diff_results` compares two
:class:`~repro.cpu.stats.SimResult` objects field-by-field with dotted
paths; :func:`reference_simulate` substitutes the reference interpreter
into the full timing model so the stats themselves can be diffed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

from ..config import MachineConfig
from ..cpu.simulator import simulate
from ..cpu.stats import SimResult
from ..errors import ExecutionError
from ..isa.interpreter import _DEFAULT_MAX_STEPS, DynRecord, Interpreter
from ..isa.opcodes import Op
from ..isa.program import Program
from ..isa.registers import NUM_REGS, SP
from ..mem.allocator import SizeClassAllocator
from ..mem.memory_image import MemoryImage

#: Opcodes exempt from the architectural zero-register reset (mirrors the
#: fast path's table; restated independently so a fast-path regression
#: here is caught rather than inherited).
_NO_ZERO_CLEAR = (Op.SW, Op.PF, Op.JPF, Op.NOP)


class ReferenceInterpreter:
    """Naive per-opcode functional interpreter (the audit reference).

    Drop-in for :class:`~repro.isa.interpreter.Interpreter`: same
    constructor, same lazily-yielded ``(inst, addr, value, taken)``
    records, same exposed state (``registers``, ``memory``,
    ``allocator``, ``steps``, ``finished``).
    """

    def __init__(
        self, program: Program, max_steps: int | None = _DEFAULT_MAX_STEPS
    ) -> None:
        self.program = program
        self.max_steps = _DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self.memory = MemoryImage(program.initial_memory)
        self.allocator = SizeClassAllocator(program.heap_base)
        self.registers: list[int | float] = [0] * NUM_REGS
        self.registers[SP] = program.stack_top
        self.steps = 0
        self.finished = False

    def run(self) -> Iterator[DynRecord]:
        regs = self.registers
        mem = self.memory._words
        insts = self.program.instructions
        n = len(insts)
        pc = self.program.entry
        steps = 0
        try:
            while True:
                if not 0 <= pc < n:
                    raise ExecutionError(
                        f"pc {pc} outside text segment (0..{n - 1})"
                    )
                if steps >= self.max_steps:
                    raise ExecutionError(
                        f"instruction budget exceeded ({self.max_steps}); "
                        f"likely an infinite loop at pc {pc}"
                    )
                inst = insts[pc]
                op = inst.op
                steps += 1
                next_pc = pc + 1
                addr = 0
                value: int | float = 0
                taken = False

                if op is Op.LW:
                    addr = regs[inst.rs1] + inst.imm
                    if addr % 4 or addr < 0:
                        raise ExecutionError(
                            f"pc {pc}: misaligned/negative load address {addr:#x}"
                        )
                    value = mem.get(addr, 0)
                    regs[inst.rd] = value
                elif op is Op.SW:
                    addr = regs[inst.rs1] + inst.imm
                    if addr % 4 or addr < 0:
                        raise ExecutionError(
                            f"pc {pc}: misaligned/negative store address {addr:#x}"
                        )
                    value = regs[inst.rs2]
                    mem[addr] = value
                elif op is Op.ADDI:
                    regs[inst.rd] = regs[inst.rs1] + inst.imm
                elif op is Op.ADD or op is Op.FADD:
                    regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2]
                elif op is Op.SUB or op is Op.FSUB:
                    regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2]
                elif op is Op.MUL or op is Op.FMUL:
                    regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2]
                elif op is Op.BNE:
                    taken = regs[inst.rs1] != regs[inst.rs2]
                    if taken:
                        next_pc = inst.target
                elif op is Op.BEQ:
                    taken = regs[inst.rs1] == regs[inst.rs2]
                    if taken:
                        next_pc = inst.target
                elif op is Op.BLT:
                    taken = regs[inst.rs1] < regs[inst.rs2]
                    if taken:
                        next_pc = inst.target
                elif op is Op.BGE:
                    taken = regs[inst.rs1] >= regs[inst.rs2]
                    if taken:
                        next_pc = inst.target
                elif op is Op.J:
                    taken = True
                    next_pc = inst.target
                elif op is Op.JAL:
                    taken = True
                    regs[inst.rd] = pc + 1
                    next_pc = inst.target
                    value = next_pc
                elif op is Op.JR:
                    taken = True
                    next_pc = regs[inst.rs1]
                    if not isinstance(next_pc, int):
                        raise ExecutionError(f"pc {pc}: JR to non-integer target")
                    value = next_pc
                elif op is Op.PF or op is Op.JPF:
                    addr = regs[inst.rs1] + inst.imm
                elif op is Op.SLT or op is Op.FLT:
                    regs[inst.rd] = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
                elif op is Op.SLTI:
                    regs[inst.rd] = 1 if regs[inst.rs1] < inst.imm else 0
                elif op is Op.ALLOC:
                    size = regs[inst.rs1] + inst.imm
                    addr = self.allocator.alloc(int(size))
                    regs[inst.rd] = addr
                    value = addr
                elif op is Op.AND:
                    regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2]
                elif op is Op.OR:
                    regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2]
                elif op is Op.XOR:
                    regs[inst.rd] = regs[inst.rs1] ^ regs[inst.rs2]
                elif op is Op.ANDI:
                    regs[inst.rd] = regs[inst.rs1] & inst.imm
                elif op is Op.ORI:
                    regs[inst.rd] = regs[inst.rs1] | inst.imm
                elif op is Op.XORI:
                    regs[inst.rd] = regs[inst.rs1] ^ inst.imm
                elif op is Op.SLL:
                    regs[inst.rd] = regs[inst.rs1] << regs[inst.rs2]
                elif op is Op.SRL or op is Op.SRA:
                    regs[inst.rd] = regs[inst.rs1] >> regs[inst.rs2]
                elif op is Op.SLLI:
                    regs[inst.rd] = regs[inst.rs1] << inst.imm
                elif op is Op.SRLI or op is Op.SRAI:
                    regs[inst.rd] = regs[inst.rs1] >> inst.imm
                elif op is Op.DIV:
                    b = regs[inst.rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: integer division by zero")
                    regs[inst.rd] = int(regs[inst.rs1] / b)
                elif op is Op.REM:
                    b = regs[inst.rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: integer remainder by zero")
                    a = regs[inst.rs1]
                    regs[inst.rd] = a - int(a / b) * b
                elif op is Op.SLTU:
                    regs[inst.rd] = (
                        1 if abs(regs[inst.rs1]) < abs(regs[inst.rs2]) else 0
                    )
                elif op is Op.FNEG:
                    regs[inst.rd] = -regs[inst.rs1]
                elif op is Op.FABS:
                    regs[inst.rd] = abs(regs[inst.rs1])
                elif op is Op.FDIV:
                    b = regs[inst.rs2]
                    if b == 0:
                        raise ExecutionError(f"pc {pc}: FP division by zero")
                    regs[inst.rd] = regs[inst.rs1] / b
                elif op is Op.FSQRT:
                    v = regs[inst.rs1]
                    if v < 0:
                        raise ExecutionError(f"pc {pc}: FSQRT of negative value")
                    regs[inst.rd] = math.sqrt(v)
                elif op is Op.FLE:
                    regs[inst.rd] = 1 if regs[inst.rs1] <= regs[inst.rs2] else 0
                elif op is Op.FEQ:
                    regs[inst.rd] = 1 if regs[inst.rs1] == regs[inst.rs2] else 0
                elif op is Op.I2F:
                    regs[inst.rd] = float(regs[inst.rs1])
                elif op is Op.F2I:
                    regs[inst.rd] = int(regs[inst.rs1])
                elif op is Op.NOP:
                    pass
                elif op is Op.HALT:
                    self.finished = True
                    yield (inst, 0, 0, False)
                    return
                else:  # pragma: no cover - exhaustive over Op
                    raise ExecutionError(f"unimplemented opcode {op.name}")

                if inst.rd == 0 and op not in _NO_ZERO_CLEAR:
                    regs[0] = 0
                yield (inst, addr, value, taken)
                pc = next_pc
        finally:
            self.steps = steps


# ----------------------------------------------------------------------
# Stream diffing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Divergence:
    """First point where the fast and reference paths disagree.

    ``index`` is the dynamic instruction number (0-based); ``where`` is
    the diverging field — ``pc``/``addr``/``value``/``taken`` for a
    record mismatch, ``length`` when one stream ended early, and
    ``register:<n>`` / ``memory:<addr>`` / ``steps`` for final-state
    mismatches after identical streams.
    """

    index: int
    where: str
    fast: Any
    ref: Any

    def describe(self) -> str:
        return (
            f"first divergence at dynamic instruction {self.index}, "
            f"field {self.where!r}: fast={self.fast!r} ref={self.ref!r}"
        )


_STREAM_FIELDS = ("pc", "addr", "value", "taken")
_SENTINEL = object()


def diff_commit_streams(
    program: Program,
    max_steps: int | None = None,
    interpreter_factory=None,
) -> Divergence | None:
    """Run a candidate interpreter and the reference in lockstep.

    The candidate defaults to the decode-table :class:`Interpreter`;
    pass any drop-in factory (e.g. the block-JIT
    :class:`~repro.isa.blockjit.CompiledInterpreter`) to pin another
    execution engine against the same independently written semantics.
    Returns None when the committed-instruction streams and the final
    architectural state (registers, memory, step count) are
    bit-identical, else the first :class:`Divergence`.
    """
    make = interpreter_factory or Interpreter
    fast = make(program, max_steps=max_steps)
    ref = ReferenceInterpreter(program, max_steps=max_steps)
    fast_stream = fast.run()
    ref_stream = ref.run()
    index = 0
    while True:
        a = next(fast_stream, _SENTINEL)
        b = next(ref_stream, _SENTINEL)
        if a is _SENTINEL or b is _SENTINEL:
            if a is not b:
                return Divergence(
                    index, "length",
                    "ended" if a is _SENTINEL else "running",
                    "ended" if b is _SENTINEL else "running",
                )
            break
        fa = (a[0].index, a[1], a[2], a[3])
        fb = (b[0].index, b[1], b[2], b[3])
        if fa != fb:
            for name, va, vb in zip(_STREAM_FIELDS, fa, fb):
                if va != vb or type(va) is not type(vb):
                    return Divergence(index, name, va, vb)
        index += 1
    for r in range(NUM_REGS):
        if fast.registers[r] != ref.registers[r]:
            return Divergence(
                index, f"register:{r}", fast.registers[r], ref.registers[r]
            )
    fast_mem = fast.memory._words
    ref_mem = ref.memory._words
    for addr in fast_mem.keys() | ref_mem.keys():
        va, vb = fast_mem.get(addr, 0), ref_mem.get(addr, 0)
        if va != vb:
            return Divergence(index, f"memory:{addr:#x}", va, vb)
    if fast.steps != ref.steps:
        return Divergence(index, "steps", fast.steps, ref.steps)
    return None


def diff_all_engines(
    program: Program, max_steps: int | None = None
) -> dict[str, "Divergence | None"]:
    """Lockstep-diff every registered simulation engine vs the reference.

    One :func:`diff_commit_streams` per non-reference entry of
    :data:`repro.isa.engines.SIM_ENGINES`, keyed by engine name — the
    single check that pins the table interpreter *and* the block-JIT
    fast path to the reference semantics at once.
    """
    from ..isa.engines import SIM_ENGINES

    return {
        name: diff_commit_streams(
            program, max_steps=max_steps, interpreter_factory=se.factory()
        )
        for name, se in SIM_ENGINES.items()
        if name != "reference"
    }


# ----------------------------------------------------------------------
# Result diffing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FieldDiff:
    """One differing field between two results, by dotted path."""

    path: str
    a: Any
    b: Any


def _flatten(value: Any, path: str, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(v, f"{path}.{k}" if path else str(k), out)
    elif isinstance(value, (list, tuple)):
        out[f"{path}.len"] = len(value)
        for i, v in enumerate(value):
            _flatten(v, f"{path}[{i}]", out)
    else:
        out[path] = value


def diff_results(
    a: SimResult | dict, b: SimResult | dict, ignore: tuple[str, ...] = ()
) -> list[FieldDiff]:
    """Field-by-field comparison of two results (or result dicts).

    Returns every differing dotted path, including fields present on one
    side only.  ``ignore`` drops paths by prefix (e.g. ``("telemetry",)``
    to compare pure simulation outputs).
    """
    da = a.to_dict() if isinstance(a, SimResult) else a
    db = b.to_dict() if isinstance(b, SimResult) else b
    fa: dict[str, Any] = {}
    fb: dict[str, Any] = {}
    _flatten(da, "", fa)
    _flatten(db, "", fb)
    diffs = []
    for path in sorted(fa.keys() | fb.keys()):
        if any(path == p or path.startswith(p + ".") for p in ignore):
            continue
        va, vb = fa.get(path, _SENTINEL), fb.get(path, _SENTINEL)
        if va is _SENTINEL or vb is _SENTINEL or va != vb:
            diffs.append(FieldDiff(
                path,
                None if va is _SENTINEL else va,
                None if vb is _SENTINEL else vb,
            ))
    return diffs


def reference_simulate(
    program: Program,
    cfg: MachineConfig | None = None,
    engine: str = "none",
    max_steps: int | None = None,
) -> SimResult:
    """Full timing simulation driven by the reference interpreter."""
    return simulate(
        program, cfg, engine=engine, max_steps=max_steps,
        interpreter_factory=ReferenceInterpreter,
    )
