"""Machine-readable targets from Roth & Sohi (ISCA 1999).

The reproduction's fidelity claims live here as data, not prose: each
:class:`PaperTarget` names one number the paper reports, the section it
comes from, and the tolerance band inside which the repro is considered
faithful.  :func:`evaluate_targets` turns observed metrics into a
per-target drift report — the paper-fidelity gate prints that table and
fails on out-of-band rows, instead of a bare pass/fail.

Bands are deliberately wide: the repro runs scaled-down machine models
and workload sizes (see DESIGN.md), so the claim being gated is "same
regime and ordering as the paper", not digit-for-digit equality.

* **Figure 5** (Section 4.2): average memory-stall reduction over the
  memory-bound benchmarks — 72% software, 83% cooperative, 55% hardware
  — and average speedups of 15%, 20% and 22%.
* **Table 1** (Section 4.1): the memory-bound benchmarks spend an
  appreciable fraction of their time in memory stalls and most of their
  L1 data-load misses come from linked-data-structure loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..harness.experiments import MEMORY_BOUND

__all__ = [
    "PaperTarget",
    "FIGURE5_TARGETS",
    "TABLE1_TARGETS",
    "all_targets",
    "evaluate_targets",
    "figure5_observations",
    "table1_observations",
]


@dataclass(frozen=True)
class PaperTarget:
    """One number the paper claims, with its acceptance band."""

    key: str
    description: str
    paper_value: float
    lo: float
    hi: float
    unit: str = "%"
    source: str = ""

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError(
                f"target {self.key!r} band is inverted: [{self.lo}, {self.hi}]"
            )

    def contains(self, observed: float) -> bool:
        return (
            math.isfinite(observed) and self.lo <= observed <= self.hi
        )

    def drift_row(self, observed: float | None) -> dict:
        """One row of the fidelity report for this target."""
        missing = observed is None or not math.isfinite(observed)
        return {
            "target": self.key,
            "paper": self.paper_value,
            "band": f"[{self.lo}, {self.hi}]",
            "observed": None if missing else round(observed, 1),
            "drift": None if missing
            else round(observed - self.paper_value, 1),
            "ok": False if missing else self.contains(observed),
            "source": self.source,
        }


#: Figure 5 headline numbers: averages over the memory-bound benchmarks.
FIGURE5_TARGETS: tuple[PaperTarget, ...] = (
    PaperTarget(
        "figure5.mem_stall_cut.software",
        "avg memory-stall reduction, software JPP",
        72.0, 40.0, 100.0, source="Section 4.2, Figure 5",
    ),
    PaperTarget(
        "figure5.mem_stall_cut.cooperative",
        "avg memory-stall reduction, cooperative JPP",
        83.0, 50.0, 100.0, source="Section 4.2, Figure 5",
    ),
    PaperTarget(
        "figure5.mem_stall_cut.hardware",
        "avg memory-stall reduction, hardware JPP",
        55.0, 25.0, 100.0, source="Section 4.2, Figure 5",
    ),
    PaperTarget(
        "figure5.speedup.software",
        "avg speedup, software JPP",
        15.0, 2.0, 60.0, source="Section 4.2, Figure 5",
    ),
    PaperTarget(
        "figure5.speedup.cooperative",
        "avg speedup, cooperative JPP",
        20.0, 4.0, 70.0, source="Section 4.2, Figure 5",
    ),
    PaperTarget(
        "figure5.speedup.hardware",
        "avg speedup, hardware JPP",
        22.0, 4.0, 70.0, source="Section 4.2, Figure 5",
    ),
)

#: Table 1 qualitative characterization of the memory-bound set:
#: memory stalls are an appreciable share of execution time, and LDS
#: loads cause most L1 data-load misses.
TABLE1_TARGETS: tuple[PaperTarget, ...] = tuple(
    PaperTarget(
        f"table1.memory_fraction.{bench}",
        f"{bench}: memory share of execution time",
        35.0, 10.0, 95.0, source="Section 4.1, Table 1",
    )
    for bench in MEMORY_BOUND
) + tuple(
    PaperTarget(
        f"table1.lds_miss_fraction.{bench}",
        f"{bench}: share of L1 load misses from LDS loads",
        80.0, 40.0, 100.0, source="Section 4.1, Table 1",
    )
    for bench in MEMORY_BOUND
)


def all_targets() -> tuple[PaperTarget, ...]:
    return FIGURE5_TARGETS + TABLE1_TARGETS


def figure5_observations(
    summary_rows: list[Mapping],
) -> dict[str, float]:
    """Map a :func:`repro.harness.figure5_summary` table onto target keys."""
    obs: dict[str, float] = {}
    for row in summary_rows:
        scheme = row.get("scheme")
        if scheme not in ("software", "cooperative", "hardware"):
            continue
        if "avg mem stall cut%" in row:
            obs[f"figure5.mem_stall_cut.{scheme}"] = float(
                row["avg mem stall cut%"]
            )
        if "avg speedup%" in row:
            obs[f"figure5.speedup.{scheme}"] = float(row["avg speedup%"])
    return obs


def table1_observations(rows: list[Mapping]) -> dict[str, float]:
    """Map Table-1 characterization rows onto target keys.

    Accepts the :func:`repro.harness.table1` row format (``benchmark``,
    ``mem frac%``, ``%misses lds`` columns, percentages — see
    :meth:`repro.core.characterization.Characterization.row`).
    """
    obs: dict[str, float] = {}
    for row in rows:
        bench = row.get("benchmark")
        if bench not in MEMORY_BOUND:
            continue
        for col, key in (
            ("mem frac%", "memory_fraction"),
            ("%misses lds", "lds_miss_fraction"),
        ):
            if col in row and row[col] is not None:
                obs[f"table1.{key}.{bench}"] = float(row[col])
    return obs


def evaluate_targets(
    observations: Mapping[str, float],
    targets: tuple[PaperTarget, ...] | None = None,
    skip_missing: bool = True,
) -> list[dict]:
    """Per-target drift rows for every target with an observation.

    With ``skip_missing=False``, targets lacking an observation produce a
    row with ``ok=False`` (the full-fidelity CI mode); by default they
    are skipped so partial sweeps can still be scored.
    """
    rows = []
    for target in targets if targets is not None else all_targets():
        if target.key not in observations and skip_missing:
            continue
        rows.append(target.drift_row(observations.get(target.key)))
    return rows
