"""The audit gate: invariant sweeps, differential checks, fidelity drift.

Three entry points, composed by the ``repro audit`` CLI subcommand and
the CI ``audit`` job:

* :func:`audit_workloads` — run every registered workload under every
  scheme on a named machine with an :class:`~repro.audit.Auditor`
  attached; any conservation-law violation fails the gate.  A
  :class:`~repro.harness.faults.FaultPlan` whose ``corrupt`` rules match
  a cell routes that cell through
  :func:`~repro.audit.invariants.corrupt_outcome_tracker` — the drill
  proving the auditor actually catches mis-classified outcomes.
* :func:`differential_check` — for every golden-pinned cell, run the
  decode-table and reference interpreters in lockstep and report the
  first divergent committed instruction; a sample of cells additionally
  re-runs the full timing simulation on the reference path and diffs
  final stats field-by-field.
* :func:`fidelity_gate` — re-run the golden cells and report per-metric
  drift (golden vs observed, signed delta) instead of a bare mismatch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..config import get_machine
from ..cpu.simulator import simulate
from ..errors import WorkloadError
from ..harness.executor import RunSpec
from ..harness.faults import FaultPlan
from ..harness.runner import BenchmarkRunner
from ..harness.schemes import scheme_names, scheme_plan
from ..obs import Telemetry
from ..workloads import get_workload, workload_class, workload_names
from .diff import Divergence, diff_all_engines, diff_results, reference_simulate
from .invariants import Auditor, corrupt_mshr_tracker, corrupt_outcome_tracker

#: Default golden pin file (the repo's timing contract).
DEFAULT_GOLDEN = Path(__file__).resolve().parents[3] / "tests" / "golden_cycles.json"

#: Metrics the fidelity gate tracks per golden cell.
GOLDEN_METRICS = ("cycles", "compute", "instructions")


@dataclass
class AuditCell:
    """One audited simulation cell and what the auditor saw."""

    benchmark: str
    scheme: str
    variant: str
    engine: str
    checks: int
    violations: list = field(default_factory=list)
    corrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def row(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "variant": self.variant,
            "engine": self.engine,
            "checks": self.checks,
            "violations": len(self.violations),
            "first": self.violations[0].invariant if self.violations else "-",
            "drill": "corrupt" if self.corrupted else "-",
        }


def audit_workloads(
    machine: str = "small",
    workloads: Iterable[str] | None = None,
    schemes: Iterable[str] | None = None,
    interval: int = 512,
    faults: FaultPlan | None = None,
    strict: bool = False,
    mshr_model: str | None = None,
) -> list[AuditCell]:
    """Sweep the invariant checker over the workload/scheme matrix.

    Workloads run at their quick test sizes on the named machine;
    ``mshr_model`` overrides the machine's MSHR model so the
    non-blocking hierarchies run under the same sweep (and arm the MSHR
    conservation laws).  Cells matched by a ``corrupt`` fault rule get a
    deliberately broken outcome tracker — plus, under a non-blocking
    model, a skewed MSHR allocation counter; with a working auditor
    those cells (and only those) report violations.
    """
    cfg = get_machine(machine)
    if mshr_model is not None:
        cfg = cfg.with_overrides({"mshr_model": mshr_model})
    cells: list[AuditCell] = []
    for name in workloads or workload_names():
        workload = get_workload(name, **workload_class(name).test_params())
        programs: dict[str, Any] = {}
        for scheme in schemes or scheme_names():
            try:
                variant, engine = scheme_plan(workload, scheme, None)
            except WorkloadError:
                continue  # workload has no variant for this scheme
            if variant not in programs:
                programs[variant] = workload.build(variant).program
            telemetry = Telemetry()
            auditor = Auditor(interval=interval, strict=strict)
            corrupted = False
            if faults is not None:
                spec = RunSpec.make(name, variant, engine, cfg,
                                    dict(workload.params))
                if faults.corrupts(spec):
                    # after=0: tiny test-size runs issue few prefetches,
                    # so mis-classify from the very first one.
                    corrupt_outcome_tracker(telemetry.outcomes, after=0)
                    if cfg.mshr_model != "blocking":
                        # The MSHR laws only arm under the non-blocking
                        # models; drill them in the same corrupt cells.
                        corrupt_mshr_tracker(auditor, after=0)
                    corrupted = True
            simulate(
                programs[variant], cfg, engine=engine,
                telemetry=telemetry, audit=auditor,
            )
            cells.append(AuditCell(
                benchmark=name, scheme=scheme, variant=variant,
                engine=engine, checks=auditor.checks,
                violations=list(auditor.violations), corrupted=corrupted,
            ))
    return cells


# ----------------------------------------------------------------------
# Differential validation over the golden-pinned cells
# ----------------------------------------------------------------------

def load_golden(path: str | Path | None = None) -> dict[str, Any]:
    return json.loads(Path(path or DEFAULT_GOLDEN).read_text())


def _golden_cells(golden: dict[str, Any]) -> list[tuple[str, str, dict, str]]:
    """Distinct (workload, variant, params, label) cells pinned by the
    golden file — deduped across schemes that share a program variant."""
    cells: list[tuple[str, str, dict, str]] = []
    seen: set[tuple[str, str, str]] = set()
    for label, entry in sorted(golden.items()):
        name = entry.get("workload", label)
        params = dict(entry["params"])
        idiom = entry.get("idiom")
        workload = get_workload(name, **params)
        for scheme in sorted(entry["schemes"]):
            variant, __ = scheme_plan(
                workload, scheme,
                idiom if scheme in ("software", "cooperative") else None,
            )
            key = (name, variant, json.dumps(params, sort_keys=True))
            if key in seen:
                continue
            seen.add(key)
            cells.append((name, variant, params, label))
    return cells


def differential_check(
    golden_path: str | Path | None = None,
    machine: str = "small",
    full_stats_sample: int = 2,
    max_steps: int | None = 5_000_000,
    mshr_model: str | None = None,
) -> list[dict[str, Any]]:
    """Engine vs reference-path diff for every golden-pinned cell.

    Every distinct program variant in the golden file gets a lockstep
    committed-instruction stream diff for *each* registered simulation
    engine (table interpreter and block-compiled fast path alike); the
    first ``full_stats_sample`` cells also re-run the complete timing
    simulation with the reference interpreter and with the fused
    compiled engine, diffing the resulting stats field-by-field against
    the table run.  ``mshr_model`` overrides the machine's MSHR model
    for the stats sample (the commit-stream diff is architectural and
    timing-independent).  Returns one row per cell; ``ok`` is False on
    any divergence.
    """
    cfg = get_machine(machine)
    if mshr_model is not None:
        cfg = cfg.with_overrides({"mshr_model": mshr_model})
    rows: list[dict[str, Any]] = []
    sampled = 0
    for name, variant, params, label in _golden_cells(load_golden(golden_path)):
        program = get_workload(name, **params).build(variant).program
        divergence: Divergence | None = None
        div_engine = ""
        for ename, div in diff_all_engines(program, max_steps=max_steps).items():
            if div is not None:
                divergence, div_engine = div, ename
                break
        stat_diffs = []
        mode = "stream"
        if divergence is None and sampled < full_stats_sample:
            sampled += 1
            mode = "stream+stats"
            fast = simulate(program, cfg, engine="none", max_steps=max_steps)
            ref = reference_simulate(
                program, cfg, engine="none", max_steps=max_steps
            )
            stat_diffs = diff_results(fast, ref, ignore=("telemetry",))
            fused = simulate(program, cfg, engine="none", max_steps=max_steps,
                             sim_engine="compiled")
            stat_diffs += diff_results(fast, fused, ignore=("telemetry",))
        rows.append({
            "cell": label,
            "variant": variant,
            "mode": mode,
            "ok": divergence is None and not stat_diffs,
            "divergence": (
                f"[{div_engine}] {divergence.describe()}" if divergence else "-"
            ),
            "stat_diffs": [
                f"{d.path}: {d.a!r} != {d.b!r}" for d in stat_diffs[:8]
            ],
        })
    return rows


# ----------------------------------------------------------------------
# Paper-fidelity gate over the golden cells
# ----------------------------------------------------------------------

def fidelity_gate(
    golden_path: str | Path | None = None,
    machine: str = "small",
) -> list[dict[str, Any]]:
    """Re-run every golden cell and report per-metric drift.

    Output rows name the cell, scheme and metric with the golden value,
    the observed value, and the signed delta — so a regression reads as
    "treeadd/hardware cycles drifted +212 (+1.8%)", not "golden file
    mismatch".  ``ok`` is True only at zero drift (the timing model is
    pinned bit-exact).
    """
    golden = load_golden(golden_path)
    cfg = get_machine(machine)
    rows: list[dict[str, Any]] = []
    for label, entry in sorted(golden.items()):
        entry_cfg = cfg
        if "mshr_model" in entry:
            # Non-blocking pins carry their model next to the params.
            entry_cfg = cfg.with_overrides(
                {"mshr_model": entry["mshr_model"]}
            )
        runner = BenchmarkRunner(
            entry.get("workload", label), entry_cfg, entry["params"]
        )
        idiom = entry.get("idiom")
        for scheme, want in sorted(entry["schemes"].items()):
            run = runner.run(
                scheme,
                idiom if scheme in ("software", "cooperative") else None,
            )
            got = {
                "cycles": run.total,
                "compute": run.compute,
                "instructions": run.result.instructions,
            }
            for metric in GOLDEN_METRICS:
                drift = got[metric] - want[metric]
                if drift == 0:
                    continue
                rows.append({
                    "cell": label,
                    "scheme": scheme,
                    "metric": metric,
                    "golden": want[metric],
                    "observed": got[metric],
                    "drift": f"{drift:+d}"
                    + (f" ({drift / want[metric]:+.2%})" if want[metric] else ""),
                    "ok": False,
                })
    return rows
