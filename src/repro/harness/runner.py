"""Runs workloads under the paper's five configurations.

The run matrix (Section 4.2, Figure 5):

==============  =================  =============  =========================
scheme          program variant    engine         notes
==============  =================  =============  =========================
``base``        baseline           none           the unoptimized execution
``software``    ``sw:<idiom>``     software       explicit prefetch code
``cooperative`` ``coop:<idiom>``   cooperative    JPF + dependence hardware
``hardware``    baseline           hardware       DBP + JQT/JPR
``dbp``         baseline           dbp            comparison point [16]
==============  =================  =============  =========================

Each run is decomposed into compute and memory time with a second
simulation using single-cycle data memory (the paper's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import MachineConfig, bench_config
from ..cpu.simulator import simulate
from ..cpu.stats import SimResult
from ..workloads import get_workload
from .schemes import paper_scheme_names, scheme_plan

__all__ = [
    "SCHEMES", "BenchmarkRunner", "SchemeRun", "run_scheme", "scheme_plan",
]


def _schemes() -> tuple[str, ...]:
    """The run matrix's scheme axis: the registry's ``"paper"`` group."""
    return tuple(paper_scheme_names())


#: The paper's five schemes in presentation order.  Derived from the
#: scheme registry at import time so the two can never drift — but
#: filtered to the ``"paper"`` group, so zoo prefetchers (raced by
#: ``repro tournament``) don't leak into the Figure 4/5/6 matrices.
#: Use :func:`repro.harness.schemes.scheme_names` for the full list.
SCHEMES = _schemes()


@dataclass
class SchemeRun:
    """One benchmark under one scheme, with the time decomposition."""

    benchmark: str
    scheme: str
    variant: str
    total: int
    compute: int
    result: SimResult

    @property
    def memory(self) -> int:
        return max(0, self.total - self.compute)

    def normalized(self, baseline_total: int) -> float:
        return self.total / baseline_total if baseline_total else 0.0

    def memory_reduction(self, baseline_memory: int) -> float:
        """Fraction of the baseline's memory stall time eliminated."""
        if not baseline_memory:
            return 0.0
        return 1.0 - self.memory / baseline_memory

    def to_dict(self, baseline_total: int | None = None) -> dict:
        """JSON-safe artifact body for one scheme run; ``baseline_total``
        (the base scheme's cycles) adds the paper's normalized metric."""
        d: dict = {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "variant": self.variant,
            "total": self.total,
            "compute": self.compute,
            "memory": self.memory,
        }
        if baseline_total:
            d["normalized"] = self.normalized(baseline_total)
        d["result"] = self.result.to_dict()
        return d


class BenchmarkRunner:
    """Runs one workload's scheme matrix, caching compute-time runs per
    program variant (base/hardware/dbp share the baseline's)."""

    def __init__(
        self,
        name: str,
        cfg: MachineConfig | None = None,
        params: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.cfg = cfg or bench_config()
        self.workload = get_workload(name, **(params or {}))
        self._compute_cache: dict[str, int] = {}
        self._built: dict[str, Any] = {}

    def _program(self, variant: str):
        if variant not in self._built:
            self._built[variant] = self.workload.build(variant)
        return self._built[variant].program

    def _compute_time(self, variant: str) -> int:
        if variant not in self._compute_cache:
            res = simulate(self._program(variant), self.cfg.perfect(), engine="none")
            self._compute_cache[variant] = res.cycles
        return self._compute_cache[variant]

    def run(
        self,
        scheme: str,
        idiom: str | None = None,
        telemetry=None,
        profile=None,
        audit=None,
    ) -> SchemeRun:
        variant, engine = scheme_plan(self.workload, scheme, idiom)
        result = simulate(
            self._program(variant), self.cfg, engine=engine,
            telemetry=telemetry, profile=profile, audit=audit,
        )
        return SchemeRun(
            benchmark=self.name,
            scheme=scheme,
            variant=variant,
            total=result.cycles,
            compute=self._compute_time(variant),
            result=result,
        )

    def run_variant(
        self, variant: str, engine: str, telemetry=None, profile=None, audit=None
    ) -> SchemeRun:
        """Arbitrary variant/engine pairing (Figure 4 idiom comparison)."""
        result = simulate(
            self._program(variant), self.cfg, engine=engine,
            telemetry=telemetry, profile=profile, audit=audit,
        )
        return SchemeRun(
            benchmark=self.name,
            scheme=f"{engine}:{variant}",
            variant=variant,
            total=result.cycles,
            compute=self._compute_time(variant),
            result=result,
        )

    def run_matrix(
        self,
        schemes: tuple[str, ...] = SCHEMES,
        telemetry_factory: Any | None = None,
    ) -> dict[str, SchemeRun]:
        """Run every scheme; ``telemetry_factory`` (e.g. ``repro.obs.
        Telemetry``) is called once per scheme so each run records its own
        outcome counters into ``SchemeRun.result.telemetry``."""
        return {
            scheme: self.run(
                scheme,
                telemetry=telemetry_factory() if telemetry_factory else None,
            )
            for scheme in schemes
        }


def run_scheme(
    name: str,
    scheme: str,
    cfg: MachineConfig | None = None,
    idiom: str | None = None,
    params: dict[str, Any] | None = None,
) -> SchemeRun:
    """One-shot convenience wrapper around :class:`BenchmarkRunner`."""
    return BenchmarkRunner(name, cfg, params).run(scheme, idiom)
