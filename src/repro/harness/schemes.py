"""The scheme registry: how a benchmark is run under each configuration.

A *scheme* is one column of the paper's run matrix (Section 4.2,
Figure 5): it names the program variant to build and the prefetch engine
to simulate it on.  The five paper schemes are registered here; new ones
(say, a stride-ahead variant) are one :func:`register_scheme` call, and
everything downstream — ``runner.SCHEMES``, experiment specs, the CLI
``list schemes`` — picks them up by lookup instead of by editing if/elif
chains.

==============  =================  =============  =========================
scheme          program variant    engine         notes
==============  =================  =============  =========================
``base``        baseline           none           the unoptimized execution
``software``    ``sw:<idiom>``     software       explicit prefetch code
``cooperative`` ``coop:<idiom>``   cooperative    JPF + dependence hardware
``hardware``    baseline           hardware       DBP + JQT/JPR
``dbp``         baseline           dbp            comparison point [16]
==============  =================  =============  =========================

The scheme zoo (``pointer-chase``, ``stride``, ``cdp``, ``foresight`` —
:mod:`repro.prefetch.zoo`) registers below the paper's five; all run the
unmodified baseline program on a competing hardware prefetcher and are
raced by ``examples/specs/tournament.toml`` / ``repro tournament``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..prefetch.engines import ENGINES
from ..registry import Registry
from ..workloads import Workload


@dataclass(frozen=True)
class Scheme:
    """One run-matrix column: variant selection plus engine name.

    ``variant`` pins a fixed program variant (``"baseline"`` for the
    hardware-side schemes).  When it is None the scheme selects an
    idiom-specific variant: ``variant_prefix + idiom`` if an idiom is
    given, else the workload's first (paper-preferred) variant with that
    prefix.
    """

    name: str
    engine: str
    variant: str | None = None
    variant_prefix: str = ""
    description: str = ""
    #: ``"paper"`` schemes form the default figure matrix
    #: (``runner.SCHEMES``); ``"zoo"`` schemes only run when named
    #: explicitly (tournament spec, ``--scheme``, audit).
    group: str = "paper"

    def __post_init__(self) -> None:
        if self.variant is None and not self.variant_prefix:
            raise WorkloadError(
                f"scheme {self.name!r} needs a fixed variant or a "
                "variant_prefix to select one"
            )

    def plan(
        self, workload: Workload, idiom: str | None = None
    ) -> tuple[str, str]:
        """The (program variant, engine name) pair for ``workload``."""
        if self.variant is not None:
            return self.variant, self.engine
        if idiom is not None:
            variant = self.variant_prefix + idiom
            if variant not in workload.variants:
                raise WorkloadError(
                    f"{workload.name}: no variant {variant!r}; "
                    f"available: {workload.variants}"
                )
            return variant, self.engine
        for variant in workload.variants:
            if variant.startswith(self.variant_prefix):
                return variant, self.engine
        raise WorkloadError(f"{workload.name} has no {self.name} variant")


#: Scheme registry in the paper's presentation order.
SCHEME_REGISTRY: Registry[Scheme] = Registry("scheme", error=WorkloadError)


def register_scheme(scheme: Scheme) -> Scheme:
    """Register a scheme; its engine must already be registered."""
    if scheme.engine not in ENGINES:
        raise WorkloadError(
            f"scheme {scheme.name!r} names unknown engine "
            f"{scheme.engine!r}; available: {ENGINES.names()}"
        )
    return SCHEME_REGISTRY.register(scheme.name, scheme)


def get_scheme(name: str) -> Scheme:
    return SCHEME_REGISTRY.get(name)


def scheme_names() -> list[str]:
    """Registered scheme names, in registration (paper) order."""
    return SCHEME_REGISTRY.names()


def paper_scheme_names() -> list[str]:
    """The ``"paper"`` group, in registration order — the default matrix
    for the figure experiments.  Zoo schemes run only when named
    explicitly (tournament spec, ``--scheme``, the audit gate)."""
    return [
        name for name in SCHEME_REGISTRY.names()
        if SCHEME_REGISTRY.get(name).group == "paper"
    ]


def scheme_plan(
    workload: Workload, scheme: str, idiom: str | None = None
) -> tuple[str, str]:
    """Maps a scheme name to (program variant, engine name)."""
    return get_scheme(scheme).plan(workload, idiom)


register_scheme(Scheme(
    "base", engine="none", variant="baseline",
    description="the unoptimized execution",
))
register_scheme(Scheme(
    "software", engine="software", variant_prefix="sw:",
    description="explicit jump-pointer prefetch code",
))
register_scheme(Scheme(
    "cooperative", engine="cooperative", variant_prefix="coop:",
    description="software JPF + dependence hardware",
))
register_scheme(Scheme(
    "hardware", engine="hardware", variant="baseline",
    description="DBP + JQT/JPR, no code changes",
))
register_scheme(Scheme(
    "dbp", engine="dbp", variant="baseline",
    description="dependence-based prefetching, comparison point [16]",
))

# -- the scheme zoo (ROADMAP: competing prefetchers, raced by the
# tournament spec).  All hardware-side: they run the unmodified baseline
# program, so adding one is exactly one registration.
register_scheme(Scheme(
    "pointer-chase", engine="pointer-chase", variant="baseline",
    description="dedicated traversal unit chasing the recurrent "
                "dependence ahead of the core (arXiv:1801.08088)",
    group="zoo",
))
register_scheme(Scheme(
    "stride", engine="stride", variant="baseline",
    description="per-PC reference prediction table (Chen & Baer), the "
                "non-pointer baseline",
    group="zoo",
))
register_scheme(Scheme(
    "cdp", engine="cdp", variant="baseline",
    description="content-directed prefetching: chase every committed "
                "value that looks like a heap pointer",
    group="zoo",
))
register_scheme(Scheme(
    "foresight", engine="foresight", variant="baseline",
    description="proactive burst prefetch at annotated structure entry "
                "(foresight-style, arXiv:2606.13321)",
    group="zoo",
))
