"""Content-addressed on-disk simulation result cache.

Every experiment cell (one ``simulate()`` call) is identified by a
SHA-256 key over the *complete* set of inputs that determine its outcome:

* the canonicalized :class:`~repro.config.MachineConfig` (every nested
  dataclass field, via ``MachineConfig.to_dict``) — covering dotted-path
  overrides from experiment spec files just like hand-built configs,
* the workload name, its parameters, and the program variant,
* the prefetch engine name,
* the simulation-engine name (``table``/``reference``/``compiled``) —
  engines are bit-identical, but the key stays honest about which
  implementation produced an entry,
* a fingerprint of the simulator source code (every ``.py`` file in the
  packages that influence simulation results), so any change to the ISA,
  memory, CPU, prefetch, or workload code invalidates prior entries while
  harness/doc/test changes do not.

The value is the ``repro.sim_result/1`` artifact (``SimResult.to_dict``)
written atomically; a hit deserializes back to a ``SimResult`` that
compares equal to the cold run's (modulo raw ``miss_intervals`` samples,
which are never cached).  Hit/miss/write counters are registered in a
:class:`~repro.obs.metrics.MetricRegistry` (the PR-1 ``obs`` subsystem),
so sweeps can report cache effectiveness alongside simulation metrics.

Cache location: ``$REPRO_CACHE_DIR`` when set, else ``.repro_cache/``
under the current working directory.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..cpu.stats import SimResult
from ..obs import MetricRegistry, artifact, schema_kind

if TYPE_CHECKING:  # pragma: no cover
    from .executor import RunSpec

#: Subpackages of ``repro`` whose source participates in the code
#: fingerprint (everything that can change simulated cycle counts).
_FINGERPRINT_PACKAGES = ("isa", "mem", "cpu", "prefetch", "core", "workloads")
_FINGERPRINT_MODULES = ("config.py", "errors.py")

_fingerprint_cache: str | None = None

logger = logging.getLogger(__name__)


def code_fingerprint() -> str:
    """SHA-256 over the simulation-relevant source tree (memoized)."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        files: list[Path] = []
        for pkg in _FINGERPRINT_PACKAGES:
            files.extend((root / pkg).rglob("*.py"))
        files.extend(root / m for m in _FINGERPRINT_MODULES)
        for path in sorted(files):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash.

    ``os.replace`` makes the rename atomic but not durable: until the
    parent directory's metadata reaches disk, a power cut can roll the
    entry back even though the caller was told the write succeeded.
    Filesystems that refuse O_RDONLY fsync on directories are skipped.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError as exc:
        logger.debug("cannot open %s for fsync: %s", path, exc)
        return
    try:
        os.fsync(fd)
    except OSError as exc:
        # Durability best-effort (some filesystems refuse directory
        # fsync); correctness is unaffected, but leave a trace.
        logger.debug("directory fsync of %s failed: %s", path, exc)
    finally:
        os.close(fd)


def canonical_spec(spec: "RunSpec") -> dict[str, Any]:
    """The JSON-stable identity of one cell (the hash pre-image).

    The config enters through ``MachineConfig.to_dict()`` (identical to
    ``dataclasses.asdict``, so keys predate the serde layer), which is
    what makes spec-file overrides cache-compatible with the historical
    ``with_*`` helpers: equal configs hash equally however they were
    built."""
    return {
        "benchmark": spec.benchmark,
        "params": {k: v for k, v in spec.params},
        "variant": spec.variant,
        "engine": spec.engine,
        "kind": spec.kind,
        "profile": spec.profile,
        "sim_engine": spec.sim_engine,
        "telemetry": spec.telemetry,
        "config": spec.cfg.to_dict(),
        "code": code_fingerprint(),
    }


def spec_key(spec: "RunSpec") -> str:
    blob = json.dumps(canonical_spec(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk ``key -> SimResult`` store with obs-registry counters."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        self.root = Path(
            root or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        )
        self.registry = registry or MetricRegistry()
        self._hits = self.registry.counter(
            "cache.hits", help="simulation cells served from the result cache"
        )
        self._misses = self.registry.counter(
            "cache.misses", help="simulation cells not found in the result cache"
        )
        self._writes = self.registry.counter(
            "cache.writes", help="simulation results stored into the cache"
        )
        self._invalid = self.registry.counter(
            "cache.invalid", help="unreadable/incompatible cache entries skipped"
        )
        self._read_errors = self.registry.counter(
            "cache.read_errors",
            help="cache entries that existed but could not be read "
                 "(I/O error or corruption, recomputed cold)",
        )

    # ------------------------------------------------------------------

    def key(self, spec: "RunSpec") -> str:
        return spec_key(spec)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: "RunSpec") -> SimResult | None:
        """The cached :class:`SimResult` for ``spec``, or None on a miss.

        A missing entry is the normal cold miss.  An entry that *exists*
        but cannot be read — permission failure, I/O error, truncated or
        corrupt JSON — is also served as a miss (the sweep recomputes and
        overwrites), but counted on ``cache.read_errors`` and logged with
        its path, so silent cache-corruption never masquerades as a cold
        cache (the corruption drill asserts on the counter)."""
        path = self.path(self.key(spec))
        try:
            with open(path) as f:
                doc = json.load(f)
        except FileNotFoundError:
            self._misses.inc()
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning(
                "cache entry %s unreadable (%s: %s); recomputing",
                path, type(exc).__name__, exc,
            )
            self._read_errors.inc()
            self._misses.inc()
            return None
        try:
            if schema_kind(doc) != "sim_result":
                raise ValueError(f"unexpected schema {doc.get('schema')!r}")
            result = SimResult.from_dict(doc["result"])
        except (KeyError, TypeError, ValueError):
            # Incompatible or corrupt entry: treat as a miss and let the
            # fresh result overwrite it.
            self._invalid.inc()
            self._misses.inc()
            return None
        self._hits.inc()
        return result

    def put(self, spec: "RunSpec", result: SimResult) -> Path:
        """Store ``result`` under ``spec``'s key (atomic + durable rename)."""
        key = self.key(spec)
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = artifact(
            "sim_result",
            {"spec": canonical_spec(spec), "result": result.to_dict()},
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(doc, f, indent=1)
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError as exc:
                logger.debug("cannot remove temp entry %s: %s", tmp, exc)
            raise
        return path

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def writes(self) -> int:
        return self._writes.value

    def note_write(self) -> None:
        """Executor hook: count a successful :meth:`put`."""
        self._writes.inc()

    @property
    def read_errors(self) -> int:
        return self._read_errors.value

    def stats(self) -> dict[str, int]:
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "writes": self._writes.value,
            "invalid": self._invalid.value,
            "read_errors": self._read_errors.value,
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"result cache at {self.root}: {s['hits']} hits, "
            f"{s['misses']} misses, {s['writes']} writes"
        )
