"""Bottleneck analysis: where do the cycles go?

Wraps the timing model's commit-stall attribution into a report: each
committed instruction is charged the cycles by which it advanced the
in-order commit front, so the table sums exactly to total execution time.
This is the tool used throughout calibration to find what serializes a
kernel (see DESIGN.md §5) and is exposed for users doing the same with
their own programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig, bench_config
from ..cpu.simulator import make_engine
from ..cpu.timing import TimingModel
from ..isa.program import Program


@dataclass(frozen=True)
class StallLine:
    """One row of the stall report."""

    op: str
    tag: str | None
    cycles: int
    share: float

    @property
    def label(self) -> str:
        return f"{self.op}[{self.tag}]" if self.tag else self.op


@dataclass
class StallReport:
    total_cycles: int
    lines: list[StallLine]

    def top(self, n: int = 10) -> list[StallLine]:
        return self.lines[:n]

    def share_of(self, op: str, tag: str | None = None) -> float:
        """Combined share of all lines matching ``op`` (and ``tag``)."""
        return sum(
            line.share
            for line in self.lines
            if line.op == op and (tag is None or line.tag == tag)
        )

    def format(self, n: int = 10) -> str:
        width = max((len(line.label) for line in self.top(n)), default=8)
        rows = [f"{'where':<{width}}  {'cycles':>10}  share"]
        for line in self.top(n):
            rows.append(
                f"{line.label:<{width}}  {line.cycles:>10}  {line.share:6.1%}"
            )
        return "\n".join(rows)


def stall_report(
    program: Program,
    cfg: MachineConfig | None = None,
    engine: str = "none",
) -> StallReport:
    """Run ``program`` once and attribute every cycle of execution time to
    the instruction class that was blocking commit."""
    cfg = cfg or bench_config()
    model = TimingModel(
        program, cfg, make_engine(engine, cfg), attribute_stalls=True
    )
    result = model.run()
    total = max(1, result.cycles)
    lines = sorted(
        (
            StallLine(op=op, tag=tag, cycles=cycles, share=cycles / total)
            for (op, tag), cycles in model.stall_attribution.items()
        ),
        key=lambda line: -line.cycles,
    )
    return StallReport(total_cycles=result.cycles, lines=lines)
