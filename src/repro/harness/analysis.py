"""Bottleneck analysis: where do the cycles go?

Wraps the timing model's commit-stall attribution into a report: each
committed instruction is charged the cycles by which it advanced the
in-order commit front, so the table sums exactly to total execution time.
This is the tool used throughout calibration to find what serializes a
kernel (see DESIGN.md §5) and is exposed for users doing the same with
their own programs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..config import MachineConfig, bench_config
from ..cpu.simulator import make_engine
from ..cpu.timing import TimingModel
from ..isa.program import Program


# ----------------------------------------------------------------------
# Guarded ratio helpers
# ----------------------------------------------------------------------
#
# Sweep result tables can contain error cells (crashed or timed-out runs
# recorded with zero cycles); derived metrics must flag those rows as NaN
# rather than raise ZeroDivisionError halfway through assembling a figure
# (the same rule figure5_summary applies to its memory-fraction columns).


def safe_ratio(
    num: int | float, den: int | float, default: float = math.nan
) -> float:
    """``num / den`` with non-finite or non-positive denominators mapped
    to ``default`` (NaN unless overridden) instead of raising."""
    if not den or den < 0 or not math.isfinite(den):
        return default
    return num / den


def speedup(baseline_cycles: int | float, cycles: int | float) -> float:
    """Baseline-relative speedup; NaN when either cycle count is unusable
    (zero, negative, or non-finite — i.e. an error cell)."""
    if (
        not baseline_cycles
        or baseline_cycles < 0
        or not math.isfinite(baseline_cycles)
    ):
        return math.nan
    return safe_ratio(baseline_cycles, cycles)


def speedup_rows(
    rows: list[dict[str, Any]], baseline_scheme: str = "base"
) -> list[dict[str, Any]]:
    """Per-benchmark speedup table from sweep result rows.

    ``rows`` are dicts with at least ``benchmark``, ``scheme`` and
    ``cycles`` keys (the sweep assembler's flat format).  Returns one row
    per input row with ``speedup`` over the benchmark's
    ``baseline_scheme`` cell and ``flagged=True`` when the value is NaN —
    a zero-cycle baseline (error cell) poisons its benchmark's rows with
    flagged NaNs rather than crashing or silently reporting inf.
    """
    baselines: dict[str, int | float] = {}
    for row in rows:
        if row.get("scheme") == baseline_scheme:
            baselines[row["benchmark"]] = row.get("cycles", 0)
    out: list[dict[str, Any]] = []
    for row in rows:
        base = baselines.get(row["benchmark"], 0)
        s = speedup(base, row.get("cycles", 0))
        out.append({**row, "speedup": s, "flagged": math.isnan(s)})
    return out


@dataclass(frozen=True)
class StallLine:
    """One row of the stall report."""

    op: str
    tag: str | None
    cycles: int
    share: float

    @property
    def label(self) -> str:
        return f"{self.op}[{self.tag}]" if self.tag else self.op


@dataclass
class StallReport:
    total_cycles: int
    lines: list[StallLine]

    def top(self, n: int = 10) -> list[StallLine]:
        return self.lines[:n]

    def share_of(self, op: str, tag: str | None = None) -> float:
        """Combined share of all lines matching ``op`` (and ``tag``)."""
        return sum(
            line.share
            for line in self.lines
            if line.op == op and (tag is None or line.tag == tag)
        )

    def format(self, n: int = 10) -> str:
        width = max((len(line.label) for line in self.top(n)), default=8)
        rows = [f"{'where':<{width}}  {'cycles':>10}  share"]
        for line in self.top(n):
            rows.append(
                f"{line.label:<{width}}  {line.cycles:>10}  {line.share:6.1%}"
            )
        return "\n".join(rows)


def stall_report(
    program: Program,
    cfg: MachineConfig | None = None,
    engine: str = "none",
) -> StallReport:
    """Run ``program`` once and attribute every cycle of execution time to
    the instruction class that was blocking commit.

    The underlying attribution is the profiler's ``(pc, reason)`` table
    (see :mod:`repro.obs.profile`); this report folds it back to the
    coarser per-``(op, tag)`` view, which still sums exactly to total
    cycles.  Use ``python -m repro profile`` for the full per-site /
    per-reason decomposition.
    """
    cfg = cfg or bench_config()
    model = TimingModel(
        program, cfg, make_engine(engine, cfg), attribute_stalls=True
    )
    result = model.run()
    total = max(1, result.cycles)
    insts = program.instructions
    agg: dict[tuple[str, str | None], int] = {}
    for (pc, __), cycles in model.stall_attribution.items():
        si = insts[pc]
        key = (si.op.name, si.tag)
        agg[key] = agg.get(key, 0) + cycles
    lines = sorted(
        (
            StallLine(op=op, tag=tag, cycles=cycles, share=cycles / total)
            for (op, tag), cycles in agg.items()
        ),
        key=lambda line: -line.cycles,
    )
    return StallReport(total_cycles=result.cycles, lines=lines)
