"""Checkpoint-resume journal for sweep execution.

A :class:`SweepJournal` is an append-only JSONL file recording every
successfully completed sweep cell as it finishes.  An interrupted sweep
(``KeyboardInterrupt``, worker crash, machine loss) re-run against the
same journal with ``resume=True`` replays the recorded cells instantly
and re-simulates only what is missing.

Design points:

* **Keys are content-addressed** via :func:`~repro.harness.cache.spec_key`
  — the same SHA-256 identity the result cache uses, covering workload,
  params, variant, engine, machine config, cell kind *and* the simulator
  code fingerprint.  A journal written before a code change silently
  replays nothing after it: stale checkpoints cannot leak wrong results.
* **Crash-safe appends** — one line per cell, flushed (and fsynced)
  immediately.  A truncated final line from a hard kill is skipped on
  load and counted, never fatal.
* **Errors are not journaled.**  Only ``ok`` cells checkpoint; a failed
  cell is retried from scratch on resume, which is the point of
  resuming.
* **Both cell kinds** round-trip: ``sim`` cells as
  ``SimResult.to_dict()`` documents, ``table1`` cells as their plain
  row dicts.

Counters (``journal.appended`` / ``journal.replayed`` /
``journal.corrupt``) register into an obs
:class:`~repro.obs.metrics.MetricRegistry` so resume behaviour is
verifiable from the same registry as cache and sweep metrics.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..cpu.stats import SimResult
from ..obs import MetricRegistry
from .cache import spec_key

if TYPE_CHECKING:  # pragma: no cover
    from .executor import RunSpec

SCHEMA = "repro.journal/1"


class SweepJournal:
    """Append-only ``spec-key -> completed cell`` checkpoint file."""

    def __init__(
        self,
        path: str | os.PathLike,
        registry: MetricRegistry | None = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.resume = resume
        self.registry = registry or MetricRegistry()
        self._appended = self.registry.counter(
            "journal.appended", help="completed cells checkpointed this run"
        )
        self._replayed = self.registry.counter(
            "journal.replayed", help="cells served from the resume journal"
        )
        self._corrupt = self.registry.counter(
            "journal.corrupt", help="unreadable journal lines skipped on load"
        )
        self._entries: dict[str, Any] = {}
        self._fh = None
        if resume:
            self._load()
        elif self.path.exists():
            # A fresh (non-resume) sweep must not replay a stale journal.
            self.path.unlink()

    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if doc.get("schema") != SCHEMA:
                    raise ValueError(f"unexpected schema {doc.get('schema')!r}")
                key = doc["key"]
                kind = doc["kind"]
                payload = doc["result"]
                if kind == "sim":
                    payload = SimResult.from_dict(payload)
                elif not isinstance(payload, dict):
                    raise ValueError(f"non-dict {kind!r} payload")
            except (ValueError, KeyError, TypeError):
                # Truncated tail line from a hard kill, or foreign junk:
                # skip it — the cell just re-simulates.
                self._corrupt.inc()
                continue
            self._entries[key] = (kind, payload)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec: "RunSpec") -> bool:
        return spec_key(spec) in self._entries

    def get(self, spec: "RunSpec") -> Any | None:
        """The recorded payload for ``spec`` (``SimResult`` or row dict),
        or None when the journal has not seen it."""
        entry = self._entries.get(spec_key(spec))
        if entry is None:
            return None
        kind, payload = entry
        if kind != spec.kind:
            return None
        self._replayed.inc()
        return payload

    def record(self, spec: "RunSpec", result: Any) -> None:
        """Checkpoint one completed cell (flush + fsync: crash-safe)."""
        key = spec_key(spec)
        if key in self._entries:
            return
        payload = result.to_dict() if isinstance(result, SimResult) else result
        doc = {"schema": SCHEMA, "key": key, "kind": spec.kind,
               "spec": spec.describe(), "result": payload}
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._entries[key] = (spec.kind, result)
        self._appended.inc()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    @property
    def appended(self) -> int:
        return self._appended.value

    @property
    def replayed(self) -> int:
        return self._replayed.value

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "appended": self._appended.value,
            "replayed": self._replayed.value,
            "corrupt": self._corrupt.value,
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"journal at {self.path}: {s['entries']} entries, "
            f"{s['replayed']} replayed, {s['appended']} appended"
        )


__all__ = ["SweepJournal", "SCHEMA"]
