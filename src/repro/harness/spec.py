"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the serializable description of one
experiment: a named machine plus dotted-path overrides, a workload grid,
a scheme (or idiom) list, optional axis sweeps, and the row columns to
report.  Specs load from TOML or JSON files (``examples/specs/``), and
**compile onto the existing sweep machinery** — every spec becomes plain
:class:`~repro.harness.executor.RunSpec` cells in a
:class:`~repro.harness.executor.SweepPlan`, so spec-driven runs inherit
the executor's deduplication, on-disk result cache, process-pool
parallelism, retries, timeouts, and checkpoint-resume without any code
of their own.  The bespoke experiment functions (``table1``,
``figure4``–``figure7``) are thin wrappers that build the equivalent
spec in memory; a shipped spec file and its wrapper produce
bit-identical rows.

Spec documents have this shape (TOML shown; JSON is isomorphic)::

    name = "figure7"
    title = "Figure 7 — latency tolerance (health)"
    kind = "matrix"                  # or "table1"
    machine = "bench"                # a repro.config.MACHINES name
    # overrides = {"dl1.size" = 16384}   # dotted-path machine tweaks
    # profile = true                 # CPI-stack profiler on every timing cell
    # engine = "compiled"            # simulation engine (table/reference/compiled)

    workloads = ["health"]           # strings or [[workloads]] tables
    schemes = ["base", "software", "cooperative", "hardware", "dbp"]
    columns = ["latency", "interval", "scheme", "total",
               "normalized", "mem_reduction%"]

    [[axes]]                         # cross-product sweep axes
    name = "latency"
    values = [70, 280]
    set = ["machine.memory_latency"]

    [[axes]]
    name = "interval"
    values = [8, 16]
    set = ["machine.prefetch.jump_interval", "params.interval"]

Workload tables take ``name``, ``params``, a pinned ``idiom``, or a
figure-4 style ``idioms``/``impls`` expansion (every available
``sw:``/``coop:`` variant of the listed idioms, plus the base run).
Column names are either the spec's ``label_key`` (default ``scheme``),
an axis name, or one of the registered metrics in :data:`METRICS`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from ..config import MACHINES, MachineConfig, get_machine
from ..errors import ReproError
from ..obs import artifact
from ..workloads import get_workload, workload_class
from .cache import ResultCache
from .executor import (
    Progress,
    RunSpec,
    ScheduledRun,
    SweepExecutor,
    SweepPlan,
    SweepResults,
    error_row,
)
from .runner import SchemeRun
from .schemes import get_scheme, paper_scheme_names


class SpecError(ReproError):
    """A malformed or unsatisfiable experiment spec."""


#: Implementation prefixes for idiom-expanded (figure-4 style) rows.
_IMPL_ENGINES = {"sw": "software", "coop": "cooperative"}

# ----------------------------------------------------------------------
# Row metrics
# ----------------------------------------------------------------------

#: Column name -> metric over (run, base, benchmark).  These reproduce
#: the bespoke experiment functions' formulas exactly (same rounding),
#: which is what makes spec rows bit-identical to the historical ones.
METRICS: dict[str, Callable[[SchemeRun, SchemeRun, str], Any]] = {
    "benchmark": lambda run, base, name: name,
    "variant": lambda run, base, name: run.variant,
    "total": lambda run, base, name: run.total,
    "cycles": lambda run, base, name: run.total,
    "compute": lambda run, base, name: run.compute,
    "memory": lambda run, base, name: run.memory,
    "instructions": lambda run, base, name: run.result.instructions,
    "ipc": lambda run, base, name: round(run.result.ipc, 2),
    "normalized": lambda run, base, name: round(run.normalized(base.total), 3),
    "mem_reduction%": lambda run, base, name: round(
        100 * run.memory_reduction(base.memory), 1
    ),
    "bytes/inst": lambda run, base, name: round(
        run.result.hierarchy.bytes_l1_l2 / base.result.instructions, 3
    ),
}


def _outcome_counts(run: SchemeRun) -> Mapping[str, int]:
    tele = run.result.telemetry or {}
    return tele.get("prefetch_outcomes", {}).get("counts", {})


def _outcome_raw(run: SchemeRun, key: str) -> int:
    tele = run.result.telemetry or {}
    return tele.get("prefetch_outcomes", {}).get(key, 0)


def _accuracy(run: SchemeRun) -> float:
    issued = _outcome_raw(run, "issued")
    if not issued:
        return 0.0
    return round(100 * _outcome_counts(run).get("timely", 0) / issued, 1)


#: Per-prefetch outcome columns (Section-5 taxonomy, PR-1 obs layer).
#: These read ``SimResult.telemetry`` and therefore require the spec to
#: set ``telemetry = true`` (validated at spec construction).
OUTCOME_COLUMNS = {
    "timely": lambda run, base, name: _outcome_counts(run).get("timely", 0),
    "late": lambda run, base, name: _outcome_counts(run).get("late", 0),
    "early-evicted": lambda run, base, name: _outcome_counts(run).get(
        "early-evicted", 0
    ),
    "useless": lambda run, base, name: _outcome_counts(run).get("useless", 0),
    "dropped": lambda run, base, name: _outcome_counts(run).get("dropped", 0),
    "issued": lambda run, base, name: _outcome_raw(run, "issued"),
    "accuracy%": lambda run, base, name: _accuracy(run),
}
METRICS.update(OUTCOME_COLUMNS)

#: Metrics that need the baseline run (a failed base fails the row).
BASE_DEPENDENT = {"normalized", "mem_reduction%", "bytes/inst"}


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------

def _reject_unknown(kind: str, data: Mapping[str, Any], known: set[str]) -> None:
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            f"unknown {kind} key(s) {sorted(unknown)}; "
            f"known keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class WorkloadSel:
    """One workload of the grid, with parameters and variant selection."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    idiom: str | None = None
    idioms: tuple[str, ...] = ()
    impls: tuple[str, ...] = ("sw", "coop")

    def __post_init__(self) -> None:
        if self.idiom is not None and self.idioms:
            raise SpecError(
                f"workload {self.name!r}: 'idiom' pins one scheme variant; "
                "'idioms' expands a comparison — use one or the other"
            )
        for impl in self.impls:
            if impl not in _IMPL_ENGINES:
                raise SpecError(
                    f"workload {self.name!r}: unknown impl {impl!r}; "
                    f"choose from {sorted(_IMPL_ENGINES)}"
                )

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name}
        if self.params:
            d["params"] = dict(self.params)
        if self.idiom is not None:
            d["idiom"] = self.idiom
        if self.idioms:
            d["idioms"] = list(self.idioms)
            d["impls"] = list(self.impls)
        return d

    @classmethod
    def parse(cls, data: Any) -> "WorkloadSel":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, Mapping):
            raise SpecError(
                f"workload entry must be a name or a table, got {data!r}"
            )
        _reject_unknown(
            "workload", data, {"name", "params", "idiom", "idioms", "impls"}
        )
        if "name" not in data:
            raise SpecError(f"workload entry {data!r} has no 'name'")
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            idiom=data.get("idiom"),
            idioms=tuple(data.get("idioms", ())),
            impls=tuple(data.get("impls", ("sw", "coop"))),
        )


@dataclass(frozen=True)
class Axis:
    """One sweep axis: a value list applied to machine/workload paths."""

    name: str
    values: tuple[Any, ...]
    set: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SpecError(f"axis {self.name!r} has no values")
        if not self.set:
            raise SpecError(
                f"axis {self.name!r} sets no paths; use e.g. "
                f"set = [\"machine.{self.name}\"]"
            )
        for target in self.set:
            if not (target.startswith("machine.") or target.startswith("params.")):
                raise SpecError(
                    f"axis {self.name!r}: target {target!r} must start "
                    "with 'machine.' or 'params.'"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "values": list(self.values),
            "set": list(self.set),
        }

    @classmethod
    def parse(cls, data: Any) -> "Axis":
        if not isinstance(data, Mapping):
            raise SpecError(f"axis entry must be a table, got {data!r}")
        _reject_unknown("axis", data, {"name", "values", "set"})
        if "name" not in data:
            raise SpecError(f"axis entry {data!r} has no 'name'")
        return cls(
            name=data["name"],
            values=tuple(data.get("values", ())),
            set=tuple(data.get("set", ())),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable experiment description."""

    name: str
    title: str = ""
    kind: str = "matrix"
    machine: str = "bench"
    overrides: dict[str, Any] = field(default_factory=dict)
    workloads: tuple[WorkloadSel, ...] = ()
    schemes: tuple[str, ...] = ()
    axes: tuple[Axis, ...] = ()
    columns: tuple[str, ...] = ()
    label_key: str = "scheme"
    profile: bool = False
    """Attach a :class:`repro.obs.Profiler` to every timing cell: each
    cell's CPI stack / hot-site table rides into the result cache with
    its ``SimResult`` (``profile = true`` in the spec file)."""
    engine: str = ""
    """Simulation engine executing every cell (``engine = "compiled"``
    in the spec file): a :data:`repro.isa.engines.SIM_ENGINES` name, or
    empty to defer to ``$REPRO_SIM_ENGINE`` / the ``table`` default.
    Orthogonal to ``schemes`` (which pick *prefetch* engines) — every
    simulation engine yields bit-identical rows."""
    telemetry: bool = False
    """Attach a :class:`repro.obs.Telemetry` context to every timing
    cell (``telemetry = true`` in the spec file): per-prefetch outcome
    counts ride into the result cache with the ``SimResult``, unlocking
    the :data:`OUTCOME_COLUMNS` (``timely``/``late``/…) and the
    tournament's ranked summary.  Cycle counts are unchanged."""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("experiment spec has no name")
        if self.engine:
            from ..isa.engines import SIM_ENGINES

            if self.engine not in SIM_ENGINES:
                raise SpecError(
                    f"unknown simulation engine {self.engine!r}; "
                    f"available: {SIM_ENGINES.names()}"
                )
        if self.kind not in ("matrix", "table1"):
            raise SpecError(
                f"unknown spec kind {self.kind!r}; choose 'matrix' or 'table1'"
            )
        if not self.workloads:
            raise SpecError(f"spec {self.name!r} lists no workloads")
        seen: set[str] = set()
        for axis in self.axes:
            if axis.name in seen:
                raise SpecError(f"duplicate axis name {axis.name!r}")
            seen.add(axis.name)
        axis_names = seen
        for col in self.columns:
            if col in OUTCOME_COLUMNS and not self.telemetry:
                raise SpecError(
                    f"column {col!r} reads per-prefetch outcomes; set "
                    "telemetry = true in the spec to collect them"
                )
            if col == self.label_key or col in axis_names or col in METRICS:
                continue
            raise SpecError(
                f"unknown column {col!r}; choose the label key "
                f"({self.label_key!r}), an axis name, or a metric from "
                f"{sorted(METRICS)}"
            )
        if self.kind == "matrix" and not self.columns:
            raise SpecError(f"spec {self.name!r} (kind=matrix) needs columns")

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe document (the on-disk/artifact form)."""
        d: dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "machine": self.machine,
            "workloads": [w.to_dict() for w in self.workloads],
        }
        if self.overrides:
            d["overrides"] = dict(self.overrides)
        if self.schemes:
            d["schemes"] = list(self.schemes)
        if self.axes:
            d["axes"] = [a.to_dict() for a in self.axes]
        if self.columns:
            d["columns"] = list(self.columns)
        if self.label_key != "scheme":
            d["label_key"] = self.label_key
        if self.profile:
            d["profile"] = True
        if self.engine:
            d["engine"] = self.engine
        if self.telemetry:
            d["telemetry"] = True
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got {type(data).__name__}")
        _reject_unknown("spec", data, {
            "name", "title", "kind", "machine", "overrides", "workloads",
            "schemes", "axes", "columns", "label_key", "profile", "engine",
            "telemetry",
        })
        return cls(
            name=data.get("name", ""),
            title=data.get("title", ""),
            kind=data.get("kind", "matrix"),
            machine=data.get("machine", "bench"),
            overrides=dict(data.get("overrides", {})),
            workloads=tuple(
                WorkloadSel.parse(w) for w in data.get("workloads", ())
            ),
            schemes=tuple(data.get("schemes", ())),
            axes=tuple(Axis.parse(a) for a in data.get("axes", ())),
            columns=tuple(data.get("columns", ())),
            label_key=data.get("label_key", "scheme"),
            profile=bool(data.get("profile", False)),
            engine=data.get("engine", ""),
            telemetry=bool(data.get("telemetry", False)),
        )

    # -- convenient variations ----------------------------------------

    def with_machine(self, machine: str) -> "ExperimentSpec":
        """Same experiment on a different named machine."""
        if machine not in MACHINES:
            raise SpecError(
                f"unknown machine {machine!r}; available: {MACHINES.names()}"
            )
        return replace(self, machine=machine)

    def with_workload_params(
        self, params: Mapping[str, Mapping[str, Any]]
    ) -> "ExperimentSpec":
        """Merge per-workload parameter overrides over the spec's own."""
        return replace(self, workloads=tuple(
            replace(w, params={**w.params, **dict(params.get(w.name, {}))})
            for w in self.workloads
        ))

    def small(self) -> "ExperimentSpec":
        """Each workload at its quick test size (spec params still win)."""
        return replace(self, workloads=tuple(
            replace(w, params={**workload_class(w.name).test_params(),
                               **w.params})
            for w in self.workloads
        ))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_spec(path: str | Path) -> ExperimentSpec:
    """Parse a ``.toml`` or ``.json`` spec file."""
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10 fallback
            raise SpecError(
                "TOML specs need Python 3.11+ (tomllib); "
                "use the JSON spec form instead"
            ) from None
        try:
            with open(p, "rb") as f:
                data = tomllib.load(f)
        except OSError as exc:
            raise SpecError(f"cannot read spec {p}: {exc}") from None
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{p}: invalid TOML: {exc}") from None
    elif suffix == ".json":
        try:
            with open(p) as f:
                data = json.load(f)
        except OSError as exc:
            raise SpecError(f"cannot read spec {p}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SpecError(f"{p}: invalid JSON: {exc}") from None
    else:
        raise SpecError(
            f"unsupported spec extension {p.suffix!r} (use .toml or .json)"
        )
    try:
        return ExperimentSpec.from_dict(data)
    except SpecError as exc:
        raise SpecError(f"{p}: {exc}") from None


# ----------------------------------------------------------------------
# Compilation: spec -> SweepPlan cells + row plans
# ----------------------------------------------------------------------

@dataclass
class _PlannedRow:
    """One output row awaiting its cells: either a table1 cell or a
    (run, base) pair plus the axis point it belongs to."""

    benchmark: str
    label: str
    axis: dict[str, Any]
    run: ScheduledRun | None = None
    base: ScheduledRun | None = None
    cell: RunSpec | None = None          # table1 characterization cell
    base_fallback: str | None = None     # error text when only base failed
    # None -> use the base cell's own traceback (scheme-mode behaviour);
    # a string -> fixed text (figure-4 style "baseline run failed").


@dataclass
class CompiledSpec:
    """A spec lowered onto the sweep machinery, ready to execute."""

    spec: ExperimentSpec
    cfg: MachineConfig
    plan: SweepPlan
    rows: list[_PlannedRow]

    @property
    def cell_count(self) -> int:
        """Distinct simulation cells after deduplication."""
        return len(set(self.plan._specs))

    def execute(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
        executor: SweepExecutor | None = None,
    ) -> list[dict[str, object]]:
        results = self.plan.execute(
            jobs=jobs, cache=cache, progress=progress, executor=executor
        )
        return assemble_rows(self.spec, self.rows, results)


def _axis_points(
    axes: tuple[Axis, ...]
) -> list[tuple[dict[str, Any], dict[str, Any], dict[str, Any]]]:
    """Cross product of the axes: (axis values, machine overrides,
    workload param overrides) per point, first axis outermost."""
    if not axes:
        return [({}, {}, {})]
    points = []
    for combo in itertools.product(*(a.values for a in axes)):
        values: dict[str, Any] = {}
        machine: dict[str, Any] = {}
        params: dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            values[axis.name] = value
            for target in axis.set:
                section, __, path = target.partition(".")
                if section == "machine":
                    machine[path] = value
                else:
                    params[path] = value
        points.append((values, machine, params))
    return points


def compile_spec(
    spec: ExperimentSpec, cfg: MachineConfig | None = None
) -> CompiledSpec:
    """Lower ``spec`` to sweep cells.  ``cfg`` replaces the spec's named
    machine (the CLI's ``--table2``-style override); the spec's dotted
    overrides and axis settings still apply on top of it."""
    base_cfg = (cfg if cfg is not None else get_machine(spec.machine))
    base_cfg = base_cfg.with_overrides(spec.overrides)
    # An empty scheme axis means the paper's default matrix; zoo schemes
    # must be named explicitly (as tournament.toml does).
    schemes = spec.schemes or tuple(paper_scheme_names())
    for scheme in schemes:
        get_scheme(scheme)  # unknown names fail at compile, not mid-sweep

    plan = SweepPlan(base_cfg)
    rows: list[_PlannedRow] = []
    for axis_values, machine_over, param_over in _axis_points(spec.axes):
        point_cfg = base_cfg.with_overrides(machine_over)
        for sel in spec.workloads:
            params = {**sel.params, **param_over}
            if spec.kind == "table1":
                cell = plan.add_table1(sel.name, params, cfg=point_cfg,
                                       sim_engine=spec.engine or None)
                rows.append(_PlannedRow(
                    sel.name, "characterize", axis_values, cell=cell
                ))
                continue
            if sel.idioms:
                rows.extend(_plan_idiom_rows(
                    plan, sel, params, point_cfg, axis_values,
                    profile=spec.profile, sim_engine=spec.engine or None,
                    telemetry=spec.telemetry,
                ))
            else:
                rows.extend(_plan_scheme_rows(
                    plan, sel, schemes, params, point_cfg, axis_values,
                    profile=spec.profile, sim_engine=spec.engine or None,
                    telemetry=spec.telemetry,
                ))
    return CompiledSpec(spec, base_cfg, plan, rows)


def _plan_scheme_rows(
    plan: SweepPlan,
    sel: WorkloadSel,
    schemes: tuple[str, ...],
    params: dict[str, Any],
    cfg: MachineConfig,
    axis_values: dict[str, Any],
    profile: bool = False,
    sim_engine: str | None = None,
    telemetry: bool = False,
) -> list[_PlannedRow]:
    per_scheme = {
        s: plan.add_run(sel.name, s, params, idiom=sel.idiom, cfg=cfg,
                        profile=profile, sim_engine=sim_engine,
                        telemetry=telemetry)
        for s in schemes
    }
    # Normalization needs the baseline even when it is not displayed;
    # deduplication makes this free when "base" is already in schemes.
    base_sr = per_scheme.get("base") or plan.add_run(
        sel.name, "base", params, cfg=cfg, profile=profile,
        sim_engine=sim_engine, telemetry=telemetry,
    )
    return [
        _PlannedRow(sel.name, s, axis_values, run=per_scheme[s], base=base_sr)
        for s in schemes
    ]


def _plan_idiom_rows(
    plan: SweepPlan,
    sel: WorkloadSel,
    params: dict[str, Any],
    cfg: MachineConfig,
    axis_values: dict[str, Any],
    profile: bool = False,
    sim_engine: str | None = None,
    telemetry: bool = False,
) -> list[_PlannedRow]:
    """Figure-4 expansion: the base run plus every available
    ``impl:idiom`` variant of the listed idioms."""
    workload = get_workload(sel.name, **params)
    base_sr = plan.add_run(sel.name, "base", params, cfg=cfg, profile=profile,
                           sim_engine=sim_engine, telemetry=telemetry)
    rows = [_PlannedRow(
        sel.name, "base", axis_values, run=base_sr, base=base_sr
    )]
    for impl in sel.impls:
        engine = _IMPL_ENGINES[impl]
        for idiom in sel.idioms:
            variant = f"{impl}:{idiom}"
            if variant not in workload.variants:
                continue
            vsr = plan.add_variant_run(sel.name, variant, engine, params,
                                       cfg=cfg, profile=profile,
                                       sim_engine=sim_engine,
                                       telemetry=telemetry)
            rows.append(_PlannedRow(
                sel.name, variant, axis_values, run=vsr, base=base_sr,
                base_fallback="baseline run failed",
            ))
    return rows


# ----------------------------------------------------------------------
# Assembly: cells -> rows
# ----------------------------------------------------------------------

def _resolve(
    results: SweepResults, sr: ScheduledRun
) -> tuple[SchemeRun | None, str | None]:
    """(SchemeRun, None) on success, (None, traceback) on failure."""
    err = results.error(sr)
    if err is not None:
        return None, err
    return results.scheme_run(sr), None


def assemble_rows(
    spec: ExperimentSpec,
    planned: list[_PlannedRow],
    results: SweepResults,
) -> list[dict[str, object]]:
    need_base = any(c in BASE_DEPENDENT for c in spec.columns)
    need_insts = "bytes/inst" in spec.columns
    rows: list[dict[str, object]] = []
    for rp in planned:
        if rp.cell is not None:  # table1 characterization
            cell = results.cell(rp.cell)
            if cell.ok:
                row = dict(cell.result)
            else:
                row = error_row(rp.benchmark, rp.label, results.error(rp.cell))
            row.update(rp.axis)
            rows.append(row)
            continue
        run, err = _resolve(results, rp.run)
        if rp.base is rp.run:
            base, base_err = run, err
        else:
            base, base_err = _resolve(results, rp.base)
        failed = (
            err is not None
            or (need_base and base is None)
            or (need_insts and base is not None
                and base.result.instructions == 0)
        )
        if failed:
            if err is not None:
                text = err
            elif rp.base_fallback is not None:
                text = rp.base_fallback
            else:
                text = base_err or ""
            row = error_row(rp.benchmark, rp.label, text,
                            label_key=spec.label_key)
            row.update(rp.axis)
            rows.append(row)
            continue
        row = {}
        for col in spec.columns:
            if col == spec.label_key:
                row[col] = rp.label
            elif col in rp.axis:
                row[col] = rp.axis[col]
            else:
                row[col] = METRICS[col](run, base, rp.benchmark)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# One-call entry points
# ----------------------------------------------------------------------

def run_spec(
    spec: ExperimentSpec,
    cfg: MachineConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    """Compile and execute ``spec``; returns the report rows."""
    return compile_spec(spec, cfg).execute(
        jobs=jobs, cache=cache, progress=progress, executor=executor
    )


def spec_artifact(
    spec: ExperimentSpec,
    rows: list[dict[str, object]],
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``repro.experiment/1`` artifact: rows plus the full spec that
    produced them, for provenance (a result file is re-runnable)."""
    return artifact(
        "experiment",
        {"spec": spec.to_dict(), "rows": rows},
        meta=dict(meta) if meta else None,
    )
