"""Sweep-cell vocabulary: the unit of work every layer above shares.

A sweep — whatever drives it (the serial fallback, a local process
pool, or a remote ``repro serve`` worker pool) — is a set of
:class:`RunSpec` cells, each one ``simulate()`` call.  This module owns
the cell identity (hashable, content-addressed through
:func:`repro.harness.cache.spec_key`), the cell outcome
(:class:`CellResult`), the worker body that turns a spec into a result
(:func:`run_cell`), and the wire form a cell travels in between
processes (:func:`job_payload` / :func:`spec_from_payload`).

The layers stack on top:

* :mod:`repro.harness.scheduler` — plan → shard → dispatch →
  deterministic plan-order assembly, owning retries/timeouts/journal
  replay;
* :mod:`repro.harness.backends` — the pluggable worker backends
  (``serial`` / ``process`` / ``service``) that execute dispatched
  cells;
* :mod:`repro.harness.protocol` — the versioned ``repro.job/1``
  messages the ``service`` backend speaks to ``repro serve`` pools.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable

from ..config import MachineConfig
from ..core.characterization import characterize
from ..cpu.simulator import simulate
from ..errors import ReproError
from ..isa.engines import default_sim_engine
from ..workloads import get_workload
from .faults import FaultPlan


class SweepError(ReproError):
    """An experiment asked for the result of a failed cell."""


class CellError(str):
    """An error traceback that also carries the exception class name, so
    ``SweepResults.error()`` stays a plain string for callers while
    error rows can be grepped by failure kind."""

    kind: str = ""

    def __new__(cls, text: str, kind: str = "") -> "CellError":
        obj = super().__new__(cls, text)
        obj.kind = kind
        return obj


def _freeze_params(params: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((params or {}).items()))


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: a (benchmark, variant, engine, config, params)
    point of a sweep.  Hashable — identical cells deduplicate in a plan
    and address the same on-disk cache entry.

    ``kind`` selects the worker: ``"sim"`` runs the timing simulation and
    returns a :class:`SimResult`; ``"table1"`` runs the Table-1
    characterization (miss-interval collection plus the compute-time run)
    and returns the row dict.

    ``profile=True`` attaches a :class:`repro.obs.Profiler` to a ``sim``
    cell; the serialized CPI stack / site table rides along in
    ``SimResult.profile`` (and therefore into the result cache — the flag
    is part of the cache key, so profiled and unprofiled runs never serve
    each other's entries).

    ``sim_engine`` is the simulation-engine registry name executing the
    cell (:mod:`repro.isa.engines`); :meth:`make` resolves the session
    default (``$REPRO_SIM_ENGINE``, else ``table``) eagerly so the cell
    identity — and with it the cache key — always names a concrete
    engine.  Engines are bit-identical, but keeping the key honest means
    a cached result always states which implementation produced it.

    ``telemetry=True`` attaches a :class:`repro.obs.Telemetry` context to
    a ``sim`` cell: the serialized metric registry and per-prefetch
    outcome counts ride along in ``SimResult.telemetry`` (and into the
    result cache — the flag is part of the cache key, like ``profile``).
    Cycle counts are unaffected: a telemetry-attached run only forgoes
    the fused compiled fast path, which is bit-identical anyway.
    """

    benchmark: str
    variant: str
    engine: str
    cfg: MachineConfig
    params: tuple[tuple[str, Any], ...] = ()
    kind: str = "sim"
    profile: bool = False
    sim_engine: str = "table"
    telemetry: bool = False

    @classmethod
    def make(
        cls,
        benchmark: str,
        variant: str,
        engine: str,
        cfg: MachineConfig,
        params: dict[str, Any] | None = None,
        kind: str = "sim",
        profile: bool = False,
        sim_engine: str | None = None,
        telemetry: bool = False,
    ) -> "RunSpec":
        return cls(
            benchmark, variant, engine, cfg, _freeze_params(params), kind,
            profile, sim_engine or default_sim_engine(), telemetry,
        )

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        label = f"{self.benchmark}[{self.variant}]"
        if self.kind != "sim":
            return f"{label} {self.kind}"
        tag = " (compute)" if self.cfg.perfect_data_memory else ""
        if self.profile:
            tag += " +profile"
        if self.telemetry:
            tag += " +telemetry"
        if self.sim_engine != "table":
            tag += f" [{self.sim_engine}]"
        return f"{label} x {self.engine}{tag}"


@dataclass
class CellResult:
    """Outcome of one executed (or cache-/journal-served) cell."""

    spec: RunSpec
    result: Any = None          # SimResult for "sim", row dict for "table1"
    error: str | None = None
    error_kind: str | None = None   # exception class name of the failure
    cached: bool = False            # served from the on-disk result cache
    replayed: bool = False          # served from the resume journal
    attempts: int = 1               # executions charged (1 = first try)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Attempt:
    """One scheduled execution of a cell (retries bump ``attempt``);
    the scheduler's dispatch queues hold these."""

    spec: RunSpec
    attempt: int = 0
    deadline: float | None = None


def run_cell(
    spec: RunSpec,
    attempt: int = 0,
    faults: FaultPlan | None = None,
    program_factory: Callable[[], Any] | None = None,
) -> tuple[str, ...]:
    """Worker body: build the program and simulate.  Must stay a
    module-level function (pickled by name into pool workers); never
    raises — failures come back as ``("error", kind, traceback)``.

    ``program_factory`` short-circuits the workload rebuild when the
    caller holds a memoized program (the per-worker memo of
    :mod:`repro.harness.backends`); it is consulted only after fault
    injection so a build failure and an injected fault keep their
    relative order."""
    try:
        if faults is not None:
            faults.apply(spec, attempt)
        if spec.kind == "table1":
            workload = get_workload(spec.benchmark, **dict(spec.params))
            program = workload.build(spec.variant).program
            row, __ = characterize(
                spec.benchmark, program, spec.cfg,
                structure=workload.structure, idioms=workload.idioms,
            )
            return ("ok", row.as_dict())
        if program_factory is not None:
            program = program_factory()
        else:
            workload = get_workload(spec.benchmark, **dict(spec.params))
            program = workload.build(spec.variant).program
        profiler = None
        if spec.profile:
            from ..obs.profile import Profiler

            profiler = Profiler()
        telemetry = None
        if spec.telemetry:
            from ..obs import Telemetry

            telemetry = Telemetry()
        result = simulate(program, spec.cfg, engine=spec.engine,
                          profile=profiler, sim_engine=spec.sim_engine,
                          telemetry=telemetry)
        return ("ok", result)
    except Exception as exc:
        return ("error", type(exc).__name__, traceback.format_exc())


# Back-compat alias: PR-2/PR-3 era pool workers were submitted by this
# private name.
_run_cell = run_cell


# ----------------------------------------------------------------------
# Wire form: the compact cell identity shipped between processes
# ----------------------------------------------------------------------

def job_payload(spec: RunSpec, config_id: str) -> dict[str, Any]:
    """The JSON-safe ``repro.job/1`` body of one cell.

    The machine config travels by reference (``config_id``, the SHA-256
    of its canonical dict): workers memoize the materialized
    :class:`MachineConfig` per id, so a thousand-cell sweep ships each
    distinct config once instead of re-pickling it per cell."""
    return {
        "benchmark": spec.benchmark,
        "variant": spec.variant,
        "engine": spec.engine,
        "params": [[k, v] for k, v in spec.params],
        "kind": spec.kind,
        "profile": spec.profile,
        "sim_engine": spec.sim_engine,
        "telemetry": spec.telemetry,
        "config": config_id,
    }


def spec_from_payload(payload: dict[str, Any], cfg: MachineConfig) -> RunSpec:
    """Rebuild the :class:`RunSpec` a payload describes, given the
    materialized config its ``config`` id referenced."""
    return RunSpec(
        benchmark=payload["benchmark"],
        variant=payload["variant"],
        engine=payload["engine"],
        cfg=cfg,
        params=tuple(sorted((k, v) for k, v in payload["params"])),
        kind=payload.get("kind", "sim"),
        profile=bool(payload.get("profile", False)),
        sim_engine=payload.get("sim_engine", "table"),
        telemetry=bool(payload.get("telemetry", False)),
    )


def error_row(
    benchmark: str,
    scheme: str,
    err: str,
    label_key: str = "scheme",
) -> dict[str, object]:
    """A ragged table row standing in for a failed cell: the last line of
    the traceback (the exception message), the failure's exception class
    name when known, plus the full text."""
    brief = err.strip().splitlines()[-1] if err.strip() else "unknown error"
    return {
        "benchmark": benchmark,
        label_key: scheme,
        "error": brief,
        "error_kind": getattr(err, "kind", "") or "",
        "error_detail": str(err),
    }


__all__ = [
    "Attempt",
    "CellError",
    "CellResult",
    "RunSpec",
    "SweepError",
    "error_row",
    "job_payload",
    "run_cell",
    "spec_from_payload",
]
