"""Experiment definitions: one function per paper table/figure.

Every function returns plain data structures (lists of dicts) that the
benchmark harnesses print with :mod:`repro.harness.reporting`, and that
tests assert shape properties on.  See DESIGN.md section 4 for the
experiment index and the expected shapes.

All experiments route through the same plan → execute → assemble
pipeline (:mod:`repro.harness.executor`): cells are planned up front,
deduplicated (schemes of one benchmark share their compute-time run),
optionally served from the on-disk :class:`~repro.harness.cache.
ResultCache`, and executed serially or across ``jobs`` worker processes
with identical row output either way.  A failed cell yields an error row
(benchmark, scheme, error text) instead of aborting the sweep.

The paper artifacts (``table1``, ``figure4``–``figure7``) are now thin
wrappers: each builds the equivalent declarative
:class:`~repro.harness.spec.ExperimentSpec` (the ``*_spec`` builders
below) and hands it to :func:`~repro.harness.spec.run_spec`.  The same
specs ship as files under ``examples/specs/`` for ``repro run-spec``;
file and wrapper produce bit-identical rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..config import MachineConfig, bench_config
from ..workloads import workload_class
from .cache import ResultCache
from .executor import (
    Progress,
    ScheduledRun,
    SweepExecutor,
    SweepPlan,
    SweepResults,
    error_row,
)
from .runner import SCHEMES
from .spec import Axis, ExperimentSpec, WorkloadSel, run_spec

#: The paper's benchmark suite (the `spmv` extension workload is opt-in).
OLDEN = ("bh", "bisort", "em3d", "health", "mst", "perimeter", "power",
         "treeadd", "tsp", "voronoi")

#: Benchmarks with an appreciable memory-latency component — the set over
#: which the paper computes its headline averages ("If we disregard bh,
#: bisort, power, tsp and voronoi...", Section 4.2).
MEMORY_BOUND = ("em3d", "health", "mst", "perimeter", "treeadd")

#: Figure 4's idiom-comparison subjects: the benchmarks with more than one
#: applicable idiom.
FIGURE4_SUBJECTS = {
    "health": ("queue", "full", "chain", "root"),
    "mst": ("queue", "root"),
    "em3d": ("queue",),
}


def small_params(name: str) -> dict[str, Any]:
    """Reduced sizes for quick runs/tests (not the bench defaults)."""
    return workload_class(name).test_params()


def _resolve(
    results: SweepResults, sr: ScheduledRun
) -> tuple[Any, str | None]:
    """(SchemeRun, None) on success, (None, traceback) on failure."""
    err = results.error(sr)
    if err is not None:
        return None, err
    return results.scheme_run(sr), None


# ----------------------------------------------------------------------
# Table 1 — benchmark characterization
# ----------------------------------------------------------------------

def table1_spec(
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> ExperimentSpec:
    """The declarative form of :func:`table1` (``examples/specs/table1.toml``)."""
    return ExperimentSpec(
        name="table1",
        title="Table 1 — benchmark characterization",
        kind="table1",
        workloads=tuple(
            WorkloadSel(name, params=dict((params or {}).get(name) or {}))
            for name in benchmarks or OLDEN
        ),
    )


def table1(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    return run_spec(table1_spec(benchmarks, params), cfg=cfg or bench_config(),
                    jobs=jobs, cache=cache, progress=progress,
                    executor=executor)


# ----------------------------------------------------------------------
# Figure 4 — comparing idioms (software and cooperative)
# ----------------------------------------------------------------------

def figure4_spec(
    subjects: dict[str, tuple[str, ...]] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> ExperimentSpec:
    """The declarative form of :func:`figure4` (``examples/specs/figure4.toml``)."""
    return ExperimentSpec(
        name="figure4",
        title="Figure 4 — comparing idioms (software and cooperative)",
        label_key="config",
        workloads=tuple(
            WorkloadSel(name, params=dict((params or {}).get(name) or {}),
                        idioms=tuple(idioms))
            for name, idioms in (subjects or FIGURE4_SUBJECTS).items()
        ),
        columns=("benchmark", "config", "normalized", "compute", "memory"),
    )


def figure4(
    cfg: MachineConfig | None = None,
    subjects: dict[str, tuple[str, ...]] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    return run_spec(figure4_spec(subjects, params), cfg=cfg or bench_config(),
                    jobs=jobs, cache=cache, progress=progress,
                    executor=executor)


# ----------------------------------------------------------------------
# Figure 5 — comparing implementations (+ DBP)
# ----------------------------------------------------------------------

def figure5_spec(
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    schemes: tuple[str, ...] = SCHEMES,
) -> ExperimentSpec:
    """The declarative form of :func:`figure5` (``examples/specs/figure5.toml``)."""
    return ExperimentSpec(
        name="figure5",
        title="Figure 5 — comparing implementations (+ DBP)",
        workloads=tuple(
            WorkloadSel(name, params=dict((params or {}).get(name) or {}))
            for name in benchmarks or OLDEN
        ),
        schemes=tuple(schemes),
        columns=("benchmark", "scheme", "variant", "normalized",
                 "compute", "memory", "mem_reduction%"),
    )


def figure5(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    return run_spec(figure5_spec(benchmarks, params, schemes),
                    cfg=cfg or bench_config(), jobs=jobs, cache=cache,
                    progress=progress, executor=executor)


def figure5_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """The paper's headline averages over the memory-bound benchmarks."""
    out = []
    for scheme in ("software", "cooperative", "hardware", "dbp"):
        # Degenerate tiny runs can round "normalized" to 0.0 (and error
        # rows carry no metrics at all); both are skipped, not divided by.
        picked = [
            r for r in rows
            if r["scheme"] == scheme and r["benchmark"] in MEMORY_BOUND
            and r.get("normalized")
        ]
        if not picked:
            continue
        speedup = sum(1 / r["normalized"] for r in picked) / len(picked)
        memcut = sum(r["mem_reduction%"] for r in picked) / len(picked)
        out.append({
            "scheme": scheme,
            "avg speedup%": round(100 * (speedup - 1), 1),
            "avg mem stall cut%": round(memcut, 1),
        })
    return out


# ----------------------------------------------------------------------
# Figure 6 — bandwidth (bytes L1<->L2 per baseline dynamic instruction)
# ----------------------------------------------------------------------

def figure6_spec(
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> ExperimentSpec:
    """The declarative form of :func:`figure6` (``examples/specs/figure6.toml``).

    The ``bytes/inst`` metric normalizes by the *original* (baseline)
    program's instruction count so added prefetch instructions do not
    bias the metric."""
    return ExperimentSpec(
        name="figure6",
        title="Figure 6 — bandwidth (bytes L1<->L2 per baseline instruction)",
        workloads=tuple(
            WorkloadSel(name, params=dict((params or {}).get(name) or {}))
            for name in benchmarks or OLDEN
        ),
        columns=("benchmark", "scheme", "bytes/inst"),
    )


def figure6(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    return run_spec(figure6_spec(benchmarks, params), cfg=cfg or bench_config(),
                    jobs=jobs, cache=cache, progress=progress,
                    executor=executor)


# ----------------------------------------------------------------------
# Figure 7 — tolerating longer latencies (health)
# ----------------------------------------------------------------------

def figure7_spec(
    latencies: tuple[int, ...] = (70, 280),
    intervals: tuple[int, ...] = (8, 16),
    params: dict[str, Any] | None = None,
) -> ExperimentSpec:
    """The declarative form of :func:`figure7` (``examples/specs/figure7.toml``).

    The interval axis is *linked*: one value sets both the machine's
    ``prefetch.jump_interval`` and the workload's ``interval`` parameter
    (the paper tunes the software in step with the hardware)."""
    return ExperimentSpec(
        name="figure7",
        title="Figure 7 — tolerating longer latencies (health)",
        workloads=(WorkloadSel("health", params=dict(params or {})),),
        axes=(
            Axis("latency", tuple(latencies), ("machine.memory_latency",)),
            Axis("interval", tuple(intervals),
                 ("machine.prefetch.jump_interval", "params.interval")),
        ),
        columns=("latency", "interval", "scheme", "total",
                 "normalized", "mem_reduction%"),
    )


def figure7(
    cfg: MachineConfig | None = None,
    latencies: tuple[int, ...] = (70, 280),
    intervals: tuple[int, ...] = (8, 16),
    params: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    return run_spec(figure7_spec(latencies, intervals, params),
                    cfg=cfg or bench_config(), jobs=jobs, cache=cache,
                    progress=progress, executor=executor)


# ----------------------------------------------------------------------
# X1 — on-chip jump-pointer table ablation (Section 3.3)
# ----------------------------------------------------------------------

def onchip_table_ablation(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("em3d", "health", "treeadd"),
    table_entries: int = 16384,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    onchip_cfg = replace(
        cfg, prefetch=replace(cfg.prefetch, onchip_table_entries=table_entries)
    )
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks:
        p = (params or {}).get(name)
        scheduled.append((
            name,
            plan.add_run(name, "base", p),
            plan.add_run(name, "hardware", p),
            plan.add_run(name, "hardware", p, cfg=onchip_cfg),
        ))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, base_sr, padding_sr, onchip_sr in scheduled:
        base, e1 = _resolve(results, base_sr)
        padding, e2 = _resolve(results, padding_sr)
        onchip, e3 = _resolve(results, onchip_sr)
        err = e1 or e2 or e3
        if err is not None:
            rows.append(error_row(name, "hardware", err))
            continue
        rows.append({
            "benchmark": name,
            "base": base.total,
            "hw (padding)": round(padding.normalized(base.total), 3),
            f"hw (on-chip {table_entries})": round(onchip.normalized(base.total), 3),
        })
    return rows


# ----------------------------------------------------------------------
# X2 — creation overhead and traversal-count sensitivity (Section 4.2)
# ----------------------------------------------------------------------

def creation_overhead(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("health", "treeadd"),
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    """A-priori slowdown of jump-pointer creation: the compute-time ratio
    of the instrumented program to the baseline (paper: ~12% for health)."""
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks:
        p = (params or {}).get(name)
        scheduled.append((
            name, plan.add_run(name, "base", p), plan.add_run(name, "software", p)
        ))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, base_sr, sw_sr in scheduled:
        base, e1 = _resolve(results, base_sr)
        sw, e2 = _resolve(results, sw_sr)
        err = e1 or e2
        if err is not None:
            rows.append(error_row(name, "software", err))
            continue
        rows.append({
            "benchmark": name,
            "variant": sw.variant,
            "creation overhead%": round(100 * (sw.compute / base.compute - 1), 1),
        })
    return rows


def traversal_count_sweep(
    cfg: MachineConfig | None = None,
    passes: tuple[int, ...] = (1, 2, 4, 8),
    params: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    """Hardware vs cooperative JPP (and DBP) on treeadd as the number of
    traversals grows: hardware's *jump-pointer* half forfeits the first
    pass, so at one pass it adds nothing over its DBP half and its
    advantage appears only with repetition (Section 4.2)."""
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for p in passes:
        wparams = dict(params or {})
        wparams["passes"] = p
        scheduled.append((p, {
            s: plan.add_run("treeadd", s, wparams)
            for s in ("base", "hardware", "cooperative", "dbp")
        }))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for p, per_scheme in scheduled:
        runs = {}
        err = None
        for scheme, sr in per_scheme.items():
            runs[scheme], e = _resolve(results, sr)
            err = err or e
        if err is not None:
            row = error_row("treeadd", "sweep", err)
            row["passes"] = p
            rows.append(row)
            continue
        base = runs["base"]
        rows.append({
            "passes": p,
            "hardware": round(runs["hardware"].normalized(base.total), 3),
            "cooperative": round(runs["cooperative"].normalized(base.total), 3),
            "dbp": round(runs["dbp"].normalized(base.total), 3),
        })
    return rows
