"""Experiment definitions: one function per paper table/figure.

Every function returns plain data structures (lists of dicts) that the
benchmark harnesses print with :mod:`repro.harness.reporting`, and that
tests assert shape properties on.  See DESIGN.md section 4 for the
experiment index and the expected shapes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..config import MachineConfig, bench_config
from ..core.characterization import characterize
from ..cpu.simulator import simulate
from ..workloads import get_workload, workload_class, workload_names
from .runner import SCHEMES, BenchmarkRunner

#: The paper's benchmark suite (the `spmv` extension workload is opt-in).
OLDEN = ("bh", "bisort", "em3d", "health", "mst", "perimeter", "power",
         "treeadd", "tsp", "voronoi")

#: Benchmarks with an appreciable memory-latency component — the set over
#: which the paper computes its headline averages ("If we disregard bh,
#: bisort, power, tsp and voronoi...", Section 4.2).
MEMORY_BOUND = ("em3d", "health", "mst", "perimeter", "treeadd")

#: Figure 4's idiom-comparison subjects: the benchmarks with more than one
#: applicable idiom.
FIGURE4_SUBJECTS = {
    "health": ("queue", "full", "chain", "root"),
    "mst": ("queue", "root"),
    "em3d": ("queue",),
}


def small_params(name: str) -> dict[str, Any]:
    """Reduced sizes for quick runs/tests (not the bench defaults)."""
    return workload_class(name).test_params()


# ----------------------------------------------------------------------
# Table 1 — benchmark characterization
# ----------------------------------------------------------------------

def table1(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for name in benchmarks or OLDEN:
        w = get_workload(name, **(params or {}).get(name, {}))
        built = w.build("baseline")
        row, __ = characterize(
            name, built.program, cfg, structure=w.structure, idioms=w.idioms
        )
        rows.append(row.as_dict())
    return rows


# ----------------------------------------------------------------------
# Figure 4 — comparing idioms (software and cooperative)
# ----------------------------------------------------------------------

def figure4(
    cfg: MachineConfig | None = None,
    subjects: dict[str, tuple[str, ...]] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for name, idioms in (subjects or FIGURE4_SUBJECTS).items():
        runner = BenchmarkRunner(name, cfg, (params or {}).get(name))
        base = runner.run("base")
        rows.append({
            "benchmark": name, "config": "base", "normalized": 1.0,
            "compute": base.compute, "memory": base.memory,
        })
        for impl, engine in (("sw", "software"), ("coop", "cooperative")):
            for idiom in idioms:
                variant = f"{impl}:{idiom}"
                if variant not in runner.workload.variants:
                    continue
                run = runner.run_variant(variant, engine)
                rows.append({
                    "benchmark": name,
                    "config": variant,
                    "normalized": round(run.normalized(base.total), 3),
                    "compute": run.compute,
                    "memory": run.memory,
                })
    return rows


# ----------------------------------------------------------------------
# Figure 5 — comparing implementations (+ DBP)
# ----------------------------------------------------------------------

def figure5(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    schemes: tuple[str, ...] = SCHEMES,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for name in benchmarks or OLDEN:
        runner = BenchmarkRunner(name, cfg, (params or {}).get(name))
        matrix = runner.run_matrix(schemes)
        base = matrix["base"]
        for scheme in schemes:
            run = matrix[scheme]
            rows.append({
                "benchmark": name,
                "scheme": scheme,
                "variant": run.variant,
                "normalized": round(run.normalized(base.total), 3),
                "compute": run.compute,
                "memory": run.memory,
                "mem_reduction%": round(100 * run.memory_reduction(base.memory), 1),
            })
    return rows


def figure5_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """The paper's headline averages over the memory-bound benchmarks."""
    out = []
    for scheme in ("software", "cooperative", "hardware", "dbp"):
        picked = [
            r for r in rows
            if r["scheme"] == scheme and r["benchmark"] in MEMORY_BOUND
        ]
        if not picked:
            continue
        speedup = sum(1 / r["normalized"] for r in picked) / len(picked)
        memcut = sum(r["mem_reduction%"] for r in picked) / len(picked)
        out.append({
            "scheme": scheme,
            "avg speedup%": round(100 * (speedup - 1), 1),
            "avg mem stall cut%": round(memcut, 1),
        })
    return out


# ----------------------------------------------------------------------
# Figure 6 — bandwidth (bytes L1<->L2 per baseline dynamic instruction)
# ----------------------------------------------------------------------

def figure6(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for name in benchmarks or OLDEN:
        runner = BenchmarkRunner(name, cfg, (params or {}).get(name))
        matrix = runner.run_matrix()
        # Normalize by the *original* (baseline) program's instruction
        # count so added prefetch instructions do not bias the metric.
        base_insts = matrix["base"].result.instructions
        for scheme in SCHEMES:
            run = matrix[scheme]
            rows.append({
                "benchmark": name,
                "scheme": scheme,
                "bytes/inst": round(
                    run.result.hierarchy.bytes_l1_l2 / base_insts, 3
                ),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 7 — tolerating longer latencies (health)
# ----------------------------------------------------------------------

def figure7(
    cfg: MachineConfig | None = None,
    latencies: tuple[int, ...] = (70, 280),
    intervals: tuple[int, ...] = (8, 16),
    params: dict[str, Any] | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for latency in latencies:
        for interval in intervals:
            mcfg = replace(
                cfg.with_memory_latency(latency),
                prefetch=replace(cfg.prefetch, jump_interval=interval),
            )
            wparams = dict(params or {})
            wparams["interval"] = interval
            runner = BenchmarkRunner("health", mcfg, wparams)
            matrix = runner.run_matrix()
            base = matrix["base"]
            for scheme in SCHEMES:
                run = matrix[scheme]
                rows.append({
                    "latency": latency,
                    "interval": interval,
                    "scheme": scheme,
                    "total": run.total,
                    "normalized": round(run.normalized(base.total), 3),
                    "mem_reduction%": round(
                        100 * run.memory_reduction(base.memory), 1
                    ),
                })
    return rows


# ----------------------------------------------------------------------
# X1 — on-chip jump-pointer table ablation (Section 3.3)
# ----------------------------------------------------------------------

def onchip_table_ablation(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("em3d", "health", "treeadd"),
    table_entries: int = 16384,
    params: dict[str, dict[str, Any]] | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    rows = []
    for name in benchmarks:
        runner = BenchmarkRunner(name, cfg, (params or {}).get(name))
        base = runner.run("base")
        padding = runner.run("hardware")
        onchip_cfg = replace(
            cfg, prefetch=replace(cfg.prefetch, onchip_table_entries=table_entries)
        )
        onchip_runner = BenchmarkRunner(name, onchip_cfg, (params or {}).get(name))
        onchip = onchip_runner.run("hardware")
        rows.append({
            "benchmark": name,
            "base": base.total,
            "hw (padding)": round(padding.normalized(base.total), 3),
            f"hw (on-chip {table_entries})": round(onchip.normalized(base.total), 3),
        })
    return rows


# ----------------------------------------------------------------------
# X2 — creation overhead and traversal-count sensitivity (Section 4.2)
# ----------------------------------------------------------------------

def creation_overhead(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("health", "treeadd"),
    params: dict[str, dict[str, Any]] | None = None,
) -> list[dict[str, object]]:
    """A-priori slowdown of jump-pointer creation: the compute-time ratio
    of the instrumented program to the baseline (paper: ~12% for health)."""
    cfg = cfg or bench_config()
    rows = []
    for name in benchmarks:
        runner = BenchmarkRunner(name, cfg, (params or {}).get(name))
        base = runner.run("base")
        sw = runner.run("software")
        rows.append({
            "benchmark": name,
            "variant": sw.variant,
            "creation overhead%": round(100 * (sw.compute / base.compute - 1), 1),
        })
    return rows


def traversal_count_sweep(
    cfg: MachineConfig | None = None,
    passes: tuple[int, ...] = (1, 2, 4, 8),
    params: dict[str, Any] | None = None,
) -> list[dict[str, object]]:
    """Hardware vs cooperative JPP (and DBP) on treeadd as the number of
    traversals grows: hardware's *jump-pointer* half forfeits the first
    pass, so at one pass it adds nothing over its DBP half and its
    advantage appears only with repetition (Section 4.2)."""
    cfg = cfg or bench_config()
    rows = []
    for p in passes:
        wparams = dict(params or {})
        wparams["passes"] = p
        runner = BenchmarkRunner("treeadd", cfg, wparams)
        base = runner.run("base")
        hw = runner.run("hardware")
        coop = runner.run("cooperative")
        dbp = runner.run("dbp")
        rows.append({
            "passes": p,
            "hardware": round(hw.normalized(base.total), 3),
            "cooperative": round(coop.normalized(base.total), 3),
            "dbp": round(dbp.normalized(base.total), 3),
        })
    return rows
